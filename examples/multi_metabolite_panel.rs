//! The full Fig. 4 multi-metabolite biointerface, measured end to end,
//! including the two-drug discrimination on the shared CYP2B4 electrode.
//!
//! Run with `cargo run --example multi_metabolite_panel`.

use advdiag::biochem::Analyte;
use advdiag::platform::{PanelSpec, PlatformBuilder, ReadoutSharing};
use advdiag::units::Molar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4()).build()?;
    println!("{}", platform.datasheet());

    println!("schedule:");
    for slot in platform.schedule().slots() {
        println!(
            "  t = {:>6.1} s  WE{}  {:<22} {:.0} s",
            slot.start.value(),
            slot.we,
            slot.technique.to_string(),
            slot.duration.value()
        );
    }

    // Three patients with different metabolic/therapeutic states.
    let patients: [(&str, Vec<(Analyte, Molar)>); 3] = [
        (
            "healthy fasting",
            vec![
                (Analyte::Glucose, Molar::from_millimolar(4.5)),
                (Analyte::Lactate, Molar::from_millimolar(1.0)),
                (Analyte::Cholesterol, Molar::from_micromolar(40.0)),
            ],
        ),
        (
            "post-exercise + analgesic therapy",
            vec![
                (Analyte::Glucose, Molar::from_millimolar(5.5)),
                (Analyte::Lactate, Molar::from_millimolar(2.4)),
                (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
                (Analyte::Cholesterol, Molar::from_micromolar(55.0)),
            ],
        ),
        (
            "obesity therapy, both CYP2B4 drugs present",
            vec![
                (Analyte::Glucose, Molar::from_millimolar(6.5)),
                (Analyte::Benzphetamine, Molar::from_millimolar(0.9)),
                (Analyte::Aminopyrine, Molar::from_millimolar(3.0)),
                (Analyte::Glutamate, Molar::from_millimolar(3.0)),
            ],
        ),
    ];

    for (k, (label, sample)) in patients.iter().enumerate() {
        println!("\n=== patient: {label} ===");
        let report = platform.run_session(sample, 31 * (k as u64 + 1))?;
        println!(
            "{:<15} {:>11} {:>13} {:>6}",
            "analyte", "true", "estimated", "found"
        );
        for r in report.readings() {
            let truth = sample
                .iter()
                .find(|(a, _)| *a == r.analyte)
                .map(|(_, c)| c.to_string())
                .unwrap_or_else(|| "absent".to_string());
            let est = r
                .estimated
                .map(|c| c.to_string())
                .unwrap_or_else(|| "—".to_string());
            println!(
                "{:<15} {:>11} {:>13} {:>6}",
                r.analyte.to_string(),
                truth,
                est,
                if r.identified { "yes" } else { "no" }
            );
        }
    }

    // Contrast with dedicated (parallel) readout: faster, more silicon.
    let dedicated = PlatformBuilder::new(PanelSpec::paper_fig4())
        .with_sharing(ReadoutSharing::Dedicated)
        .build()?;
    println!(
        "\nsharing trade-off: shared session {:.0} s / {:.0} µW vs dedicated {:.0} s / {:.0} µW",
        platform.schedule().total_duration().value(),
        platform.cost().power.as_microwatts(),
        dedicated.schedule().total_duration().value(),
        dedicated.cost().power.as_microwatts(),
    );
    Ok(())
}
