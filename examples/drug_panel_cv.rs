//! Therapeutic drug monitoring with a cytochrome P450 sensor.
//!
//! The paper's §I-A: "The measure of their level in the blood during
//! pharmacological therapy allows doctors to monitor how the patient is
//! metabolizing the supplied drugs." This example doses aminopyrine orally,
//! follows the plasma concentration with a one-compartment PK model, and
//! tracks it with CYP2B4 cyclic voltammetry every half hour.
//!
//! Run with `cargo run --example drug_panel_cv`.

use advdiag::afe::{ChainConfig, CurrentRange, ReadoutChain};
use advdiag::biochem::{Analyte, CypIsoform, CypSensor, OneCompartmentPk, Route};
use advdiag::electrochem::Electrode;
use advdiag::instrument::{run_cv, CvProtocol};
use advdiag::units::{Liters, Moles, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sensor = CypSensor::from_registry(CypIsoform::Cyp2B4)?;
    let electrode = Electrode::paper_gold_we();
    let range = CurrentRange::cytochrome().scaled(electrode.geometric_area().value());
    let chain = ReadoutChain::new(ChainConfig::for_range(range)?);
    let protocol = CvProtocol::default();

    // A hefty oral aminopyrine dose into 42 L of distribution volume:
    // peaks a bit over 2 mM, inside the sensor's 0.8–8 mM linear range.
    let pk = OneCompartmentPk::new(
        Moles::from_millimoles(120.0),
        Liters::new(42.0),
        Route::Oral,
        2.0e-4, // ka: ~1 h absorption
        4.0e-5, // ke: ~4.8 h half-life
    )?;
    println!(
        "dose t½ = {:.1} h, peak at {:.1} h",
        pk.half_life().as_hours(),
        pk.time_to_peak().as_hours()
    );
    println!("\nhour   true(mM)   peak(nA)   measured(mM)");

    for step in 0..=24 {
        let t = Seconds::from_hours(step as f64 * 0.5);
        let truth = pk.concentration(t);
        let m = run_cv(
            &sensor,
            &electrode,
            &chain,
            &[(Analyte::Aminopyrine, truth)],
            &protocol,
            7000 + step as u64,
        )?;
        let (peak_na, est_mm) = match m.peak_height(Analyte::Aminopyrine) {
            Some(h) => {
                // Invert the registry calibration.
                let s = sensor
                    .sensitivity_si(Analyte::Aminopyrine)
                    .expect("substrate");
                let km = sensor
                    .kinetics(Analyte::Aminopyrine)
                    .expect("substrate")
                    .km();
                let x = h.value() / (electrode.geometric_area().value() * s * km.value());
                let c = if x < 0.98 {
                    km.value() * x / (1.0 - x)
                } else {
                    f64::NAN
                };
                (h.as_nanoamps(), c * 1e3)
            }
            None => (0.0, 0.0),
        };
        if step % 2 == 0 {
            println!(
                "{:>4.1}  {:>9.2}  {:>9.2}  {:>12.2}",
                t.as_hours(),
                truth.as_millimolar(),
                peak_na,
                est_mm
            );
        }
    }
    println!("\npeak appears at the Table II potential (−400 mV vs Ag/AgCl);");
    println!("below the sensor's 400 µM LOD the drug correctly reads as absent.");
    Ok(())
}
