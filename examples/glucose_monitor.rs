//! Continuous glucose monitoring, GlucoMen®Day-style.
//!
//! The paper's introduction cites the GlucoMen®Day, which provides
//! "real-time measurements of subcutaneous glucose for up to 100 hours".
//! This example runs a single glucose-oxidase working electrode over a
//! simulated day of meals, sampling every 15 minutes, and tracks both the
//! concentration estimates and the enzyme's slow activity decay.
//!
//! Run with `cargo run --example glucose_monitor`.

use advdiag::afe::{ChainConfig, CurrentRange, ReadoutChain};
use advdiag::biochem::{Functionalization, Oxidase, OxidaseSensor};
use advdiag::electrochem::Electrode;
use advdiag::instrument::{run_chrono, ChronoProtocol};
use advdiag::units::{Molar, Seconds};

/// A day of glucose: fasting baseline with three post-prandial excursions.
fn glucose_profile(hours: f64) -> Molar {
    let baseline = 5.0;
    let meal = |t0: f64, peak: f64| {
        let dt = hours - t0;
        if dt <= 0.0 {
            0.0
        } else {
            peak * (dt / 0.8) * (-dt / 0.8).exp() * std::f64::consts::E
        }
    };
    Molar::from_millimolar(baseline + meal(7.5, 3.0) + meal(12.5, 4.0) + meal(19.0, 3.5))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sensor = OxidaseSensor::from_registry(Oxidase::Glucose)?;
    let electrode = Electrode::paper_gold_we();
    let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase())?);
    // Fast sampling protocol for a wearable: shorter settle, 60 s record.
    let protocol = ChronoProtocol {
        settle: Seconds::new(5.0),
        measure: Seconds::new(60.0),
        dt: Seconds::new(0.5),
    };
    let stack = Functionalization::paper_reference();

    println!("hour   true(mM)  measured(mM)  sensor activity");
    let mut worst_err: f64 = 0.0;
    for step in 0..=48 {
        let hours = step as f64 * 0.5;
        let truth = glucose_profile(hours);
        // Enzyme activity decays slowly over wear time.
        let activity = stack.activity_after(Seconds::from_hours(hours));
        let aged = sensor.clone().with_sensitivity_scaled(activity);
        let m = run_chrono(&aged, &electrode, &chain, truth, &protocol, 9000 + step)?;
        // Invert with the *nominal* calibration (a real monitor cannot know
        // the decay) — the drift this causes is the clinically relevant one.
        let est_mm = m.delta().value()
            / (electrode.geometric_area().value() * sensor.sensitivity_si())
            * 1e3;
        let err = (est_mm - truth.as_millimolar()).abs() / truth.as_millimolar();
        worst_err = worst_err.max(err);
        if step % 4 == 0 {
            println!(
                "{:>4.1}  {:>8.2}  {:>12.2}  {:>14.1}%",
                hours,
                truth.as_millimolar(),
                est_mm,
                activity * 100.0
            );
        }
    }
    println!(
        "\nworst relative error over 24 h: {:.1}%",
        worst_err * 100.0
    );
    println!(
        "sensor usable life at 85% activity: {:.0} h (wear target: 100 h)",
        stack.usable_life(0.85).as_hours()
    );
    Ok(())
}
