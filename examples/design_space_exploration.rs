//! Design-space exploration for the paper's panel: enumerate component
//! choices, predict per-target LODs, and print the Pareto front — the §I
//! "search of the most cost-effective solution" made executable.
//!
//! Run with `cargo run --example design_space_exploration`.

use advdiag::platform::{explore, DesignSpace, PanelSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let panel = PanelSpec::paper_fig4();
    let space = DesignSpace::paper_default();
    println!(
        "exploring {} designs for a {}-target panel...\n",
        space.len(),
        panel.targets().len()
    );
    let mut designs = explore(&panel, &space)?;
    let feasible = designs.iter().filter(|d| d.feasible).count();
    println!("{feasible}/{} designs feasible", designs.len());

    designs.sort_by(|a, b| {
        a.cost
            .scalar()
            .partial_cmp(&b.cost.scalar())
            .expect("costs are finite")
    });

    println!(
        "\n{:<6} {:<5} {:<10} {:<5} {:<4} {:<5} {:>9} {:>9} {:>8} {:>8}",
        "pareto", "nano", "sharing", "chop", "cds", "bits", "power", "area", "time", "margin"
    );
    for d in designs.iter().filter(|d| d.feasible) {
        println!(
            "{:<6} {:<5} {:<10} {:<5} {:<4} {:<5} {:>9} {:>7.2}mm² {:>7.0}s {:>8.2}",
            if d.pareto { "*" } else { "" },
            d.point.nanostructure.to_string(),
            format!("{}", d.point.sharing)
                .chars()
                .take(9)
                .collect::<String>(),
            d.point.chopper,
            d.point.cds,
            d.point.adc_bits,
            d.cost.power.to_string(),
            d.cost.total_area_mm2(),
            d.cost.session_time.value(),
            d.worst_lod_margin,
        );
    }

    // The front's endpoints tell the story.
    let front: Vec<_> = designs.iter().filter(|d| d.pareto).collect();
    if let (Some(cheapest), Some(best)) = (front.first(), front.last()) {
        println!("\ncheapest feasible design: {:?}", cheapest.point);
        println!("highest-margin design:    {:?}", best.point);
    }

    // Show the per-target LOD predictions of the cheapest Pareto design.
    if let Some(d) = front.first() {
        println!("\npredicted LODs of the cheapest Pareto design:");
        for (analyte, lod) in &d.predicted_lods {
            println!("  {:<15} {}", analyte.to_string(), lod);
        }
    }
    Ok(())
}
