//! Design-space exploration for the paper's panel, at methodology scale:
//! a 168 960-point space pruned to its exact Pareto band by static passes,
//! with only the surviving band simulated — the §I "search of the most
//! cost-effective solution" run like a compiler pipeline.
//!
//! Run with `cargo run --release --example design_space_exploration`.

use advdiag::explore::{explore, ExploreSpec};
use advdiag::platform::{ExecPolicy, PanelSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let panel = PanelSpec::paper_fig4();
    let spec = ExploreSpec::standard(panel);
    println!(
        "exploring {} designs for a {}-target panel...\n",
        spec.space.len(),
        spec.panel.targets().len()
    );
    let outcome = explore(&spec, ExecPolicy::Auto)?;

    println!("pass pipeline:");
    for report in &outcome.reports {
        println!(
            "  {:<18} {:>8} -> {:>8} points  ({} class evals)",
            report.pass, report.points_in, report.points_out, report.classes_evaluated
        );
        for bucket in &report.rejects {
            println!(
                "      {:?}: {} classes / {} points",
                bucket.reason, bucket.classes, bucket.points
            );
        }
    }
    println!(
        "\n{} of {} points statically rejected ({:.3}%); {} survivors in {} shards ({} replayed)",
        outcome.statically_rejected,
        outcome.total_points,
        100.0 * outcome.rejection_ratio,
        outcome.band.len(),
        outcome.shard_count,
        outcome.replayed_shards,
    );
    println!("frontier digest: {:#018x}\n", outcome.frontier_digest);

    println!(
        "{:<5} {:<5} {:<4} {:<4} {:<5} {:>4} {:>5} {:>12} {:>10}",
        "nano", "shar", "chop", "cds", "bits", "ovs", "area", "cost", "margin"
    );
    for d in &outcome.band {
        println!(
            "{:<5} {:<5} {:<4} {:<4} {:<5} {:>4} {:>4}% {:>12.1} {:>10.2}",
            d.point.base.nanostructure.to_string(),
            format!("{}", d.point.base.sharing)
                .chars()
                .take(5)
                .collect::<String>(),
            d.point.base.chopper,
            d.point.base.cds,
            d.point.base.adc_bits,
            d.point.oversampling,
            d.point.area_pct,
            d.surrogate_cost,
            d.surrogate_margin,
        );
    }

    if let (Some(cheapest), Some(best)) = (
        outcome.band.iter().min_by(|a, b| {
            a.surrogate_cost.total_cmp(&b.surrogate_cost)
        }),
        outcome.band.iter().max_by(|a, b| {
            a.surrogate_margin.total_cmp(&b.surrogate_margin)
        }),
    ) {
        println!("\ncheapest band design:     {:?}", cheapest.point);
        println!("highest-margin design:    {:?}", best.point);
        println!("\npredicted LODs of the cheapest band design (full simulation):");
        for (analyte, lod) in &cheapest.simulated.predicted_lods {
            println!("  {:<15} {}", analyte.to_string(), lod);
        }
    }
    Ok(())
}
