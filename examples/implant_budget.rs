//! Implantable-sensor feasibility budget.
//!
//! The paper's introduction motivates "implantable biosensors for long-term
//! monitoring" (refs. [3]–[6]). This example audits whether the Fig. 4
//! platform survives the implant environment: body temperature, the
//! subcutaneous oxygen deficit, enzyme aging, and a µW power envelope.
//!
//! Run with `cargo run --example implant_budget`.

use advdiag::biochem::{
    thermal_activity_factor, Functionalization, Oxidase, OxidaseSensor, OxygenConditions,
};
use advdiag::platform::{PanelSpec, PlatformBuilder};
use advdiag::units::{Kelvin, Molar, Seconds, T_BODY, T_ROOM};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== implant feasibility budget for the Fig. 4 platform ===\n");

    // 1. Power: harvested/inductive budgets for implants are ~1 mW.
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4()).build()?;
    let cost = platform.cost();
    let budget_uw = 1000.0;
    println!(
        "power:       {:.0} µW of a {budget_uw:.0} µW implant budget ({:.0}% headroom)",
        cost.power.as_microwatts(),
        (1.0 - cost.power.as_microwatts() / budget_uw) * 100.0
    );
    println!(
        "area:        {:.1} mm² ({} electrodes + electronics)",
        cost.total_area_mm2(),
        cost.electrodes
    );

    // 2. Temperature: 37 °C speeds the enzymes up (Q10 ≈ 2).
    let gain_37 = thermal_activity_factor(T_BODY) / thermal_activity_factor(T_ROOM);
    println!("\ntemperature: 37 °C gives {gain_37:.2}x enzyme turnover vs the 25 °C calibration");
    let fever = thermal_activity_factor(Kelvin::from_celsius(41.0));
    println!("             (a 41 °C fever: {fever:.2}x — recalibration drift to budget for)");

    // 3. Oxygen: the subcutaneous deficit attenuates every oxidase signal.
    let sensor = OxidaseSensor::from_registry(Oxidase::Glucose)?;
    let c = Molar::from_millimolar(5.0);
    let air = sensor.steady_current_density(c);
    let tissue =
        sensor.steady_current_density_with_oxygen(c, OxygenConditions::subcutaneous_tissue());
    let hypoxic = sensor.steady_current_density_with_oxygen(c, OxygenConditions::hypoxic());
    println!("\noxygen:      glucose signal at 5 mM");
    println!("             air-saturated  : {air}");
    println!(
        "             subcutaneous   : {tissue}  ({:.0}% of calibration)",
        tissue.value() / air.value() * 100.0
    );
    println!(
        "             hypoxic tissue : {hypoxic}  ({:.0}% — needs O2-limiting membrane)",
        hypoxic.value() / air.value() * 100.0
    );

    // 4. Lifetime: polymer stabilization vs the explant schedule.
    let stack = Functionalization::paper_reference();
    let explant_days = 14.0;
    let remaining = stack.activity_after(Seconds::from_hours(24.0 * explant_days));
    println!(
        "\nlifetime:    after a {explant_days:.0}-day implant: {:.0}% enzyme activity \
         (usable life at 70%: {:.0} days)",
        remaining * 100.0,
        stack.usable_life(0.70).as_hours() / 24.0
    );

    // 5. Verdict.
    let feasible = cost.power.as_microwatts() < budget_uw
        && tissue.value() / air.value() > 0.15
        && remaining > 0.5;
    println!(
        "\nverdict:     {}",
        if feasible {
            "FEASIBLE with an oxygen-limiting membrane and periodic recalibration"
        } else {
            "NOT feasible with the current stack"
        }
    );
    Ok(())
}
