//! Diagnostics as a service: a small fleet under chaos.
//!
//! The paper's platform runs one assay session at a time; this example
//! drives the serving layer on top of it — a `DiagnosticsServer` that
//! schedules a fleet of simulated patient devices through the resumable
//! session state machine, with bounded admission, service tiers,
//! per-session deadlines and fault injection.
//!
//! Run with `cargo run --example diagnostics_service`.

use advdiag::biochem::Analyte;
use advdiag::platform::{PanelSpec, PlatformBuilder};
use advdiag::server::{
    ChaosPlan, DiagnosticsServer, NullClock, ServerConfig, ServerError, ServiceTier,
    SessionOutcome, SessionRequest,
};
use advdiag::units::Molar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4()).build()?;

    // A deliberately small server: two shards, room for eight queued
    // requests each, and a tick budget tight enough that chaos stalls
    // show up as deadline cuts instead of hanging the fleet.
    let config = ServerConfig::default()
        .with_shards(2)
        .with_queue_capacity(8)
        .with_max_active(4)
        .with_deadline_ticks(48);

    // Hash-derived chaos: ~30% of devices stall past their deadline
    // before the first step, ~20% get torn down mid-session, ~25% run
    // with a randomized AFE fault plan. Same seed, same victims, every
    // run.
    let chaos = ChaosPlan::new(0xC1A0)
        .with_stalls(0.3, 64)
        .with_aborts(0.2)
        .with_afe_faults(0.25);

    let mut server = DiagnosticsServer::new(&platform, config).with_chaos(chaos);

    // Submit a tiered fleet: every third device is a stat (urgent)
    // request, the rest alternate routine and best-effort.
    let tiers = [
        ServiceTier::Stat,
        ServiceTier::Routine,
        ServiceTier::BestEffort,
    ];
    let mut overloaded = 0usize;
    for device in 0..24u64 {
        let mm = 2.0 + 0.35 * (device % 7) as f64;
        let request = SessionRequest {
            device,
            tier: tiers[(device % 3) as usize],
            sample: vec![
                (Analyte::Glucose, Molar::from_millimolar(mm)),
                (Analyte::Lactate, Molar::from_millimolar(1.1)),
            ],
            seed: 900 + device,
        };
        match server.submit(request) {
            Ok(()) => {}
            Err(ServerError::Overloaded {
                shard, queue_len, ..
            }) => {
                overloaded += 1;
                println!("device {device:2}: refused, shard {shard} queue full ({queue_len})");
            }
            Err(other) => println!("device {device:2}: refused, {other}"),
        }
    }

    // Drive the fleet to quiescence on virtual ticks; no wall clock
    // enters the schedule, so this replays bit-identically.
    let clock = NullClock;
    let ticks = server.run_until_idle(&clock, 10_000);

    let mut served = server.drain_completed();
    served.sort_by_key(|s| s.device);
    println!("\nfleet drained after {ticks} ticks:");
    for s in &served {
        let detail = match &s.outcome {
            SessionOutcome::Completed(r) if !r.is_degraded() => "clean".to_string(),
            SessionOutcome::Completed(r) => format!("degraded: {}", r.degradation()),
            SessionOutcome::DeadlineMiss(r) => format!("partial: {}", r.degradation()),
            SessionOutcome::Aborted(r) => format!("partial: {}", r.degradation()),
            SessionOutcome::Shed => "shed under overload".to_string(),
            SessionOutcome::Failed { error } => error.clone(),
        };
        println!(
            "  device {:2} [{:11}] {:13} {}",
            s.device,
            s.tier.name(),
            s.outcome.label(),
            detail
        );
    }

    let stats = server.stats();
    println!(
        "\nstats: {} admitted, {} refused overloaded, {} served, {} shed, {} deadline cuts",
        stats.submitted,
        stats.rejected_overloaded,
        stats.completed,
        stats.shed,
        stats.deadline_misses
    );
    if overloaded > 0 {
        println!("       ({overloaded} submissions bounced off the admission bound)");
    }
    let quarantined = server.quarantined_devices();
    if !quarantined.is_empty() {
        println!("       fleet-quarantined devices: {quarantined:?}");
    }

    // The serving contract this example demonstrates: every induced
    // failure surfaces as a typed outcome or flagged report — nothing
    // disappears.
    let accounted = served.len() as u64 + stats.rejected_overloaded + stats.rejected_quarantined;
    assert_eq!(accounted, 24, "every submission must be accounted for");
    Ok(())
}
