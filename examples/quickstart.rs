//! Quickstart: assemble the paper's Fig. 4 platform, measure a sample,
//! read the answers.
//!
//! Run with `cargo run --example quickstart`.

use advdiag::biochem::Analyte;
use advdiag::platform::{PanelSpec, PlatformBuilder};
use advdiag::units::Molar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Say what you want to monitor — the paper's six-target panel.
    let panel = PanelSpec::paper_fig4();

    // 2. Let the platform methodology pick probes, structure and readout.
    let platform = PlatformBuilder::new(panel).build()?;
    println!("{}", platform.datasheet());

    // 3. Present a sample.
    let sample = [
        (Analyte::Glucose, Molar::from_millimolar(5.2)), // diabetic-ish
        (Analyte::Lactate, Molar::from_millimolar(1.8)),
        (Analyte::Glutamate, Molar::from_millimolar(2.0)),
        (Analyte::Benzphetamine, Molar::from_millimolar(0.6)),
        (Analyte::Aminopyrine, Molar::from_millimolar(3.0)),
        (Analyte::Cholesterol, Molar::from_micromolar(60.0)),
    ];

    // 4. Run one multiplexed measurement session.
    let report = platform.run_session(&sample, 2026)?;
    println!(
        "session complete in {:.0} s ({} slots)\n",
        report.total_duration().value(),
        report.schedule().slots().len()
    );
    println!(
        "{:<15} {:>12} {:>14} {:>14} {:>6}",
        "analyte", "true", "estimated", "response", "found"
    );
    for (analyte, truth) in &sample {
        let r = report.reading_for(*analyte).expect("on panel");
        let est = r
            .estimated
            .map(|c| c.to_string())
            .unwrap_or_else(|| "saturated".to_string());
        println!(
            "{:<15} {:>12} {:>14} {:>14} {:>6}",
            analyte.to_string(),
            truth.to_string(),
            est,
            r.response.to_string(),
            if r.identified { "yes" } else { "no" }
        );
    }
    Ok(())
}
