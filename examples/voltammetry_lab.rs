//! A virtual electrochemistry lab session: validate the simulator against
//! the closed-form relations every electrochemist knows, then watch the
//! paper's scan-rate warning materialize.
//!
//! Run with `cargo run --example voltammetry_lab`.

use advdiag::biochem::{Analyte, CypIsoform, CypSensor};
use advdiag::electrochem::{
    cottrell_current, randles_sevcik_peak, simulate_chrono_with, simulate_cv_with, Cell, Electrode,
    PotentialProgram, RedoxCouple, SimOptions,
};
use advdiag::units::{Molar, Seconds, Volts, VoltsPerSecond, T_ROOM};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = Cell::builder(Electrode::paper_gold_we()).build()?;
    let couple = RedoxCouple::ferrocyanide();
    let bulk = Molar::from_millimolar(1.0);
    let options = SimOptions {
        dt: None,
        include_charging: false,
        grid_gamma: None,
    };

    // 1. Cottrell: step to a diffusion-limited potential.
    println!("--- Cottrell check (1 mM ferrocyanide, diffusion-limited step) ---");
    let step = PotentialProgram::Step {
        initial: Volts::new(0.6),
        stepped: Volts::new(-0.3),
        at: Seconds::ZERO,
        duration: Seconds::new(5.0),
    };
    let tr = simulate_chrono_with(
        &cell,
        &couple,
        bulk,
        Molar::ZERO,
        &step,
        SimOptions {
            dt: Some(Seconds::from_millis(5.0)),
            include_charging: false,
            grid_gamma: None,
        },
    )?;
    println!(
        "{:>6} {:>12} {:>12} {:>7}",
        "t(s)", "sim", "analytic", "err"
    );
    for t in [0.5, 1.0, 2.0, 4.0] {
        let sim = tr.current_at(Seconds::new(t)).expect("sampled");
        let ana = cottrell_current(&couple, cell.working().active_area(), bulk, Seconds::new(t));
        println!(
            "{:>6.1} {:>12} {:>12} {:>6.1}%",
            t,
            sim.to_string(),
            (-ana).to_string(),
            ((sim.value() + ana.value()) / ana.value()).abs() * 100.0
        );
    }

    // 2. Randles–Ševčík: CV peak vs scan rate.
    println!("\n--- Randles–Ševčík check: i_p ∝ √v ---");
    println!(
        "{:>9} {:>12} {:>12} {:>7}",
        "v(mV/s)", "sim peak", "analytic", "err"
    );
    for v_mv in [20.0, 50.0, 100.0] {
        let rate = VoltsPerSecond::from_millivolts_per_second(v_mv);
        let program = PotentialProgram::cyclic_single(
            couple.formal_potential() + Volts::new(0.3),
            couple.formal_potential() - Volts::new(0.3),
            rate,
        );
        let cv = simulate_cv_with(&cell, &couple, bulk, Molar::ZERO, &program, options)?;
        let (_, ip) = cv.min_current().expect("peak");
        let ana = randles_sevcik_peak(&couple, cell.working().active_area(), bulk, rate, T_ROOM);
        println!(
            "{:>9.0} {:>12} {:>12} {:>6.1}%",
            v_mv,
            ip.abs().to_string(),
            ana.to_string(),
            ((ip.abs().value() - ana.value()) / ana.value()).abs() * 100.0
        );
    }

    // 3. The paper's 20 mV/s guidance: CYP peak drift vs scan rate.
    println!("\n--- CYP2B4 benzphetamine peak vs scan rate (Table II: −250 mV) ---");
    let sensor = CypSensor::from_registry(CypIsoform::Cyp2B4)?;
    println!("{:>9} {:>12} {:>10}", "v(mV/s)", "peak(mV)", "drift(mV)");
    for v_mv in [5.0, 10.0, 20.0, 50.0, 100.0, 200.0] {
        let rate = VoltsPerSecond::from_millivolts_per_second(v_mv);
        let peak = sensor
            .peak_potential(Analyte::Benzphetamine, rate, T_ROOM)
            .expect("substrate");
        println!(
            "{:>9.0} {:>12.0} {:>10.0}",
            v_mv,
            peak.as_millivolts(),
            peak.as_millivolts() + 250.0
        );
    }
    println!("\nat ≤20 mV/s the peak sits on its Table II potential; faster scans");
    println!("drift it cathodically until targets become indistinguishable —");
    println!("the paper's \"about 20 mV/sec\" rule.");
    Ok(())
}
