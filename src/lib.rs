//! `advdiag` — an integrated platform for advanced diagnostics.
//!
//! Facade crate re-exporting the whole workspace, a Rust reproduction of
//! De Micheli et al., *"An Integrated Platform for Advanced Diagnostics"*,
//! DATE 2011. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for the reproduced tables and figures.
//!
//! * [`units`] — typed physical quantities,
//! * [`electrochem`] — diffusion/kinetics simulation engine,
//! * [`biochem`] — analytes, enzymes and calibrated sensor models,
//! * [`afe`] — behavioral analog front-end,
//! * [`instrument`] — protocols, peaks and calibration statistics,
//! * [`platform`] — the paper's platform methodology and design-space
//!   exploration,
//! * [`explore`] — compiler-style exploration at scale: static pruning
//!   passes, exact Pareto dominance and shard-memoized scoring over
//!   million-point spaces,
//! * [`server`] — diagnostics as a service: a sharded deterministic
//!   scheduler with bounded admission, deadlines, degradation tiers and
//!   a chaos harness,
//! * [`model`] — bounded exhaustive model checker for the session and
//!   server protocols, with counterexample replay artifacts.
//!
//! # Quickstart
//!
//! ```
//! use advdiag::platform::{PanelSpec, PlatformBuilder};
//! use advdiag::biochem::Analyte;
//! use advdiag::units::Molar;
//!
//! # fn main() -> Result<(), advdiag::platform::PlatformError> {
//! let platform = PlatformBuilder::new(PanelSpec::paper_fig4()).build()?;
//! let sample = [(Analyte::Glucose, Molar::from_millimolar(4.2))];
//! let report = platform.run_session(&sample, 1)?;
//! println!("{}", platform.datasheet());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The most commonly used types, importable in one line:
/// `use advdiag::prelude::*;`.
pub mod prelude {
    pub use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
    pub use bios_biochem::{Analyte, CypIsoform, CypSensor, Oxidase, OxidaseSensor, Probe};
    pub use bios_electrochem::{Cell, Electrode, PotentialProgram, RedoxCouple};
    pub use bios_instrument::{ChronoProtocol, CvProtocol, PerformanceReport};
    pub use bios_platform::{PanelSpec, Platform, PlatformBuilder, SessionReport, TargetSpec};
    pub use bios_units::{Amps, Molar, Seconds, Volts, VoltsPerSecond};
}

pub use bios_afe as afe;
pub use bios_biochem as biochem;
pub use bios_electrochem as electrochem;
pub use bios_explore as explore;
pub use bios_instrument as instrument;
pub use bios_model as model;
pub use bios_platform as platform;
pub use bios_server as server;
pub use bios_units as units;
