//! Conformance: the model mirrors are checked against the *real*
//! `SessionMachine` and `DiagnosticsServer`, transition for transition.
//!
//! The exhaustive explorer proves properties of the mirror; these tests
//! pin the mirror to the implementation, so a drift in either direction
//! (a protocol change the model missed, or a model bug) breaks the
//! build. Together they give the model-checking results their meaning.

use bios_afe::{Fault, FaultKind, FaultPlan};
use bios_biochem::Analyte;
use bios_instrument::QcGate;
use bios_model::{
    Choice, MPhase, MRequest, MSessionState, MVerdict, Model, OracleKey, SPhase, ServerModel,
    ServerModelConfig, SessionModelConfig,
};
use bios_platform::{Platform, PlatformBuilder, RetryPolicy, SessionOptions, StepEvent, StepKind};
use bios_server::{
    ChaosPlan, DiagnosticsServer, NullClock, ServerConfig, ServiceTier, SessionRequest,
};
use bios_units::Molar;

fn fig4() -> Platform {
    PlatformBuilder::new(bios_platform::PanelSpec::paper_fig4())
        .build()
        .expect("build")
}

fn fig4_sample() -> Vec<(Analyte, Molar)> {
    vec![
        (Analyte::Glucose, Molar::from_millimolar(3.0)),
        (Analyte::Lactate, Molar::from_millimolar(1.5)),
        (Analyte::Glutamate, Molar::from_millimolar(3.0)),
        (Analyte::Benzphetamine, Molar::from_millimolar(0.8)),
        (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
        (Analyte::Cholesterol, Molar::from_micromolar(50.0)),
    ]
}

/// One comparable trace entry: (slot, attempt, kind tag, event tag,
/// backoff delay).
type TraceEntry = (usize, u32, u8, u8, u64);

fn kind_tag(kind: StepKind) -> u8 {
    match kind {
        StepKind::ApplyPotential => 0,
        StepKind::Settle => 1,
        StepKind::Sample => 2,
        StepKind::Qc => 3,
        StepKind::Backoff => 4,
        StepKind::Quarantine => 5,
        StepKind::Done => 6,
    }
}

fn mphase_tag(phase: MPhase) -> u8 {
    match phase {
        MPhase::ApplyPotential => 0,
        MPhase::Settle => 1,
        MPhase::Sample => 2,
        MPhase::Qc => 3,
        MPhase::Backoff => 4,
        MPhase::Quarantine => 5,
        MPhase::Done => 6,
    }
}

/// Drives the real machine to completion, recording the comparable
/// trace.
fn real_trace(platform: &Platform, options: &SessionOptions, seed: u64) -> Vec<TraceEntry> {
    let mut machine = platform.session_machine(&fig4_sample(), seed, options);
    let mut trace = Vec::new();
    let mut guard = 0u32;
    while !machine.is_done() {
        guard += 1;
        assert!(guard < 10_000, "real machine must terminate");
        let preview = machine.next_step(platform).expect("not done");
        let event = machine.step(platform).expect("step");
        let (event_tag, delay) = match &event {
            StepEvent::Progressed(_) => (0u8, 0u64),
            StepEvent::BackedOff { delay_ticks, .. } => (1, *delay_ticks),
            StepEvent::Quarantined(_) => (2, 0),
            StepEvent::WeDone(_) => (3, 0),
            StepEvent::SessionDone => (4, 0),
        };
        trace.push((
            preview.slot,
            preview.attempt as u32,
            kind_tag(preview.kind),
            event_tag,
            delay,
        ));
    }
    trace
}

/// Drives the model mirror with `verdict_for(slot)` resolving every
/// draw, recording the comparable trace.
fn model_trace(cfg: &SessionModelConfig, verdict_for: impl Fn(u8) -> MVerdict) -> Vec<TraceEntry> {
    let mut state = MSessionState::new(cfg.electrodes);
    let mut trace = Vec::new();
    let mut guard = 0u32;
    while !state.is_done() {
        guard += 1;
        assert!(guard < 10_000, "model must terminate");
        let verdict = state
            .next_needs_verdict()
            .map(|need| verdict_for(need.slot));
        let record = state.step(cfg, verdict).expect("step");
        use bios_model::MEvent;
        let (event_tag, delay) = match record.event {
            MEvent::Progressed => (0u8, 0u64),
            MEvent::BackedOff { delay_ticks } => (1, delay_ticks),
            MEvent::Quarantined => (2, 0),
            MEvent::WeDone => (3, 0),
            MEvent::SessionDone => (4, 0),
        };
        trace.push((
            record.slot as usize,
            record.attempt,
            mphase_tag(record.kind),
            event_tag,
            delay,
        ));
    }
    trace
}

#[test]
fn clean_session_trace_matches_the_real_machine() {
    let p = fig4();
    let options = SessionOptions::default().with_qc(QcGate::default());
    let real = real_trace(&p, &options, 42);
    let electrodes = p.assignments().len() as u8;
    let cfg = SessionModelConfig::new(electrodes, RetryPolicy::default());
    let model = model_trace(&cfg, |_| MVerdict::Pass);
    assert_eq!(real, model, "clean run: mirror drifts from the machine");
}

#[test]
fn chronic_failure_trace_matches_the_real_machine() {
    let p = fig4();
    // Kill slot 0's working electrode outright: every attempt on that
    // slot fails QC, every other slot passes.
    let dead_we = p.assignments()[0].index();
    let plan = FaultPlan::new(77).with_fault(
        dead_we,
        Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid"),
    );
    let options = SessionOptions::default()
        .with_fault_plan(plan)
        .with_qc(QcGate::default());
    let real = real_trace(&p, &options, 42);
    let electrodes = p.assignments().len() as u8;
    let cfg = SessionModelConfig::new(electrodes, RetryPolicy::default());
    let model = model_trace(&cfg, |slot| {
        if slot == 0 {
            MVerdict::Fail
        } else {
            MVerdict::Pass
        }
    });
    assert_eq!(
        real, model,
        "chronic-failure run: mirror drifts from the machine \
         (backoff schedule, exhaustion or quarantine)"
    );
}

#[test]
fn model_backoff_delays_come_from_the_real_policy() {
    let retry = RetryPolicy {
        max_retries: 4,
        quarantine_after: 3,
        backoff_base_ticks: 3,
        backoff_cap_ticks: 10,
        ..RetryPolicy::default()
    };
    let cfg = SessionModelConfig::new(1, retry);
    let trace = model_trace(&cfg, |_| MVerdict::Fail);
    let delays: Vec<u64> = trace
        .iter()
        .filter(|(_, _, kind, event, _)| *kind == 4 && *event == 1)
        .map(|(_, _, _, _, delay)| *delay)
        .collect();
    let expected: Vec<u64> = (0..retry.max_retries)
        .map(|a| retry.backoff_ticks(a))
        .collect();
    assert_eq!(delays, expected, "delays must be the real policy's");
    assert_eq!(delays, vec![3, 6, 10, 10], "base 3 doubling, capped at 10");
}

#[test]
fn every_checkpoint_cut_reconverges_on_the_real_machine() {
    // The generalization the session model proves in the abstract,
    // checked here on the real machine: resume from EVERY step index,
    // not a sampled few.
    let p = fig4();
    let dead_we = p.assignments()[0].index();
    let plan = FaultPlan::new(77).with_fault(
        dead_we,
        Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid"),
    );
    let options = SessionOptions::default()
        .with_fault_plan(plan)
        .with_qc(QcGate::default());
    let sample = fig4_sample();
    let blocking = p
        .run_session_with(&sample, 7, &options)
        .expect("blocking run");
    let total = {
        let mut m = p.session_machine(&sample, 7, &options);
        while !m.is_done() {
            m.step(&p).expect("step");
        }
        m.steps_taken()
    };
    assert!(total > 10, "nontrivial step count: {total}");
    for cut in 0..=total {
        let mut machine = p.session_machine(&sample, 7, &options);
        for _ in 0..cut {
            if machine.is_done() {
                break;
            }
            machine.step(&p).expect("step");
        }
        let snapshot = machine.checkpoint();
        let json = serde_json::to_string(&snapshot).expect("serialize");
        let restored = serde_json::from_str(&json).expect("deserialize");
        let mut resumed = p.resume_session(&sample, 7, &options, restored);
        while !resumed.is_done() {
            resumed.step(&p).expect("step");
        }
        let report = resumed.finish(&p).expect("done");
        assert_eq!(report, blocking, "cut at {cut} of {total} steps");
    }
}

#[test]
fn server_model_reproduces_the_real_server_under_real_chaos_draws() {
    let p = fig4();
    let devices: Vec<u64> = vec![0, 1, 2, 3, 5];
    let tiers = [
        ServiceTier::Stat,
        ServiceTier::Routine,
        ServiceTier::BestEffort,
        ServiceTier::Routine,
        ServiceTier::Stat,
    ];
    let chaos = ChaosPlan::new(4242).with_stalls(0.5, 3).with_aborts(0.4);

    // Real side: a 2-shard server, knobs matching the model defaults.
    let config = ServerConfig::default()
        .with_shards(2)
        .with_queue_capacity(8)
        .with_max_active(2)
        .with_steps_per_tick(4)
        .with_deadline_ticks(64)
        .with_quarantine_threshold(2);
    let mut server = DiagnosticsServer::new(&p, config).with_chaos(chaos.clone());
    for (device, tier) in devices.iter().zip(tiers.iter()) {
        server
            .submit(SessionRequest {
                device: *device,
                tier: *tier,
                sample: fig4_sample(),
                seed: 42,
            })
            .expect("submit");
    }
    let clock = NullClock;
    let mut guard = 0u32;
    while !server.is_idle() {
        guard += 1;
        assert!(guard < 10_000, "real server must quiesce");
        server.tick(&clock);
    }
    let mut real: Vec<(u64, &'static str)> = server
        .drain_completed()
        .iter()
        .map(|c| (c.device, c.outcome.label()))
        .collect();
    real.sort_unstable();

    // Model side: same shape, chaos menus covering the realized draws,
    // each draw resolved with the real plan's answer for that device.
    let mut stalls: Vec<u64> = vec![0];
    let mut aborts: Vec<Option<u64>> = vec![None];
    for d in &devices {
        if let Some(s) = chaos.stall_for(*d) {
            stalls.push(s);
        }
        if let Some(a) = chaos.abort_after_for(*d) {
            aborts.push(Some(a));
        }
    }
    stalls.sort_unstable();
    stalls.dedup();
    aborts.sort_unstable();
    aborts.dedup();
    let electrodes = p.assignments().len() as u8;
    let requests: Vec<MRequest> = devices
        .iter()
        .zip(tiers.iter())
        .map(|(d, t)| MRequest {
            device: *d,
            tier: *t,
        })
        .collect();
    let session = SessionModelConfig::new(electrodes, RetryPolicy::default())
        .with_alphabet(vec![MVerdict::Pass]);
    let cfg = ServerModelConfig::new(2, requests, session)
        .with_stall_choices(stalls)
        .with_abort_choices(aborts);
    let model = ServerModel::new(cfg).expect("valid");
    let mut state = model.initial().expect("initial");
    let mut guard = 0u32;
    while !model.is_terminal(&state) {
        guard += 1;
        assert!(guard < 100_000, "model must quiesce");
        let choice = match &state.phase {
            SPhase::NeedChoice { key, .. } => match key {
                OracleKey::Chaos { device } => Choice::Chaos {
                    device: *device,
                    stall: chaos.stall_for(*device).unwrap_or(0),
                    abort: chaos.abort_after_for(*device),
                },
                OracleKey::Verdict {
                    device,
                    we,
                    attempt,
                } => Choice::Verdict {
                    device: *device,
                    we: *we,
                    attempt: *attempt,
                    verdict: MVerdict::Pass,
                },
            },
            _ => {
                let mut choices = Vec::new();
                model.choices(&state, &mut choices);
                choices.first().expect("enabled choice").clone()
            }
        };
        state = model.apply(&state, &choice).expect("apply");
        model
            .check(&state)
            .expect("invariants hold along the real run");
    }
    let mut modeled: Vec<(u64, &'static str)> = state
        .shards
        .iter()
        .flat_map(|s| s.completed.iter())
        .map(|c| {
            let label = match c.label {
                bios_model::MOutcomeLabel::Completed => "completed",
                bios_model::MOutcomeLabel::DeadlineMiss => "deadline-miss",
                bios_model::MOutcomeLabel::Aborted => "aborted",
                bios_model::MOutcomeLabel::Shed => "shed",
            };
            (c.device, label)
        })
        .collect();
    modeled.sort_unstable();
    assert_eq!(
        real, modeled,
        "server mirror drifts from the real scheduler under identical chaos"
    );
    assert!(
        real.iter().any(|(_, l)| *l == "aborted"),
        "the chaos draw should actually abort someone: {real:?}"
    );
}
