//! The bounded-exhaustive exploration engine: deterministic BFS over a
//! [`Model`]'s reachable state space with canonical-hash dedup.
//!
//! The engine is deliberately model-agnostic: a model exposes its
//! initial state, enumerates the [`Choice`]s available in a state,
//! applies one choice to produce a successor, and checks invariants.
//! Everything else — frontier management, dedup, counterexample
//! reconstruction, terminal classification — lives here, so the session
//! and server models cannot diverge in how they are searched.
//!
//! Determinism is load-bearing: frontier order is FIFO, visited sets are
//! `BTree`-ordered, and models must enumerate choices in a fixed order.
//! Rerunning an exploration therefore reproduces the exact same state,
//! edge and dedup counts — the reproducibility gate `repro_model`
//! enforces — and BFS order makes every counterexample trace minimal
//! (no shorter trace reaches the violating state).

use crate::canon::{canon_hash, CanonEncode};
use crate::config::MVerdict;
use crate::error::ModelError;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One resolved unit of nondeterminism: an edge label in the state
/// graph, and the replay currency of counterexample traces.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Choice {
    /// Execute the single enabled deterministic transition.
    Step,
    /// Resolve one acquisition's QC verdict draw.
    Verdict {
        /// Device whose session drew (0 for the bare session model).
        device: u64,
        /// Electrode slot within the session.
        we: u8,
        /// 0-based attempt the draw is for.
        attempt: u32,
        /// The drawn verdict.
        verdict: MVerdict,
    },
    /// Resolve one device's admission-time chaos draw.
    Chaos {
        /// Device being admitted.
        device: u64,
        /// Stall ticks before the session first wakes.
        stall: u64,
        /// Abort the session after this many steps, if set.
        abort: Option<u64>,
    },
    /// Tick one shard within the current round.
    Shard {
        /// The shard index.
        shard: u8,
    },
}

impl core::fmt::Display for Choice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Choice::Step => write!(f, "step"),
            Choice::Verdict {
                device,
                we,
                attempt,
                verdict,
            } => write!(
                f,
                "verdict(dev={device},we={we},attempt={attempt})={}",
                verdict.label()
            ),
            Choice::Chaos {
                device,
                stall,
                abort,
            } => match abort {
                Some(limit) => write!(f, "chaos(dev={device},stall={stall},abort@{limit})"),
                None => write!(f, "chaos(dev={device},stall={stall})"),
            },
            Choice::Shard { shard } => write!(f, "shard({shard})"),
        }
    }
}

/// A model the engine can explore exhaustively.
pub trait Model {
    /// The state type; canonical encoding drives dedup and classes.
    type State: Clone + CanonEncode;

    /// The unique initial state.
    ///
    /// # Errors
    ///
    /// [`ModelError::Config`] when the configuration cannot seed a state.
    fn initial(&self) -> Result<Self::State, ModelError>;

    /// Appends every choice enabled in `state`, in a fixed order.
    /// Must append nothing for terminal states; appending nothing for a
    /// non-terminal state is reported as a stuck-state violation.
    fn choices(&self, state: &Self::State, out: &mut Vec<Choice>);

    /// Applies one choice, producing the successor state.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidChoice`] when the choice is not enabled in
    /// `state` — the replay-integrity contract that keeps traces honest.
    fn apply(&self, state: &Self::State, choice: &Choice) -> Result<Self::State, ModelError>;

    /// True when `state` has no successors by construction.
    fn is_terminal(&self, state: &Self::State) -> bool;

    /// Checks every safety invariant; the message becomes the
    /// counterexample's violation text.
    ///
    /// # Errors
    ///
    /// A human-readable invariant-violation description.
    fn check(&self, state: &Self::State) -> Result<(), String>;

    /// A coarse label for terminal states (drives dot coloring).
    fn terminal_label(&self, state: &Self::State) -> Option<&'static str> {
        let _ = state;
        None
    }

    /// The equivalence class a terminal state must be the unique
    /// representative of. For the server model this is the hash of the
    /// oracle (the resolved nondeterminism): all interleavings under one
    /// oracle must reach one final state — the single-digest theorem.
    /// A second distinct terminal in a class is reported as a violation.
    fn terminal_class(&self, state: &Self::State) -> Option<u128> {
        let _ = state;
        None
    }
}

/// Exploration bounds. Hitting one sets `truncated` on the report
/// instead of failing, so a too-small bound is visible, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum distinct canonical states to expand.
    pub max_states: usize,
    /// Maximum BFS depth (trace length) to expand.
    pub max_depth: usize,
    /// Record the full state graph for dot rendering (memory-heavy;
    /// meant for small configs).
    pub record_graph: bool,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        Self {
            max_states: 5_000_000,
            max_depth: 100_000,
            record_graph: false,
        }
    }
}

/// Counters describing one exploration. Equality of two runs' stats is
/// the reproducibility gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExploreStats {
    /// Distinct canonical states visited.
    pub states: u64,
    /// Transitions applied (graph edges, including duplicates' edges).
    pub edges: u64,
    /// Successors that hashed to an already-visited state.
    pub dedup_hits: u64,
    /// Terminal states among the visited.
    pub terminal_states: u64,
    /// Distinct terminal classes observed (oracle assignments at the
    /// server level).
    pub terminal_classes: u64,
    /// Deepest BFS layer expanded.
    pub max_depth_seen: u64,
    /// Largest frontier size observed.
    pub frontier_peak: u64,
}

/// A minimal (BFS-shortest) witness that an invariant is violated.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Counterexample {
    /// The invariant-violation text from [`Model::check`].
    pub violation: String,
    /// Canonical hash (hex) of the violating state.
    pub state_hash: String,
    /// BFS depth of the violating state.
    pub depth: u64,
    /// The choice sequence that reaches it from the initial state.
    pub trace: Vec<Choice>,
}

/// One node of a recorded state graph.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphNode {
    /// Canonical hash, hex.
    pub hash: String,
    /// Terminal label, when terminal.
    pub label: Option<String>,
    /// BFS depth.
    pub depth: u64,
}

/// One edge of a recorded state graph.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphEdge {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Rendered choice label.
    pub choice: String,
}

/// The full reachable state graph (recorded only on request).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StateGraph {
    /// Nodes in BFS discovery order.
    pub nodes: Vec<GraphNode>,
    /// Edges in expansion order.
    pub edges: Vec<GraphEdge>,
}

/// What one exploration produced.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Search counters (the reproducibility surface).
    pub stats: ExploreStats,
    /// The first violation found, as a minimal replayable trace.
    pub violation: Option<Counterexample>,
    /// True when a limit stopped the search before the space was
    /// exhausted — the run proves nothing past the bound.
    pub truncated: bool,
    /// The recorded graph, when `record_graph` was set.
    pub graph: Option<StateGraph>,
}

/// Reconstructs the minimal trace to `hash` from the BFS parent map.
fn trace_to(parents: &BTreeMap<u128, (u128, Choice)>, initial: u128, hash: u128) -> Vec<Choice> {
    let mut trace = Vec::new();
    let mut cursor = hash;
    while cursor != initial {
        let Some((parent, choice)) = parents.get(&cursor) else {
            break;
        };
        trace.push(choice.clone());
        cursor = *parent;
    }
    trace.reverse();
    trace
}

fn hex128(h: u128) -> String {
    format!("{h:032x}")
}

/// Explores every reachable state of `model` breadth-first, checking
/// invariants at each, and returns the counters plus the first
/// counterexample (if any). Deterministic: two runs over the same model
/// and limits produce identical reports.
pub fn explore<M: Model>(model: &M, limits: &ExploreLimits) -> ExploreReport {
    let mut stats = ExploreStats::default();
    let mut truncated = false;
    let mut graph = limits.record_graph.then(StateGraph::default);
    let mut node_index: BTreeMap<u128, usize> = BTreeMap::new();

    let initial = match model.initial() {
        Ok(s) => s,
        Err(e) => {
            return ExploreReport {
                stats,
                violation: Some(Counterexample {
                    violation: format!("model failed to seed an initial state: {e}"),
                    state_hash: hex128(0),
                    depth: 0,
                    trace: Vec::new(),
                }),
                truncated,
                graph,
            };
        }
    };
    let initial_hash = canon_hash(&initial);

    let mut visited: BTreeSet<u128> = BTreeSet::new();
    let mut parents: BTreeMap<u128, (u128, Choice)> = BTreeMap::new();
    let mut classes: BTreeMap<u128, u128> = BTreeMap::new();
    let mut frontier: VecDeque<(M::State, u128, u64)> = VecDeque::new();
    let mut choices: Vec<Choice> = Vec::new();

    visited.insert(initial_hash);
    stats.states = 1;
    frontier.push_back((initial, initial_hash, 0));
    if let Some(g) = graph.as_mut() {
        node_index.insert(initial_hash, 0);
        g.nodes.push(GraphNode {
            hash: hex128(initial_hash),
            label: None,
            depth: 0,
        });
    }

    let fail = |stats: ExploreStats,
                truncated: bool,
                graph: Option<StateGraph>,
                parents: &BTreeMap<u128, (u128, Choice)>,
                hash: u128,
                depth: u64,
                violation: String,
                extra: Option<Choice>| {
        let mut trace = trace_to(parents, initial_hash, hash);
        if let Some(c) = extra {
            trace.push(c);
        }
        ExploreReport {
            stats,
            violation: Some(Counterexample {
                violation,
                state_hash: hex128(hash),
                depth,
                trace,
            }),
            truncated,
            graph,
        }
    };

    while let Some((state, hash, depth)) = frontier.pop_front() {
        stats.max_depth_seen = stats.max_depth_seen.max(depth);

        if let Err(msg) = model.check(&state) {
            return fail(stats, truncated, graph, &parents, hash, depth, msg, None);
        }

        if model.is_terminal(&state) {
            stats.terminal_states += 1;
            let label = model.terminal_label(&state);
            if let (Some(g), Some(l)) = (graph.as_mut(), label) {
                if let Some(&idx) = node_index.get(&hash) {
                    g.nodes[idx].label = Some(l.to_string());
                }
            }
            if let Some(class) = model.terminal_class(&state) {
                match classes.get(&class) {
                    None => {
                        classes.insert(class, hash);
                        stats.terminal_classes = classes.len() as u64;
                    }
                    Some(&prior) if prior != hash => {
                        return fail(
                            stats,
                            truncated,
                            graph,
                            &parents,
                            hash,
                            depth,
                            format!(
                                "single-digest theorem broken: two interleavings of the same \
                                 resolved nondeterminism reached distinct terminal states \
                                 ({} vs {})",
                                hex128(prior),
                                hex128(hash)
                            ),
                            None,
                        );
                    }
                    Some(_) => {}
                }
            }
            continue;
        }

        choices.clear();
        model.choices(&state, &mut choices);
        if choices.is_empty() {
            return fail(
                stats,
                truncated,
                graph,
                &parents,
                hash,
                depth,
                "stuck state: non-terminal but no enabled choices".to_string(),
                None,
            );
        }

        for choice in &choices {
            let next = match model.apply(&state, choice) {
                Ok(s) => s,
                Err(e) => {
                    return fail(
                        stats,
                        truncated,
                        graph,
                        &parents,
                        hash,
                        depth + 1,
                        format!("model rejected its own enabled choice `{choice}`: {e}"),
                        Some(choice.clone()),
                    );
                }
            };
            stats.edges += 1;
            let next_hash = canon_hash(&next);
            if let Some(g) = graph.as_mut() {
                let from = node_index.get(&hash).copied().unwrap_or(0);
                let to = *node_index.entry(next_hash).or_insert_with(|| {
                    g.nodes.push(GraphNode {
                        hash: hex128(next_hash),
                        label: None,
                        depth: depth + 1,
                    });
                    g.nodes.len() - 1
                });
                g.edges.push(GraphEdge {
                    from,
                    to,
                    choice: choice.to_string(),
                });
            }
            if visited.contains(&next_hash) {
                stats.dedup_hits += 1;
                continue;
            }
            if visited.len() >= limits.max_states || depth + 1 > limits.max_depth as u64 {
                truncated = true;
                continue;
            }
            visited.insert(next_hash);
            stats.states = visited.len() as u64;
            parents.insert(next_hash, (hash, choice.clone()));
            frontier.push_back((next, next_hash, depth + 1));
            stats.frontier_peak = stats.frontier_peak.max(frontier.len() as u64);
        }
    }

    ExploreReport {
        stats,
        violation: None,
        truncated,
        graph,
    }
}

/// What replaying a trace observed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplayOutcome {
    /// Choices applied before stopping.
    pub steps_applied: usize,
    /// The first invariant violation hit along the trace, if any.
    pub violation: Option<String>,
    /// Canonical hash (hex) of the last state reached.
    pub final_hash: String,
    /// Whether the last state is terminal.
    pub terminal: bool,
}

/// Replays a choice trace against a model deterministically, checking
/// invariants at every prefix. Stops at the first violation (that is
/// the state the counterexample witnessed).
///
/// # Errors
///
/// [`ModelError::InvalidChoice`] when the trace does not fit the model —
/// the artifact belongs to a different configuration.
pub fn replay<M: Model>(model: &M, trace: &[Choice]) -> Result<ReplayOutcome, ModelError> {
    let mut state = model.initial()?;
    let mut applied = 0usize;
    let mut violation = model.check(&state).err();
    if violation.is_none() {
        for choice in trace {
            state = model.apply(&state, choice)?;
            applied += 1;
            if let Err(msg) = model.check(&state) {
                violation = Some(msg);
                break;
            }
        }
    }
    Ok(ReplayOutcome {
        steps_applied: applied,
        violation,
        final_hash: hex128(canon_hash(&state)),
        terminal: model.is_terminal(&state),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny counter model: states 0..=n, choice Step increments; even
    /// states beyond a threshold violate when `bug` is set.
    struct Counter {
        n: u64,
        bug: bool,
    }

    #[derive(Clone)]
    struct CounterState(u64);

    impl CanonEncode for CounterState {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
    }

    impl Model for Counter {
        type State = CounterState;
        fn initial(&self) -> Result<CounterState, ModelError> {
            Ok(CounterState(0))
        }
        fn choices(&self, state: &CounterState, out: &mut Vec<Choice>) {
            if state.0 < self.n {
                out.push(Choice::Step);
            }
        }
        fn apply(&self, state: &CounterState, choice: &Choice) -> Result<CounterState, ModelError> {
            match choice {
                Choice::Step => Ok(CounterState(state.0 + 1)),
                _ => Err(ModelError::invalid_choice("counter only steps")),
            }
        }
        fn is_terminal(&self, state: &CounterState) -> bool {
            state.0 >= self.n
        }
        fn check(&self, state: &CounterState) -> Result<(), String> {
            if self.bug && state.0 == 3 {
                Err("counter reached the forbidden value 3".to_string())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn clean_chain_explores_every_state_once() {
        let report = explore(&Counter { n: 5, bug: false }, &ExploreLimits::default());
        assert!(report.violation.is_none());
        assert_eq!(report.stats.states, 6);
        assert_eq!(report.stats.edges, 5);
        assert_eq!(report.stats.terminal_states, 1);
        assert!(!report.truncated);
    }

    #[test]
    fn violation_comes_with_a_minimal_replayable_trace() {
        let model = Counter { n: 5, bug: true };
        let report = explore(&model, &ExploreLimits::default());
        let cx = report.violation.expect("bug must be found");
        assert_eq!(cx.trace.len(), 3, "BFS trace is minimal");
        let replayed = replay(&model, &cx.trace).expect("trace fits the model");
        assert_eq!(
            replayed.violation.as_deref(),
            Some("counter reached the forbidden value 3")
        );
        assert_eq!(replayed.final_hash, cx.state_hash);
    }

    #[test]
    fn truncation_is_reported_not_silent() {
        let limits = ExploreLimits {
            max_states: 3,
            ..ExploreLimits::default()
        };
        let report = explore(&Counter { n: 10, bug: false }, &limits);
        assert!(report.truncated);
        assert!(report.violation.is_none());
        assert_eq!(report.stats.states, 3);
    }

    #[test]
    fn graph_recording_captures_nodes_and_edges() {
        let limits = ExploreLimits {
            record_graph: true,
            ..ExploreLimits::default()
        };
        let report = explore(&Counter { n: 2, bug: false }, &limits);
        let graph = report.graph.expect("recorded");
        assert_eq!(graph.nodes.len(), 3);
        assert_eq!(graph.edges.len(), 2);
    }
}
