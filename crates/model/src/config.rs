//! Model configurations: the bounded universes the checker explores.
//!
//! A configuration pins everything *deterministic* about a run — electrode
//! count, the real [`RetryPolicy`] driving backoff arithmetic, server
//! shape — and enumerates everything *nondeterministic* as finite choice
//! sets: the QC verdict alphabet each acquisition may draw, the chaos
//! stall/abort menus each admitted device may draw, and (at the server
//! level) which shard ticks next. The checker then explores every
//! combination; soundness of the abstraction is pinned separately by the
//! conformance tests, which replay model traces against the real
//! `SessionMachine` and `DiagnosticsServer`.

use crate::error::ModelError;
use bios_platform::RetryPolicy;
use bios_server::ServiceTier;

/// The abstract outcome of one acquisition attempt, after the BIST merge:
/// what [`QcVerdict::decision`] sees. `Pass` stands for any accepting
/// class (`Pass`/`Suspect`), `Fail` for a failing measured verdict, and
/// `Err` for a recoverable acquisition error — the three inputs that
/// reach distinct branches of the real `Qc` transition.
///
/// [`QcVerdict::decision`]: bios_instrument::QcVerdict::decision
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum MVerdict {
    /// The acquisition measured and QC accepts.
    Pass,
    /// The acquisition measured and QC fails (retry or reject).
    Fail,
    /// The acquisition died with a recoverable error.
    Err,
}

impl MVerdict {
    /// Short label for trace rendering.
    pub fn label(self) -> &'static str {
        match self {
            MVerdict::Pass => "pass",
            MVerdict::Fail => "fail",
            MVerdict::Err => "err",
        }
    }
}

/// A deliberate single-transition corruption, used by the self-test to
/// prove the checker *would* catch a real bug: each mutation breaks
/// exactly one transition, and a specific invariant must flag it with a
/// replayable counterexample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Mutation {
    /// No corruption: the faithful model.
    None,
    /// `Backoff` spends a retry slot without advancing the attempt
    /// counter — the retry budget never exhausts. Violates the
    /// `retry_slots == attempt` budget invariant on the first backoff.
    SkipAttemptIncrement,
    /// `shed_excess` drops a queued unit without recording a `Shed`
    /// outcome — silent work loss. Violates conservation
    /// (admitted = served + shed + in-flight) on the first shed.
    SilentShed,
}

/// Bounded universe for session-level exploration: one session in
/// isolation, every QC/fault outcome enumerated.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionModelConfig {
    /// Working electrodes in the session (assignment slots).
    pub electrodes: u8,
    /// The *real* retry policy: backoff delays and budget arithmetic are
    /// computed by `bios_platform::RetryPolicy`, not re-implemented.
    pub retry: RetryPolicy,
    /// Verdicts each acquisition attempt may draw (the nondeterminism).
    pub alphabet: Vec<MVerdict>,
    /// Optional seeded corruption for the checker self-test.
    pub mutation: Mutation,
}

impl SessionModelConfig {
    /// A faithful config over the full verdict alphabet.
    pub fn new(electrodes: u8, retry: RetryPolicy) -> Self {
        Self {
            electrodes,
            retry,
            alphabet: vec![MVerdict::Pass, MVerdict::Fail, MVerdict::Err],
            mutation: Mutation::None,
        }
    }

    /// Replaces the verdict alphabet.
    #[must_use]
    pub fn with_alphabet(mut self, alphabet: Vec<MVerdict>) -> Self {
        self.alphabet = alphabet;
        self
    }

    /// Installs a seeded corruption.
    #[must_use]
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// The default verdict used when a closure/commutation probe needs to
    /// resolve an undrawn acquisition deterministically.
    pub fn default_verdict(&self) -> Result<MVerdict, ModelError> {
        self.alphabet
            .first()
            .copied()
            .ok_or_else(|| ModelError::config("verdict alphabet is empty"))
    }

    /// Checks the static well-formedness the explorer relies on,
    /// including backoff-schedule termination: every per-attempt delay
    /// the policy can produce is bounded by its cap, and the cumulative
    /// schedule is strictly increasing (no retry ever shares a wake
    /// slot, so the schedule cannot stall).
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.electrodes == 0 {
            return Err(ModelError::config("session model needs >= 1 electrode"));
        }
        if self.alphabet.is_empty() {
            return Err(ModelError::config("verdict alphabet is empty"));
        }
        for attempt in 0..self.retry.attempt_budget() {
            let delay = self.retry.backoff_ticks(attempt);
            if self.retry.backoff_base_ticks > 0 && delay > self.retry.backoff_cap_ticks {
                return Err(ModelError::config(
                    "backoff delay exceeds its cap: the schedule does not saturate",
                ));
            }
        }
        let schedule = self.retry.backoff_schedule();
        for pair in schedule.windows(2) {
            if pair[0] >= pair[1] {
                return Err(ModelError::config(
                    "cumulative backoff schedule is not strictly increasing",
                ));
            }
        }
        Ok(())
    }
}

/// One pre-loaded request in the server model (the bounded analogue of
/// [`SessionRequest`](bios_server::SessionRequest)).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MRequest {
    /// Routes to shard `device % shards`, like the real server.
    pub device: u64,
    /// Real [`ServiceTier`]: the shed scan uses its real `Ord`.
    pub tier: ServiceTier,
}

/// Which shard-interleaving set the server model explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Interleave {
    /// Every order of shard ticks within every round — the ground truth
    /// the single-digest theorem quantifies over.
    Full,
    /// One canonical order per round (lowest unticked shard first),
    /// justified by DPOR-style independence: shards share no mutable
    /// state and their oracle draws are key-disjoint, so their ticks
    /// commute. With `check_commutation` the justification is verified
    /// empirically at every scheduling point instead of assumed.
    Pruned,
}

/// Bounded universe for server-level exploration: a fixed request batch
/// over a sharded server, every chaos draw, QC verdict and (full mode)
/// shard interleaving enumerated.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerModelConfig {
    /// Shard count (devices route by `device % shards`).
    pub shards: u8,
    /// Per-shard admission queue bound.
    pub queue_capacity: usize,
    /// In-flight sessions a shard drives concurrently.
    pub max_active_per_shard: usize,
    /// State-machine steps each in-flight session may take per tick.
    pub steps_per_tick: usize,
    /// Ticks before an in-flight session is cut as a deadline miss.
    pub deadline_ticks: u64,
    /// Queue occupancy above which lowest-tier queued work is shed.
    pub shed_watermark: usize,
    /// Consecutive failed sessions after which a device is quarantined.
    pub quarantine_threshold: u32,
    /// The request batch submitted before exploration starts.
    pub requests: Vec<MRequest>,
    /// The per-session universe (electrodes, retry policy, verdicts,
    /// mutation — `SilentShed` is read here too).
    pub session: SessionModelConfig,
    /// Admission-time chaos: stall ticks each device may draw.
    pub stall_choices: Vec<u64>,
    /// Admission-time chaos: step limits after which the session aborts.
    pub abort_choices: Vec<Option<u64>>,
    /// Interleaving set to explore.
    pub interleave: Interleave,
    /// In pruned mode, verify at every scheduling point with >= 2
    /// enabled shards that their ticks commute (both orders reach the
    /// same state) instead of trusting the independence argument.
    pub check_commutation: bool,
}

impl ServerModelConfig {
    /// A server universe with serving knobs sized for exhaustive
    /// exploration (tight deadline, small step budget) over `requests`.
    pub fn new(shards: u8, requests: Vec<MRequest>, session: SessionModelConfig) -> Self {
        Self {
            shards,
            queue_capacity: 8,
            max_active_per_shard: 2,
            steps_per_tick: 4,
            deadline_ticks: 64,
            shed_watermark: 8,
            quarantine_threshold: 2,
            requests,
            session,
            stall_choices: vec![0],
            abort_choices: vec![None],
            interleave: Interleave::Pruned,
            check_commutation: true,
        }
    }

    /// Replaces the chaos stall menu.
    #[must_use]
    pub fn with_stall_choices(mut self, stalls: Vec<u64>) -> Self {
        self.stall_choices = stalls;
        self
    }

    /// Replaces the chaos abort menu.
    #[must_use]
    pub fn with_abort_choices(mut self, aborts: Vec<Option<u64>>) -> Self {
        self.abort_choices = aborts;
        self
    }

    /// Replaces the interleaving mode.
    #[must_use]
    pub fn with_interleave(mut self, interleave: Interleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// Replaces the shed watermark.
    #[must_use]
    pub fn with_shed_watermark(mut self, watermark: usize) -> Self {
        self.shed_watermark = watermark;
        self
    }

    /// Replaces the per-session step budget per tick.
    #[must_use]
    pub fn with_steps_per_tick(mut self, steps: usize) -> Self {
        self.steps_per_tick = steps.max(1);
        self
    }

    /// Replaces the deadline.
    #[must_use]
    pub fn with_deadline_ticks(mut self, ticks: u64) -> Self {
        self.deadline_ticks = ticks;
        self
    }

    /// Replaces the in-flight bound per shard.
    #[must_use]
    pub fn with_max_active(mut self, max_active: usize) -> Self {
        self.max_active_per_shard = max_active.max(1);
        self
    }

    /// Checks static well-formedness, including that the request batch
    /// fits the queues (the model pre-loads every request; a config that
    /// would overflow a queue is a config error, not an exploration).
    pub fn validate(&self) -> Result<(), ModelError> {
        self.session.validate()?;
        if self.shards == 0 {
            return Err(ModelError::config("server model needs >= 1 shard"));
        }
        if self.stall_choices.is_empty() || self.abort_choices.is_empty() {
            return Err(ModelError::config("chaos choice menus must be non-empty"));
        }
        let shards = self.shards as u64;
        for s in 0..shards {
            let load = self
                .requests
                .iter()
                .filter(|r| r.device % shards == s)
                .count();
            if load > self.queue_capacity {
                return Err(ModelError::config(
                    "request batch overflows a shard queue: shrink the batch or raise capacity",
                ));
            }
        }
        let mut devices: Vec<u64> = self.requests.iter().map(|r| r.device).collect();
        devices.sort_unstable();
        devices.dedup();
        if devices.len() != self.requests.len() {
            return Err(ModelError::config(
                "duplicate devices in the request batch: oracle keys would collide",
            ));
        }
        Ok(())
    }

    /// The default chaos draw used when a commutation probe needs to
    /// resolve an undrawn admission deterministically.
    pub fn default_chaos(&self) -> Result<(u64, Option<u64>), ModelError> {
        let stall = self
            .stall_choices
            .first()
            .copied()
            .ok_or_else(|| ModelError::config("stall menu is empty"))?;
        let abort = self
            .abort_choices
            .first()
            .copied()
            .ok_or_else(|| ModelError::config("abort menu is empty"))?;
        Ok((stall, abort))
    }
}
