//! Canonical state encoding and wide hashing for frontier dedup.
//!
//! Exhaustive exploration lives or dies on recognizing a state it has
//! already visited. Two requirements drive this module:
//!
//! 1. **Canonical** — two semantically equal states must encode to the
//!    same byte string, independent of how they were reached. The
//!    encoding is therefore field-by-field and order-pinned (maps encode
//!    in key order, vectors in index order), with no pointers, padding,
//!    or float formatting in play.
//! 2. **Collision-safe** — a hash collision would silently merge two
//!    distinct states and could mask a reachable violation. Frontier
//!    keys are 128-bit FNV-1a digests of the canonical encoding: at the
//!    bounded exploration sizes this checker targets (≲ 10⁷ states) the
//!    collision probability is below 10⁻²⁴, far past the point where a
//!    soundness argument would need the full encoding as the key.
//!
//! The trait is implemented by hand for every model state type rather
//! than derived through serde so the byte layout is explicit, compact
//! (a server state is ~100–300 bytes), and independent of the JSON
//! field names used by the replay artifacts.

/// Types with a canonical, order-pinned byte encoding.
pub trait CanonEncode {
    /// Appends this value's canonical encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

impl CanonEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl CanonEncode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl CanonEncode for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl CanonEncode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl CanonEncode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl CanonEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl<T: CanonEncode> CanonEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: CanonEncode> CanonEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
}

impl<A: CanonEncode, B: CanonEncode> CanonEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: CanonEncode, B: CanonEncode, C: CanonEncode> CanonEncode for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}

impl<K: CanonEncode, V: CanonEncode> CanonEncode for std::collections::BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<T: CanonEncode> CanonEncode for std::collections::BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
}

/// The canonical byte encoding of a value.
pub fn canon_bytes<T: CanonEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    value.encode(&mut out);
    out
}

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// 128-bit FNV-1a hash of a byte string.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// The 128-bit canonical hash of a state: `fnv128(canon_bytes(value))`.
pub fn canon_hash<T: CanonEncode + ?Sized>(value: &T) -> u128 {
    fnv128(&canon_bytes(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn primitive_encodings_are_order_pinned() {
        assert_eq!(canon_bytes(&true), vec![1]);
        assert_eq!(canon_bytes(&0x0102u16), vec![0x02, 0x01]);
        assert_eq!(canon_bytes(&Some(7u8)), vec![1, 7]);
        assert_eq!(canon_bytes(&None::<u8>), vec![0]);
        let v: Vec<u8> = vec![3, 4];
        assert_eq!(canon_bytes(&v)[..8], 2u64.to_le_bytes());
    }

    #[test]
    fn map_encoding_is_key_ordered() {
        let mut a = BTreeMap::new();
        a.insert(2u8, 20u8);
        a.insert(1u8, 10u8);
        let mut b = BTreeMap::new();
        b.insert(1u8, 10u8);
        b.insert(2u8, 20u8);
        assert_eq!(canon_bytes(&a), canon_bytes(&b));
    }

    #[test]
    fn fnv128_matches_known_vectors() {
        // FNV-1a 128: hash of empty input is the offset basis.
        assert_eq!(fnv128(b""), FNV128_OFFSET);
        // Distinct inputs with equal u64-FNV-style prefixes stay distinct.
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_ne!(fnv128(&[0, 1]), fnv128(&[1, 0]));
    }

    #[test]
    fn nested_containers_roundtrip_distinctly() {
        let a: Vec<Option<u16>> = vec![Some(1), None];
        let b: Vec<Option<u16>> = vec![None, Some(1)];
        assert_ne!(canon_hash(&a), canon_hash(&b));
    }
}
