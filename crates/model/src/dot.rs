//! Graphviz rendering of a recorded state graph.
//!
//! Meant for the small, human-auditable configs: the CI artifact shows
//! the whole protocol surface at a glance, with terminal states colored
//! by outcome class so a reviewer can see at once which leaves exist
//! (clean service, degradation, shedding, quarantine) and that nothing
//! dangles.

use crate::explore::StateGraph;
use core::fmt::Write as _;

/// Fill color for a terminal label (matches the outcome taxonomy used
/// by both models).
fn fill_for(label: &str) -> &'static str {
    match label {
        "completed" | "served-clean" => "#7fbf7f",
        "degraded" => "#e8c468",
        "failed-session" => "#e89a68",
        "shed" => "#9f86c0",
        "quarantined" | "quarantined-device" => "#d66a6a",
        _ => "#cccccc",
    }
}

/// Renders a recorded state graph as Graphviz dot. Nodes are named by a
/// short prefix of their canonical hash; terminal states are filled by
/// outcome label, non-terminals stay plain. Deterministic: node and edge
/// order follow BFS discovery order.
pub fn render_dot(graph: &StateGraph, title: &str) -> String {
    let mut out = String::with_capacity(4096 + graph.nodes.len() * 96);
    let _ = writeln!(out, "digraph model {{");
    let _ = writeln!(out, "  label=\"{}\";", title.replace('"', "'"));
    let _ = writeln!(out, "  labelloc=top;");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  node [shape=circle, style=filled, fillcolor=\"#f2f2f2\", \
         fontsize=8, width=0.3, fixedsize=false];"
    );
    for (idx, node) in graph.nodes.iter().enumerate() {
        let short = node.hash.get(..8).unwrap_or(&node.hash);
        match &node.label {
            Some(label) => {
                let _ = writeln!(
                    out,
                    "  n{idx} [label=\"{short}\\n{label}\", shape=doublecircle, \
                     fillcolor=\"{}\"];",
                    fill_for(label)
                );
            }
            None => {
                let _ = writeln!(out, "  n{idx} [label=\"{short}\"];");
            }
        }
    }
    for edge in &graph.edges {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\", fontsize=7];",
            edge.from,
            edge.to,
            edge.choice.replace('"', "'")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MVerdict, SessionModelConfig};
    use crate::explore::{explore, ExploreLimits};
    use crate::session::SessionModel;
    use bios_platform::RetryPolicy;

    #[test]
    fn dot_output_colors_terminals_and_is_deterministic() {
        let cfg = SessionModelConfig::new(1, RetryPolicy::default())
            .with_alphabet(vec![MVerdict::Pass, MVerdict::Fail]);
        let model = SessionModel::new(cfg).expect("valid");
        let limits = ExploreLimits {
            record_graph: true,
            ..ExploreLimits::default()
        };
        let a = explore(&model, &limits);
        let graph = a.graph.expect("recorded");
        let dot = render_dot(&graph, "session model");
        assert!(dot.starts_with("digraph model {"));
        assert!(dot.contains("doublecircle"), "terminals rendered");
        assert!(dot.contains("#d66a6a"), "quarantine leaf colored red");
        let b = explore(&model, &limits);
        assert_eq!(
            dot,
            render_dot(&b.graph.expect("recorded"), "session model"),
            "rendering is rerun-identical"
        );
    }
}
