//! Session-level model: a faithful, abstracted mirror of the
//! `WeMachine`/`SessionMachine` transition relation.
//!
//! The mirror keeps everything that decides *control flow* — phases,
//! attempt counters, retry slots, the round-robin cursor, the exact
//! `Qc` decision structure — and abstracts exactly one thing: the
//! acquisition outcome, which becomes an injected [`MVerdict`] instead
//! of a physics run. Backoff delays and budget arithmetic are computed
//! by the *real* [`RetryPolicy`], so a backoff bug in `bios-platform`
//! is a backoff bug here. The conformance tests drive the real
//! `SessionMachine` and this mirror side by side and require identical
//! step/event traces on both clean and chronically-failing electrodes.
//!
//! [`RetryPolicy`]: bios_platform::RetryPolicy

use crate::canon::{canon_hash, CanonEncode};
use crate::config::{MVerdict, Mutation, SessionModelConfig};
use crate::error::ModelError;
use crate::explore::{Choice, Model};

/// Mirror of `StepKind`: the phase one electrode machine is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MPhase {
    /// Program the chain / BIST (folded into the verdict draw).
    ApplyPotential,
    /// Recall the QC baseline reference.
    Settle,
    /// One acquisition attempt: draws an [`MVerdict`] from the oracle.
    Sample,
    /// Screen the drawn verdict and decide accept / retry / reject.
    Qc,
    /// Spend one retry slot with the real backoff delay.
    Backoff,
    /// Flag the electrode as chronically failing.
    Quarantine,
    /// Terminal.
    Done,
}

impl MPhase {
    fn tag(self) -> u8 {
        match self {
            MPhase::ApplyPotential => 0,
            MPhase::Settle => 1,
            MPhase::Sample => 2,
            MPhase::Qc => 3,
            MPhase::Backoff => 4,
            MPhase::Quarantine => 5,
            MPhase::Done => 6,
        }
    }
}

impl CanonEncode for MPhase {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tag().encode(out);
    }
}

impl CanonEncode for MVerdict {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            MVerdict::Pass => 0,
            MVerdict::Fail => 1,
            MVerdict::Err => 2,
        };
        tag.encode(out);
    }
}

/// Mirror of `WeOutcome`'s provenance bits: what one electrode sealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MWeOutcome {
    /// The final verdict was not an accept (mirror of `QcClass::Fail`).
    pub failed: bool,
    /// The electrode was quarantined at finalize.
    pub quarantined: bool,
    /// Attempts spent (`attempt + 1` at finalize).
    pub attempts: u32,
    /// Retry slots spent.
    pub retry_slots: u32,
}

impl CanonEncode for MWeOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.failed.encode(out);
        self.quarantined.encode(out);
        self.attempts.encode(out);
        self.retry_slots.encode(out);
    }
}

/// Mirror of `WeMachine`: one electrode's control state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MWe {
    /// Current phase.
    pub phase: MPhase,
    /// 0-based attempt the next `Sample` will draw.
    pub attempt: u32,
    /// Retry slots spent so far.
    pub retry_slots: u32,
    /// Verdict parked between `Sample` and `Qc`.
    pub pending: Option<MVerdict>,
    /// Sealed outcome once finalized.
    pub outcome: Option<MWeOutcome>,
}

impl MWe {
    fn new() -> Self {
        Self {
            phase: MPhase::ApplyPotential,
            attempt: 0,
            retry_slots: 0,
            pending: None,
            outcome: None,
        }
    }

    fn is_done(&self) -> bool {
        self.phase == MPhase::Done
    }
}

impl CanonEncode for MWe {
    fn encode(&self, out: &mut Vec<u8>) {
        self.phase.encode(out);
        self.attempt.encode(out);
        self.retry_slots.encode(out);
        self.pending.encode(out);
        self.outcome.encode(out);
    }
}

/// What one model step did — mirror of `StepEvent`, minus payloads the
/// abstraction drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MEvent {
    /// An intermediate transition ran.
    Progressed,
    /// A retry slot was spent; `delay_ticks` comes from the real policy.
    BackedOff {
        /// Deterministic backoff delay from the real `RetryPolicy`.
        delay_ticks: u64,
    },
    /// An electrode was quarantined.
    Quarantined,
    /// An electrode finished.
    WeDone,
    /// The session was already done.
    SessionDone,
}

/// One executed step, for conformance comparison against the real
/// machine's `(SessionStep, StepEvent)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MStepRecord {
    /// Assignment slot that stepped.
    pub slot: u8,
    /// The attempt the step belonged to (pre-transition).
    pub attempt: u32,
    /// The phase that executed (pre-transition).
    pub kind: MPhase,
    /// What happened.
    pub event: MEvent,
}

/// Why a step could not run without help.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeedVerdict {
    /// Slot whose `Sample` is blocked on an oracle draw.
    pub slot: u8,
    /// The attempt the draw is for.
    pub attempt: u32,
}

/// Mirror of `SessionMachine` progress: the serializable state the
/// checkpoint-closure invariant quantifies over.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MSessionState {
    /// One machine per assignment slot.
    pub machines: Vec<MWe>,
    /// Round-robin cursor.
    pub cursor: usize,
    /// Steps executed so far (drives the server model's abort-after).
    pub steps_taken: u64,
}

impl CanonEncode for MSessionState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.machines.encode(out);
        self.cursor.encode(out);
        self.steps_taken.encode(out);
    }
}

impl MSessionState {
    /// A fresh session over `electrodes` slots.
    pub fn new(electrodes: u8) -> Self {
        Self {
            machines: (0..electrodes).map(|_| MWe::new()).collect(),
            cursor: 0,
            steps_taken: 0,
        }
    }

    /// True once every electrode machine is `Done`.
    pub fn is_done(&self) -> bool {
        self.machines.iter().all(MWe::is_done)
    }

    /// The slot the round-robin scheduler steps next.
    pub fn next_slot(&self) -> Option<usize> {
        let n = self.machines.len();
        (0..n)
            .map(|k| (self.cursor + k) % n)
            .find(|&slot| !self.machines[slot].is_done())
    }

    /// When the next transition is a `Sample`, the oracle draw it needs.
    pub fn next_needs_verdict(&self) -> Option<NeedVerdict> {
        let slot = self.next_slot()?;
        let m = &self.machines[slot];
        if m.phase == MPhase::Sample {
            Some(NeedVerdict {
                slot: slot as u8,
                attempt: m.attempt,
            })
        } else {
            None
        }
    }

    /// Executes exactly one step (round-robin), mirroring
    /// `SessionMachine::step`. A `Sample` transition consumes `verdict`;
    /// every other transition requires `verdict` to be `None`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidChoice`] when the verdict supply does not
    /// match the transition (the replay-integrity contract).
    pub fn step(
        &mut self,
        cfg: &SessionModelConfig,
        verdict: Option<MVerdict>,
    ) -> Result<MStepRecord, ModelError> {
        let Some(slot) = self.next_slot() else {
            return Ok(MStepRecord {
                slot: 0,
                attempt: 0,
                kind: MPhase::Done,
                event: MEvent::SessionDone,
            });
        };
        let record_kind = self.machines[slot].phase;
        let record_attempt = self.machines[slot].attempt;
        let event = advance_we(&mut self.machines[slot], cfg, verdict)?;
        self.steps_taken += 1;
        self.cursor = (slot + 1) % self.machines.len();
        Ok(MStepRecord {
            slot: slot as u8,
            attempt: record_attempt,
            kind: record_kind,
            event,
        })
    }
}

/// Mirror of `WeMachine::advance`, transition for transition.
fn advance_we(
    m: &mut MWe,
    cfg: &SessionModelConfig,
    verdict: Option<MVerdict>,
) -> Result<MEvent, ModelError> {
    if m.phase != MPhase::Sample && verdict.is_some() {
        return Err(ModelError::invalid_choice(
            "verdict supplied to a non-Sample transition",
        ));
    }
    match m.phase {
        MPhase::ApplyPotential => {
            // The BIST verdict the real machine computes here is folded
            // into the merged verdict the oracle draws at Sample.
            m.phase = MPhase::Settle;
            Ok(MEvent::Progressed)
        }
        MPhase::Settle => {
            m.phase = MPhase::Sample;
            Ok(MEvent::Progressed)
        }
        MPhase::Sample => {
            let v = verdict.ok_or_else(|| {
                ModelError::invalid_choice("Sample transition without a verdict draw")
            })?;
            m.pending = Some(v);
            m.phase = MPhase::Qc;
            Ok(MEvent::Progressed)
        }
        MPhase::Qc => {
            // Exhaustion mirrors the real machine bit for bit:
            // `attempt >= max_retries`.
            let exhausted = m.attempt as usize >= cfg.retry.max_retries;
            let pending = m
                .pending
                .take()
                .ok_or_else(|| ModelError::internal("Qc step without a parked verdict"))?;
            match pending {
                MVerdict::Pass => Ok(finalize_we(m, cfg, false)),
                MVerdict::Fail | MVerdict::Err => {
                    if exhausted {
                        Ok(finalize_we(m, cfg, true))
                    } else {
                        m.phase = MPhase::Backoff;
                        Ok(MEvent::Progressed)
                    }
                }
            }
        }
        MPhase::Backoff => {
            let delay_ticks = cfg.retry.backoff_ticks(m.attempt as usize);
            m.retry_slots += 1;
            if cfg.mutation != Mutation::SkipAttemptIncrement {
                m.attempt += 1;
            }
            m.phase = MPhase::Sample;
            Ok(MEvent::BackedOff { delay_ticks })
        }
        MPhase::Quarantine => {
            m.phase = MPhase::Done;
            Ok(MEvent::Quarantined)
        }
        MPhase::Done => Ok(MEvent::WeDone),
    }
}

/// Mirror of `WeMachine::finalize`.
fn finalize_we(m: &mut MWe, cfg: &SessionModelConfig, failed: bool) -> MEvent {
    let attempts = m.attempt + 1;
    let quarantine_now = failed && attempts as usize >= cfg.retry.quarantine_after;
    m.outcome = Some(MWeOutcome {
        failed,
        quarantined: quarantine_now,
        attempts,
        retry_slots: m.retry_slots,
    });
    if quarantine_now {
        m.phase = MPhase::Quarantine;
        MEvent::Progressed
    } else {
        m.phase = MPhase::Done;
        MEvent::WeDone
    }
}

/// Per-machine safety invariants, shared with the server model (which
/// embeds these machines inside its in-flight lanes).
pub(crate) fn check_machine(m: &MWe, cfg: &SessionModelConfig) -> Result<(), String> {
    if m.retry_slots != m.attempt {
        return Err(format!(
            "budget invariant broken: retry_slots={} != attempt={} \
             (a retry slot was spent without advancing the attempt budget)",
            m.retry_slots, m.attempt
        ));
    }
    if m.attempt as usize > cfg.retry.max_retries {
        return Err(format!(
            "attempt budget exceeded: attempt={} > max_retries={}",
            m.attempt, cfg.retry.max_retries
        ));
    }
    let parked = m.pending.is_some();
    let in_qc = m.phase == MPhase::Qc;
    if parked != in_qc {
        return Err(format!(
            "parked verdict out of phase: pending={parked} in phase {:?}",
            m.phase
        ));
    }
    let sealed = m.outcome.is_some();
    let terminal_ish = matches!(m.phase, MPhase::Quarantine | MPhase::Done);
    if sealed != terminal_ish {
        return Err(format!(
            "sealed outcome out of phase: outcome={sealed} in phase {:?} \
             (a Done machine without an outcome is a silent loss)",
            m.phase
        ));
    }
    if let Some(o) = &m.outcome {
        if o.attempts != m.attempt + 1 {
            return Err(format!(
                "outcome attempts {} != attempt+1 {}",
                o.attempts,
                m.attempt + 1
            ));
        }
        if o.attempts as usize > cfg.retry.attempt_budget() {
            return Err(format!(
                "outcome spent {} attempts, budget is {}",
                o.attempts,
                cfg.retry.attempt_budget()
            ));
        }
        if o.quarantined && !o.failed {
            return Err("quarantined electrode reported as not failed".to_string());
        }
    }
    Ok(())
}

/// Runs a session state to completion, resolving every remaining oracle
/// draw with the config's deterministic default — the "closure" of a
/// checkpoint. Pure: equal states close to equal terminals.
pub fn close_session(
    cfg: &SessionModelConfig,
    state: &MSessionState,
) -> Result<MSessionState, String> {
    let mut s = state.clone();
    // Generous termination guard: a faithful config finishes a session in
    // O(electrodes * attempts * phases) steps; a corrupted transition
    // relation (e.g. a never-exhausting retry budget) trips this instead
    // of hanging the checker.
    let budget = 64 * (s.machines.len() as u64 + 1) * (cfg.retry.attempt_budget() as u64 + 1);
    let mut fuel = budget;
    while !s.is_done() {
        if fuel == 0 {
            return Err(format!(
                "backoff-schedule termination broken: session still live after {budget} steps"
            ));
        }
        fuel -= 1;
        let verdict = match s.next_needs_verdict() {
            Some(_) => Some(cfg.default_verdict().map_err(|e| e.to_string())?),
            None => None,
        };
        s.step(cfg, verdict).map_err(|e| e.to_string())?;
    }
    Ok(s)
}

/// The session-level model: BFS over every reachable `MSessionState`
/// for the configured bounded universe.
#[derive(Debug, Clone)]
pub struct SessionModel {
    cfg: SessionModelConfig,
}

impl SessionModel {
    /// Builds the model, validating the config.
    pub fn new(cfg: SessionModelConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// The configuration being explored.
    pub fn config(&self) -> &SessionModelConfig {
        &self.cfg
    }

    /// The checkpoint-closure invariant, generalized from the real
    /// single-path test: serialize the state (the checkpoint), restore
    /// it, close both to completion, and require identical terminals.
    /// Runs on *every* reachable state, so every reachable checkpoint is
    /// proven to re-converge.
    fn check_closure(&self, state: &MSessionState) -> Result<(), String> {
        let direct = close_session(&self.cfg, state)?;
        let json = serde_json::to_string(state)
            .map_err(|e| format!("checkpoint failed to serialize: {e}"))?;
        let restored: MSessionState = serde_json::from_str(&json)
            .map_err(|e| format!("checkpoint failed to restore: {e}"))?;
        let resumed = close_session(&self.cfg, &restored)?;
        if canon_hash(&direct) != canon_hash(&resumed) {
            return Err(
                "checkpoint closure broken: resuming from the serialized checkpoint \
                 diverged from the uninterrupted run"
                    .to_string(),
            );
        }
        Ok(())
    }
}

impl Model for SessionModel {
    type State = MSessionState;

    fn initial(&self) -> Result<MSessionState, ModelError> {
        Ok(MSessionState::new(self.cfg.electrodes))
    }

    fn choices(&self, state: &MSessionState, out: &mut Vec<Choice>) {
        if state.is_done() {
            return;
        }
        match state.next_needs_verdict() {
            Some(need) => {
                for v in &self.cfg.alphabet {
                    out.push(Choice::Verdict {
                        device: 0,
                        we: need.slot,
                        attempt: need.attempt,
                        verdict: *v,
                    });
                }
            }
            None => out.push(Choice::Step),
        }
    }

    fn apply(&self, state: &MSessionState, choice: &Choice) -> Result<MSessionState, ModelError> {
        let mut next = state.clone();
        match choice {
            Choice::Step => {
                if next.next_needs_verdict().is_some() {
                    return Err(ModelError::invalid_choice(
                        "Step applied where a verdict draw was required",
                    ));
                }
                next.step(&self.cfg, None)?;
            }
            Choice::Verdict {
                we,
                attempt,
                verdict,
                ..
            } => {
                let need = next.next_needs_verdict().ok_or_else(|| {
                    ModelError::invalid_choice("verdict applied where no draw was pending")
                })?;
                if need.slot != *we || need.attempt != *attempt {
                    return Err(ModelError::invalid_choice(format!(
                        "verdict for slot {} attempt {} applied to a draw for slot {} attempt {}",
                        we, attempt, need.slot, need.attempt
                    )));
                }
                if !self.cfg.alphabet.contains(verdict) {
                    return Err(ModelError::invalid_choice(
                        "verdict outside the configured alphabet",
                    ));
                }
                next.step(&self.cfg, Some(*verdict))?;
            }
            Choice::Chaos { .. } | Choice::Shard { .. } => {
                return Err(ModelError::invalid_choice(
                    "server-level choice applied to the session model",
                ));
            }
        }
        Ok(next)
    }

    fn is_terminal(&self, state: &MSessionState) -> bool {
        state.is_done()
    }

    fn check(&self, state: &MSessionState) -> Result<(), String> {
        for m in &state.machines {
            check_machine(m, &self.cfg)?;
        }
        self.check_closure(state)
    }

    fn terminal_label(&self, state: &MSessionState) -> Option<&'static str> {
        if !state.is_done() {
            return None;
        }
        let mut quarantined = false;
        let mut degraded = false;
        for m in &state.machines {
            if let Some(o) = &m.outcome {
                quarantined |= o.quarantined;
                degraded |= o.failed || o.retry_slots > 0;
            }
        }
        Some(if quarantined {
            "quarantined"
        } else if degraded {
            "degraded"
        } else {
            "completed"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreLimits};
    use bios_platform::RetryPolicy;

    fn cfg() -> SessionModelConfig {
        SessionModelConfig::new(2, RetryPolicy::default())
    }

    #[test]
    fn clean_session_steps_mirror_the_real_phase_order() {
        let cfg = cfg().with_alphabet(vec![MVerdict::Pass]);
        let mut s = MSessionState::new(1);
        let mut kinds = Vec::new();
        while !s.is_done() {
            let v = s.next_needs_verdict().map(|_| MVerdict::Pass);
            let rec = s.step(&cfg, v).expect("step");
            kinds.push(rec.kind);
        }
        assert_eq!(
            kinds,
            vec![
                MPhase::ApplyPotential,
                MPhase::Settle,
                MPhase::Sample,
                MPhase::Qc
            ]
        );
        assert_eq!(s.steps_taken, 4);
    }

    #[test]
    fn chronic_failure_walks_backoff_and_quarantine() {
        let cfg = cfg();
        let mut s = MSessionState::new(1);
        let mut backoffs = Vec::new();
        let mut quarantines = 0usize;
        while !s.is_done() {
            let v = s.next_needs_verdict().map(|_| MVerdict::Fail);
            let rec = s.step(&cfg, v).expect("step");
            match rec.event {
                MEvent::BackedOff { delay_ticks } => backoffs.push((rec.attempt, delay_ticks)),
                MEvent::Quarantined => quarantines += 1,
                _ => {}
            }
        }
        // The real default policy: 2 retries, exponential delays 1, 2 —
        // identical to the real machine's backoff_events test.
        assert_eq!(backoffs, vec![(0, 1), (1, 2)]);
        assert_eq!(quarantines, 1);
        let o = s.machines[0].outcome.expect("sealed");
        assert!(o.failed && o.quarantined);
        assert_eq!(o.attempts, 3);
    }

    #[test]
    fn exhaustive_exploration_is_clean_and_deterministic() {
        let model = SessionModel::new(cfg()).expect("valid");
        let a = explore(&model, &ExploreLimits::default());
        let b = explore(&model, &ExploreLimits::default());
        assert!(a.violation.is_none(), "{:?}", a.violation);
        assert!(!a.truncated);
        assert!(a.stats.states > 100, "nontrivial space: {}", a.stats.states);
        assert!(a.stats.dedup_hits > 0, "Fail/Err must merge after Backoff");
        assert_eq!(a.stats, b.stats, "rerun-identical");
    }

    #[test]
    fn mutation_is_caught_with_a_short_trace() {
        let model =
            SessionModel::new(cfg().with_mutation(Mutation::SkipAttemptIncrement)).expect("valid");
        let out = explore(&model, &ExploreLimits::default());
        let cx = out.violation.expect("mutation must be caught");
        assert!(cx.violation.contains("retry_slots"), "{}", cx.violation);
        assert!(!cx.trace.is_empty());
    }
}
