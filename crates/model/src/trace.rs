//! Counterexample trace artifacts: the serialized
//! configuration-plus-schedule a violation is shipped as, and the
//! deterministic replay that turns the artifact back into the exact
//! violating run.
//!
//! An artifact is self-contained: it embeds the full model
//! configuration, so replaying needs nothing but the JSON file — no
//! flags to reconstruct, no environment to match. Replay rebuilds the
//! model from the embedded config, applies the choice trace from the
//! initial state, and re-checks every invariant along the way; the
//! replayed run must terminate at the recorded state hash with the
//! recorded violation, which `repro_model` asserts in its self-test.

use crate::config::{ServerModelConfig, SessionModelConfig};
use crate::error::ModelError;
use crate::explore::{replay, Counterexample, ReplayOutcome};
use crate::server::ServerModel;
use crate::session::SessionModel;

/// A violation packaged with everything needed to replay it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TraceArtifact {
    /// A session-level counterexample.
    Session {
        /// The bounded universe the violation was found in.
        config: SessionModelConfig,
        /// The minimal trace and violation text.
        counterexample: Counterexample,
    },
    /// A server-level counterexample.
    Server {
        /// The bounded universe the violation was found in.
        config: ServerModelConfig,
        /// The minimal trace and violation text.
        counterexample: Counterexample,
    },
}

impl TraceArtifact {
    /// The embedded counterexample.
    pub fn counterexample(&self) -> &Counterexample {
        match self {
            TraceArtifact::Session { counterexample, .. }
            | TraceArtifact::Server { counterexample, .. } => counterexample,
        }
    }

    /// A one-line human summary.
    pub fn describe(&self) -> String {
        let (level, cx) = match self {
            TraceArtifact::Session { counterexample, .. } => ("session", counterexample),
            TraceArtifact::Server { counterexample, .. } => ("server", counterexample),
        };
        format!(
            "{level}-level violation at depth {} ({} choices): {}",
            cx.depth,
            cx.trace.len(),
            cx.violation
        )
    }

    /// Serializes the artifact to pretty JSON.
    ///
    /// # Errors
    ///
    /// [`ModelError::Artifact`] when serialization fails.
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string(self)
            .map_err(|e| ModelError::artifact(format!("artifact failed to serialize: {e}")))
    }

    /// Restores an artifact from JSON.
    ///
    /// # Errors
    ///
    /// [`ModelError::Artifact`] when the JSON is not a valid artifact.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        serde_json::from_str(json)
            .map_err(|e| ModelError::artifact(format!("artifact failed to parse: {e}")))
    }

    /// Replays the embedded trace against a model rebuilt from the
    /// embedded config, re-checking invariants at every prefix.
    ///
    /// # Errors
    ///
    /// [`ModelError`] when the embedded config is invalid or the trace
    /// does not fit it (a corrupted or mismatched artifact).
    pub fn replay(&self) -> Result<ReplayOutcome, ModelError> {
        match self {
            TraceArtifact::Session {
                config,
                counterexample,
            } => {
                let model = SessionModel::new(config.clone())?;
                replay(&model, &counterexample.trace)
            }
            TraceArtifact::Server {
                config,
                counterexample,
            } => {
                let model = ServerModel::new(config.clone())?;
                replay(&model, &counterexample.trace)
            }
        }
    }

    /// Replays and verifies the artifact against its own record: the
    /// replay must land on the recorded state hash and re-observe the
    /// recorded violation.
    ///
    /// # Errors
    ///
    /// [`ModelError::Artifact`] when the replay diverges from the
    /// record — the artifact does not reproduce its own violation.
    pub fn verify(&self) -> Result<ReplayOutcome, ModelError> {
        let cx = self.counterexample();
        let outcome = self.replay()?;
        match &outcome.violation {
            None => Err(ModelError::artifact(
                "replay reached the end of the trace without re-observing the violation",
            )),
            Some(v) if *v != cx.violation => Err(ModelError::artifact(format!(
                "replay observed a different violation: recorded `{}`, replayed `{v}`",
                cx.violation
            ))),
            Some(_) => {
                if outcome.final_hash != cx.state_hash {
                    return Err(ModelError::artifact(format!(
                        "replay landed on state {} instead of the recorded {}",
                        outcome.final_hash, cx.state_hash
                    )));
                }
                Ok(outcome)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mutation;
    use crate::explore::{explore, ExploreLimits};
    use bios_platform::RetryPolicy;

    #[test]
    fn session_artifact_roundtrips_and_verifies() {
        let cfg = SessionModelConfig::new(1, RetryPolicy::default())
            .with_mutation(Mutation::SkipAttemptIncrement);
        let model = SessionModel::new(cfg.clone()).expect("valid");
        let report = explore(&model, &ExploreLimits::default());
        let cx = report.violation.expect("mutation caught");
        let artifact = TraceArtifact::Session {
            config: cfg,
            counterexample: cx,
        };
        let json = artifact.to_json().expect("serialize");
        let restored = TraceArtifact::from_json(&json).expect("parse");
        assert_eq!(restored, artifact);
        let outcome = restored.verify().expect("replay reproduces the violation");
        assert!(outcome.violation.is_some());
    }

    #[test]
    fn tampered_artifact_is_rejected() {
        let cfg = SessionModelConfig::new(1, RetryPolicy::default())
            .with_mutation(Mutation::SkipAttemptIncrement);
        let model = SessionModel::new(cfg.clone()).expect("valid");
        let report = explore(&model, &ExploreLimits::default());
        let mut cx = report.violation.expect("mutation caught");
        // Cut the last choice: the trace no longer reaches the violation.
        cx.trace.pop();
        let artifact = TraceArtifact::Session {
            config: cfg,
            counterexample: cx,
        };
        assert!(artifact.verify().is_err());
    }
}
