//! `bios-model` — bounded exhaustive model checking for the
//! session/server protocol.
//!
//! The platform's correctness story so far rests on example-based tests
//! and property tests: both sample the behavior space. This crate closes
//! the gap for the *protocol* layer — the resumable
//! [`SessionMachine`](bios_platform::SessionMachine) and the sharded
//! `DiagnosticsServer` scheduler — by exploring **every** reachable
//! state of a faithful, bounded mirror of each and checking invariants
//! at each one:
//!
//! * **Session level** ([`SessionModel`]) — every interleaving of QC
//!   verdicts and acquisition errors across every electrode and retry
//!   attempt. Invariants: no stuck non-terminal state, the retry budget
//!   moves in lock-step with spent retry slots, the backoff schedule
//!   terminates, outcomes are sealed exactly at terminal phases, and —
//!   generalizing the single-path checkpoint test in `bios-platform` —
//!   **every** reachable checkpoint re-converges after serialize/resume
//!   (checkpoint closure).
//! * **Server level** ([`ServerModel`]) — every shard interleaving,
//!   chaos draw and QC verdict for a bounded request batch. Invariants:
//!   conservation (admitted = served + shed + in-flight, every shed unit
//!   reported), stats/outcome agreement, queue and concurrency bounds,
//!   deadline and quarantine enforcement, quiescence, and the
//!   **single-digest theorem**: all interleavings under one resolved
//!   nondeterminism reach one terminal state. Pruned mode explores one
//!   canonical interleaving per round (DPOR-style), with the
//!   independence justification *verified* by commutation probes at
//!   every branch point rather than assumed.
//!
//! The abstraction boundary is deliberately thin: backoff arithmetic
//! comes from the real [`RetryPolicy`](bios_platform::RetryPolicy), shed
//! ordering from the real [`ServiceTier`](bios_server::ServiceTier)
//! `Ord`, and the conformance tests in `tests/conformance.rs` replay
//! model traces against the real machines, transition for transition.
//!
//! Violations are not panics: the explorer returns a
//! [`Counterexample`] — a minimal (BFS-shortest) choice trace — which
//! [`TraceArtifact`] packages with the full config as a self-contained
//! JSON artifact. `repro_model` (in `bios-bench`) replays artifacts
//! deterministically and seeds deliberate mutations to prove the checker
//! catches them.
//!
//! # Example
//!
//! ```
//! use bios_model::{explore, ExploreLimits, SessionModel, SessionModelConfig};
//! use bios_platform::RetryPolicy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SessionModelConfig::new(2, RetryPolicy::default());
//! let model = SessionModel::new(config)?;
//! let report = explore(&model, &ExploreLimits::default());
//! assert!(report.violation.is_none(), "protocol invariant broken");
//! assert!(!report.truncated, "space fully explored");
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

mod canon;
mod config;
mod dot;
mod error;
mod explore;
mod server;
mod session;
mod trace;

pub use canon::{canon_bytes, canon_hash, fnv128, CanonEncode};
pub use config::{Interleave, MRequest, MVerdict, Mutation, ServerModelConfig, SessionModelConfig};
pub use dot::render_dot;
pub use error::ModelError;
pub use explore::{
    explore, replay, Choice, Counterexample, ExploreLimits, ExploreReport, ExploreStats, GraphEdge,
    GraphNode, Model, ReplayOutcome, StateGraph,
};
pub use server::{
    MActive, MCompleted, MOutcomeLabel, MPending, MShard, MStats, OracleKey, OracleVal, SPhase,
    ServerModel, ServerState,
};
pub use session::{
    close_session, MEvent, MPhase, MSessionState, MStepRecord, MWe, MWeOutcome, NeedVerdict,
    SessionModel,
};
pub use trace::TraceArtifact;
