//! The model checker's typed error: configuration mistakes and replay
//! traces that do not fit the model they claim to drive. Invariant
//! *violations* are not errors — they are the checker's product, carried
//! as [`Counterexample`](crate::Counterexample)s.

/// Why a model operation could not run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The configuration is not a well-formed bounded universe.
    Config(String),
    /// A replayed choice does not match the state it was applied to —
    /// the trace belongs to a different config or was corrupted.
    InvalidChoice(String),
    /// The model reached a state its own transition relation cannot
    /// explain (an internal bug in the model, not in the protocol).
    Internal(String),
    /// A trace artifact failed to serialize or deserialize.
    Artifact(String),
}

impl ModelError {
    pub(crate) fn config(msg: impl Into<String>) -> Self {
        ModelError::Config(msg.into())
    }

    pub(crate) fn invalid_choice(msg: impl Into<String>) -> Self {
        ModelError::InvalidChoice(msg.into())
    }

    pub(crate) fn internal(msg: impl Into<String>) -> Self {
        ModelError::Internal(msg.into())
    }

    pub(crate) fn artifact(msg: impl Into<String>) -> Self {
        ModelError::Artifact(msg.into())
    }
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::Config(m) => write!(f, "model config error: {m}"),
            ModelError::InvalidChoice(m) => write!(f, "invalid choice in trace: {m}"),
            ModelError::Internal(m) => write!(f, "model internal error: {m}"),
            ModelError::Artifact(m) => write!(f, "trace artifact error: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}
