//! Server-level model: exhaustive interleaving exploration of the
//! sharded `DiagnosticsServer` scheduler.
//!
//! The mirror keeps the real shard tick structure — shed, admit, step
//! with per-lane budgets, harvest in admission order, per-device health
//! strikes — and replaces the two physical inputs with oracle draws:
//! QC verdicts (per acquisition attempt) and chaos stalls/aborts (per
//! admitted device). The *oracle* — the map of resolved draws — lives in
//! the state, so a terminal state's identity includes exactly which
//! nondeterminism produced it; that is what makes the single-digest
//! theorem expressible: all interleavings under one oracle must reach
//! one terminal state.
//!
//! Shard ticks are made atomic through *park-and-rerun*: a tick runs
//! over a clone of the shard, and the moment it needs an oracle entry
//! that does not exist yet it discards the clone and parks on the
//! missing key. The explorer then branches on that key's menu, extends
//! the oracle, and reruns the tick — which, being deterministic, repeats
//! itself exactly up to the park point. No half-ticked shard is ever a
//! state, so interleaving granularity is whole shard ticks, matching the
//! real server's `par_map_mut` fan-out.

use crate::canon::{canon_hash, CanonEncode};
use crate::config::{Interleave, MVerdict, Mutation, ServerModelConfig};
use crate::error::ModelError;
use crate::explore::{Choice, Model};
use crate::session::{check_machine, MSessionState};
use bios_server::ServiceTier;
use std::collections::{BTreeMap, BTreeSet};

/// Stable rank for canonical encoding of the real [`ServiceTier`].
fn tier_rank(tier: ServiceTier) -> u8 {
    match tier {
        ServiceTier::BestEffort => 0,
        ServiceTier::Routine => 1,
        ServiceTier::Stat => 2,
    }
}

/// One undrawn unit of nondeterminism the oracle can be asked for.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum OracleKey {
    /// The QC verdict of one acquisition attempt.
    Verdict {
        /// Requesting device.
        device: u64,
        /// Electrode slot within the session.
        we: u8,
        /// 0-based attempt.
        attempt: u32,
    },
    /// One device's admission-time chaos draw.
    Chaos {
        /// The admitted device.
        device: u64,
    },
}

impl CanonEncode for OracleKey {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OracleKey::Verdict {
                device,
                we,
                attempt,
            } => {
                0u8.encode(out);
                device.encode(out);
                we.encode(out);
                attempt.encode(out);
            }
            OracleKey::Chaos { device } => {
                1u8.encode(out);
                device.encode(out);
            }
        }
    }
}

/// A resolved oracle entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVal {
    /// A drawn QC verdict.
    Verdict(MVerdict),
    /// A drawn chaos assignment.
    Chaos {
        /// Stall ticks before the session first wakes.
        stall: u64,
        /// Abort after this many session steps, if set.
        abort: Option<u64>,
    },
}

impl CanonEncode for OracleVal {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OracleVal::Verdict(v) => {
                0u8.encode(out);
                v.encode(out);
            }
            OracleVal::Chaos { stall, abort } => {
                1u8.encode(out);
                stall.encode(out);
                abort.encode(out);
            }
        }
    }
}

/// A queued, not-yet-admitted request (mirror of `Pending`).
#[derive(Debug, Clone, PartialEq)]
pub struct MPending {
    /// Requesting device.
    pub device: u64,
    /// Real service tier (its real `Ord` drives the shed scan).
    pub tier: ServiceTier,
}

impl CanonEncode for MPending {
    fn encode(&self, out: &mut Vec<u8>) {
        self.device.encode(out);
        tier_rank(self.tier).encode(out);
    }
}

/// One in-flight session (mirror of `Active`).
#[derive(Debug, Clone, PartialEq)]
pub struct MActive {
    /// Requesting device.
    pub device: u64,
    /// Real service tier.
    pub tier: ServiceTier,
    /// The embedded session mirror.
    pub session: MSessionState,
    /// Tick the session was admitted.
    pub admitted: u64,
    /// Not stepped before this tick (chaos stall or backoff).
    pub wake: u64,
    /// Chaos: tear down once `session.steps_taken` reaches this.
    pub abort_after: Option<u64>,
}

impl CanonEncode for MActive {
    fn encode(&self, out: &mut Vec<u8>) {
        self.device.encode(out);
        tier_rank(self.tier).encode(out);
        self.session.encode(out);
        self.admitted.encode(out);
        self.wake.encode(out);
        self.abort_after.encode(out);
    }
}

/// How one admitted unit left the model server (mirror of the
/// `SessionOutcome` label space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MOutcomeLabel {
    /// Ran to completion (possibly degraded).
    Completed,
    /// Cut by the deadline.
    DeadlineMiss,
    /// Torn down by a chaos abort.
    Aborted,
    /// Shed from the queue under overload; never ran.
    Shed,
}

impl MOutcomeLabel {
    fn tag(self) -> u8 {
        match self {
            MOutcomeLabel::Completed => 0,
            MOutcomeLabel::DeadlineMiss => 1,
            MOutcomeLabel::Aborted => 2,
            MOutcomeLabel::Shed => 3,
        }
    }
}

impl CanonEncode for MOutcomeLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tag().encode(out);
    }
}

/// One served unit (mirror of `CompletedSession`, payloads abstracted
/// to the bits health accounting and conservation read).
#[derive(Debug, Clone, PartialEq)]
pub struct MCompleted {
    /// Requesting device.
    pub device: u64,
    /// Real service tier.
    pub tier: ServiceTier,
    /// Terminal label.
    pub label: MOutcomeLabel,
    /// The health-accounting bit: counts as a failure strike.
    pub failed: bool,
}

impl CanonEncode for MCompleted {
    fn encode(&self, out: &mut Vec<u8>) {
        self.device.encode(out);
        tier_rank(self.tier).encode(out);
        self.label.encode(out);
        self.failed.encode(out);
    }
}

/// One shard (mirror of `Shard`, minus latency plumbing).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MShard {
    /// Admission queue, front first.
    pub queue: Vec<MPending>,
    /// In-flight sessions, admission order.
    pub active: Vec<MActive>,
    /// Consecutive-failure strikes per device.
    pub strikes: BTreeMap<u64, u32>,
    /// Fleet-quarantined devices.
    pub quarantined: BTreeSet<u64>,
    /// Served units, completion order.
    pub completed: Vec<MCompleted>,
}

impl CanonEncode for MShard {
    fn encode(&self, out: &mut Vec<u8>) {
        self.queue.encode(out);
        self.active.encode(out);
        self.strikes.encode(out);
        self.quarantined.encode(out);
        self.completed.encode(out);
    }
}

/// Cumulative counters (mirror of the relevant `ServerStats` slice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MStats {
    /// Units harvested to a terminal outcome (not counting sheds).
    pub served: u64,
    /// Units shed under overload.
    pub shed: u64,
    /// Deadline cuts among the served.
    pub deadline_misses: u64,
    /// Chaos aborts among the served.
    pub aborted: u64,
    /// Session steps executed.
    pub steps: u64,
}

impl CanonEncode for MStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.served.encode(out);
        self.shed.encode(out);
        self.deadline_misses.encode(out);
        self.aborted.encode(out);
        self.steps.encode(out);
    }
}

/// Where the scheduler is between choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SPhase {
    /// Mid-round: unticked shards are enabled.
    Running,
    /// A shard's tick parked on a missing oracle entry; the only enabled
    /// choices extend the oracle at `key`.
    NeedChoice {
        /// The parked shard.
        shard: u8,
        /// The missing entry.
        key: OracleKey,
    },
    /// The server is idle: every queue and active set drained.
    Done,
}

impl CanonEncode for SPhase {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SPhase::Running => 0u8.encode(out),
            SPhase::NeedChoice { shard, key } => {
                1u8.encode(out);
                shard.encode(out);
                key.encode(out);
            }
            SPhase::Done => 2u8.encode(out),
        }
    }
}

/// The whole server-model state: shards, clock, resolved nondeterminism
/// and scheduler phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerState {
    /// The shard fleet.
    pub shards: Vec<MShard>,
    /// Virtual tick.
    pub now: u64,
    /// Shards already ticked this round.
    pub ticked: BTreeSet<u8>,
    /// Every draw resolved so far.
    pub oracle: BTreeMap<OracleKey, OracleVal>,
    /// Cumulative counters.
    pub stats: MStats,
    /// Scheduler phase.
    pub phase: SPhase,
}

impl CanonEncode for ServerState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shards.encode(out);
        self.now.encode(out);
        self.ticked.encode(out);
        self.oracle.encode(out);
        self.stats.encode(out);
        self.phase.encode(out);
    }
}

impl ServerState {
    /// True once every queue and active set is empty.
    pub fn idle(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.queue.is_empty() && s.active.is_empty())
    }
}

/// What one shard-tick attempt produced.
enum TickOutcome {
    /// The tick needs an oracle entry that does not exist; the shard was
    /// left untouched.
    Parked(OracleKey),
    /// The tick ran to completion over a clone.
    Ran {
        shard: MShard,
        served: u64,
        shed: u64,
        deadline_misses: u64,
        aborted: u64,
        steps: u64,
    },
}

/// The server-level model.
#[derive(Debug, Clone)]
pub struct ServerModel {
    cfg: ServerModelConfig,
    /// Requests each shard starts with (conservation baseline).
    initial_load: Vec<u64>,
    /// Upper bound on `now` before quiescence must have happened.
    quiesce_bound: u64,
}

impl ServerModel {
    /// Builds the model, validating the config.
    pub fn new(cfg: ServerModelConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        let shards = cfg.shards as u64;
        let mut initial_load = vec![0u64; cfg.shards as usize];
        for r in &cfg.requests {
            initial_load[(r.device % shards) as usize] += 1;
        }
        let max_stall = cfg.stall_choices.iter().copied().max().unwrap_or(0);
        let quiesce_bound =
            (cfg.requests.len() as u64 + 1) * (cfg.deadline_ticks + max_stall + 2) + 8;
        Ok(Self {
            cfg,
            initial_load,
            quiesce_bound,
        })
    }

    /// The configuration being explored.
    pub fn config(&self) -> &ServerModelConfig {
        &self.cfg
    }

    /// Shards enabled at a `Running` state, lowest first.
    fn enabled(&self, state: &ServerState) -> Vec<u8> {
        (0..self.cfg.shards)
            .filter(|s| !state.ticked.contains(s))
            .collect()
    }

    /// Runs one whole shard tick over a clone (pure in `state`); parks
    /// instead of guessing whenever a draw is unresolved.
    fn run_shard_tick(
        &self,
        state: &ServerState,
        shard_idx: u8,
    ) -> Result<TickOutcome, ModelError> {
        let shard_ref = state
            .shards
            .get(shard_idx as usize)
            .ok_or_else(|| ModelError::internal("shard index out of range"))?;
        let mut shard = shard_ref.clone();
        let now = state.now;
        let cfg = &self.cfg;
        let mut served = 0u64;
        let mut shed = 0u64;
        let mut deadline_misses = 0u64;
        let mut aborted = 0u64;
        let mut steps = 0u64;

        // Phase 1 — shed: mirror of `shed_excess` (lowest tier first;
        // among equals the freshest, via the `<=` scan keeping the last).
        while shard.queue.len() > cfg.shed_watermark {
            let mut worst_idx = 0usize;
            let mut worst_tier = ServiceTier::Stat;
            for (i, p) in shard.queue.iter().enumerate() {
                if p.tier <= worst_tier {
                    worst_tier = p.tier;
                    worst_idx = i;
                }
            }
            let victim = shard.queue.remove(worst_idx);
            if cfg.session.mutation == Mutation::SilentShed {
                // Seeded corruption: the unit vanishes with no record.
                continue;
            }
            shard.completed.push(MCompleted {
                device: victim.device,
                tier: victim.tier,
                label: MOutcomeLabel::Shed,
                failed: false,
            });
            shed += 1;
        }

        // Phase 2 — admit: mirror of `admit`, drawing chaos from the
        // oracle (parking when the draw is unresolved).
        while shard.active.len() < cfg.max_active_per_shard && !shard.queue.is_empty() {
            let key = OracleKey::Chaos {
                device: shard.queue[0].device,
            };
            let (stall, abort_after) = match state.oracle.get(&key) {
                Some(OracleVal::Chaos { stall, abort }) => (*stall, *abort),
                Some(OracleVal::Verdict(_)) => {
                    return Err(ModelError::internal("verdict stored under a chaos key"));
                }
                None => return Ok(TickOutcome::Parked(key)),
            };
            let pending = shard.queue.remove(0);
            shard.active.push(MActive {
                device: pending.device,
                tier: pending.tier,
                session: MSessionState::new(cfg.session.electrodes),
                admitted: now,
                wake: now + stall,
                abort_after,
            });
        }

        // Phase 3 — step: mirror of `step_active` (per-lane budgets,
        // sleeping lanes burn deadline budget, aborts checked before
        // each step, a backoff parks the lane until its wake tick).
        let lane_count = shard.active.len();
        let mut outcomes: Vec<Option<MOutcomeLabel>> = vec![None; lane_count];
        let mut sleeping = vec![false; lane_count];
        let mut expired = vec![false; lane_count];
        for (idx, lane) in shard.active.iter().enumerate() {
            expired[idx] = now.saturating_sub(lane.admitted) >= cfg.deadline_ticks;
            if lane.wake > now {
                sleeping[idx] = true;
                if expired[idx] {
                    outcomes[idx] = Some(MOutcomeLabel::DeadlineMiss);
                }
            }
        }
        for idx in 0..lane_count {
            if sleeping[idx] {
                continue;
            }
            let mut budget = cfg.steps_per_tick;
            loop {
                if budget == 0 {
                    break;
                }
                let lane = &mut shard.active[idx];
                if lane.session.is_done() {
                    break;
                }
                if let Some(limit) = lane.abort_after {
                    if lane.session.steps_taken >= limit {
                        outcomes[idx] = Some(MOutcomeLabel::Aborted);
                        break;
                    }
                }
                let verdict = match lane.session.next_needs_verdict() {
                    Some(need) => {
                        let key = OracleKey::Verdict {
                            device: lane.device,
                            we: need.slot,
                            attempt: need.attempt,
                        };
                        match state.oracle.get(&key) {
                            Some(OracleVal::Verdict(v)) => Some(*v),
                            Some(OracleVal::Chaos { .. }) => {
                                return Err(ModelError::internal(
                                    "chaos stored under a verdict key",
                                ));
                            }
                            None => return Ok(TickOutcome::Parked(key)),
                        }
                    }
                    None => None,
                };
                let record = lane.session.step(&cfg.session, verdict)?;
                steps += 1;
                budget -= 1;
                if let crate::session::MEvent::BackedOff { delay_ticks } = record.event {
                    lane.wake = now + delay_ticks.max(1);
                    break;
                }
            }
        }

        // Phase 4 — harvest: mirror of the terminal sweep (recorded
        // outcomes first, sleeping lanes skipped, done lanes finish,
        // expired lanes cut), reverse removal, admission-order restore.
        let mut finished: Vec<(usize, MOutcomeLabel)> = Vec::new();
        for idx in 0..lane_count {
            if let Some(label) = outcomes[idx].take() {
                finished.push((idx, label));
                continue;
            }
            if sleeping[idx] {
                continue;
            }
            if shard.active[idx].session.is_done() {
                finished.push((idx, MOutcomeLabel::Completed));
            } else if expired[idx] {
                finished.push((idx, MOutcomeLabel::DeadlineMiss));
            }
        }
        let harvested = finished.len();
        for (idx, label) in finished.into_iter().rev() {
            let lane = shard.active.remove(idx);
            match label {
                MOutcomeLabel::DeadlineMiss => deadline_misses += 1,
                MOutcomeLabel::Aborted => aborted += 1,
                MOutcomeLabel::Completed | MOutcomeLabel::Shed => {}
            }
            let failed = match label {
                MOutcomeLabel::Completed => lane
                    .session
                    .machines
                    .iter()
                    .filter_map(|m| m.outcome.as_ref())
                    .any(|o| o.failed || o.quarantined),
                MOutcomeLabel::DeadlineMiss | MOutcomeLabel::Aborted => true,
                MOutcomeLabel::Shed => false,
            };
            if failed {
                let strikes = shard.strikes.entry(lane.device).or_insert(0);
                *strikes += 1;
                if *strikes >= cfg.quarantine_threshold {
                    shard.quarantined.insert(lane.device);
                }
            } else {
                shard.strikes.remove(&lane.device);
            }
            served += 1;
            shard.completed.push(MCompleted {
                device: lane.device,
                tier: lane.tier,
                label,
                failed,
            });
        }
        let len = shard.completed.len();
        shard.completed[len - harvested..].reverse();

        Ok(TickOutcome::Ran {
            shard,
            served,
            shed,
            deadline_misses,
            aborted,
            steps,
        })
    }

    /// Commits a completed tick into `state`: swaps the shard in, merges
    /// counters, marks the shard ticked, and closes the round when every
    /// shard has ticked (clock advance, idle detection).
    fn commit_tick(&self, state: &mut ServerState, shard_idx: u8, outcome: TickOutcome) {
        if let TickOutcome::Ran {
            shard,
            served,
            shed,
            deadline_misses,
            aborted,
            steps,
        } = outcome
        {
            state.shards[shard_idx as usize] = shard;
            state.stats.served += served;
            state.stats.shed += shed;
            state.stats.deadline_misses += deadline_misses;
            state.stats.aborted += aborted;
            state.stats.steps += steps;
            state.ticked.insert(shard_idx);
            state.phase = SPhase::Running;
            if state.ticked.len() == self.cfg.shards as usize {
                // Round boundary: the only place the clock moves and the
                // only place termination is detected, so every
                // interleaving of a round converges before `Done` can be
                // declared.
                state.now += 1;
                state.ticked.clear();
                if state.idle() {
                    state.phase = SPhase::Done;
                }
            }
        }
    }

    /// Ticks one shard with every park resolved by the config's default
    /// draws (written into a scratch oracle) — the deterministic closure
    /// used by the commutation probe.
    fn tick_with_defaults(&self, state: &mut ServerState, shard_idx: u8) -> Result<(), ModelError> {
        loop {
            match self.run_shard_tick(state, shard_idx)? {
                TickOutcome::Parked(key) => {
                    let val = match key {
                        OracleKey::Verdict { .. } => {
                            OracleVal::Verdict(self.cfg.session.default_verdict()?)
                        }
                        OracleKey::Chaos { .. } => {
                            let (stall, abort) = self.cfg.default_chaos()?;
                            OracleVal::Chaos { stall, abort }
                        }
                    };
                    state.oracle.insert(key, val);
                }
                ran @ TickOutcome::Ran { .. } => {
                    self.commit_tick(state, shard_idx, ran);
                    return Ok(());
                }
            }
        }
    }

    /// The DPOR justification, checked rather than assumed: at a state
    /// where shards `i` and `j` are both enabled, ticking `i` then `j`
    /// must reach exactly the state of ticking `j` then `i` (parks
    /// resolved identically by default draws on both sides).
    fn check_commutation(&self, state: &ServerState, i: u8, j: u8) -> Result<(), String> {
        let probe = |first: u8, second: u8| -> Result<u128, ModelError> {
            let mut s = state.clone();
            self.tick_with_defaults(&mut s, first)?;
            self.tick_with_defaults(&mut s, second)?;
            Ok(canon_hash(&s))
        };
        let ij = probe(i, j).map_err(|e| format!("commutation probe failed: {e}"))?;
        let ji = probe(j, i).map_err(|e| format!("commutation probe failed: {e}"))?;
        if ij != ji {
            return Err(format!(
                "interleaving pruning unsound: shard {i} and shard {j} ticks do not \
                 commute at this state ({ij:032x} vs {ji:032x})"
            ));
        }
        Ok(())
    }
}

impl Model for ServerModel {
    type State = ServerState;

    fn initial(&self) -> Result<ServerState, ModelError> {
        let mut shards: Vec<MShard> = (0..self.cfg.shards).map(|_| MShard::default()).collect();
        let n = self.cfg.shards as u64;
        for r in &self.cfg.requests {
            shards[(r.device % n) as usize].queue.push(MPending {
                device: r.device,
                tier: r.tier,
            });
        }
        Ok(ServerState {
            shards,
            now: 0,
            ticked: BTreeSet::new(),
            oracle: BTreeMap::new(),
            stats: MStats::default(),
            phase: SPhase::Running,
        })
    }

    fn choices(&self, state: &ServerState, out: &mut Vec<Choice>) {
        match &state.phase {
            SPhase::Done => {}
            SPhase::NeedChoice { key, .. } => match key {
                OracleKey::Verdict {
                    device,
                    we,
                    attempt,
                } => {
                    for v in &self.cfg.session.alphabet {
                        out.push(Choice::Verdict {
                            device: *device,
                            we: *we,
                            attempt: *attempt,
                            verdict: *v,
                        });
                    }
                }
                OracleKey::Chaos { device } => {
                    for stall in &self.cfg.stall_choices {
                        for abort in &self.cfg.abort_choices {
                            out.push(Choice::Chaos {
                                device: *device,
                                stall: *stall,
                                abort: *abort,
                            });
                        }
                    }
                }
            },
            SPhase::Running => {
                let enabled = self.enabled(state);
                match self.cfg.interleave {
                    Interleave::Full => {
                        for s in enabled {
                            out.push(Choice::Shard { shard: s });
                        }
                    }
                    Interleave::Pruned => {
                        if let Some(&s) = enabled.first() {
                            out.push(Choice::Shard { shard: s });
                        }
                    }
                }
            }
        }
    }

    fn apply(&self, state: &ServerState, choice: &Choice) -> Result<ServerState, ModelError> {
        let mut next = state.clone();
        match (&state.phase, choice) {
            (SPhase::Running, Choice::Shard { shard }) => {
                if state.ticked.contains(shard) || *shard >= self.cfg.shards {
                    return Err(ModelError::invalid_choice(format!(
                        "shard {shard} is not enabled in this round"
                    )));
                }
                match self.run_shard_tick(&next, *shard)? {
                    TickOutcome::Parked(key) => {
                        next.phase = SPhase::NeedChoice { shard: *shard, key };
                    }
                    ran @ TickOutcome::Ran { .. } => self.commit_tick(&mut next, *shard, ran),
                }
            }
            (SPhase::NeedChoice { shard, key }, _) => {
                let (expect_key, val) = match choice {
                    Choice::Verdict {
                        device,
                        we,
                        attempt,
                        verdict,
                    } => {
                        if !self.cfg.session.alphabet.contains(verdict) {
                            return Err(ModelError::invalid_choice(
                                "verdict outside the configured alphabet",
                            ));
                        }
                        (
                            OracleKey::Verdict {
                                device: *device,
                                we: *we,
                                attempt: *attempt,
                            },
                            OracleVal::Verdict(*verdict),
                        )
                    }
                    Choice::Chaos {
                        device,
                        stall,
                        abort,
                    } => {
                        if !self.cfg.stall_choices.contains(stall)
                            || !self.cfg.abort_choices.contains(abort)
                        {
                            return Err(ModelError::invalid_choice(
                                "chaos draw outside the configured menus",
                            ));
                        }
                        (
                            OracleKey::Chaos { device: *device },
                            OracleVal::Chaos {
                                stall: *stall,
                                abort: *abort,
                            },
                        )
                    }
                    other => {
                        return Err(ModelError::invalid_choice(format!(
                            "parked on an oracle draw; `{other}` cannot resolve it"
                        )));
                    }
                };
                if expect_key != *key {
                    return Err(ModelError::invalid_choice(
                        "choice resolves a different oracle key than the parked one",
                    ));
                }
                if next.oracle.insert(expect_key, val).is_some() {
                    return Err(ModelError::internal("oracle key resolved twice"));
                }
                let shard = *shard;
                next.phase = SPhase::Running;
                match self.run_shard_tick(&next, shard)? {
                    TickOutcome::Parked(key) => {
                        next.phase = SPhase::NeedChoice { shard, key };
                    }
                    ran @ TickOutcome::Ran { .. } => self.commit_tick(&mut next, shard, ran),
                }
            }
            (SPhase::Done, _) | (SPhase::Running, _) => {
                return Err(ModelError::invalid_choice(format!(
                    "choice `{choice}` is not enabled in this phase"
                )));
            }
        }
        Ok(next)
    }

    fn is_terminal(&self, state: &ServerState) -> bool {
        state.phase == SPhase::Done
    }

    fn check(&self, state: &ServerState) -> Result<(), String> {
        // Per-machine safety, shared with the session model.
        for shard in &state.shards {
            for lane in &shard.active {
                for m in &lane.session.machines {
                    check_machine(m, &self.cfg.session)?;
                }
                if state.now.saturating_sub(lane.admitted) > self.cfg.deadline_ticks {
                    return Err(format!(
                        "deadline enforcement broken: device {} has been in flight \
                         {} ticks, deadline is {}",
                        lane.device,
                        state.now - lane.admitted,
                        self.cfg.deadline_ticks
                    ));
                }
            }
            // Structural bounds the real server guarantees.
            if shard.queue.len() > self.cfg.queue_capacity {
                return Err(format!(
                    "queue bound broken: {} queued, capacity {}",
                    shard.queue.len(),
                    self.cfg.queue_capacity
                ));
            }
            if shard.active.len() > self.cfg.max_active_per_shard {
                return Err(format!(
                    "active bound broken: {} in flight, bound {}",
                    shard.active.len(),
                    self.cfg.max_active_per_shard
                ));
            }
            for (device, strikes) in &shard.strikes {
                if *strikes >= self.cfg.quarantine_threshold && !shard.quarantined.contains(device)
                {
                    return Err(format!(
                        "quarantine enforcement broken: device {device} has {strikes} \
                         strikes (threshold {}) but is not quarantined",
                        self.cfg.quarantine_threshold
                    ));
                }
            }
        }
        // Conservation: every admitted unit is queued, in flight, or
        // reported — nothing vanishes, every shed unit is reported.
        for (idx, shard) in state.shards.iter().enumerate() {
            let accounted = shard.queue.len() + shard.active.len() + shard.completed.len();
            if accounted as u64 != self.initial_load[idx] {
                return Err(format!(
                    "conservation broken on shard {idx}: {} units admitted, only \
                     {accounted} accounted for (queued + in-flight + reported)",
                    self.initial_load[idx]
                ));
            }
        }
        // Stats agree with the reported outcomes unit for unit.
        let mut shed = 0u64;
        let mut served = 0u64;
        let mut misses = 0u64;
        let mut aborted = 0u64;
        for shard in &state.shards {
            for c in &shard.completed {
                match c.label {
                    MOutcomeLabel::Shed => shed += 1,
                    MOutcomeLabel::Completed => served += 1,
                    MOutcomeLabel::DeadlineMiss => {
                        served += 1;
                        misses += 1;
                    }
                    MOutcomeLabel::Aborted => {
                        served += 1;
                        aborted += 1;
                    }
                }
            }
        }
        if shed != state.stats.shed
            || served != state.stats.served
            || misses != state.stats.deadline_misses
            || aborted != state.stats.aborted
        {
            return Err(format!(
                "stats drift from reported outcomes: counters say served={} shed={} \
                 misses={} aborted={}, outcomes say served={served} shed={shed} \
                 misses={misses} aborted={aborted}",
                state.stats.served,
                state.stats.shed,
                state.stats.deadline_misses,
                state.stats.aborted
            ));
        }
        // Liveness bound: the scheduler must quiesce within the budget a
        // faithful config implies.
        if state.now > self.quiesce_bound {
            return Err(format!(
                "quiescence broken: tick {} exceeds the bound {} implied by the \
                 deadline and stall menus",
                state.now, self.quiesce_bound
            ));
        }
        if state.phase == SPhase::Done && !state.idle() {
            return Err("phase is Done but work remains queued or in flight".to_string());
        }
        // The pruning justification, verified at every real branch point.
        if self.cfg.interleave == Interleave::Pruned
            && self.cfg.check_commutation
            && state.phase == SPhase::Running
        {
            let enabled = self.enabled(state);
            for a in 0..enabled.len() {
                for b in (a + 1)..enabled.len() {
                    self.check_commutation(state, enabled[a], enabled[b])?;
                }
            }
        }
        Ok(())
    }

    fn terminal_label(&self, state: &ServerState) -> Option<&'static str> {
        if state.phase != SPhase::Done {
            return None;
        }
        let any_quarantined = state.shards.iter().any(|s| !s.quarantined.is_empty());
        if any_quarantined {
            return Some("quarantined-device");
        }
        if state.stats.shed > 0 {
            return Some("shed");
        }
        if state.stats.deadline_misses > 0 || state.stats.aborted > 0 {
            return Some("degraded");
        }
        let any_failed = state
            .shards
            .iter()
            .flat_map(|s| s.completed.iter())
            .any(|c| c.failed);
        Some(if any_failed {
            "failed-session"
        } else {
            "served-clean"
        })
    }

    fn terminal_class(&self, state: &ServerState) -> Option<u128> {
        (state.phase == SPhase::Done).then(|| canon_hash(&state.oracle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MRequest, SessionModelConfig};
    use crate::explore::{explore, ExploreLimits};
    use bios_platform::RetryPolicy;

    fn small_session() -> SessionModelConfig {
        let retry = RetryPolicy {
            max_retries: 1,
            quarantine_after: 2,
            ..RetryPolicy::default()
        };
        SessionModelConfig::new(1, retry)
    }

    fn two_requests() -> Vec<MRequest> {
        vec![
            MRequest {
                device: 0,
                tier: ServiceTier::Stat,
            },
            MRequest {
                device: 1,
                tier: ServiceTier::Routine,
            },
        ]
    }

    #[test]
    fn pruned_exploration_is_clean_and_reproducible() {
        let cfg = ServerModelConfig::new(2, two_requests(), small_session());
        let model = ServerModel::new(cfg).expect("valid");
        let a = explore(&model, &ExploreLimits::default());
        assert!(a.violation.is_none(), "{:?}", a.violation);
        assert!(!a.truncated);
        let b = explore(&model, &ExploreLimits::default());
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.terminal_states >= 1);
        // Every terminal state sits in its own oracle class.
        assert_eq!(a.stats.terminal_states, a.stats.terminal_classes);
    }

    #[test]
    fn full_interleaving_proves_the_single_digest_theorem() {
        let cfg = ServerModelConfig::new(2, two_requests(), small_session())
            .with_interleave(Interleave::Full);
        let model = ServerModel::new(cfg).expect("valid");
        let report = explore(&model, &ExploreLimits::default());
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.truncated);
        assert_eq!(report.stats.terminal_states, report.stats.terminal_classes);
    }

    #[test]
    fn chaos_menus_reach_aborts_and_deadline_misses() {
        let cfg = ServerModelConfig::new(2, two_requests(), small_session())
            .with_stall_choices(vec![0, 3])
            .with_abort_choices(vec![None, Some(2)])
            .with_deadline_ticks(4);
        let model = ServerModel::new(cfg).expect("valid");
        let report = explore(&model, &ExploreLimits::default());
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.stats.terminal_classes > 2);
    }

    #[test]
    fn silent_shed_mutation_breaks_conservation_with_a_trace() {
        let session = small_session().with_mutation(Mutation::SilentShed);
        let requests: Vec<MRequest> = (0..3)
            .map(|d| MRequest {
                device: d * 2, // all route to shard 0
                tier: ServiceTier::BestEffort,
            })
            .collect();
        let cfg = ServerModelConfig::new(2, requests, session).with_shed_watermark(1);
        let model = ServerModel::new(cfg).expect("valid");
        let report = explore(&model, &ExploreLimits::default());
        let cx = report.violation.expect("silent shed must be caught");
        assert!(cx.violation.contains("conservation"), "{}", cx.violation);
        assert!(!cx.trace.is_empty());
    }

    #[test]
    fn overload_sheds_lowest_tier_and_reports_it() {
        let requests = vec![
            MRequest {
                device: 0,
                tier: ServiceTier::Stat,
            },
            MRequest {
                device: 2,
                tier: ServiceTier::BestEffort,
            },
            MRequest {
                device: 4,
                tier: ServiceTier::Routine,
            },
        ];
        let cfg = ServerModelConfig::new(2, requests, small_session())
            .with_shed_watermark(2)
            .with_max_active(1);
        let model = ServerModel::new(cfg).expect("valid");
        let report = explore(&model, &ExploreLimits::default());
        assert!(report.violation.is_none(), "{:?}", report.violation);
        // The shed victim is always the best-effort unit, and it is
        // reported in every terminal state.
        assert!(report.stats.terminal_states >= 1);
    }
}
