//! `bios-server` — diagnostics as a service.
//!
//! The ROADMAP's serving milestone: a sharded, deterministic scheduler
//! that drives fleets of simulated patient devices through the resumable
//! [`SessionMachine`](bios_platform::SessionMachine) state machine, with
//! the production disciplines a clinical backend needs:
//!
//! * **Bounded admission** — every shard owns a fixed-capacity queue;
//!   submission past the bound returns a typed
//!   [`ServerError::Overloaded`], never unbounded growth.
//! * **Per-session deadlines** — a session that overstays its tick budget
//!   is cut via `finish_partial` and served as a
//!   [`SessionOutcome::DeadlineMiss`] with flagged provenance.
//! * **Graceful degradation tiers** — above the shed watermark the queue
//!   drops lowest-[`ServiceTier`] work first, and every shed unit is
//!   reported, never silently discarded.
//! * **Fleet quarantine** — devices whose sessions chronically fail
//!   accumulate strikes; past the threshold the server rejects them with
//!   [`ServerError::Quarantined`] until released.
//! * **Chaos harness** — a [`ChaosPlan`] composes the AFE fault injector
//!   ([`FaultPlan`](bios_afe::FaultPlan)) with server-level faults
//!   (device stalls, mid-session aborts; queue-full storms are driven by
//!   the submitting harness), all hash-derived so runs replay
//!   bit-identically.
//!
//! Scheduling is deterministic by construction: shards advance through
//! [`par_map_mut`](bios_platform::par_map_mut) (contiguous chunks, merged
//! in shard order), every session steps in admission order, and no wall
//! clock enters the control path — time is a virtual tick counter, and
//! telemetry timestamps come from an injected [`Clock`] that defaults to
//! [`NullClock`]. The same submissions and ticks produce the same
//! completed reports under any [`ExecPolicy`](bios_platform::ExecPolicy).
//!
//! # Example
//!
//! ```
//! use bios_biochem::Analyte;
//! use bios_platform::{PanelSpec, PlatformBuilder};
//! use bios_server::{DiagnosticsServer, NullClock, ServerConfig, ServiceTier, SessionRequest};
//! use bios_units::Molar;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = PlatformBuilder::new(PanelSpec::paper_fig4()).build()?;
//! let mut server = DiagnosticsServer::new(&platform, ServerConfig::default());
//! server.submit(SessionRequest {
//!     device: 7,
//!     tier: ServiceTier::Stat,
//!     sample: vec![(Analyte::Glucose, Molar::from_millimolar(3.0))],
//!     seed: 42,
//! })?;
//! let clock = NullClock;
//! while !server.is_idle() {
//!     server.tick(&clock);
//! }
//! let served = server.drain_completed();
//! assert_eq!(served.len(), 1);
//! assert!(served[0].outcome.report().is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod clock;
mod error;
mod server;

pub use chaos::{ChaosPlan, ServerFaultKind};
pub use clock::{Clock, NullClock};
pub use error::ServerError;
pub use server::{
    CompletedSession, DiagnosticsServer, ServerConfig, ServerStats, ServiceTier, SessionOutcome,
    SessionRequest, TickSummary,
};
