//! Injected telemetry clock.
//!
//! The serving control path runs on virtual ticks and must stay
//! bit-reproducible, so the server never reads a wall clock itself (the
//! workspace determinism lint bans `Instant` here). Latency telemetry
//! still needs real timestamps in benchmarks — those inject a wall-clock
//! [`Clock`] from the bench layer, while tests and CI replay use
//! [`NullClock`] and get all-zero latencies with identical scheduling.

/// A monotonic nanosecond source for telemetry. Implementations must be
/// cheap: the scheduler samples it around every session step.
pub trait Clock: Sync {
    /// Nanoseconds from an arbitrary fixed origin, monotone
    /// non-decreasing.
    fn now_nanos(&self) -> u64;
}

/// The deterministic default: time stands still, latencies read zero,
/// and the schedule is a pure function of submissions and ticks.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_nanos(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_frozen() {
        let c = NullClock;
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 0);
    }
}
