//! The sharded serving scheduler.
//!
//! One [`DiagnosticsServer`] owns a fixed set of shards; each shard owns
//! a bounded admission queue and a set of in-flight
//! [`SessionMachine`](bios_platform::SessionMachine)s, stepped
//! round-robin a few steps per virtual tick. Devices hash to shards by
//! index, shards never share mutable state, and a tick advances every
//! shard through [`par_map_mut`] — so the whole fleet schedule is
//! bit-reproducible under any [`ExecPolicy`], which is what lets the
//! chaos harness compare faulted runs against clean references.
//!
//! Within a shard, `Sample`-phase acquisitions from *different* in-flight
//! sessions are coalesced: each tick the shard parks every awake session
//! at its next acquisition ([`SessionMachine::begin_sample`]) and serves
//! the whole batch through one
//! [`run_samples`](Platform::run_samples) dispatch before absorbing the
//! results ([`SessionMachine::complete_sample`]). Acquisitions are pure
//! functions of their requests, so coalescing changes dispatch count —
//! not one bit of any report.
//!
//! The request/response interface is deliberately narrow and batched —
//! [`submit`](DiagnosticsServer::submit) in,
//! [`drain_completed`](DiagnosticsServer::drain_completed) out, plain
//! serializable data both ways — so an in-process caller and a future
//! remote transport stay interchangeable (the simif lesson: keep the
//! hardware/host boundary a thin message queue).

use crate::chaos::ChaosPlan;
use crate::clock::Clock;
use crate::error::ServerError;
use bios_biochem::Analyte;
use bios_platform::{
    par_map_mut, ExecPolicy, Platform, SessionMachine, SessionOptions, SessionReport,
};
use bios_units::Molar;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Clinical priority of a session request. Ordered: under overload the
/// server sheds the *lowest* tier first.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ServiceTier {
    /// Opportunistic work (trend logging, re-checks); first to shed.
    BestEffort,
    /// Scheduled routine diagnostics.
    Routine,
    /// Urgent clinical work; shed only when nothing lower remains.
    Stat,
}

impl ServiceTier {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ServiceTier::BestEffort => "best-effort",
            ServiceTier::Routine => "routine",
            ServiceTier::Stat => "stat",
        }
    }
}

impl core::fmt::Display for ServiceTier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One diagnostics request: a device asks for one full session.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionRequest {
    /// The requesting device (routes to shard `device % shards`).
    pub device: u64,
    /// Clinical priority.
    pub tier: ServiceTier,
    /// True analyte concentrations the simulated device measures.
    pub sample: Vec<(Analyte, Molar)>,
    /// The session seed (bit-reproducibility handle).
    pub seed: u64,
}

/// Server shape and policy knobs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerConfig {
    /// Shard count (≥ 1); devices route by `device % shards`.
    pub shards: usize,
    /// Per-shard admission queue bound. Submissions past it are refused
    /// with [`ServerError::Overloaded`]; the bound is never exceeded.
    pub queue_capacity: usize,
    /// In-flight sessions a shard drives concurrently.
    pub max_active_per_shard: usize,
    /// State-machine steps each in-flight session may take per tick.
    pub steps_per_tick: usize,
    /// Ticks a session may stay in flight before it is cut and served as
    /// a [`SessionOutcome::DeadlineMiss`].
    pub deadline_ticks: u64,
    /// Queue occupancy above which lowest-tier queued work is shed.
    pub shed_watermark: usize,
    /// Consecutive failed sessions after which a device is
    /// fleet-quarantined.
    pub quarantine_threshold: u32,
    /// How shards fan out per tick (the schedule is bit-identical for
    /// every policy).
    pub exec: ExecPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            max_active_per_shard: 64,
            steps_per_tick: 4,
            deadline_ticks: 1000,
            shed_watermark: 768,
            quarantine_threshold: 3,
            exec: ExecPolicy::Auto,
        }
    }
}

impl ServerConfig {
    /// Replaces the shard count (clamped to ≥ 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Replaces the per-shard queue bound (clamped to ≥ 1) and pins the
    /// shed watermark to ¾ of it.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self.shed_watermark = (self.queue_capacity * 3) / 4;
        self
    }

    /// Replaces the shed watermark.
    #[must_use]
    pub fn with_shed_watermark(mut self, watermark: usize) -> Self {
        self.shed_watermark = watermark;
        self
    }

    /// Replaces the in-flight session bound per shard (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_active(mut self, max_active: usize) -> Self {
        self.max_active_per_shard = max_active.max(1);
        self
    }

    /// Replaces the per-session step budget per tick (clamped to ≥ 1).
    #[must_use]
    pub fn with_steps_per_tick(mut self, steps: usize) -> Self {
        self.steps_per_tick = steps.max(1);
        self
    }

    /// Replaces the session deadline in ticks.
    #[must_use]
    pub fn with_deadline_ticks(mut self, ticks: u64) -> Self {
        self.deadline_ticks = ticks;
        self
    }

    /// Replaces the quarantine strike threshold (clamped to ≥ 1).
    #[must_use]
    pub fn with_quarantine_threshold(mut self, threshold: u32) -> Self {
        self.quarantine_threshold = threshold.max(1);
        self
    }

    /// Replaces the execution policy.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }
}

/// How one admitted session left the server.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcome {
    /// The session ran to completion; the report may still carry QC
    /// degradation (retries, quarantined electrodes, failed targets).
    Completed(SessionReport),
    /// The session overstayed its deadline and was cut; the report holds
    /// partial results with `deadline_misses ≥ 1`.
    DeadlineMiss(SessionReport),
    /// A chaos-injected mid-session abort tore the session down; the
    /// report holds flagged partial results.
    Aborted(SessionReport),
    /// The session was shed from the queue under overload and never ran.
    Shed,
    /// A non-recoverable configuration error surfaced while stepping.
    Failed {
        /// The typed platform error, rendered.
        error: String,
    },
}

impl SessionOutcome {
    /// The served report, when one exists (everything but `Shed` and
    /// `Failed`).
    pub fn report(&self) -> Option<&SessionReport> {
        match self {
            SessionOutcome::Completed(r)
            | SessionOutcome::DeadlineMiss(r)
            | SessionOutcome::Aborted(r) => Some(r),
            SessionOutcome::Shed | SessionOutcome::Failed { .. } => None,
        }
    }

    /// True only for a completed session whose report is fully clean —
    /// a shed, cut, aborted or failed session is degradation by
    /// definition.
    pub fn is_clean(&self) -> bool {
        matches!(self, SessionOutcome::Completed(r) if !r.is_degraded())
    }

    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SessionOutcome::Completed(_) => "completed",
            SessionOutcome::DeadlineMiss(_) => "deadline-miss",
            SessionOutcome::Aborted(_) => "aborted",
            SessionOutcome::Shed => "shed",
            SessionOutcome::Failed { .. } => "failed",
        }
    }
}

/// One served session: the response side of the batched interface.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedSession {
    /// The requesting device.
    pub device: u64,
    /// The request's tier.
    pub tier: ServiceTier,
    /// The request's seed.
    pub seed: u64,
    /// How the session left the server.
    pub outcome: SessionOutcome,
}

/// What one [`DiagnosticsServer::tick`] did, fleet-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickSummary {
    /// State-machine steps executed.
    pub steps: u64,
    /// Sessions that reached a terminal outcome this tick.
    pub completed: usize,
    /// Queued sessions shed under overload this tick.
    pub shed: usize,
    /// Sessions cut by their deadline this tick.
    pub deadline_misses: usize,
}

/// Cumulative serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServerStats {
    /// Requests admitted to a queue.
    pub submitted: u64,
    /// Requests refused with [`ServerError::Overloaded`].
    pub rejected_overloaded: u64,
    /// Requests refused with [`ServerError::Quarantined`].
    pub rejected_quarantined: u64,
    /// Sessions served to a terminal outcome (any label).
    pub completed: u64,
    /// Sessions shed from queues under overload.
    pub shed: u64,
    /// Sessions cut by their deadline.
    pub deadline_misses: u64,
    /// Sessions torn down by chaos aborts.
    pub aborted: u64,
    /// Total state-machine steps executed.
    pub steps: u64,
    /// Devices currently fleet-quarantined.
    pub quarantined_devices: u64,
}

/// A queued, not-yet-admitted request.
#[derive(Debug, Clone)]
struct Pending {
    device: u64,
    tier: ServiceTier,
    sample: Vec<(Analyte, Molar)>,
    seed: u64,
    options: SessionOptions,
}

/// One in-flight session.
#[derive(Debug, Clone)]
struct Active {
    device: u64,
    tier: ServiceTier,
    seed: u64,
    machine: SessionMachine,
    admitted_tick: u64,
    /// The session is not stepped before this tick (backoff or stall).
    wake_tick: u64,
    /// Chaos: tear the session down once it has taken this many steps.
    abort_after: Option<u64>,
}

/// What one shard did during one tick.
#[derive(Debug, Default)]
struct ShardTick {
    steps: u64,
    completed: usize,
    shed: usize,
    deadline_misses: usize,
    aborted: usize,
}

/// Per-tick working buffers reused across [`Shard::step_active`] calls so
/// the stepping loop performs no per-tick allocation (lint rule H1): each
/// vector is cleared and refilled in place, growing once to the shard's
/// high-water lane count and staying there.
#[derive(Debug, Default)]
struct StepScratch {
    budgets: Vec<usize>,
    outcomes: Vec<Option<SessionOutcome>>,
    stopped: Vec<bool>,
    sleeping: Vec<bool>,
    expired: Vec<bool>,
    lanes: Vec<usize>,
    requests: Vec<bios_platform::SampleRequest>,
    finished: Vec<(usize, SessionOutcome)>,
}

/// One independent slice of the fleet: queue + in-flight sessions +
/// per-device health, never shared with other shards.
#[derive(Debug)]
struct Shard {
    queue: VecDeque<Pending>,
    active: Vec<Active>,
    strikes: BTreeMap<u64, u32>,
    quarantined: BTreeSet<u64>,
    completed: Vec<CompletedSession>,
    latencies_nanos: Vec<u64>,
    peak_queue: usize,
    scratch: StepScratch,
}

impl Shard {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            active: Vec::new(),
            strikes: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            completed: Vec::new(),
            latencies_nanos: Vec::new(),
            peak_queue: 0,
            scratch: StepScratch::default(),
        }
    }

    /// Sheds lowest-tier queued work down to the watermark, recording
    /// every shed unit as a typed outcome.
    fn shed_excess(&mut self, watermark: usize, tick: &mut ShardTick) {
        while self.queue.len() > watermark {
            // Lowest tier first; among equals, the most recently queued
            // (freshest work is cheapest to abandon). `<=` keeps the last
            // occurrence during the scan.
            let mut worst_idx = 0usize;
            let mut worst_tier = ServiceTier::Stat;
            for (i, p) in self.queue.iter().enumerate() {
                if p.tier <= worst_tier {
                    worst_tier = p.tier;
                    worst_idx = i;
                }
            }
            let Some(victim) = self.queue.remove(worst_idx) else {
                break;
            };
            self.completed.push(CompletedSession {
                device: victim.device,
                tier: victim.tier,
                seed: victim.seed,
                outcome: SessionOutcome::Shed,
            });
            tick.shed += 1;
        }
    }

    /// Admits queued work into the active set up to the concurrency
    /// bound, instantiating state machines and scheduling chaos.
    fn admit(
        &mut self,
        platform: &Platform,
        config: &ServerConfig,
        chaos: Option<&ChaosPlan>,
        now: u64,
    ) {
        while self.active.len() < config.max_active_per_shard {
            let Some(pending) = self.queue.pop_front() else {
                break;
            };
            let machine = platform.session_machine(&pending.sample, pending.seed, &pending.options);
            let stall = chaos.and_then(|c| c.stall_for(pending.device)).unwrap_or(0);
            let abort_after = chaos.and_then(|c| c.abort_after_for(pending.device));
            self.active.push(Active {
                device: pending.device,
                tier: pending.tier,
                seed: pending.seed,
                machine,
                admitted_tick: now,
                wake_tick: now + stall,
                abort_after,
            });
        }
    }

    /// Advances every awake in-flight session by up to `steps_per_tick`
    /// steps, coalescing `Sample`-phase acquisitions across interleaved
    /// sessions into batched [`Platform::run_samples`] dispatches, then
    /// harvests terminal sessions (done, aborted, past deadline).
    ///
    /// Batching is invisible in the results: each acquisition is a pure
    /// function of its [`SampleRequest`], so every per-session transition
    /// sequence — and every served report — is bit-identical to stepping
    /// the machines one by one. The batch itself runs sequentially inside
    /// the shard; shards remain the parallel axis (no nested
    /// parallelism).
    fn step_active(
        &mut self,
        platform: &Platform,
        config: &ServerConfig,
        clock: &dyn Clock,
        now: u64,
        tick: &mut ShardTick,
    ) {
        let lane_count = self.active.len();
        // Reuse the shard's persistent scratch: clear + refill in place,
        // no per-tick allocation once the buffers reach high water.
        let scratch = &mut self.scratch;
        scratch.budgets.clear();
        scratch.budgets.resize(lane_count, config.steps_per_tick);
        scratch.outcomes.clear();
        scratch.outcomes.resize_with(lane_count, || None);
        scratch.stopped.clear();
        scratch.stopped.resize(lane_count, false);
        scratch.sleeping.clear();
        scratch.sleeping.resize(lane_count, false);
        scratch.expired.clear();
        scratch.expired.resize(lane_count, false);
        let budgets = &mut scratch.budgets;
        let outcomes = &mut scratch.outcomes;
        let stopped = &mut scratch.stopped;
        let sleeping = &mut scratch.sleeping;
        let expired_flags = &mut scratch.expired;
        for (idx, session) in self.active.iter_mut().enumerate() {
            let expired = now.saturating_sub(session.admitted_tick) >= config.deadline_ticks;
            expired_flags[idx] = expired;
            if session.wake_tick > now {
                // A sleeping session (backoff or chaos stall) still burns
                // deadline budget; cut it the moment the deadline passes
                // rather than when it would have woken.
                sleeping[idx] = true;
                stopped[idx] = true;
                if expired {
                    outcomes[idx] = Some(SessionOutcome::DeadlineMiss(
                        session
                            .machine
                            .finish_partial(platform)
                            .with_deadline_misses(1),
                    ));
                }
            }
        }
        // Rounds: (A) run each live session's cheap transitions until it
        // parks at its next Sample, stalls, errors or exhausts its budget;
        // (B) serve every parked acquisition in one coalesced dispatch;
        // (C) absorb the results and loop until nothing parks.
        loop {
            let lanes = &mut scratch.lanes;
            let requests = &mut scratch.requests;
            lanes.clear();
            requests.clear();
            for idx in 0..lane_count {
                if stopped[idx] {
                    continue;
                }
                let session = &mut self.active[idx];
                loop {
                    if budgets[idx] == 0 {
                        stopped[idx] = true;
                        break;
                    }
                    if session.machine.is_done() {
                        stopped[idx] = true;
                        break;
                    }
                    if let Some(limit) = session.abort_after {
                        if session.machine.steps_taken() >= limit {
                            outcomes[idx] = Some(SessionOutcome::Aborted(
                                session.machine.finish_partial(platform),
                            ));
                            stopped[idx] = true;
                            break;
                        }
                    }
                    if session.machine.next_is_sample() {
                        if let Some(request) = session.machine.begin_sample(platform) {
                            lanes.push(idx);
                            requests.push(request);
                            break;
                        }
                    }
                    let t0 = clock.now_nanos();
                    let event = session.machine.step(platform);
                    self.latencies_nanos
                        .push(clock.now_nanos().saturating_sub(t0));
                    tick.steps += 1;
                    budgets[idx] -= 1;
                    match event {
                        Ok(bios_platform::StepEvent::BackedOff { delay_ticks, .. }) => {
                            session.wake_tick = now + delay_ticks.max(1);
                            stopped[idx] = true;
                            break;
                        }
                        Ok(_) => {}
                        Err(e) => {
                            outcomes[idx] = Some(SessionOutcome::Failed {
                                error: e.to_string(),
                            });
                            stopped[idx] = true;
                            break;
                        }
                    }
                }
            }
            if requests.is_empty() {
                break;
            }
            // One dispatch serves every parked session's acquisition;
            // latency is attributed evenly across the batch.
            let t0 = clock.now_nanos();
            let results = platform.run_samples(requests, ExecPolicy::Sequential);
            let elapsed = clock.now_nanos().saturating_sub(t0);
            let per_sample = elapsed / requests.len() as u64;
            for ((idx, request), result) in lanes.iter().copied().zip(requests.iter()).zip(results)
            {
                let session = &mut self.active[idx];
                self.latencies_nanos.push(per_sample);
                tick.steps += 1;
                budgets[idx] -= 1;
                if let Err(e) = session.machine.complete_sample(platform, request, result) {
                    outcomes[idx] = Some(SessionOutcome::Failed {
                        error: e.to_string(),
                    });
                    stopped[idx] = true;
                }
            }
        }
        // Terminal harvest, identical to the unbatched scheduler: abort,
        // failure and sleeping cuts were recorded above; the rest finish
        // when done or get cut on an expired deadline.
        scratch.finished.clear();
        let finished = &mut scratch.finished;
        for idx in 0..lane_count {
            if let Some(outcome) = outcomes[idx].take() {
                finished.push((idx, outcome));
                continue;
            }
            if sleeping[idx] {
                continue;
            }
            let session = &mut self.active[idx];
            if session.machine.is_done() {
                let outcome = match session.machine.finish(platform) {
                    Ok(report) => SessionOutcome::Completed(report),
                    Err(e) => SessionOutcome::Failed {
                        error: e.to_string(),
                    },
                };
                finished.push((idx, outcome));
            } else if expired_flags[idx] {
                finished.push((
                    idx,
                    SessionOutcome::DeadlineMiss(
                        session
                            .machine
                            .finish_partial(platform)
                            .with_deadline_misses(1),
                    ),
                ));
            }
        }
        // Harvest back-to-front so indices stay valid. The buffer is
        // lifted out of the scratch while `record_health` needs `&mut
        // self`, then returned with its capacity intact.
        let mut finished = std::mem::take(&mut self.scratch.finished);
        for (idx, outcome) in finished.drain(..).rev() {
            let session = self.active.remove(idx);
            match &outcome {
                SessionOutcome::DeadlineMiss(_) => tick.deadline_misses += 1,
                SessionOutcome::Aborted(_) => tick.aborted += 1,
                SessionOutcome::Completed(_)
                | SessionOutcome::Shed
                | SessionOutcome::Failed { .. } => {}
            }
            self.record_health(session.device, &outcome, config.quarantine_threshold);
            tick.completed += 1;
            self.completed.push(CompletedSession {
                device: session.device,
                tier: session.tier,
                seed: session.seed,
                outcome,
            });
        }
        self.scratch.finished = finished;
        // Keep completion order deterministic: sessions were harvested in
        // reverse index order above, restore admission order.
        let n = tick.completed;
        let len = self.completed.len();
        self.completed[len - n..].reverse();
    }

    /// Fleet-side health accounting: chronic failures quarantine the
    /// device, a clean session clears its strikes.
    fn record_health(&mut self, device: u64, outcome: &SessionOutcome, threshold: u32) {
        let failed = match outcome {
            SessionOutcome::Completed(r) => {
                let d = r.degradation();
                !d.quarantined.is_empty() || !d.failed_targets.is_empty()
            }
            SessionOutcome::DeadlineMiss(_)
            | SessionOutcome::Aborted(_)
            | SessionOutcome::Failed { .. } => true,
            SessionOutcome::Shed => false,
        };
        if failed {
            let strikes = self.strikes.entry(device).or_insert(0);
            *strikes += 1;
            if *strikes >= threshold {
                self.quarantined.insert(device);
            }
        } else {
            self.strikes.remove(&device);
        }
    }

    /// One full shard tick: shed, admit, step, harvest.
    fn tick(
        &mut self,
        platform: &Platform,
        config: &ServerConfig,
        chaos: Option<&ChaosPlan>,
        clock: &dyn Clock,
        now: u64,
    ) -> ShardTick {
        let mut summary = ShardTick::default();
        self.shed_excess(config.shed_watermark, &mut summary);
        self.admit(platform, config, chaos, now);
        self.step_active(platform, config, clock, now, &mut summary);
        summary
    }
}

/// The diagnostics service: a fleet-facing, deterministic session
/// scheduler over one [`Platform`]. See the crate docs for the serving
/// contract and an example.
#[derive(Debug)]
pub struct DiagnosticsServer<'p> {
    platform: &'p Platform,
    config: ServerConfig,
    options: SessionOptions,
    chaos: Option<ChaosPlan>,
    shards: Vec<Shard>,
    now: u64,
    stats: ServerStats,
}

impl<'p> DiagnosticsServer<'p> {
    /// A server over `platform` with default session options (no faults,
    /// standard QC and retry policy).
    pub fn new(platform: &'p Platform, config: ServerConfig) -> Self {
        Self::with_options(platform, config, SessionOptions::default())
    }

    /// A server whose sessions all run under `options` (QC gate, retry
    /// policy, optional base fault plan). The server forces the
    /// per-session exec policy to sequential — parallelism lives at the
    /// shard level, one session machine is stepped by exactly one worker.
    pub fn with_options(
        platform: &'p Platform,
        config: ServerConfig,
        options: SessionOptions,
    ) -> Self {
        let shards = (0..config.shards.max(1)).map(|_| Shard::new()).collect();
        Self {
            platform,
            config,
            options: options.with_exec(ExecPolicy::Sequential),
            chaos: None,
            shards,
            now: 0,
            stats: ServerStats::default(),
        }
    }

    /// Installs a chaos plan; subsequent admissions draw stalls, aborts
    /// and AFE fault overlays from it.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.stats;
        stats.quarantined_devices = self.shards.iter().map(|s| s.quarantined.len() as u64).sum();
        stats
    }

    /// Submits one session request.
    ///
    /// # Errors
    ///
    /// [`ServerError::Quarantined`] for a fleet-quarantined device;
    /// [`ServerError::Overloaded`] when the target shard's queue is at
    /// capacity. The queue bound is never exceeded.
    pub fn submit(&mut self, request: SessionRequest) -> Result<(), ServerError> {
        let shard_idx = (request.device % self.config.shards as u64) as usize;
        let capacity = self.config.queue_capacity;
        let chaos = &self.chaos;
        let options = &self.options;
        let platform = self.platform;
        let Some(shard) = self.shards.get_mut(shard_idx) else {
            return Err(ServerError::Overloaded {
                shard: shard_idx,
                queue_len: 0,
                capacity,
            });
        };
        if shard.quarantined.contains(&request.device) {
            self.stats.rejected_quarantined += 1;
            return Err(ServerError::Quarantined {
                device: request.device,
            });
        }
        if shard.queue.len() >= capacity {
            self.stats.rejected_overloaded += 1;
            return Err(ServerError::Overloaded {
                shard: shard_idx,
                queue_len: shard.queue.len(),
                capacity,
            });
        }
        // Compose the chaos AFE overlay into the session's fault plan at
        // admission time, so the whole session (including retries) sees
        // one consistent faulted device.
        let mut options = options.clone();
        if let Some(overlay) = chaos
            .as_ref()
            .and_then(|c| c.fault_plan_for(request.device, platform.assignments().len()))
        {
            options.fault_plan = Some(match options.fault_plan.take() {
                Some(base) => base.compose(overlay),
                None => overlay,
            });
        }
        shard.queue.push_back(Pending {
            device: request.device,
            tier: request.tier,
            sample: request.sample,
            seed: request.seed,
            options,
        });
        shard.peak_queue = shard.peak_queue.max(shard.queue.len());
        self.stats.submitted += 1;
        Ok(())
    }

    /// Advances the whole fleet by one virtual tick: every shard sheds
    /// excess queue, admits work, and steps its in-flight sessions.
    /// Shards fan out across the execution engine; the outcome is
    /// bit-identical for any [`ExecPolicy`].
    pub fn tick(&mut self, clock: &dyn Clock) -> TickSummary {
        let platform = self.platform;
        let config = &self.config;
        let chaos = self.chaos.as_ref();
        let now = self.now;
        let ticks = par_map_mut(config.exec, &mut self.shards, |_, shard| {
            shard.tick(platform, config, chaos, clock, now)
        });
        self.now += 1;
        let mut summary = TickSummary::default();
        for t in ticks {
            summary.steps += t.steps;
            summary.completed += t.completed;
            summary.shed += t.shed;
            summary.deadline_misses += t.deadline_misses;
            self.stats.aborted += t.aborted as u64;
        }
        self.stats.steps += summary.steps;
        self.stats.completed += summary.completed as u64;
        self.stats.shed += summary.shed as u64;
        self.stats.deadline_misses += summary.deadline_misses as u64;
        summary
    }

    /// True when no work is queued or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.queue.is_empty() && s.active.is_empty())
    }

    /// Sessions currently in flight fleet-wide.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.active.len()).sum()
    }

    /// Sessions currently queued fleet-wide.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// The highest queue occupancy any shard ever reached — evidence the
    /// configured bound was respected.
    pub fn peak_queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.peak_queue).max().unwrap_or(0)
    }

    /// Drains every served session, in shard order then service order
    /// within the shard — a deterministic batch response.
    pub fn drain_completed(&mut self) -> Vec<CompletedSession> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.append(&mut shard.completed);
        }
        out
    }

    /// Drains the per-step latency samples (nanoseconds, shard order)
    /// collected through the injected [`Clock`]. All zeros under
    /// [`NullClock`](crate::NullClock).
    pub fn drain_latencies(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.append(&mut shard.latencies_nanos);
        }
        out
    }

    /// Devices currently fleet-quarantined, ascending.
    pub fn quarantined_devices(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.quarantined.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Releases a device from fleet quarantine (e.g. after service),
    /// clearing its strikes. Returns whether it was quarantined.
    pub fn release_device(&mut self, device: u64) -> bool {
        let shard_idx = (device % self.config.shards as u64) as usize;
        match self.shards.get_mut(shard_idx) {
            Some(shard) => {
                shard.strikes.remove(&device);
                shard.quarantined.remove(&device)
            }
            None => false,
        }
    }

    /// Runs ticks until idle or `max_ticks` elapse, returning the ticks
    /// spent.
    pub fn run_until_idle(&mut self, clock: &dyn Clock, max_ticks: u64) -> u64 {
        let mut spent = 0;
        while !self.is_idle() && spent < max_ticks {
            self.tick(clock);
            spent += 1;
        }
        spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NullClock;
    use bios_platform::{PanelSpec, PlatformBuilder};

    fn platform() -> Platform {
        PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build")
    }

    fn request(device: u64, tier: ServiceTier, seed: u64) -> SessionRequest {
        SessionRequest {
            device,
            tier,
            sample: vec![(Analyte::Glucose, Molar::from_millimolar(3.0))],
            seed,
        }
    }

    #[test]
    fn serves_a_session_to_completion() {
        let p = platform();
        let mut server = DiagnosticsServer::new(&p, ServerConfig::default());
        server
            .submit(request(1, ServiceTier::Stat, 42))
            .expect("admitted");
        let spent = server.run_until_idle(&NullClock, 10_000);
        assert!(spent > 0);
        let served = server.drain_completed();
        assert_eq!(served.len(), 1);
        let report = served[0].outcome.report().expect("served");
        // Same session through the blocking path: must be bit-identical
        // (the server pins per-session exec to sequential).
        let blocking = p
            .run_session_with(
                &[(Analyte::Glucose, Molar::from_millimolar(3.0))],
                42,
                &SessionOptions::default().with_exec(ExecPolicy::Sequential),
            )
            .expect("session");
        assert_eq!(*report, blocking);
        assert!(served[0].outcome.is_clean());
    }

    #[test]
    fn coalesced_interleaved_sessions_match_the_blocking_path() {
        let p = platform();
        // Many sessions interleave inside one shard with a healthy step
        // budget, so every tick batches several sessions' acquisitions
        // into one `run_samples` dispatch. Each served report must still
        // be bit-identical to running its session alone.
        let config = ServerConfig::default()
            .with_shards(1)
            .with_max_active(8)
            .with_steps_per_tick(6);
        let mut server = DiagnosticsServer::new(&p, config);
        for k in 0..8u64 {
            server
                .submit(request(k, ServiceTier::Routine, 900 + k))
                .expect("admitted");
        }
        server.run_until_idle(&NullClock, 10_000);
        let served = server.drain_completed();
        assert_eq!(served.len(), 8);
        for c in &served {
            let report = c.outcome.report().expect("served");
            let blocking = p
                .run_session_with(
                    &[(Analyte::Glucose, Molar::from_millimolar(3.0))],
                    c.seed,
                    &SessionOptions::default().with_exec(ExecPolicy::Sequential),
                )
                .expect("session");
            assert_eq!(*report, blocking, "device {} diverged", c.device);
        }
    }

    #[test]
    fn overload_returns_typed_error_and_bound_is_never_exceeded() {
        let p = platform();
        let config = ServerConfig::default()
            .with_shards(1)
            .with_queue_capacity(8)
            .with_shed_watermark(8);
        let mut server = DiagnosticsServer::new(&p, config);
        let mut rejected = 0;
        for k in 0..20 {
            match server.submit(request(k, ServiceTier::Routine, k)) {
                Ok(()) => {}
                Err(ServerError::Overloaded {
                    shard,
                    queue_len,
                    capacity,
                }) => {
                    rejected += 1;
                    assert_eq!(shard, 0);
                    assert_eq!(queue_len, 8);
                    assert_eq!(capacity, 8);
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(rejected, 12, "queue admits exactly its capacity");
        assert_eq!(server.peak_queue_len(), 8, "bound never exceeded");
        assert_eq!(server.stats().rejected_overloaded, 12);
    }

    #[test]
    fn shedding_drops_lowest_tier_first_and_reports_it() {
        let p = platform();
        let config = ServerConfig::default()
            .with_shards(1)
            .with_queue_capacity(6)
            .with_shed_watermark(2)
            .with_max_active(1)
            .with_steps_per_tick(1);
        let mut server = DiagnosticsServer::new(&p, config);
        server
            .submit(request(0, ServiceTier::Stat, 1))
            .expect("admitted");
        server
            .submit(request(1, ServiceTier::BestEffort, 2))
            .expect("admitted");
        server
            .submit(request(2, ServiceTier::Routine, 3))
            .expect("admitted");
        server
            .submit(request(3, ServiceTier::BestEffort, 4))
            .expect("admitted");
        let summary = server.tick(&NullClock);
        assert_eq!(summary.shed, 2, "queue of 4 sheds down to watermark 2");
        let served = server.drain_completed();
        let shed: Vec<(u64, ServiceTier)> = served
            .iter()
            .filter(|c| matches!(c.outcome, SessionOutcome::Shed))
            .map(|c| (c.device, c.tier))
            .collect();
        // Both best-effort requests go first (freshest first among
        // equals); stat and routine survive.
        assert_eq!(
            shed,
            vec![(3, ServiceTier::BestEffort), (1, ServiceTier::BestEffort)]
        );
        assert!(!served
            .iter()
            .any(|c| matches!(c.outcome, SessionOutcome::Shed) && c.tier == ServiceTier::Stat));
    }

    #[test]
    fn deadline_cuts_surface_as_typed_partial_results() {
        let p = platform();
        let config = ServerConfig::default()
            .with_shards(1)
            .with_steps_per_tick(1)
            .with_deadline_ticks(2);
        let mut server = DiagnosticsServer::new(&p, config);
        server
            .submit(request(5, ServiceTier::Routine, 11))
            .expect("admitted");
        server.run_until_idle(&NullClock, 100);
        let served = server.drain_completed();
        assert_eq!(served.len(), 1);
        match &served[0].outcome {
            SessionOutcome::DeadlineMiss(report) => {
                assert!(report.degradation().deadline_misses >= 1);
                assert!(report.is_degraded(), "cut session must not be clean");
            }
            other => panic!("expected deadline miss, got {}", other.label()),
        }
        assert_eq!(server.stats().deadline_misses, 1);
    }

    #[test]
    fn stalled_devices_burn_deadline_budget_and_get_cut() {
        let p = platform();
        let config = ServerConfig::default()
            .with_shards(1)
            .with_deadline_ticks(5);
        let mut server =
            DiagnosticsServer::new(&p, config).with_chaos(ChaosPlan::new(2).with_stalls(1.0, 1000));
        server
            .submit(request(3, ServiceTier::Routine, 7))
            .expect("admitted");
        let spent = server.run_until_idle(&NullClock, 100);
        assert!(spent <= 10, "cut at the deadline, not at wake tick {spent}");
        let served = server.drain_completed();
        assert_eq!(served.len(), 1);
        assert!(
            matches!(served[0].outcome, SessionOutcome::DeadlineMiss(_)),
            "a stall past the deadline must surface as a cut, got {}",
            served[0].outcome.label()
        );
    }

    #[test]
    fn chronic_failures_quarantine_the_device_fleet_side() {
        use bios_afe::{Fault, FaultKind, FaultPlan};
        use bios_instrument::QcGate;

        let p = platform();
        // Device whose electrode is dead: every session fails QC.
        let plan = FaultPlan::new(3).with_fault(
            0,
            Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid"),
        );
        let options = SessionOptions::default()
            .with_fault_plan(plan)
            .with_qc(QcGate::default());
        let config = ServerConfig::default()
            .with_shards(1)
            .with_quarantine_threshold(2);
        let mut server = DiagnosticsServer::with_options(&p, config, options);
        for k in 0..2 {
            server
                .submit(request(9, ServiceTier::Routine, 100 + k))
                .expect("admitted");
            server.run_until_idle(&NullClock, 10_000);
        }
        assert_eq!(server.quarantined_devices(), vec![9]);
        let err = server
            .submit(request(9, ServiceTier::Routine, 200))
            .expect_err("quarantined");
        assert_eq!(err, ServerError::Quarantined { device: 9 });
        assert_eq!(server.stats().rejected_quarantined, 1);
        // Serviced device re-admits.
        assert!(server.release_device(9));
        server
            .submit(request(9, ServiceTier::Routine, 201))
            .expect("released device admits again");
    }

    #[test]
    fn release_device_edge_cases_are_idempotent_and_reset_strikes() {
        use bios_afe::{Fault, FaultKind, FaultPlan};
        use bios_instrument::QcGate;

        let p = platform();
        let plan = FaultPlan::new(3).with_fault(
            0,
            Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid"),
        );
        let options = SessionOptions::default()
            .with_fault_plan(plan)
            .with_qc(QcGate::default());
        let config = ServerConfig::default()
            .with_shards(2)
            .with_quarantine_threshold(2);
        let mut server = DiagnosticsServer::with_options(&p, config, options);

        // Releasing a device the server has never seen is a no-op.
        assert!(!server.release_device(9));
        // A device routed to an out-of-range shard index can't exist;
        // release on any device id stays a safe no-op.
        assert!(!server.release_device(u64::MAX));

        // One failed session: a strike, but not yet quarantined.
        server
            .submit(request(9, ServiceTier::Routine, 100))
            .expect("admitted");
        server.run_until_idle(&NullClock, 10_000);
        assert!(server.quarantined_devices().is_empty());
        // Releasing a struck-but-not-quarantined device reports false
        // (it was not quarantined) but clears the strike history.
        assert!(!server.release_device(9));
        // After the reset, one more failure is again only strike one —
        // the counter restarted rather than carrying the old strike.
        server
            .submit(request(9, ServiceTier::Routine, 101))
            .expect("admitted");
        server.run_until_idle(&NullClock, 10_000);
        assert!(
            server.quarantined_devices().is_empty(),
            "release must reset strikes, not only quarantine membership"
        );
        // Two consecutive failures after the reset do quarantine.
        server
            .submit(request(9, ServiceTier::Routine, 102))
            .expect("admitted");
        server.run_until_idle(&NullClock, 10_000);
        assert_eq!(server.quarantined_devices(), vec![9]);

        // Double release: first returns true, second is a no-op false.
        assert!(server.release_device(9));
        assert!(!server.release_device(9));
        server
            .submit(request(9, ServiceTier::Routine, 103))
            .expect("released device admits again");
    }

    #[test]
    fn fleet_schedule_is_bit_identical_for_any_exec_policy() {
        let p = platform();
        let run = |exec: ExecPolicy| {
            let config = ServerConfig::default().with_shards(4).with_exec(exec);
            let mut server = DiagnosticsServer::new(&p, config)
                .with_chaos(ChaosPlan::new(5).with_stalls(0.3, 3).with_aborts(0.2));
            for k in 0..24u64 {
                server
                    .submit(request(k, ServiceTier::Routine, 1000 + k))
                    .expect("admitted");
            }
            server.run_until_idle(&NullClock, 100_000);
            server.drain_completed()
        };
        let seq = run(ExecPolicy::Sequential);
        let par = run(ExecPolicy::Threads(4));
        assert_eq!(seq.len(), 24);
        assert_eq!(seq, par, "shard fan-out must not change outcomes");
    }

    #[test]
    fn chaos_aborts_surface_as_flagged_partials_never_clean() {
        let p = platform();
        let config = ServerConfig::default().with_shards(2);
        let mut server =
            DiagnosticsServer::new(&p, config).with_chaos(ChaosPlan::new(8).with_aborts(1.0));
        for k in 0..6u64 {
            server
                .submit(request(k, ServiceTier::Routine, 500 + k))
                .expect("admitted");
        }
        server.run_until_idle(&NullClock, 10_000);
        let served = server.drain_completed();
        assert_eq!(served.len(), 6);
        for c in &served {
            match &c.outcome {
                SessionOutcome::Aborted(report) => {
                    assert!(!c.outcome.is_clean());
                    // Every reading from an aborted session is flagged.
                    assert!(report
                        .qualities()
                        .iter()
                        .all(|q| !q.is_usable() || q.attempts > 0));
                }
                other => panic!("abort rate 1.0 must abort all, got {}", other.label()),
            }
        }
        assert_eq!(server.stats().aborted, 6);
    }
}
