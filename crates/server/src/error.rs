//! Typed serving errors: the admission contract.

/// Why the server refused a request. Every refusal is typed — an
/// overloaded or quarantine-rejecting server never drops work silently.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum ServerError {
    /// The target shard's admission queue is at capacity. The queue bound
    /// is never exceeded; the caller must retry later or route elsewhere.
    Overloaded {
        /// The shard that refused the request.
        shard: usize,
        /// Queue occupancy at refusal (equals `capacity`).
        queue_len: usize,
        /// The configured per-shard queue bound.
        capacity: usize,
    },
    /// The device is fleet-quarantined after chronically failing sessions
    /// and must be serviced before it is admitted again.
    Quarantined {
        /// The quarantined device.
        device: u64,
    },
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServerError::Overloaded {
                shard,
                queue_len,
                capacity,
            } => write!(
                f,
                "shard {shard} overloaded: queue at {queue_len}/{capacity}"
            ),
            ServerError::Quarantined { device } => {
                write!(f, "device {device} is fleet-quarantined")
            }
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_and_roundtrip() {
        let e = ServerError::Overloaded {
            shard: 2,
            queue_len: 64,
            capacity: 64,
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("64/64"));
        let q = ServerError::Quarantined { device: 9 };
        assert!(q.to_string().contains("device 9"));
        let json = serde_json::to_string(&e).expect("serialize");
        let back: ServerError = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, e);
    }
}
