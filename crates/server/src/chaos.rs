//! Server-level chaos injection, composable with the AFE fault model.
//!
//! The PR 1 fault injector corrupts *signals*; a serving fleet also fails
//! at the *session* level: devices stall mid-protocol, uplinks abort
//! sessions half-way, and bursty clients storm the admission queue. A
//! [`ChaosPlan`] schedules the first two per device and composes an
//! optional AFE [`FaultPlan`] overlay on top, all derived from one seed
//! through the same counter-hash discipline as the AFE injector — so a
//! chaos run replays bit-identically. Queue-full storms are admission
//! behavior, not device behavior: the submitting harness drives them by
//! bursting [`submit`](crate::DiagnosticsServer::submit) calls and
//! asserting typed [`Overloaded`](crate::ServerError::Overloaded)
//! rejections.

use bios_afe::FaultPlan;

/// The server-level failure modes the chaos harness injects or drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ServerFaultKind {
    /// The device goes quiet for a stretch of ticks after admission; its
    /// session burns deadline budget without making progress.
    DeviceStall,
    /// The session is torn down after a hash-derived number of steps and
    /// served as a flagged partial result.
    MidSessionAbort,
    /// A submission burst past the queue bound (driven by the harness;
    /// surfaces as typed `Overloaded` rejections).
    QueueStorm,
}

impl ServerFaultKind {
    /// A short stable name for chaos-matrix reports.
    pub fn name(self) -> &'static str {
        match self {
            ServerFaultKind::DeviceStall => "device-stall",
            ServerFaultKind::MidSessionAbort => "mid-session-abort",
            ServerFaultKind::QueueStorm => "queue-storm",
        }
    }
}

impl core::fmt::Display for ServerFaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A seeded schedule of server-level faults across a device fleet.
///
/// Rates are probabilities in `[0, 1]` evaluated per device through a
/// counter hash of `(seed, device)` — the same `(plan, device)` always
/// stalls, aborts and faults identically, independent of scheduling.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosPlan {
    seed: u64,
    stall_rate: f64,
    stall_ticks: u64,
    abort_rate: f64,
    afe_rate: f64,
}

impl ChaosPlan {
    /// An empty plan (no faults) deriving all randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            stall_rate: 0.0,
            stall_ticks: 0,
            abort_rate: 0.0,
            afe_rate: 0.0,
        }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stalls each device with probability `rate` for `ticks` ticks after
    /// admission. Rates clamp to `[0, 1]`.
    #[must_use]
    pub fn with_stalls(mut self, rate: f64, ticks: u64) -> Self {
        self.stall_rate = clamp_rate(rate);
        self.stall_ticks = ticks;
        self
    }

    /// Aborts each device's session mid-flight with probability `rate`.
    #[must_use]
    pub fn with_aborts(mut self, rate: f64) -> Self {
        self.abort_rate = clamp_rate(rate);
        self
    }

    /// Lays a randomized AFE [`FaultPlan`] over each device's session
    /// with probability `rate`, composing with any base plan the session
    /// options already carry (see [`FaultPlan::compose`]).
    #[must_use]
    pub fn with_afe_faults(mut self, rate: f64) -> Self {
        self.afe_rate = clamp_rate(rate);
        self
    }

    /// Ticks this device stalls for after admission, if it is scheduled
    /// to stall at all.
    pub fn stall_for(&self, device: u64) -> Option<u64> {
        (unit_f64(mix(self.seed, device, 0x57a1)) < self.stall_rate).then_some(self.stall_ticks)
    }

    /// The step count after which this device's session aborts, if it is
    /// scheduled to abort. Early (1–8 steps), so aborts land mid-session.
    pub fn abort_after_for(&self, device: u64) -> Option<u64> {
        let h = mix(self.seed, device, 0xab07);
        (unit_f64(h) < self.abort_rate).then(|| 1 + (h >> 32) % 8)
    }

    /// The AFE fault overlay for this device's sessions, if one is
    /// scheduled: a randomized per-electrode plan seeded from
    /// `(seed, device)`.
    pub fn fault_plan_for(&self, device: u64, working_electrodes: usize) -> Option<FaultPlan> {
        let h = mix(self.seed, device, 0xafe0);
        (unit_f64(h) < self.afe_rate)
            .then(|| FaultPlan::randomized(mix(self.seed, device, 0xafe1), working_electrodes))
    }

    /// Every server-level fault scheduled on this device (for
    /// chaos-matrix accounting; `QueueStorm` is harness-driven and never
    /// appears here).
    pub fn faults_for(&self, device: u64) -> Vec<ServerFaultKind> {
        let mut kinds = Vec::new();
        if self.stall_for(device).is_some() {
            kinds.push(ServerFaultKind::DeviceStall);
        }
        if self.abort_after_for(device).is_some() {
            kinds.push(ServerFaultKind::MidSessionAbort);
        }
        kinds
    }
}

fn clamp_rate(rate: f64) -> f64 {
    if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// SplitMix64-style counter hash, mirroring the AFE injector's: chaos
/// randomness is a pure function of `(seed, device, site)`.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash word.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_device() {
        let plan = ChaosPlan::new(9)
            .with_stalls(0.5, 20)
            .with_aborts(0.5)
            .with_afe_faults(0.5);
        for device in 0..64 {
            assert_eq!(plan.stall_for(device), plan.stall_for(device));
            assert_eq!(plan.abort_after_for(device), plan.abort_after_for(device));
            assert_eq!(
                plan.fault_plan_for(device, 5),
                plan.fault_plan_for(device, 5)
            );
        }
    }

    #[test]
    fn rates_hit_roughly_the_requested_fraction() {
        let plan = ChaosPlan::new(4).with_stalls(0.3, 10).with_aborts(0.3);
        let n = 2000u64;
        let stalled = (0..n).filter(|&d| plan.stall_for(d).is_some()).count();
        let aborted = (0..n)
            .filter(|&d| plan.abort_after_for(d).is_some())
            .count();
        let frac_s = stalled as f64 / n as f64;
        let frac_a = aborted as f64 / n as f64;
        assert!((frac_s - 0.3).abs() < 0.05, "stall fraction {frac_s}");
        assert!((frac_a - 0.3).abs() < 0.05, "abort fraction {frac_a}");
    }

    #[test]
    fn zero_rate_schedules_nothing_and_one_everything() {
        let quiet = ChaosPlan::new(1);
        let storm = ChaosPlan::new(1)
            .with_stalls(1.0, 5)
            .with_aborts(1.0)
            .with_afe_faults(1.0);
        for device in 0..32 {
            assert!(quiet.stall_for(device).is_none());
            assert!(quiet.faults_for(device).is_empty());
            assert_eq!(quiet.abort_after_for(device), None);
            assert_eq!(storm.stall_for(device), Some(5));
            let abort = storm.abort_after_for(device).expect("scheduled");
            assert!((1..=8).contains(&abort));
            assert!(storm.fault_plan_for(device, 5).is_some());
            assert_eq!(storm.faults_for(device).len(), 2);
        }
    }

    #[test]
    fn fault_kind_names_are_stable() {
        assert_eq!(ServerFaultKind::DeviceStall.name(), "device-stall");
        assert_eq!(
            ServerFaultKind::MidSessionAbort.to_string(),
            "mid-session-abort"
        );
        assert_eq!(ServerFaultKind::QueueStorm.name(), "queue-storm");
    }
}
