//! Replicate statistics: the `V_b`/`σ_b` machinery behind the paper's
//! LOD definition (eq. 5).

use crate::error::InstrumentError;

/// Summary statistics of replicate measurements.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplicateStats {
    n: usize,
    mean: f64,
    sd: f64,
}

impl ReplicateStats {
    /// Computes statistics from raw replicate values (sample SD, `n − 1`
    /// denominator).
    ///
    /// # Errors
    ///
    /// Returns [`InstrumentError::InsufficientData`] for fewer than 2
    /// replicates.
    pub fn from_samples(samples: &[f64]) -> Result<Self, InstrumentError> {
        if samples.len() < 2 {
            return Err(InstrumentError::InsufficientData {
                needed: 2,
                got: samples.len(),
            });
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        Ok(Self {
            n,
            mean,
            sd: var.sqrt(),
        })
    }

    /// Number of replicates.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        self.sd / (self.n as f64).sqrt()
    }

    /// Approximate 95% confidence interval half-width (±1.96·SEM).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.sem()
    }

    /// The paper's eq. 5 detection threshold in response units:
    /// `LOD_response = V_b + 3·σ_b` (ACS committee definition, <7% false
    /// positive risk).
    pub fn detection_threshold(&self) -> f64 {
        self.mean + 3.0 * self.sd
    }

    /// Relative standard deviation (coefficient of variation); infinite for
    /// a zero mean.
    pub fn rsd(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.sd / self.mean.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_single_sample() {
        assert!(ReplicateStats::from_samples(&[1.0]).is_err());
        assert!(ReplicateStats::from_samples(&[]).is_err());
    }

    #[test]
    fn known_statistics() {
        let s = ReplicateStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
            .expect("enough data");
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample SD with n−1: sqrt(32/7) ≈ 2.138.
        assert!((s.sd() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n(), 8);
    }

    #[test]
    fn detection_threshold_is_mean_plus_3sd() {
        let s = ReplicateStats::from_samples(&[1.0, 1.0, 1.0, 3.0]).expect("enough data");
        assert!((s.detection_threshold() - (s.mean() + 3.0 * s.sd())).abs() < 1e-12);
    }

    #[test]
    fn sem_shrinks_with_n() {
        let few = ReplicateStats::from_samples(&[1.0, 2.0, 3.0]).expect("enough data");
        let many: Vec<f64> = (0..300).map(|k| 1.0 + (k % 3) as f64).collect();
        let lots = ReplicateStats::from_samples(&many).expect("enough data");
        assert!(lots.sem() < few.sem());
        assert!(lots.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn rsd_handles_zero_mean() {
        let s = ReplicateStats::from_samples(&[-1.0, 1.0]).expect("enough data");
        assert!(s.rsd().is_infinite());
    }
}
