//! Chronoamperometry protocol: the oxidase readout of paper Table I and
//! the Fig. 3 time-response experiment.

use crate::calibration::{analyze_calibration, CalibrationOutcome, CalibrationPoint};
use crate::error::InstrumentError;
use bios_afe::ReadoutChain;
use bios_biochem::{Interferent, OxidaseSensor};
use bios_electrochem::{Electrode, PotentialProgram, Transient};
use bios_units::{Amps, Molar, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Timing of a chronoamperometric measurement.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChronoProtocol {
    /// Pre-injection settling time at the working potential.
    pub settle: Seconds,
    /// Recording time after the injection.
    pub measure: Seconds,
    /// Sample interval.
    pub dt: Seconds,
}

impl ChronoProtocol {
    /// Validates the timing.
    ///
    /// # Errors
    ///
    /// Returns [`InstrumentError::InvalidParameter`] for non-positive
    /// durations or a `dt` that undersamples the measurement (<20 samples).
    pub fn validate(&self) -> Result<(), InstrumentError> {
        if self.settle.value() <= 0.0 || self.measure.value() <= 0.0 || self.dt.value() <= 0.0 {
            return Err(InstrumentError::invalid("timing", "must be positive"));
        }
        if self.measure.value() / self.dt.value() < 20.0 {
            return Err(InstrumentError::invalid(
                "dt",
                "must give at least 20 samples over the measurement",
            ));
        }
        Ok(())
    }
}

impl Default for ChronoProtocol {
    fn default() -> Self {
        Self {
            settle: Seconds::new(10.0),
            measure: Seconds::new(60.0),
            dt: Seconds::new(0.25),
        }
    }
}

/// The analyzed result of one chronoamperometric measurement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChronoMeasurement {
    /// The recorded current transient (chain output).
    pub transient: Transient,
    /// When the analyte was injected.
    pub injection_time: Seconds,
    /// Pre-injection baseline current.
    pub baseline: Amps,
    /// Post-injection steady-state current (tail mean).
    pub steady_state: Amps,
    /// Steady-state response time: time from injection to 90% of the step
    /// (paper §II-B), if the response settled.
    pub t90: Option<Seconds>,
    /// Transient response time: time from injection to the maximum of
    /// `dI/dt` (paper §II-B).
    pub transient_response_time: Option<Seconds>,
}

impl ChronoMeasurement {
    /// The analytical response `ΔI = I_ss − I_baseline`.
    pub fn delta(&self) -> Amps {
        self.steady_state - self.baseline
    }
}

/// Runs one chronoamperometric measurement of `concentration` on an oxidase
/// sensor through the readout chain.
///
/// Sensor-side blank noise is modeled per the registry: a per-run offset
/// drawn from `N(0, σ_blank·A)` (run-to-run electrode variability — the
/// quantity behind the paper's `σ_b`) plus smaller within-run fluctuation.
///
/// # Errors
///
/// Returns [`InstrumentError`] for invalid protocol timing or AFE rejects.
///
/// # Example
///
/// ```
/// use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
/// use bios_biochem::{Oxidase, OxidaseSensor};
/// use bios_electrochem::Electrode;
/// use bios_instrument::{run_chrono, ChronoProtocol};
/// use bios_units::Molar;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sensor = OxidaseSensor::from_registry(Oxidase::Glucose)?;
/// let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase())?);
/// let m = run_chrono(
///     &sensor,
///     &Electrode::paper_gold_we(),
///     &chain,
///     Molar::from_millimolar(2.0),
///     &ChronoProtocol::default(),
///     42,
/// )?;
/// assert!(m.delta().value() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn run_chrono(
    sensor: &OxidaseSensor,
    electrode: &Electrode,
    chain: &ReadoutChain,
    concentration: Molar,
    protocol: &ChronoProtocol,
    seed: u64,
) -> Result<ChronoMeasurement, InstrumentError> {
    run_chrono_with_interferents(sensor, electrode, chain, concentration, &[], protocol, seed)
}

/// [`run_chrono`] with electroactive interferents present in the sample.
///
/// Interferents oxidize on *both* the enzyme electrode and the blank
/// electrode, so when the chain has CDS enabled the subtraction removes
/// their contribution — the §II-C benefit of the extra WE. Without CDS
/// they bias the reading. (The paper's caveat — the blank "is not helpful
/// in presence of molecules such as Dopamine and Etoposide" — is about
/// *monitoring* a directly-oxidizing target: then the blank sees the
/// analyte itself and CDS subtracts the wanted signal too.)
///
/// Like the analyte, interferents arrive with the injection.
///
/// # Errors
///
/// Returns [`InstrumentError`] for invalid protocol timing or AFE rejects.
pub fn run_chrono_with_interferents(
    sensor: &OxidaseSensor,
    electrode: &Electrode,
    chain: &ReadoutChain,
    concentration: Molar,
    interferents: &[(Interferent, Molar)],
    protocol: &ChronoProtocol,
    seed: u64,
) -> Result<ChronoMeasurement, InstrumentError> {
    protocol.validate()?;
    let area = electrode.geometric_area();
    let program = PotentialProgram::Hold {
        potential: sensor.applied_potential(),
        duration: Seconds::new(protocol.settle.value() + protocol.measure.value()),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb10_5eed);
    let blank_sd_current = sensor.blank_sd().value() * area.value();
    // Injection-to-injection response variability (matrix effects, membrane
    // state): this is the σ_b behind the paper's eq. 5, so it must appear
    // in the ΔI statistic — it switches on *with* the injection. A constant
    // electrode offset would cancel in ΔI and belongs to the AFE drift.
    let response_offset = gaussian(&mut rng) * blank_sd_current;
    let within_sd = blank_sd_current / 5.0;
    let injection = protocol.settle;
    let interferents_active = interferents.to_vec();
    let interferents_blank = interferents.to_vec();
    let interference = move |list: &[(Interferent, Molar)], e, since: Seconds| -> f64 {
        if since.value() <= 0.0 {
            return 0.0;
        }
        list.iter()
            .map(|(i, c)| i.current_density(e, *c).value() * area.value())
            .sum()
    };
    let interference_blank = interference;
    let samples = chain.acquire(
        &program,
        protocol.dt,
        seed,
        move |t, e| {
            let since = Seconds::new(t.value() - injection.value());
            let j = sensor.transient_current_density(Molar::ZERO, concentration, since);
            // The response perturbation develops with the membrane-shaped
            // response itself (a step here would fake an instantaneous
            // dI/dt spike at the injection).
            let offset = response_offset * sensor.membrane().step_response(since);
            Amps::new(
                j.value() * area.value()
                    + offset
                    + interference(&interferents_active, e, since)
                    + gaussian(&mut rng) * within_sd,
            )
        },
        move |t, e| {
            let since = Seconds::new(t.value() - injection.value());
            Amps::new(interference_blank(&interferents_blank, e, since))
        },
    )?;
    let transient: Transient = samples.iter().map(|s| (s.t, s.current)).collect();
    Ok(analyze_transient(transient, injection))
}

/// Extracts the §II-B response metrics from a recorded transient with a
/// known injection time.
pub fn analyze_transient(transient: Transient, injection: Seconds) -> ChronoMeasurement {
    // Baseline: mean over the second half of the settle window.
    let pre: Vec<f64> = transient
        .iter()
        .filter(|(t, _)| t.value() > injection.value() * 0.5 && t.value() < injection.value())
        .map(|(_, i)| i.value())
        .collect();
    let baseline = Amps::new(if pre.is_empty() {
        transient
            .current()
            .first()
            .map(|i| i.value())
            .unwrap_or(0.0)
    } else {
        pre.iter().sum::<f64>() / pre.len() as f64
    });
    let steady_state = transient.tail_mean(0.1).unwrap_or(baseline);
    let delta = steady_state - baseline;

    // t90: first crossing of baseline + 0.9·delta after the injection.
    let threshold = baseline.value() + 0.9 * delta.value();
    let t90 = if delta.value().abs() > 0.0 {
        transient
            .iter()
            .filter(|(t, _)| t.value() >= injection.value())
            .find(|(_, i)| {
                if delta.value() > 0.0 {
                    i.value() >= threshold
                } else {
                    i.value() <= threshold
                }
            })
            .map(|(t, _)| Seconds::new(t.value() - injection.value()))
    } else {
        None
    };

    // Transient response time: argmax of the (coarsely smoothed) slope.
    let times = transient.time();
    let currents = transient.current();
    let mut best: Option<(f64, f64)> = None; // (slope, t)
    for k in 2..transient.len().saturating_sub(2) {
        if times[k].value() < injection.value() {
            continue;
        }
        let dt = times[k + 2].value() - times[k - 2].value();
        if dt <= 0.0 {
            continue;
        }
        let slope = ((currents[k + 2].value() - currents[k - 2].value()) / dt).abs();
        if best.map(|(s, _)| slope > s).unwrap_or(true) {
            best = Some((slope, times[k].value()));
        }
    }
    let transient_response_time = best
        .map(|(_, t)| Seconds::new(t - injection.value()))
        .filter(|_| delta.value() != 0.0);

    ChronoMeasurement {
        transient,
        injection_time: injection,
        baseline,
        steady_state,
        t90,
        transient_response_time,
    }
}

/// Runs a full calibration campaign: `n_blanks` blank measurements plus one
/// measurement per requested concentration, analyzed per the paper's
/// eqs. 5–7.
///
/// # Errors
///
/// Returns [`InstrumentError`] for invalid protocols, too few points, or
/// degenerate data.
pub fn calibrate_chrono(
    sensor: &OxidaseSensor,
    electrode: &Electrode,
    chain: &ReadoutChain,
    concentrations: &[Molar],
    n_blanks: usize,
    protocol: &ChronoProtocol,
    seed: u64,
) -> Result<CalibrationOutcome, InstrumentError> {
    let mut blanks = Vec::with_capacity(n_blanks);
    for k in 0..n_blanks {
        let m = run_chrono(
            sensor,
            electrode,
            chain,
            Molar::ZERO,
            protocol,
            seed.wrapping_add(k as u64),
        )?;
        blanks.push(m.delta().value());
    }
    let mut points = Vec::with_capacity(concentrations.len());
    for (k, &c) in concentrations.iter().enumerate() {
        let m = run_chrono(
            sensor,
            electrode,
            chain,
            c,
            protocol,
            seed.wrapping_add(1000 + k as u64),
        )?;
        points.push(CalibrationPoint {
            concentration: c,
            response: m.delta().value(),
        });
    }
    analyze_calibration(&blanks, &points, 0.10)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_afe::{ChainConfig, CurrentRange};
    use bios_biochem::Oxidase;

    fn setup() -> (OxidaseSensor, Electrode, ReadoutChain) {
        (
            OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry"),
            Electrode::paper_gold_we(),
            ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("config")),
        )
    }

    #[test]
    fn protocol_validation() {
        assert!(ChronoProtocol::default().validate().is_ok());
        let bad = ChronoProtocol {
            settle: Seconds::ZERO,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let undersampled = ChronoProtocol {
            dt: Seconds::new(10.0),
            ..Default::default()
        };
        assert!(undersampled.validate().is_err());
    }

    #[test]
    fn glucose_injection_reproduces_fig3_timing() {
        let (sensor, electrode, chain) = setup();
        let m = run_chrono(
            &sensor,
            &electrode,
            &chain,
            Molar::from_millimolar(2.0),
            &ChronoProtocol::default(),
            1,
        )
        .expect("measurement");
        assert!(m.delta().value() > 0.0, "anodic step expected");
        let t90 = m.t90.expect("response settled").value();
        // Paper Fig. 3: ≈30 s to steady state.
        assert!((t90 - 30.0).abs() < 6.0, "t90 = {t90}");
        // The transient (max-slope) time is earlier than t90.
        let tr = m.transient_response_time.expect("slope found").value();
        assert!(tr < t90, "tr = {tr}, t90 = {t90}");
    }

    #[test]
    fn response_scales_with_concentration() {
        // Single measurements carry the realistic σ_b ≈ 12 nA blank noise
        // (that's what makes the LOD 575 µM), so average replicates.
        let (sensor, electrode, chain) = setup();
        let mean_delta = |c_mm: f64, base_seed: u64| {
            let runs = 6;
            (0..runs)
                .map(|k| {
                    run_chrono(
                        &sensor,
                        &electrode,
                        &chain,
                        Molar::from_millimolar(c_mm),
                        &ChronoProtocol::default(),
                        base_seed + k,
                    )
                    .expect("measurement")
                    .delta()
                    .value()
                })
                .sum::<f64>()
                / runs as f64
        };
        let d1 = mean_delta(1.0, 100);
        let d2 = mean_delta(2.0, 200);
        assert!(
            (d2 / d1 - 2.0).abs() < 0.35,
            "expected ~2x response: {d1} vs {d2}"
        );
    }

    #[test]
    fn calibration_recovers_table_iii_sensitivity() {
        let (sensor, electrode, chain) = setup();
        let concs: Vec<Molar> = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
            .iter()
            .map(|c| Molar::from_millimolar(*c))
            .collect();
        let out = calibrate_chrono(
            &sensor,
            &electrode,
            &chain,
            &concs,
            6,
            &ChronoProtocol::default(),
            77,
        )
        .expect("calibration");
        // Sensitivity per area: slope / area ≈ 27.7 µA/(mM·cm²) within the
        // MM attenuation and noise.
        let area = electrode.geometric_area().value();
        let s_ua_mm_cm2 = out.fit.slope / area * 1e3 * 1e6 / 1e6; // A/M/cm² → µA/mM/cm² is ×1e3... compute directly:
        let s_si = out.fit.slope / area; // A/(M·cm²)
        let s_report = s_si * 1e3; // µA/(mM·cm²)
                                   // One-shot responses near the LOD carry ~±20% scatter; the bench
                                   // harness averages replicates, here we just need the right scale.
        assert!(
            (s_report - 27.7).abs() / 27.7 < 0.30,
            "sensitivity {s_report} µA/(mM·cm²)"
        );
        let _ = s_ua_mm_cm2;
        // LOD lands in the ballpark of the paper's 575 µM (within a factor
        // of ~2.5 — it is a statistical estimate from 6 blanks).
        let lod_um = out.lod.as_micromolar();
        assert!(
            lod_um > 150.0 && lod_um < 1600.0,
            "LOD {lod_um} µM vs paper 575 µM"
        );
        // Realistic blank noise near the LOD limits single-shot R².
        assert!(out.fit.r2 > 0.90, "r2 = {}", out.fit.r2);
    }

    #[test]
    fn blank_measurement_has_no_t90() {
        let (sensor, electrode, chain) = setup();
        let m = run_chrono(
            &sensor,
            &electrode,
            &chain,
            Molar::ZERO,
            &ChronoProtocol::default(),
            5,
        )
        .expect("measurement");
        // Any apparent delta is pure noise, far below a real response.
        let real = run_chrono(
            &sensor,
            &electrode,
            &chain,
            Molar::from_millimolar(2.0),
            &ChronoProtocol::default(),
            5,
        )
        .expect("measurement");
        assert!(m.delta().value().abs() < real.delta().value() / 4.0);
    }

    #[test]
    fn ascorbate_biases_reading_unless_cds_removes_it() {
        use bios_afe::{ChainConfig, CorrelatedDoubleSampler, CurrentRange, MatchingQuality};
        use bios_biochem::Analyte;

        let sensor = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
        let electrode = Electrode::paper_gold_we();
        let asc = Interferent::of(Analyte::Ascorbate).expect("registry");
        let interferents = [(asc, Molar::from_micromolar(100.0))];
        let protocol = ChronoProtocol::default();
        let c = Molar::from_millimolar(2.0);

        let plain_cfg = ChainConfig::for_range(CurrentRange::oxidase()).expect("range");
        let plain = ReadoutChain::new(plain_cfg);
        let with_cds = ReadoutChain::new(
            plain_cfg.with_cds(CorrelatedDoubleSampler::new(MatchingQuality::Monolithic)),
        );

        let clean = run_chrono(&sensor, &electrode, &plain, c, &protocol, 4)
            .expect("measurement")
            .delta()
            .value();
        let biased = run_chrono_with_interferents(
            &sensor,
            &electrode,
            &plain,
            c,
            &interferents,
            &protocol,
            4,
        )
        .expect("measurement")
        .delta()
        .value();
        let corrected = run_chrono_with_interferents(
            &sensor,
            &electrode,
            &with_cds,
            c,
            &interferents,
            &protocol,
            4,
        )
        .expect("measurement")
        .delta()
        .value();

        // 100 µM ascorbate at 8 µA/(mM·cm²) on 0.0023 cm² ≈ 1.8 nA of bias
        // — small against the ~120 nA glucose signal but systematic.
        let expected_bias = 8.0e-3 * 100e-6 * electrode.geometric_area().value();
        assert!(
            (biased - clean - expected_bias).abs() < 0.5 * expected_bias,
            "bias {} vs expected {expected_bias}",
            biased - clean
        );
        // CDS cancels it (same seed → same noise; only the blank path differs).
        assert!(
            (corrected - clean).abs() < 0.2 * expected_bias,
            "cds residual {}",
            corrected - clean
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (sensor, electrode, chain) = setup();
        let run = |seed| {
            run_chrono(
                &sensor,
                &electrode,
                &chain,
                Molar::from_millimolar(1.0),
                &ChronoProtocol::default(),
                seed,
            )
            .expect("measurement")
        };
        assert_eq!(run(9).transient, run(9).transient);
    }
}
