//! Peak detection on voltammograms: find the cathodic maxima whose
//! "height is proportional to the target concentration, while position
//! gives information on the type of molecules" (paper §I-B).

use crate::error::InstrumentError;
use bios_units::{Amps, Volts};

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Peak {
    /// Potential at the peak apex.
    pub potential: Volts,
    /// Raw current at the apex.
    pub current: Amps,
    /// Topographic prominence (baseline-corrected height magnitude).
    pub height: Amps,
    /// Sample index of the apex in the analyzed segment.
    pub index: usize,
}

/// Options for peak detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakOptions {
    /// Minimum prominence for a peak to be reported.
    pub min_height: Amps,
    /// Moving-average smoothing half-width in samples (0 = none).
    pub smoothing: usize,
}

impl Default for PeakOptions {
    fn default() -> Self {
        Self {
            min_height: Amps::from_nanoamps(0.05),
            smoothing: 2,
        }
    }
}

/// Detects *cathodic* peaks (local minima of the current, reported with
/// positive `height`) on a potential-sorted or time-ordered sweep segment.
///
/// The heights use topographic prominence — the drop from the apex to the
/// higher of the two flanking cols — which approximates the
/// baseline-corrected peak height electrochemists read off a voltammogram.
///
/// # Errors
///
/// Returns [`InstrumentError::InsufficientData`] for fewer than 5 samples
/// and [`InstrumentError::NonFiniteData`] if any current in the sweep is
/// NaN or infinite.
///
/// # Example
///
/// ```
/// use bios_instrument::{detect_cathodic_peaks, PeakOptions};
/// use bios_units::{Amps, Volts};
///
/// # fn main() -> Result<(), bios_instrument::InstrumentError> {
/// // A synthetic cathodic peak at −0.4 V.
/// let sweep: Vec<(Volts, Amps)> = (0..200)
///     .map(|k| {
///         let e = -0.8 + 0.004 * k as f64;
///         let i = -1e-9 * (-((e + 0.4) / 0.05).powi(2)).exp();
///         (Volts::new(e), Amps::new(i))
///     })
///     .collect();
/// let peaks = detect_cathodic_peaks(&sweep, PeakOptions::default())?;
/// assert_eq!(peaks.len(), 1);
/// assert!((peaks[0].potential.value() + 0.4).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn detect_cathodic_peaks(
    sweep: &[(Volts, Amps)],
    options: PeakOptions,
) -> Result<Vec<Peak>, InstrumentError> {
    if sweep.len() < 5 {
        return Err(InstrumentError::InsufficientData {
            needed: 5,
            got: sweep.len(),
        });
    }
    if sweep
        .iter()
        .any(|(e, i)| !e.value().is_finite() || !i.value().is_finite())
    {
        return Err(InstrumentError::non_finite("peak detection"));
    }
    // Work on the negated signal so peaks are maxima.
    let raw: Vec<f64> = sweep.iter().map(|(_, i)| -i.value()).collect();
    let y = smooth(&raw, options.smoothing);

    let mut peaks = Vec::new();
    for k in 1..y.len() - 1 {
        if !(y[k] > y[k - 1] && y[k] >= y[k + 1]) {
            continue;
        }
        // Topographic prominence: walk outward to the higher cols.
        let mut left_col = y[k];
        for j in (0..k).rev() {
            left_col = left_col.min(y[j]);
            if y[j] > y[k] {
                break;
            }
        }
        let mut right_col = y[k];
        for j in k + 1..y.len() {
            right_col = right_col.min(y[j]);
            if y[j] > y[k] {
                break;
            }
        }
        let prominence = y[k] - left_col.max(right_col);
        if prominence >= options.min_height.value() {
            peaks.push(Peak {
                potential: sweep[k].0,
                current: sweep[k].1,
                height: Amps::new(prominence),
                index: k,
            });
        }
    }
    // Most prominent first. Total order is safe: non-finite inputs were
    // rejected above, so every prominence is finite.
    peaks.sort_by(|a, b| b.height.value().total_cmp(&a.height.value()));
    Ok(peaks)
}

/// Detects *anodic* peaks (local maxima of the current) — the mirror of
/// [`detect_cathodic_peaks`], used for oxidation waves such as the H₂O₂
/// signal or the return sweep of a reversible couple.
///
/// # Errors
///
/// Returns [`InstrumentError::InsufficientData`] for fewer than 5 samples.
pub fn detect_anodic_peaks(
    sweep: &[(Volts, Amps)],
    options: PeakOptions,
) -> Result<Vec<Peak>, InstrumentError> {
    let negated: Vec<(Volts, Amps)> = sweep.iter().map(|(e, i)| (*e, -*i)).collect();
    let mut peaks = detect_cathodic_peaks(&negated, options)?;
    for p in &mut peaks {
        p.current = -p.current;
    }
    Ok(peaks)
}

/// Extracts the anodic (upward-potential) leg of a voltammogram as
/// `(E, i)` pairs, ready for [`detect_anodic_peaks`].
pub fn anodic_segment(cv: &bios_electrochem::Voltammogram) -> Vec<(Volts, Amps)> {
    let segs = cv.segments();
    for range in segs {
        if range.len() >= 2 {
            let e = cv.potential();
            if e[range.end - 1].value() > e[range.start].value() {
                return range
                    .map(|k| (cv.potential()[k], cv.current()[k]))
                    .collect();
            }
        }
    }
    Vec::new()
}

/// Extracts the cathodic (downward-potential) leg of a voltammogram as
/// `(E, i)` pairs, ready for [`detect_cathodic_peaks`].
pub fn cathodic_segment(cv: &bios_electrochem::Voltammogram) -> Vec<(Volts, Amps)> {
    let segs = cv.segments();
    for range in segs {
        if range.len() >= 2 {
            let e = cv.potential();
            if e[range.end - 1].value() < e[range.start].value() {
                return range
                    .map(|k| (cv.potential()[k], cv.current()[k]))
                    .collect();
            }
        }
    }
    Vec::new()
}

fn smooth(y: &[f64], half_width: usize) -> Vec<f64> {
    if half_width == 0 {
        return y.to_vec();
    }
    let n = y.len();
    (0..n)
        .map(|k| {
            let lo = k.saturating_sub(half_width);
            let hi = (k + half_width + 1).min(n);
            y[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_sweep(centers: &[(f64, f64)]) -> Vec<(Volts, Amps)> {
        (0..400)
            .map(|k| {
                let e = -0.9 + 0.0025 * k as f64;
                let mut i = 0.0;
                for (c, a) in centers {
                    i -= a * (-((e - c) / 0.04).powi(2)).exp();
                }
                (Volts::new(e), Amps::new(i))
            })
            .collect()
    }

    #[test]
    fn finds_two_separated_peaks_in_order_of_height() {
        let sweep = gaussian_sweep(&[(-0.25, 1e-9), (-0.40, 5e-9)]);
        let peaks = detect_cathodic_peaks(&sweep, PeakOptions::default()).expect("enough data");
        assert_eq!(peaks.len(), 2, "{peaks:?}");
        // Sorted by prominence: aminopyrine-like first.
        assert!((peaks[0].potential.value() + 0.40).abs() < 0.01);
        assert!((peaks[1].potential.value() + 0.25).abs() < 0.01);
        assert!(peaks[0].height.value() > peaks[1].height.value());
    }

    #[test]
    fn height_approximates_amplitude() {
        let sweep = gaussian_sweep(&[(-0.4, 2e-9)]);
        let peaks = detect_cathodic_peaks(&sweep, PeakOptions::default()).expect("enough data");
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].height.as_nanoamps() - 2.0).abs() < 0.1);
    }

    #[test]
    fn min_height_filters_noise_bumps() {
        let mut sweep = gaussian_sweep(&[(-0.4, 2e-9)]);
        // Add a tiny wiggle.
        for (k, (_, i)) in sweep.iter_mut().enumerate() {
            *i += Amps::new(2e-11 * ((k as f64) * 0.9).sin());
        }
        let strict = PeakOptions {
            min_height: Amps::from_nanoamps(0.5),
            smoothing: 2,
        };
        let peaks = detect_cathodic_peaks(&sweep, strict).expect("enough data");
        assert_eq!(peaks.len(), 1);
    }

    #[test]
    fn anodic_peaks_are_ignored() {
        let sweep: Vec<(Volts, Amps)> = (0..100)
            .map(|k| {
                let e = -0.5 + 0.005 * k as f64;
                // Positive (anodic) bump only.
                let i = 1e-9 * (-((e + 0.25) / 0.04).powi(2)).exp();
                (Volts::new(e), Amps::new(i))
            })
            .collect();
        let peaks = detect_cathodic_peaks(&sweep, PeakOptions::default()).expect("enough data");
        assert!(peaks.is_empty(), "{peaks:?}");
    }

    #[test]
    fn non_finite_samples_are_a_typed_error() {
        let mut sweep = gaussian_sweep(&[(-0.4, 2e-9)]);
        sweep[17].1 = Amps::new(f64::NAN);
        assert!(matches!(
            detect_cathodic_peaks(&sweep, PeakOptions::default()),
            Err(InstrumentError::NonFiniteData { .. })
        ));
        let mut sweep = gaussian_sweep(&[(-0.4, 2e-9)]);
        sweep[30].1 = Amps::new(f64::INFINITY);
        assert!(matches!(
            detect_anodic_peaks(&sweep, PeakOptions::default()),
            Err(InstrumentError::NonFiniteData { .. })
        ));
    }

    #[test]
    fn too_few_samples_is_an_error() {
        let sweep = vec![(Volts::ZERO, Amps::ZERO); 3];
        assert!(matches!(
            detect_cathodic_peaks(&sweep, PeakOptions::default()),
            Err(InstrumentError::InsufficientData { .. })
        ));
    }

    #[test]
    fn smoothing_preserves_flat_signals() {
        let y = vec![3.0; 20];
        assert_eq!(smooth(&y, 3), y);
    }

    #[test]
    fn anodic_detection_mirrors_cathodic() {
        // A positive (anodic) bump.
        let sweep: Vec<(Volts, Amps)> = (0..200)
            .map(|k| {
                let e = -0.2 + 0.004 * k as f64;
                let i = 2e-9 * (-((e - 0.23) / 0.05).powi(2)).exp();
                (Volts::new(e), Amps::new(i))
            })
            .collect();
        let anodic = detect_anodic_peaks(&sweep, PeakOptions::default()).expect("peaks");
        assert_eq!(anodic.len(), 1);
        assert!((anodic[0].potential.value() - 0.23).abs() < 0.01);
        assert!(anodic[0].current.value() > 0.0, "current keeps its sign");
        assert!((anodic[0].height.as_nanoamps() - 2.0).abs() < 0.1);
        // And the cathodic detector sees nothing here.
        let cathodic = detect_cathodic_peaks(&sweep, PeakOptions::default()).expect("peaks");
        assert!(cathodic.is_empty());
    }

    #[test]
    fn segment_extractors_split_a_full_cycle() {
        use bios_electrochem::Voltammogram;
        use bios_units::Seconds;
        let mut cv = Voltammogram::new();
        // Down 0 → −0.5 then up −0.5 → 0.
        for k in 0..=50 {
            cv.push(
                Seconds::new(k as f64),
                Volts::new(-0.01 * k as f64),
                Amps::new(-1e-9),
            );
        }
        for k in 1..=50 {
            cv.push(
                Seconds::new(50.0 + k as f64),
                Volts::new(-0.5 + 0.01 * k as f64),
                Amps::new(1e-9),
            );
        }
        let down = cathodic_segment(&cv);
        let up = anodic_segment(&cv);
        assert!(
            down.first().expect("nonempty").0.value() > down.last().expect("nonempty").0.value()
        );
        assert!(up.first().expect("nonempty").0.value() < up.last().expect("nonempty").0.value());
        assert!(down.iter().all(|(_, i)| i.value() < 0.0));
        // Segments share the vertex sample; skip it on the return leg.
        assert!(up.iter().skip(1).all(|(_, i)| i.value() > 0.0));
    }

    #[test]
    fn peak_on_sloping_baseline_still_found() {
        let sweep: Vec<(Volts, Amps)> = (0..400)
            .map(|k| {
                let e = -0.9 + 0.0025 * k as f64;
                // Sloping background + one peak.
                let i = -2e-9 * e - 3e-9 * (-((e + 0.4) / 0.04).powi(2)).exp();
                (Volts::new(e), Amps::new(i))
            })
            .collect();
        let peaks = detect_cathodic_peaks(&sweep, PeakOptions::default()).expect("enough data");
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].potential.value() + 0.4).abs() < 0.015);
    }
}
