//! Error type for the measurement-science layer.

/// Errors produced while running protocols or analyzing data.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrumentError {
    /// A protocol parameter was out of its valid domain.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// Not enough data points for the requested analysis.
    InsufficientData {
        /// What the analysis needed.
        needed: usize,
        /// What it got.
        got: usize,
    },
    /// A numerical fit failed (degenerate input).
    FitFailed(String),
    /// The underlying AFE rejected the measurement.
    Afe(bios_afe::AfeError),
    /// The underlying biochemistry model rejected the configuration.
    Biochem(bios_biochem::BiochemError),
}

impl InstrumentError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl core::fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            Self::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed} points, got {got}")
            }
            Self::FitFailed(why) => write!(f, "fit failed: {why}"),
            Self::Afe(e) => write!(f, "afe error: {e}"),
            Self::Biochem(e) => write!(f, "biochemistry error: {e}"),
        }
    }
}

impl std::error::Error for InstrumentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Afe(e) => Some(e),
            Self::Biochem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bios_afe::AfeError> for InstrumentError {
    fn from(e: bios_afe::AfeError) -> Self {
        Self::Afe(e)
    }
}

impl From<bios_biochem::BiochemError> for InstrumentError {
    fn from(e: bios_biochem::BiochemError) -> Self {
        Self::Biochem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = InstrumentError::invalid("dt", "must be positive");
        assert_eq!(e.to_string(), "invalid parameter dt: must be positive");
        let wrapped: InstrumentError = bios_afe::AfeError::BadChannel {
            requested: 9,
            available: 5,
        }
        .into();
        assert!(wrapped.to_string().contains("afe error"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<InstrumentError>();
    }
}
