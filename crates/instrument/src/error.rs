//! Error type for the measurement-science layer.

use bios_units::ErrorSeverity;

/// Errors produced while running protocols or analyzing data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InstrumentError {
    /// A protocol parameter was out of its valid domain.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// Not enough data points for the requested analysis.
    InsufficientData {
        /// What the analysis needed.
        needed: usize,
        /// What it got.
        got: usize,
    },
    /// A numerical fit failed (degenerate input).
    FitFailed(String),
    /// Input data contained NaN or infinite values.
    NonFiniteData {
        /// Which analysis rejected the data.
        context: &'static str,
    },
    /// The underlying AFE rejected the measurement.
    Afe(bios_afe::AfeError),
    /// The underlying biochemistry model rejected the configuration.
    Biochem(bios_biochem::BiochemError),
}

impl InstrumentError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    pub(crate) fn non_finite(context: &'static str) -> Self {
        Self::NonFiniteData { context }
    }

    /// How badly this error compromises the measurement.
    ///
    /// Configuration defects are [`ErrorSeverity::Fatal`]; degenerate or
    /// corrupted data ([`Self::InsufficientData`], [`Self::FitFailed`],
    /// [`Self::NonFiniteData`]) is [`ErrorSeverity::Degraded`] — a retry
    /// under a fresh seed or on a different electrode can succeed.
    /// Wrapped lower-layer errors report the inner severity.
    pub fn severity(&self) -> ErrorSeverity {
        match self {
            Self::InvalidParameter { .. } => ErrorSeverity::Fatal,
            Self::InsufficientData { .. } | Self::FitFailed(_) | Self::NonFiniteData { .. } => {
                ErrorSeverity::Degraded
            }
            Self::Afe(e) => e.severity(),
            Self::Biochem(_) => ErrorSeverity::Fatal,
        }
    }

    /// Whether an automatic retry is worthwhile.
    pub fn is_recoverable(&self) -> bool {
        self.severity().is_recoverable()
    }
}

impl core::fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            Self::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed} points, got {got}")
            }
            Self::FitFailed(why) => write!(f, "fit failed: {why}"),
            Self::NonFiniteData { context } => {
                write!(f, "non-finite data rejected by {context}")
            }
            Self::Afe(e) => write!(f, "afe error: {e}"),
            Self::Biochem(e) => write!(f, "biochemistry error: {e}"),
        }
    }
}

impl std::error::Error for InstrumentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Afe(e) => Some(e),
            Self::Biochem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bios_afe::AfeError> for InstrumentError {
    fn from(e: bios_afe::AfeError) -> Self {
        Self::Afe(e)
    }
}

impl From<bios_biochem::BiochemError> for InstrumentError {
    fn from(e: bios_biochem::BiochemError) -> Self {
        Self::Biochem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = InstrumentError::invalid("dt", "must be positive");
        assert_eq!(e.to_string(), "invalid parameter dt: must be positive");
        let wrapped: InstrumentError = bios_afe::AfeError::BadChannel {
            requested: 9,
            available: 5,
        }
        .into();
        assert!(wrapped.to_string().contains("afe error"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<InstrumentError>();
    }

    #[test]
    fn severity_taxonomy() {
        assert_eq!(
            InstrumentError::invalid("dt", "must be positive").severity(),
            ErrorSeverity::Fatal
        );
        assert_eq!(
            InstrumentError::non_finite("peak detection").severity(),
            ErrorSeverity::Degraded
        );
        assert!(InstrumentError::non_finite("peak detection").is_recoverable());
        // Wrapped AFE errors surface the inner severity.
        let wrapped: InstrumentError = bios_afe::AfeError::BadChannel {
            requested: 9,
            available: 5,
        }
        .into();
        assert_eq!(wrapped.severity(), ErrorSeverity::Fatal);
    }
}
