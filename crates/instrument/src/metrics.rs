//! Assembled performance reports — the per-sensor rows of the paper's
//! Table III plus the §II-B timing properties.

use crate::calibration::CalibrationOutcome;
use bios_units::{Seconds, SquareCentimeters};

/// A complete characterization of one functionalized electrode.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerformanceReport {
    /// Target analyte name.
    pub target: String,
    /// Probe name.
    pub probe: String,
    /// Readout technique name.
    pub technique: String,
    /// Sensitivity in µA/(mM·cm²) (Table III units).
    pub sensitivity_ua_per_mm_cm2: f64,
    /// Limit of detection in µM.
    pub lod_um: f64,
    /// Linear range in mM.
    pub linear_range_mm: (f64, f64),
    /// eq. 7 maximum nonlinearity over the linear range.
    pub nl_max: f64,
    /// Calibration R².
    pub r2: f64,
    /// Steady-state response time `t₉₀`, when measured.
    pub t90: Option<Seconds>,
    /// Sample throughput per hour, when timing was measured.
    pub throughput_per_hour: Option<f64>,
}

impl PerformanceReport {
    /// Builds a report from a calibration outcome where the response was a
    /// current in amperes measured on an electrode of the given area.
    pub fn from_calibration(
        target: impl Into<String>,
        probe: impl Into<String>,
        technique: impl Into<String>,
        outcome: &CalibrationOutcome,
        area: SquareCentimeters,
    ) -> Self {
        let s_si = outcome.fit.slope / area.value(); // A/(M·cm²)
        Self {
            target: target.into(),
            probe: probe.into(),
            technique: technique.into(),
            sensitivity_ua_per_mm_cm2: s_si * 1e3,
            lod_um: outcome.lod.as_micromolar(),
            linear_range_mm: (
                outcome.linear_range.lo().as_millimolar(),
                outcome.linear_range.hi().as_millimolar(),
            ),
            nl_max: outcome.nl_max,
            r2: outcome.fit.r2,
            t90: None,
            throughput_per_hour: None,
        }
    }

    /// Attaches timing: `t₉₀` plus a throughput estimate assuming one
    /// sample needs `settle + 2·t₉₀` (response + recovery, paper §II-B).
    pub fn with_timing(mut self, t90: Seconds, settle: Seconds) -> Self {
        let cycle = settle.value() + 2.0 * t90.value();
        self.t90 = Some(t90);
        self.throughput_per_hour = (cycle > 0.0).then(|| 3600.0 / cycle);
        self
    }

    /// Renders the Table III-style row.
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:<22} {:>8.2} {:>10.0} {:>6.2} - {:<6.2} {:>5.3} {:>6.3}",
            self.target.to_uppercase(),
            self.probe,
            self.sensitivity_ua_per_mm_cm2,
            self.lod_um,
            self.linear_range_mm.0,
            self.linear_range_mm.1,
            self.nl_max,
            self.r2,
        )
    }

    /// The header matching [`PerformanceReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<14} {:<22} {:>8} {:>10} {:>15} {:>5} {:>6}",
            "Target", "Probe", "S", "LOD(µM)", "Linear(mM)", "NLmax", "R²"
        )
    }
}

impl core::fmt::Display for PerformanceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {} via {} — S = {:.2} µA/(mM·cm²), LOD = {:.0} µM, linear {:.2}-{:.2} mM",
            self.target,
            self.probe,
            self.technique,
            self.sensitivity_ua_per_mm_cm2,
            self.lod_um,
            self.linear_range_mm.0,
            self.linear_range_mm.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{analyze_calibration, CalibrationPoint};
    use bios_units::Molar;

    fn outcome() -> CalibrationOutcome {
        let blanks = [0.0, 1e-9, -1e-9, 2e-9];
        let points: Vec<CalibrationPoint> = (1..=6)
            .map(|k| CalibrationPoint {
                concentration: Molar::from_millimolar(k as f64),
                response: 27.7e-3 * 0.0023 * k as f64 * 1e-3,
            })
            .collect();
        analyze_calibration(&blanks, &points, 0.1).expect("analysis")
    }

    #[test]
    fn report_converts_units() {
        let r = PerformanceReport::from_calibration(
            "glucose",
            "glucose oxidase",
            "chronoamperometry",
            &outcome(),
            SquareCentimeters::new(0.0023),
        );
        assert!((r.sensitivity_ua_per_mm_cm2 - 27.7).abs() < 0.3);
        assert!(r.lod_um > 0.0);
        assert!(r.r2 > 0.999);
    }

    #[test]
    fn timing_produces_throughput() {
        let r = PerformanceReport::from_calibration(
            "glucose",
            "glucose oxidase",
            "chronoamperometry",
            &outcome(),
            SquareCentimeters::new(0.0023),
        )
        .with_timing(Seconds::new(30.0), Seconds::new(10.0));
        // 10 + 60 s per sample → ~51 per hour.
        let tph = r.throughput_per_hour.expect("timing set");
        assert!((tph - 3600.0 / 70.0).abs() < 1e-9);
    }

    #[test]
    fn table_rendering_is_aligned() {
        let r = PerformanceReport::from_calibration(
            "glucose",
            "glucose oxidase",
            "chronoamperometry",
            &outcome(),
            SquareCentimeters::new(0.0023),
        );
        let row = r.table_row();
        assert!(row.contains("GLUCOSE"));
        assert!(!PerformanceReport::table_header().is_empty());
        let shown = format!("{r}");
        assert!(shown.contains("µA/(mM·cm²)"));
    }
}
