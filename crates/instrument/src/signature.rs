//! Electrochemical signature matching: assign detected peaks to analytes
//! by their reduction potentials (paper §I-B: "position gives information
//! on the type of molecules that are oxidized, like an electrochemical
//! signature").

use crate::peaks::Peak;
use bios_biochem::Analyte;
use bios_units::Volts;

/// The default half-width of the potential window used to claim a peak.
///
/// Catalytic CYP waves are ≈45 mV FWHM in this workspace, and the closest
/// Table II pair (torsemide −19 mV vs diclofenac −41 mV) is 22 mV apart —
/// a 30 mV window keeps those separable while tolerating noise-induced
/// apex wobble.
pub const DEFAULT_WINDOW: Volts = Volts::new(0.030);

/// An expected signature entry: an analyte and where its peak should be.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExpectedPeak {
    /// The analyte.
    pub analyte: Analyte,
    /// Its nominal reduction potential (Table II).
    pub potential: Volts,
}

/// The outcome of matching one expected analyte against detected peaks.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SignatureMatch {
    /// The analyte looked for.
    pub analyte: Analyte,
    /// Nominal potential from the registry.
    pub expected: Volts,
    /// The matched peak, if one fell inside the window.
    pub peak: Option<Peak>,
    /// Apex-position error (`found − expected`) when matched.
    pub position_error: Option<Volts>,
}

impl SignatureMatch {
    /// Whether the analyte was identified.
    pub fn identified(&self) -> bool {
        self.peak.is_some()
    }
}

/// Matches detected peaks against an expected signature table.
///
/// Each expected analyte claims the most prominent unclaimed peak within
/// `window` of its nominal potential; peaks are consumed greedily in
/// prominence order so a large neighboring peak cannot double-count.
///
/// # Example
///
/// ```
/// use bios_biochem::Analyte;
/// use bios_instrument::{match_signature, ExpectedPeak, Peak, DEFAULT_WINDOW};
/// use bios_units::{Amps, Volts};
///
/// let detected = vec![Peak {
///     potential: Volts::new(-0.405),
///     current: Amps::new(-2e-9),
///     height: Amps::new(2e-9),
///     index: 10,
/// }];
/// let expected = [ExpectedPeak {
///     analyte: Analyte::Aminopyrine,
///     potential: Volts::new(-0.400),
/// }];
/// let matches = match_signature(&detected, &expected, DEFAULT_WINDOW);
/// assert!(matches[0].identified());
/// ```
pub fn match_signature(
    detected: &[Peak],
    expected: &[ExpectedPeak],
    window: Volts,
) -> Vec<SignatureMatch> {
    let mut claimed = vec![false; detected.len()];
    let mut out = Vec::with_capacity(expected.len());
    for exp in expected {
        // `detected` arrives prominence-sorted from the peak detector; take
        // the first unclaimed peak in window.
        let hit = detected.iter().enumerate().find(|(k, p)| {
            !claimed[*k] && (p.potential - exp.potential).abs().value() <= window.value()
        });
        match hit {
            Some((k, p)) => {
                claimed[k] = true;
                out.push(SignatureMatch {
                    analyte: exp.analyte,
                    expected: exp.potential,
                    peak: Some(*p),
                    position_error: Some(p.potential - exp.potential),
                });
            }
            None => out.push(SignatureMatch {
                analyte: exp.analyte,
                expected: exp.potential,
                peak: None,
                position_error: None,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::Amps;

    fn peak(e: f64, h: f64) -> Peak {
        Peak {
            potential: Volts::new(e),
            current: Amps::new(-h),
            height: Amps::new(h),
            index: 0,
        }
    }

    #[test]
    fn matches_within_window_and_reports_error() {
        let detected = vec![peak(-0.256, 1e-9)];
        let expected = [ExpectedPeak {
            analyte: Analyte::Benzphetamine,
            potential: Volts::new(-0.250),
        }];
        let m = match_signature(&detected, &expected, DEFAULT_WINDOW);
        assert!(m[0].identified());
        assert!((m[0].position_error.expect("matched").as_millivolts() + 6.0).abs() < 0.01);
    }

    #[test]
    fn misses_outside_window() {
        let detected = vec![peak(-0.32, 1e-9)];
        let expected = [ExpectedPeak {
            analyte: Analyte::Benzphetamine,
            potential: Volts::new(-0.250),
        }];
        let m = match_signature(&detected, &expected, DEFAULT_WINDOW);
        assert!(!m[0].identified());
    }

    #[test]
    fn peaks_are_not_double_claimed() {
        // One real peak between two expected analytes: only one claims it.
        let detected = vec![peak(-0.030, 1e-9)];
        let expected = [
            ExpectedPeak {
                analyte: Analyte::Torsemide,
                potential: Volts::new(-0.019),
            },
            ExpectedPeak {
                analyte: Analyte::Diclofenac,
                potential: Volts::new(-0.041),
            },
        ];
        let m = match_signature(&detected, &expected, DEFAULT_WINDOW);
        let identified = m.iter().filter(|x| x.identified()).count();
        assert_eq!(identified, 1);
    }

    #[test]
    fn two_peaks_two_analytes() {
        let detected = vec![peak(-0.398, 5e-9), peak(-0.252, 1e-9)];
        let expected = [
            ExpectedPeak {
                analyte: Analyte::Benzphetamine,
                potential: Volts::new(-0.250),
            },
            ExpectedPeak {
                analyte: Analyte::Aminopyrine,
                potential: Volts::new(-0.400),
            },
        ];
        let m = match_signature(&detected, &expected, DEFAULT_WINDOW);
        assert!(m.iter().all(|x| x.identified()));
        assert_eq!(m[0].peak.expect("matched").height, Amps::new(1e-9));
        assert_eq!(m[1].peak.expect("matched").height, Amps::new(5e-9));
    }

    #[test]
    fn empty_inputs() {
        assert!(match_signature(&[], &[], DEFAULT_WINDOW).is_empty());
        let expected = [ExpectedPeak {
            analyte: Analyte::Clozapine,
            potential: Volts::new(-0.265),
        }];
        let m = match_signature(&[], &expected, DEFAULT_WINDOW);
        assert_eq!(m.len(), 1);
        assert!(!m[0].identified());
    }
}
