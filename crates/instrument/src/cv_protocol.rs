//! Cyclic voltammetry protocol: the cytochrome P450 readout of paper
//! Table II, with peak detection and signature matching.

use crate::calibration::{analyze_calibration, CalibrationOutcome, CalibrationPoint};
use crate::error::InstrumentError;
use crate::peaks::{cathodic_segment, detect_cathodic_peaks, Peak, PeakOptions};
use crate::signature::{match_signature, ExpectedPeak, SignatureMatch, DEFAULT_WINDOW};
use bios_afe::ReadoutChain;
use bios_biochem::{Analyte, CypSensor};
use bios_electrochem::{Electrode, PotentialProgram, Voltammogram};
use bios_units::{Amps, Molar, Seconds, Volts, VoltsPerSecond, T_ROOM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a CV measurement.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CvProtocol {
    /// Scan rate — the paper's guidance is ≈20 mV/s (§II-C).
    pub scan_rate: VoltsPerSecond,
    /// Peak detection options are derived from this floor.
    pub min_peak_height: Amps,
}

impl CvProtocol {
    /// Validates the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`InstrumentError::InvalidParameter`] for a non-positive
    /// scan rate.
    pub fn validate(&self) -> Result<(), InstrumentError> {
        if self.scan_rate.value() <= 0.0 {
            return Err(InstrumentError::invalid("scan_rate", "must be positive"));
        }
        Ok(())
    }
}

impl Default for CvProtocol {
    fn default() -> Self {
        Self {
            scan_rate: VoltsPerSecond::from_millivolts_per_second(20.0),
            min_peak_height: Amps::from_picoamps(50.0),
        }
    }
}

/// The analyzed result of one CV measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CvMeasurement {
    /// The recorded voltammogram (chain output).
    pub voltammogram: Voltammogram,
    /// Detected cathodic peaks, most prominent first.
    pub peaks: Vec<Peak>,
    /// Signature matches against the sensor's substrate table.
    pub matches: Vec<SignatureMatch>,
}

impl CvMeasurement {
    /// The matched peak height for an analyte, if identified.
    pub fn peak_height(&self, analyte: Analyte) -> Option<Amps> {
        self.matches
            .iter()
            .find(|m| m.analyte == analyte)
            .and_then(|m| m.peak.map(|p| p.height))
    }
}

/// Runs one CV measurement of a drug panel on a CYP sensor through the
/// readout chain.
///
/// Sensor-side blank noise is modeled per substrate: each catalytic wave's
/// amplitude is perturbed by a per-run draw from `N(0, σ_blank·A)`, which is
/// exactly the run-to-run peak-height variability behind the Table III LODs.
///
/// # Errors
///
/// Returns [`InstrumentError`] for invalid protocols or AFE rejects.
///
/// # Example
///
/// ```
/// use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
/// use bios_biochem::{Analyte, CypIsoform, CypSensor};
/// use bios_electrochem::Electrode;
/// use bios_instrument::{run_cv, CvProtocol};
/// use bios_units::Molar;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sensor = CypSensor::from_registry(CypIsoform::Cyp2B4)?;
/// // The paper's CYP range class is for ≈1 cm² electrodes; scale it to the
/// // 0.23 mm² biointerface WE.
/// let range = CurrentRange::cytochrome().scaled(0.0023);
/// let chain = ReadoutChain::new(ChainConfig::for_range(range)?);
/// let m = run_cv(
///     &sensor,
///     &Electrode::paper_gold_we(),
///     &chain,
///     &[(Analyte::Benzphetamine, Molar::from_millimolar(1.0))],
///     &CvProtocol::default(),
///     42,
/// )?;
/// assert!(m.peak_height(Analyte::Benzphetamine).is_some());
/// # Ok(())
/// # }
/// ```
pub fn run_cv(
    sensor: &CypSensor,
    electrode: &Electrode,
    chain: &ReadoutChain,
    concentrations: &[(Analyte, Molar)],
    protocol: &CvProtocol,
    seed: u64,
) -> Result<CvMeasurement, InstrumentError> {
    protocol.validate()?;
    let area = electrode.geometric_area();
    let (start, vertex) = sensor.recommended_window();
    let program = PotentialProgram::cyclic_single(start, vertex, protocol.scan_rate);
    let half = program.duration().value() / 2.0;

    // Per-run amplitude perturbations, one per substrate.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xcc_5eed);
    let mut perturbations: Vec<(Analyte, Volts, f64)> = Vec::new();
    for a in sensor.substrates() {
        let sd = sensor
            .blank_sd(a)
            .ok_or_else(|| InstrumentError::invalid("substrate", format!("{a} not registered")))?
            .value()
            * area.value();
        let e = sensor
            .nominal_peak_potential(a)
            .ok_or_else(|| InstrumentError::invalid("substrate", format!("{a} not registered")))?;
        perturbations.push((a, e, gaussian(&mut rng) * sd));
    }
    let rate = protocol.scan_rate;
    let samples = chain.acquire(
        &program,
        Seconds::new(program.suggested_dt().value().max(0.02)),
        seed,
        move |t, e| {
            let direction_up = t.value() >= half;
            let j = sensor.current_density(e, rate, direction_up, concentrations, T_ROOM);
            let mut i = j.value() * area.value();
            if !direction_up {
                // Peak-amplitude noise: same line shape as the catalytic wave.
                for (_, e_peak, n) in &perturbations {
                    let xi = (2.0 * bios_units::FARADAY * (e.value() - e_peak.value())
                        / (bios_units::GAS_CONSTANT * T_ROOM.value()))
                    .clamp(-200.0, 200.0);
                    let shape = 4.0 * xi.exp() / (1.0 + xi.exp()).powi(2);
                    i -= n * shape;
                }
            }
            Amps::new(i)
        },
        |_t, _e| Amps::ZERO,
    )?;

    let voltammogram: Voltammogram = samples
        .iter()
        .map(|s| (s.t, s.applied, s.current))
        .collect();
    let segment = cathodic_segment(&voltammogram);
    let peaks = detect_cathodic_peaks(
        &segment,
        PeakOptions {
            min_height: protocol.min_peak_height,
            smoothing: 2,
        },
    )?;
    let mut expected: Vec<ExpectedPeak> = Vec::new();
    for a in sensor.substrates() {
        let potential = sensor
            .nominal_peak_potential(a)
            .ok_or_else(|| InstrumentError::invalid("substrate", format!("{a} not registered")))?;
        expected.push(ExpectedPeak {
            analyte: a,
            potential,
        });
    }
    let matches = match_signature(&peaks, &expected, DEFAULT_WINDOW);
    Ok(CvMeasurement {
        voltammogram,
        peaks,
        matches,
    })
}

/// Linear readout of the baseline-corrected cathodic current at an expected
/// peak potential: apex current against the mean of two flanking samples
/// ±100 mV away. Unlike peak detection this is signed and linear in the
/// wave amplitude, which makes it usable for blank replicates (where no
/// peak exists) — the response statistic for LOD campaigns.
pub fn peak_readout(segment: &[(Volts, Amps)], expected: Volts) -> Option<Amps> {
    let at = |target: f64| -> Option<f64> {
        segment
            .iter()
            .min_by(|a, b| {
                (a.0.value() - target)
                    .abs()
                    .total_cmp(&(b.0.value() - target).abs())
            })
            .map(|(_, i)| i.value())
    };
    let apex = at(expected.value())?;
    let left = at(expected.value() - 0.1)?;
    let right = at(expected.value() + 0.1)?;
    // Cathodic peaks are negative; report the positive height.
    Some(Amps::new((left + right) / 2.0 - apex))
}

/// Runs a CV calibration campaign for one analyte on a CYP sensor:
/// `n_blanks` blank sweeps plus one sweep per concentration, with the
/// response taken by [`peak_readout`] at the analyte's nominal potential.
///
/// # Errors
///
/// Returns [`InstrumentError`] for unsupported analytes, invalid protocols
/// or degenerate data.
#[allow(clippy::too_many_arguments)] // a calibration campaign genuinely has this many knobs
pub fn calibrate_cv(
    sensor: &CypSensor,
    electrode: &Electrode,
    chain: &ReadoutChain,
    analyte: Analyte,
    concentrations: &[Molar],
    n_blanks: usize,
    protocol: &CvProtocol,
    seed: u64,
) -> Result<CalibrationOutcome, InstrumentError> {
    let expected = sensor.nominal_peak_potential(analyte).ok_or_else(|| {
        InstrumentError::Biochem(bios_biochem::BiochemError::UnsupportedAnalyte {
            probe: format!("{}", sensor.isoform()),
            analyte: analyte.to_string(),
        })
    })?;
    let response_of = |m: &CvMeasurement| -> f64 {
        let seg = cathodic_segment(&m.voltammogram);
        peak_readout(&seg, expected)
            .map(|a| a.value())
            .unwrap_or(0.0)
    };
    let mut blanks = Vec::with_capacity(n_blanks);
    for k in 0..n_blanks {
        let m = run_cv(
            sensor,
            electrode,
            chain,
            &[],
            protocol,
            seed.wrapping_add(k as u64),
        )?;
        blanks.push(response_of(&m));
    }
    let mut points = Vec::with_capacity(concentrations.len());
    for (k, &c) in concentrations.iter().enumerate() {
        let m = run_cv(
            sensor,
            electrode,
            chain,
            &[(analyte, c)],
            protocol,
            seed.wrapping_add(1000 + k as u64),
        )?;
        points.push(CalibrationPoint {
            concentration: c,
            response: response_of(&m),
        });
    }
    analyze_calibration(&blanks, &points, 0.10)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_afe::{ChainConfig, CurrentRange};
    use bios_biochem::CypIsoform;

    fn setup(iso: CypIsoform) -> (CypSensor, Electrode, ReadoutChain) {
        let electrode = Electrode::paper_gold_we();
        // Scale the paper's CYP range class (specified for ≈1 cm²
        // electrodes) to the 0.23 mm² WE area.
        let range = CurrentRange::cytochrome().scaled(electrode.geometric_area().value());
        (
            CypSensor::from_registry(iso).expect("registry"),
            electrode,
            ReadoutChain::new(ChainConfig::for_range(range).expect("config")),
        )
    }

    #[test]
    fn benzphetamine_peak_found_at_table_ii_potential() {
        let (sensor, electrode, chain) = setup(CypIsoform::Cyp2B4);
        let m = run_cv(
            &sensor,
            &electrode,
            &chain,
            &[(Analyte::Benzphetamine, Molar::from_millimolar(1.0))],
            &CvProtocol::default(),
            1,
        )
        .expect("measurement");
        let hit = m
            .matches
            .iter()
            .find(|x| x.analyte == Analyte::Benzphetamine)
            .expect("in table");
        assert!(hit.identified(), "peaks: {:?}", m.peaks);
        let err = hit.position_error.expect("matched").abs().as_millivolts();
        assert!(err < 20.0, "position error {err} mV");
    }

    #[test]
    fn two_drug_panel_on_one_electrode() {
        // The paper's §III claim: CYP2B4 detects benzphetamine and
        // aminopyrine at the same electrode via two peaks.
        let (sensor, electrode, chain) = setup(CypIsoform::Cyp2B4);
        let m = run_cv(
            &sensor,
            &electrode,
            &chain,
            &[
                (Analyte::Benzphetamine, Molar::from_millimolar(1.0)),
                (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
            ],
            &CvProtocol::default(),
            2,
        )
        .expect("measurement");
        assert!(m.peak_height(Analyte::Benzphetamine).is_some());
        assert!(m.peak_height(Analyte::Aminopyrine).is_some());
        // Aminopyrine's sensitivity is 10× higher: its peak dominates.
        assert!(
            m.peak_height(Analyte::Aminopyrine)
                .expect("matched")
                .value()
                > m.peak_height(Analyte::Benzphetamine)
                    .expect("matched")
                    .value()
        );
    }

    #[test]
    fn absent_drug_gives_no_peak() {
        let (sensor, electrode, chain) = setup(CypIsoform::Cyp2B4);
        let m = run_cv(&sensor, &electrode, &chain, &[], &CvProtocol::default(), 3)
            .expect("measurement");
        // A blank can produce sub-threshold noise bumps; anything matched
        // must stay below the analyte's eq. 5 detection threshold (3σ_b·A).
        for hit in &m.matches {
            if let Some(p) = hit.peak {
                let threshold = 3.0
                    * sensor.blank_sd(hit.analyte).expect("registered").value()
                    * electrode.geometric_area().value();
                assert!(
                    p.height.value() < threshold,
                    "blank produced a {} peak of {} above the LOD threshold",
                    hit.analyte,
                    p.height
                );
            }
        }
    }

    #[test]
    fn peak_height_tracks_concentration() {
        let (sensor, electrode, chain) = setup(CypIsoform::Cyp2B4);
        let h = |c_mm: f64, seed| {
            run_cv(
                &sensor,
                &electrode,
                &chain,
                &[(Analyte::Aminopyrine, Molar::from_millimolar(c_mm))],
                &CvProtocol::default(),
                seed,
            )
            .expect("measurement")
            .peak_height(Analyte::Aminopyrine)
            .map(|a| a.value())
            .unwrap_or(0.0)
        };
        let h2 = h(2.0, 4);
        let h6 = h(6.0, 5);
        assert!(h6 > 2.0 * h2, "h(6 mM) = {h6}, h(2 mM) = {h2}");
    }

    #[test]
    fn peak_readout_is_linear_in_amplitude() {
        // Synthetic n=2 wave, amplitude a → readout ≈ a.
        let wave = |a: f64| -> Vec<(Volts, Amps)> {
            (0..400)
                .map(|k| {
                    let e = -0.7 + 0.002 * k as f64;
                    let xi = 2.0 * bios_units::FARADAY * (e + 0.4)
                        / (bios_units::GAS_CONSTANT * T_ROOM.value());
                    let shape = 4.0 * xi.clamp(-60.0, 60.0).exp()
                        / (1.0 + xi.clamp(-60.0, 60.0).exp()).powi(2);
                    (Volts::new(e), Amps::new(-a * shape))
                })
                .collect()
        };
        let r1 = peak_readout(&wave(1e-9), Volts::new(-0.4)).expect("readout");
        let r3 = peak_readout(&wave(3e-9), Volts::new(-0.4)).expect("readout");
        assert!((r3.value() / r1.value() - 3.0).abs() < 0.01);
        assert!((r1.as_nanoamps() - 1.0).abs() < 0.05);
    }

    #[test]
    fn cv_calibration_recovers_aminopyrine_sensitivity() {
        let (sensor, electrode, chain) = setup(CypIsoform::Cyp2B4);
        let concs: Vec<Molar> = [0.8, 2.0, 4.0, 6.0, 8.0]
            .iter()
            .map(|c| Molar::from_millimolar(*c))
            .collect();
        let out = calibrate_cv(
            &sensor,
            &electrode,
            &chain,
            Analyte::Aminopyrine,
            &concs,
            6,
            &CvProtocol::default(),
            11,
        )
        .expect("calibration");
        let s_report = out.fit.slope / electrode.geometric_area().value() * 1e3;
        assert!(
            (s_report - 2.8).abs() / 2.8 < 0.2,
            "sensitivity {s_report} µA/(mM·cm²) vs paper 2.8"
        );
    }

    #[test]
    fn unsupported_analyte_is_rejected() {
        let (sensor, electrode, chain) = setup(CypIsoform::Cyp2B4);
        let err = calibrate_cv(
            &sensor,
            &electrode,
            &chain,
            Analyte::Clozapine,
            &[Molar::from_millimolar(1.0)],
            2,
            &CvProtocol::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, InstrumentError::Biochem(_)));
    }
}
