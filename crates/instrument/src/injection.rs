//! Injection series: repeated sample presentations on one oxidase
//! electrode — the experiment behind the paper's §II-B *sample throughput*
//! property ("the number of individual samples per unit of time",
//! accounting for both transient response and recovery).

use crate::chrono_protocol::analyze_transient;
use crate::error::InstrumentError;
use bios_afe::ReadoutChain;
use bios_biochem::OxidaseSensor;
use bios_electrochem::{Electrode, PotentialProgram, Transient};
use bios_units::{Amps, Molar, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A piecewise-constant concentration schedule: at each listed time the
/// bath concentration steps to the given value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InjectionSchedule {
    events: Vec<(Seconds, Molar)>,
    duration: Seconds,
}

impl InjectionSchedule {
    /// Creates a schedule from `(time, new concentration)` events over a
    /// total duration. Events must be strictly increasing in time.
    ///
    /// # Errors
    ///
    /// Returns [`InstrumentError::InvalidParameter`] for unordered events,
    /// negative concentrations, or events outside the duration.
    pub fn new(events: Vec<(Seconds, Molar)>, duration: Seconds) -> Result<Self, InstrumentError> {
        if duration.value() <= 0.0 {
            return Err(InstrumentError::invalid("duration", "must be positive"));
        }
        let mut last = -f64::INFINITY;
        for (t, c) in &events {
            if t.value() <= last {
                return Err(InstrumentError::invalid(
                    "events",
                    "must be strictly increasing in time",
                ));
            }
            if t.value() < 0.0 || t.value() >= duration.value() {
                return Err(InstrumentError::invalid(
                    "events",
                    "must lie inside the duration",
                ));
            }
            if c.value() < 0.0 {
                return Err(InstrumentError::invalid(
                    "events",
                    "concentrations must be non-negative",
                ));
            }
            last = t.value();
        }
        Ok(Self { events, duration })
    }

    /// A classic sample/wash cycle: `n` samples of concentration `c`, each
    /// held for `dwell` and followed by a `wash` back to blank.
    ///
    /// # Errors
    ///
    /// Returns [`InstrumentError::InvalidParameter`] for degenerate timing.
    pub fn sample_wash_cycles(
        n: usize,
        c: Molar,
        dwell: Seconds,
        wash: Seconds,
    ) -> Result<Self, InstrumentError> {
        if n == 0 {
            return Err(InstrumentError::invalid("n", "must be at least 1"));
        }
        let cycle = dwell.value() + wash.value();
        if dwell.value() <= 0.0 || wash.value() <= 0.0 {
            return Err(InstrumentError::invalid("timing", "must be positive"));
        }
        let mut events = Vec::with_capacity(2 * n);
        for k in 0..n {
            events.push((Seconds::new(k as f64 * cycle), c));
            events.push((Seconds::new(k as f64 * cycle + dwell.value()), Molar::ZERO));
        }
        Self::new(events, Seconds::new(n as f64 * cycle + wash.value()))
    }

    /// The events.
    pub fn events(&self) -> &[(Seconds, Molar)] {
        &self.events
    }

    /// Total duration.
    pub fn duration(&self) -> Seconds {
        self.duration
    }

    /// The bath concentration at time `t` (blank before the first event).
    pub fn concentration_at(&self, t: Seconds) -> Molar {
        self.events
            .iter()
            .take_while(|(et, _)| et.value() <= t.value())
            .last()
            .map(|(_, c)| *c)
            .unwrap_or(Molar::ZERO)
    }
}

/// The outcome of an injection-series run.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionSeriesResult {
    /// The recorded transient.
    pub transient: Transient,
    /// Per-positive-injection response time `t₉₀` (s).
    pub response_times: Vec<f64>,
    /// Per-wash recovery time back within 10% of baseline (s).
    pub recovery_times: Vec<f64>,
    /// §II-B sample throughput estimate, samples/hour, from the mean
    /// response + recovery cycle.
    pub throughput_per_hour: Option<f64>,
}

/// Runs an injection schedule on an oxidase sensor through the chain.
///
/// The sensor current superposes membrane-shaped step responses for every
/// schedule event (linear-system superposition — valid while the
/// concentration steps stay inside the quasi-linear regime).
///
/// # Errors
///
/// Returns [`InstrumentError`] for invalid schedules or AFE rejects.
///
/// # Example
///
/// ```
/// use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
/// use bios_biochem::{Oxidase, OxidaseSensor};
/// use bios_electrochem::Electrode;
/// use bios_instrument::{run_injection_series, InjectionSchedule};
/// use bios_units::{Molar, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sensor = OxidaseSensor::from_registry(Oxidase::Glucose)?;
/// let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase())?);
/// let schedule = InjectionSchedule::sample_wash_cycles(
///     3, Molar::from_millimolar(2.0), Seconds::new(60.0), Seconds::new(60.0))?;
/// let result = run_injection_series(
///     &sensor, &Electrode::paper_gold_we(), &chain, &schedule, Seconds::new(0.5), 7)?;
/// assert_eq!(result.response_times.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn run_injection_series(
    sensor: &OxidaseSensor,
    electrode: &Electrode,
    chain: &ReadoutChain,
    schedule: &InjectionSchedule,
    dt: Seconds,
    seed: u64,
) -> Result<InjectionSeriesResult, InstrumentError> {
    if dt.value() <= 0.0 {
        return Err(InstrumentError::invalid("dt", "must be positive"));
    }
    let area = electrode.geometric_area();
    let program = PotentialProgram::Hold {
        potential: sensor.applied_potential(),
        duration: schedule.duration(),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf1a_0000);
    let within_sd = sensor.blank_sd().value() * area.value() / 5.0;
    let events = schedule.events().to_vec();
    let samples = chain.acquire(
        &program,
        dt,
        seed,
        move |t, _e| {
            // Superpose membrane-shaped responses of all past steps.
            let mut j = 0.0;
            let mut prev_c = Molar::ZERO;
            for (et, c) in &events {
                let since = Seconds::new(t.value() - et.value());
                if since.value() <= 0.0 {
                    break;
                }
                let delta = sensor.steady_current_density(*c).value()
                    - sensor.steady_current_density(prev_c).value();
                j += delta * sensor.membrane().step_response(since);
                prev_c = *c;
            }
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
            Amps::new(j * area.value() + g * within_sd)
        },
        |_t, _e| Amps::ZERO,
    )?;
    let transient: Transient = samples.iter().map(|s| (s.t, s.current)).collect();

    // Analyze each event with the single-step analyzer on its own window.
    let mut response_times = Vec::new();
    let mut recovery_times = Vec::new();
    let events = schedule.events();
    for (k, (et, c)) in events.iter().enumerate() {
        let window_end = events
            .get(k + 1)
            .map(|(t, _)| t.value())
            .unwrap_or(schedule.duration().value());
        let window: Transient = transient
            .iter()
            .filter(|(t, _)| t.value() >= et.value() * 0.0 && t.value() <= window_end)
            .collect();
        let m = analyze_transient(window, *et);
        if let Some(t90) = m.t90 {
            if c.value() > 0.0 {
                response_times.push(t90.value());
            } else {
                recovery_times.push(t90.value());
            }
        }
    }
    let throughput_per_hour = if !response_times.is_empty() && !recovery_times.is_empty() {
        let mean_resp = response_times.iter().sum::<f64>() / response_times.len() as f64;
        let mean_rec = recovery_times.iter().sum::<f64>() / recovery_times.len() as f64;
        Some(3600.0 / (mean_resp + mean_rec))
    } else {
        None
    };
    Ok(InjectionSeriesResult {
        transient,
        response_times,
        recovery_times,
        throughput_per_hour,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_afe::{ChainConfig, CurrentRange};
    use bios_biochem::Oxidase;

    fn setup() -> (OxidaseSensor, Electrode, ReadoutChain) {
        (
            OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry"),
            Electrode::paper_gold_we(),
            ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("range")),
        )
    }

    #[test]
    fn schedule_validation() {
        assert!(InjectionSchedule::new(
            vec![
                (Seconds::new(5.0), Molar::ZERO),
                (Seconds::new(5.0), Molar::ZERO)
            ],
            Seconds::new(10.0)
        )
        .is_err());
        assert!(InjectionSchedule::new(
            vec![(Seconds::new(15.0), Molar::ZERO)],
            Seconds::new(10.0)
        )
        .is_err());
        assert!(InjectionSchedule::new(
            vec![(Seconds::new(1.0), Molar::new(-1.0))],
            Seconds::new(10.0)
        )
        .is_err());
        assert!(InjectionSchedule::sample_wash_cycles(
            0,
            Molar::from_millimolar(1.0),
            Seconds::new(60.0),
            Seconds::new(60.0)
        )
        .is_err());
    }

    #[test]
    fn concentration_at_follows_events() {
        let s = InjectionSchedule::sample_wash_cycles(
            2,
            Molar::from_millimolar(2.0),
            Seconds::new(60.0),
            Seconds::new(40.0),
        )
        .expect("valid");
        assert_eq!(s.concentration_at(Seconds::new(-1.0)), Molar::ZERO);
        assert_eq!(
            s.concentration_at(Seconds::new(30.0)),
            Molar::from_millimolar(2.0)
        );
        assert_eq!(s.concentration_at(Seconds::new(80.0)), Molar::ZERO);
        assert_eq!(
            s.concentration_at(Seconds::new(130.0)),
            Molar::from_millimolar(2.0)
        );
        assert!((s.duration().value() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn three_cycles_give_three_responses_and_recoveries() {
        let (sensor, electrode, chain) = setup();
        let schedule = InjectionSchedule::sample_wash_cycles(
            3,
            Molar::from_millimolar(2.0),
            Seconds::new(70.0),
            Seconds::new(70.0),
        )
        .expect("valid");
        let result =
            run_injection_series(&sensor, &electrode, &chain, &schedule, Seconds::new(0.5), 3)
                .expect("run");
        assert_eq!(result.response_times.len(), 3);
        assert_eq!(result.recovery_times.len(), 3);
        // Membrane-dominated symmetric kinetics: both ≈30 s.
        for t in result.response_times.iter().chain(&result.recovery_times) {
            assert!((t - 30.0).abs() < 10.0, "t90 {t}");
        }
        // Throughput: ≈3600/60 = 60 samples/hour.
        let tph = result.throughput_per_hour.expect("cycles measured");
        assert!((tph - 60.0).abs() < 15.0, "throughput {tph}");
    }

    #[test]
    fn repeated_injections_reach_the_same_plateau() {
        let (sensor, electrode, chain) = setup();
        let schedule = InjectionSchedule::sample_wash_cycles(
            2,
            Molar::from_millimolar(2.0),
            Seconds::new(80.0),
            Seconds::new(80.0),
        )
        .expect("valid");
        let result =
            run_injection_series(&sensor, &electrode, &chain, &schedule, Seconds::new(0.5), 9)
                .expect("run");
        // Currents near the end of each dwell are equal within noise.
        let at = |t: f64| {
            result
                .transient
                .current_at(Seconds::new(t))
                .expect("sampled")
                .value()
        };
        let first = at(78.0);
        let second = at(238.0);
        assert!(
            (first - second).abs() < 0.1 * first.abs().max(1e-12),
            "plateaus {first} vs {second}"
        );
    }
}
