//! Calibration analysis: sensitivity (paper eq. 6), LOD (eq. 5), linear
//! range and maximum nonlinearity (eq. 7) from measured data.

use crate::error::InstrumentError;
use crate::replicate::ReplicateStats;
use bios_units::{Molar, QRange};

/// One calibration point: a known concentration and the measured response
/// (any consistent unit — amps, volts or codes).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CalibrationPoint {
    /// Prepared analyte concentration.
    pub concentration: Molar,
    /// Measured steady-state response.
    pub response: f64,
}

/// An ordinary-least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearFit {
    /// Slope in response units per molar.
    pub slope: f64,
    /// Intercept in response units.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Residual standard deviation.
    pub residual_sd: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted response at a concentration.
    pub fn predict(&self, c: Molar) -> f64 {
        self.intercept + self.slope * c.value()
    }

    /// Inverts the calibration: the concentration producing `response`.
    ///
    /// # Errors
    ///
    /// Returns [`InstrumentError::FitFailed`] for a zero slope.
    pub fn invert(&self, response: f64) -> Result<Molar, InstrumentError> {
        if self.slope == 0.0 {
            return Err(InstrumentError::FitFailed(
                "zero slope cannot be inverted".to_string(),
            ));
        }
        Ok(Molar::new((response - self.intercept) / self.slope))
    }
}

/// Fits a least-squares line through calibration points.
///
/// # Errors
///
/// Returns [`InstrumentError::InsufficientData`] for fewer than 2 points,
/// [`InstrumentError::NonFiniteData`] if any coordinate is NaN or
/// infinite, and [`InstrumentError::FitFailed`] when all concentrations
/// coincide.
pub fn fit_line(points: &[CalibrationPoint]) -> Result<LinearFit, InstrumentError> {
    if points.len() < 2 {
        return Err(InstrumentError::InsufficientData {
            needed: 2,
            got: points.len(),
        });
    }
    ensure_finite(points, "line fit")?;
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.concentration.value()).sum();
    let sy: f64 = points.iter().map(|p| p.response).sum();
    let sxx: f64 = points.iter().map(|p| p.concentration.value().powi(2)).sum();
    let sxy: f64 = points
        .iter()
        .map(|p| p.concentration.value() * p.response)
        .sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-300 {
        return Err(InstrumentError::FitFailed(
            "degenerate abscissa (all concentrations equal)".to_string(),
        ));
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.response - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.response - (intercept + slope * p.concentration.value())).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    let dof = (points.len().max(3) - 2) as f64;
    Ok(LinearFit {
        slope,
        intercept,
        r2,
        residual_sd: (ss_res / dof).sqrt(),
        n: points.len(),
    })
}

/// Rejects point sets containing NaN or infinite coordinates with a
/// typed error, so downstream sorts and fits never see them.
fn ensure_finite(
    points: &[CalibrationPoint],
    context: &'static str,
) -> Result<(), InstrumentError> {
    if points
        .iter()
        .any(|p| !p.concentration.value().is_finite() || !p.response.is_finite())
    {
        return Err(InstrumentError::non_finite(context));
    }
    Ok(())
}

/// The paper's eq. 7 maximum nonlinearity of a point set against the
/// average sensitivity through the reference (first) point, normalized by
/// the response span:
/// `NL_max = max|V_C − V_C0 − S_avg·(C − C0)| / ΔV`.
///
/// # Errors
///
/// Returns [`InstrumentError::InsufficientData`] for fewer than 3 points,
/// [`InstrumentError::NonFiniteData`] for NaN or infinite coordinates,
/// and [`InstrumentError::FitFailed`] for a zero response span.
pub fn max_nonlinearity(points: &[CalibrationPoint]) -> Result<f64, InstrumentError> {
    if points.len() < 3 {
        return Err(InstrumentError::InsufficientData {
            needed: 3,
            got: points.len(),
        });
    }
    ensure_finite(points, "nonlinearity analysis")?;
    let first = points[0];
    let last = points[points.len() - 1];
    let dc = last.concentration.value() - first.concentration.value();
    let dv = last.response - first.response;
    if dv.abs() < 1e-300 || dc.abs() < 1e-300 {
        return Err(InstrumentError::FitFailed(
            "degenerate calibration span".to_string(),
        ));
    }
    let s_avg = dv / dc; // eq. 6 average sensitivity over the range
    let worst = points
        .iter()
        .map(|p| {
            (p.response
                - first.response
                - s_avg * (p.concentration.value() - first.concentration.value()))
            .abs()
        })
        .fold(0.0f64, f64::max);
    Ok(worst / dv.abs())
}

/// Complete calibration analysis of a sensor.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CalibrationOutcome {
    /// Fit over the detected linear region.
    pub fit: LinearFit,
    /// Blank statistics (`V_b`, `σ_b`).
    pub blank_mean: f64,
    /// Blank standard deviation.
    pub blank_sd: f64,
    /// Limit of detection from eq. 5 translated to concentration:
    /// `LOD = 3σ_b / slope`.
    pub lod: Molar,
    /// Detected linear range (widest low-end window within tolerance).
    pub linear_range: QRange<Molar>,
    /// eq. 7 nonlinearity over the detected linear range.
    pub nl_max: f64,
}

/// Analyzes a calibration campaign: blank replicates plus a
/// concentration-sorted series of measured points.
///
/// The linear range is found by growing a window from the lowest
/// concentration and stopping when eq. 7 nonlinearity exceeds
/// `nl_tolerance`.
///
/// # Errors
///
/// Returns [`InstrumentError`] for insufficient blanks (<2) or points (<3),
/// NaN or infinite blanks or points, or degenerate fits.
///
/// # Example
///
/// ```
/// use bios_instrument::{analyze_calibration, CalibrationPoint};
/// use bios_units::Molar;
///
/// # fn main() -> Result<(), bios_instrument::InstrumentError> {
/// let blanks = [0.0, 1e-9, -1e-9, 5e-10];
/// let points: Vec<CalibrationPoint> = (1..=8)
///     .map(|k| CalibrationPoint {
///         concentration: Molar::from_millimolar(k as f64 * 0.5),
///         response: 1e-6 * k as f64 * 0.5, // perfectly linear
///     })
///     .collect();
/// let outcome = analyze_calibration(&blanks, &points, 0.1)?;
/// assert!(outcome.nl_max < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn analyze_calibration(
    blanks: &[f64],
    points: &[CalibrationPoint],
    nl_tolerance: f64,
) -> Result<CalibrationOutcome, InstrumentError> {
    if !(0.0..1.0).contains(&nl_tolerance) || nl_tolerance == 0.0 {
        return Err(InstrumentError::invalid(
            "nl_tolerance",
            "must lie strictly between 0 and 1",
        ));
    }
    if blanks.iter().any(|b| !b.is_finite()) {
        return Err(InstrumentError::non_finite("blank statistics"));
    }
    let blank_stats = ReplicateStats::from_samples(blanks)?;
    if points.len() < 3 {
        return Err(InstrumentError::InsufficientData {
            needed: 3,
            got: points.len(),
        });
    }
    ensure_finite(points, "calibration analysis")?;
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.concentration.value().total_cmp(&b.concentration.value()));

    // Grow the linear window from the bottom: anchor the sensitivity on the
    // three lowest concentrations (the paper's slope is the *initial* slope
    // of the calibration curve) and extend while each next point deviates
    // from that line by less than the tolerance. A chord-based criterion
    // would silently absorb Michaelis–Menten saturation.
    let anchor = fit_line(&sorted[..3])?;
    let mut end = 3;
    while end < sorted.len() {
        let p = sorted[end];
        let pred = anchor.predict(p.concentration);
        if pred.abs() < 1e-300 || ((p.response - pred) / pred).abs() > nl_tolerance {
            break;
        }
        end += 1;
    }
    let linear_points = &sorted[..end];
    let fit = fit_line(linear_points)?;
    let nl_max = max_nonlinearity(linear_points)?;
    let lod = if fit.slope.abs() < 1e-300 {
        return Err(InstrumentError::FitFailed("zero sensitivity".to_string()));
    } else {
        Molar::new((3.0 * blank_stats.sd() / fit.slope).abs())
    };
    let linear_range = QRange::new(
        linear_points[0].concentration,
        linear_points[linear_points.len() - 1].concentration,
    )
    .map_err(|e| InstrumentError::FitFailed(e.to_string()))?;
    Ok(CalibrationOutcome {
        fit,
        blank_mean: blank_stats.mean(),
        blank_sd: blank_stats.sd(),
        lod,
        linear_range,
        nl_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(v: f64) -> Molar {
        Molar::from_millimolar(v)
    }

    #[test]
    fn fit_recovers_known_line() {
        let points: Vec<CalibrationPoint> = (0..10)
            .map(|k| CalibrationPoint {
                concentration: mm(k as f64),
                response: 2.5e-3 * (k as f64 * 1e-3) + 1e-9,
            })
            .collect();
        let fit = fit_line(&points).expect("fit");
        assert!((fit.slope - 2.5e-3).abs() / 2.5e-3 < 1e-9);
        assert!((fit.intercept - 1e-9).abs() < 1e-15);
        assert!(fit.r2 > 0.999999);
        // Inversion round-trips.
        let c = fit.invert(fit.predict(mm(3.3))).expect("invert");
        assert!((c.as_millimolar() - 3.3).abs() < 1e-9);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(fit_line(&[]).is_err());
        let same = vec![
            CalibrationPoint {
                concentration: mm(1.0),
                response: 1.0
            };
            4
        ];
        assert!(matches!(
            fit_line(&same),
            Err(InstrumentError::FitFailed(_))
        ));
    }

    #[test]
    fn nonlinearity_zero_for_perfect_line() {
        let points: Vec<CalibrationPoint> = (1..8)
            .map(|k| CalibrationPoint {
                concentration: mm(k as f64),
                response: 3.0 * k as f64,
            })
            .collect();
        assert!(max_nonlinearity(&points).expect("nl") < 1e-12);
    }

    #[test]
    fn nonlinearity_detects_saturation() {
        // Michaelis–Menten with Km = 9 mM: 10% NL at ~1 mM... measure a
        // clearly saturating set.
        let km = 9.0;
        let points: Vec<CalibrationPoint> = (1..=10)
            .map(|k| {
                let c = k as f64;
                CalibrationPoint {
                    concentration: mm(c),
                    response: c / (km + c),
                }
            })
            .collect();
        let nl = max_nonlinearity(&points).expect("nl");
        assert!(nl > 0.05, "nl = {nl}");
    }

    #[test]
    fn analyze_full_campaign_on_mm_sensor() {
        // Simulated glucose-like sensor: slope 27.7e-3 A/(M·...) with
        // Km = 36 mM, blanks with σ = 12 nA.
        let s = 27.7e-3;
        let km = 36e-3;
        let blanks = [0.0, 12e-9, -10e-9, 8e-9, -14e-9, 5e-9];
        let points: Vec<CalibrationPoint> = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|c_mm| {
                let c = c_mm * 1e-3;
                CalibrationPoint {
                    concentration: Molar::new(c),
                    response: s * km * c / (km + c),
                }
            })
            .collect();
        let out = analyze_calibration(&blanks, &points, 0.10).expect("analysis");
        // Sensitivity ≈ S: a fit over a window ending at 10% saturation is
        // intrinsically ~10% below the true initial slope.
        assert!(
            (out.fit.slope - s).abs() / s < 0.13,
            "slope {} vs {s}",
            out.fit.slope
        );
        // The linear range must stop where MM saturation bites — the paper's
        // 4 mM for a 36 mM apparent Km at 10% tolerance.
        assert!(
            out.linear_range.hi().as_millimolar() <= 4.0 + 1e-9,
            "linear top {}",
            out.linear_range.hi().as_millimolar()
        );
        assert!(out.lod.value() > 0.0);
    }

    #[test]
    fn lod_scales_with_blank_noise() {
        let points: Vec<CalibrationPoint> = (1..6)
            .map(|k| CalibrationPoint {
                concentration: mm(k as f64),
                response: 1e-3 * k as f64,
            })
            .collect();
        let quiet = analyze_calibration(&[0.0, 1e-9, -1e-9], &points, 0.1).expect("analysis");
        let noisy = analyze_calibration(&[0.0, 1e-7, -1e-7], &points, 0.1).expect("analysis");
        assert!(noisy.lod.value() > 50.0 * quiet.lod.value());
    }

    #[test]
    fn non_finite_inputs_are_typed_errors() {
        let mut points: Vec<CalibrationPoint> = (1..6)
            .map(|k| CalibrationPoint {
                concentration: mm(k as f64),
                response: 1e-3 * k as f64,
            })
            .collect();
        points[2].response = f64::NAN;
        assert!(matches!(
            fit_line(&points),
            Err(InstrumentError::NonFiniteData { .. })
        ));
        assert!(matches!(
            max_nonlinearity(&points),
            Err(InstrumentError::NonFiniteData { .. })
        ));
        assert!(matches!(
            analyze_calibration(&[0.0, 1e-9], &points, 0.1),
            Err(InstrumentError::NonFiniteData { .. })
        ));
        points[2].response = 3e-3;
        points[4].concentration = Molar::new(f64::INFINITY);
        assert!(matches!(
            fit_line(&points),
            Err(InstrumentError::NonFiniteData { .. })
        ));
        // NaN blanks are caught before replicate statistics.
        let good: Vec<CalibrationPoint> = (1..6)
            .map(|k| CalibrationPoint {
                concentration: mm(k as f64),
                response: 1e-3 * k as f64,
            })
            .collect();
        assert!(matches!(
            analyze_calibration(&[0.0, f64::NAN], &good, 0.1),
            Err(InstrumentError::NonFiniteData { .. })
        ));
    }

    #[test]
    fn rejects_bad_tolerance() {
        let points: Vec<CalibrationPoint> = (1..6)
            .map(|k| CalibrationPoint {
                concentration: mm(k as f64),
                response: k as f64,
            })
            .collect();
        assert!(analyze_calibration(&[0.0, 1.0], &points, 0.0).is_err());
        assert!(analyze_calibration(&[0.0, 1.0], &points, 1.0).is_err());
    }
}
