//! Per-measurement quality-control gates.
//!
//! Every acquisition is screened before its numbers reach calibration or
//! concentration estimation: a [`QcGate`] runs a fixed battery of checks
//! (non-finite guard, saturation/clipping, baseline-noise bound,
//! calibration-drift bound, tail stationarity, minimum credible response)
//! and classifies the measurement [`Pass`](QcClass::Pass) /
//! [`Suspect`](QcClass::Suspect) / [`Fail`](QcClass::Fail) with
//! machine-readable [`QcReason`]s. The platform layer retries failed
//! slots and quarantines persistently failing electrodes — results are
//! degraded *visibly*, never silently.

use crate::chrono_protocol::ChronoMeasurement;
use crate::cv_protocol::CvMeasurement;
use bios_units::Amps;

/// QC classification of one measurement.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum QcClass {
    /// All checks passed; the measurement is fully trusted.
    Pass,
    /// At least one check tripped a warning bound; the value is usable
    /// with reduced confidence.
    Suspect,
    /// At least one check tripped a rejection bound; the value must not
    /// be used and the slot should be retried.
    Fail,
}

impl QcClass {
    fn worst(self, other: QcClass) -> QcClass {
        self.max(other)
    }
}

impl core::fmt::Display for QcClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QcClass::Pass => write!(f, "pass"),
            QcClass::Suspect => write!(f, "suspect"),
            QcClass::Fail => write!(f, "fail"),
        }
    }
}

/// Machine-readable cause attached to a non-passing QC verdict.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum QcReason {
    /// A sample was NaN or infinite.
    NonFinite,
    /// This fraction of samples sat at the chain's full-scale rails.
    Saturated {
        /// Clipped-sample fraction in `[0, 1]`.
        fraction: f64,
    },
    /// Pre-injection baseline noise exceeded its bound.
    BaselineNoise {
        /// Baseline standard deviation as a fraction of full scale.
        relative_sd: f64,
    },
    /// The baseline sat too far from zero — calibration or reference
    /// drift.
    BaselineDrift {
        /// Baseline magnitude as a fraction of full scale.
        relative_offset: f64,
    },
    /// The post-injection tail kept trending instead of settling —
    /// fouling or reference drift in progress.
    NonStationaryTail {
        /// Tail trend over the tail window as a fraction of the tail mean.
        relative_slope: f64,
    },
    /// The analytical response was implausibly small for a scheduled
    /// target — open electrode or stale mux channel.
    LowResponse {
        /// Measured `ΔI` in amps.
        delta: f64,
    },
    /// Baseline noise sat implausibly far below the chain's calibrated
    /// self-noise — signal-path attenuation (open electrode contact,
    /// stale mux channel) scales the noise floor down with the signal.
    QuietChannel {
        /// Measured baseline noise as a fraction of the calibrated level.
        ratio: f64,
    },
    /// The post-injection tail scattered far beyond the response
    /// magnitude after detrending — intermittent corruption (stale mux
    /// samples, dropouts, spikes) rather than honest chain noise.
    NoisyTail {
        /// Detrended tail residual relative to the response magnitude.
        relative_residual: f64,
    },
    /// The chain's built-in self-test recovered a test signal with the
    /// wrong gain — attenuation or amplification in the signal path that
    /// quiescent noise (often below one ADC code) cannot reveal.
    GainError {
        /// Measured self-test response over the calibrated response.
        ratio: f64,
    },
    /// The acquisition aborted with a recoverable typed error before
    /// producing analyzable data.
    Aborted {
        /// Human-readable error description.
        detail: String,
    },
}

/// One measurement's QC outcome: the class plus every tripped reason.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QcVerdict {
    /// Overall classification (worst of all tripped checks).
    pub class: QcClass,
    /// Machine-readable causes, in check order; empty for a clean pass.
    pub reasons: Vec<QcReason>,
}

impl QcVerdict {
    fn pass() -> Self {
        Self {
            class: QcClass::Pass,
            reasons: Vec::new(),
        }
    }

    fn add(&mut self, class: QcClass, reason: QcReason) {
        self.class = self.class.worst(class);
        self.reasons.push(reason);
    }

    /// Whether the measurement may be used at all.
    pub fn is_usable(&self) -> bool {
        self.class != QcClass::Fail
    }

    /// Folds another verdict into this one: worst class wins, reasons
    /// append in order.
    pub fn merge(&mut self, other: QcVerdict) {
        self.class = self.class.worst(other.class);
        self.reasons.extend(other.reasons);
    }

    /// What a retry scheduler should do with the screened measurement,
    /// given whether the retry budget is already spent. This is the
    /// verdict acting as a *step input*: the decision is pure data, so a
    /// suspended session replays it identically on resume.
    pub fn decision(&self, budget_exhausted: bool) -> QcDecision {
        match self.class {
            QcClass::Fail if budget_exhausted => QcDecision::Reject,
            QcClass::Fail => QcDecision::Retry,
            _ => QcDecision::Accept,
        }
    }
}

/// The scheduling consequence of a [`QcVerdict`] — the typed contract
/// between the QC gate and any retry scheduler (blocking loop, resumable
/// state machine, or fleet server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum QcDecision {
    /// The reading is usable (pass or suspect): keep it and move on.
    Accept,
    /// The reading failed QC with retry budget remaining: discard it and
    /// re-acquire under the next derived seed.
    Retry,
    /// The reading failed QC with the budget exhausted: keep only a
    /// flagged placeholder; never serve the value.
    Reject,
}

/// Thresholds for the QC battery. All fractions are relative to the
/// chain's full-scale current, making one gate meaningful across the
/// paper's nA and µA readout classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcGate {
    /// Fraction of full scale beyond which a sample counts as clipped.
    pub clip_level: f64,
    /// Clipped-sample fraction tripping Suspect.
    pub clip_suspect: f64,
    /// Clipped-sample fraction tripping Fail.
    pub clip_fail: f64,
    /// Baseline relative noise tripping Suspect.
    pub noise_suspect: f64,
    /// Baseline relative noise tripping Fail.
    pub noise_fail: f64,
    /// Baseline relative magnitude tripping Suspect.
    pub drift_suspect: f64,
    /// Baseline relative magnitude tripping Fail.
    pub drift_fail: f64,
    /// Relative tail trend tripping Suspect.
    pub slope_suspect: f64,
    /// Relative tail trend tripping Fail.
    pub slope_fail: f64,
    /// Baseline noise *below* this fraction of the calibrated chain
    /// self-noise trips Suspect (attenuation detector; only active when a
    /// reference is supplied).
    pub quiet_suspect: f64,
    /// Baseline noise below this fraction of the calibrated self-noise
    /// trips Fail.
    pub quiet_fail: f64,
    /// Detrended tail residual (relative to the response) tripping
    /// Suspect.
    pub residual_suspect: f64,
    /// Detrended tail residual tripping Fail.
    pub residual_fail: f64,
    /// Self-test gain error (fractional) tripping Suspect.
    pub gain_suspect: f64,
    /// Self-test gain error tripping Fail.
    pub gain_fail: f64,
    /// Smallest credible `|ΔI|` for a scheduled target; smaller responses
    /// trip [`QcReason::LowResponse`] as Fail. Set to [`Amps::ZERO`] to
    /// disable (e.g. for blanks).
    pub min_delta: Amps,
}

impl Default for QcGate {
    fn default() -> Self {
        Self {
            clip_level: 0.98,
            clip_suspect: 0.01,
            clip_fail: 0.05,
            noise_suspect: 0.01,
            noise_fail: 0.05,
            drift_suspect: 0.10,
            drift_fail: 0.30,
            slope_suspect: 0.10,
            slope_fail: 0.40,
            quiet_suspect: 0.8,
            quiet_fail: 0.45,
            residual_suspect: 0.05,
            residual_fail: 0.15,
            gain_suspect: 0.10,
            gain_fail: 0.25,
            min_delta: Amps::from_picoamps(10.0),
        }
    }
}

impl QcGate {
    /// A gate with the response-magnitude check disabled.
    pub fn without_min_delta(mut self) -> Self {
        self.min_delta = Amps::ZERO;
        self
    }

    fn grade(&self, value: f64, suspect: f64, fail: f64) -> Option<QcClass> {
        if value > fail {
            Some(QcClass::Fail)
        } else if value > suspect {
            Some(QcClass::Suspect)
        } else {
            None
        }
    }

    /// Screens a chronoamperometric measurement against a chain whose
    /// full-scale input current is `full_scale`.
    pub fn check_chrono(&self, m: &ChronoMeasurement, full_scale: Amps) -> QcVerdict {
        self.check_chrono_referenced(m, full_scale, None)
    }

    /// Grades a built-in self-test: `measured` is the chain's live
    /// response to a known test input, `expected` the commissioning
    /// (calibration-time) response to the same input. Gain errors beyond
    /// the suspect/fail bounds trip [`QcReason::GainError`].
    pub fn check_self_test(&self, measured: Amps, expected: Amps) -> QcVerdict {
        let mut verdict = QcVerdict::pass();
        if !measured.value().is_finite() || !expected.value().is_finite() {
            verdict.add(QcClass::Fail, QcReason::NonFinite);
            return verdict;
        }
        if expected.value().abs() == 0.0 {
            return verdict;
        }
        let ratio = measured.value() / expected.value();
        let error = (ratio - 1.0).abs();
        if let Some(class) = self.grade(error, self.gain_suspect, self.gain_fail) {
            verdict.add(class, QcReason::GainError { ratio });
        }
        verdict
    }

    /// Like [`check_chrono`](Self::check_chrono), additionally comparing
    /// the measured baseline noise against the chain's calibrated
    /// self-noise (`reference_noise`, e.g. from
    /// `ReadoutChain::baseline_noise_reference`). A channel far quieter
    /// than its calibration is attenuated, not healthy — the one symptom
    /// an open electrode contact or stale mux channel cannot hide.
    pub fn check_chrono_referenced(
        &self,
        m: &ChronoMeasurement,
        full_scale: Amps,
        reference_noise: Option<Amps>,
    ) -> QcVerdict {
        let mut verdict = QcVerdict::pass();
        let fs = full_scale.value().abs();
        let currents: Vec<f64> = m.transient.current().iter().map(|i| i.value()).collect();

        // 1. Non-finite guard: nothing else is meaningful if this trips.
        if currents.iter().any(|v| !v.is_finite())
            || !m.baseline.value().is_finite()
            || !m.steady_state.value().is_finite()
        {
            verdict.add(QcClass::Fail, QcReason::NonFinite);
            return verdict;
        }
        if currents.is_empty() || fs == 0.0 {
            verdict.add(QcClass::Fail, QcReason::NonFinite);
            return verdict;
        }

        // 2. Saturation / clipping.
        let clipped = currents
            .iter()
            .filter(|v| v.abs() >= self.clip_level * fs)
            .count() as f64
            / currents.len() as f64;
        if let Some(class) = self.grade(clipped, self.clip_suspect, self.clip_fail) {
            verdict.add(class, QcReason::Saturated { fraction: clipped });
        }

        // 3. Baseline noise bound over the pre-injection window.
        let pre: Vec<f64> = m
            .transient
            .iter()
            .filter(|(t, _)| t.value() < m.injection_time.value())
            .map(|(_, i)| i.value())
            .collect();
        if pre.len() >= 4 {
            let mean = pre.iter().sum::<f64>() / pre.len() as f64;
            let sd =
                (pre.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / pre.len() as f64).sqrt();
            let relative_sd = sd / fs;
            if let Some(class) = self.grade(relative_sd, self.noise_suspect, self.noise_fail) {
                verdict.add(class, QcReason::BaselineNoise { relative_sd });
            }
            // 3b. Calibration comparison: a channel much quieter than its
            // commissioning self-noise is attenuated, not healthy.
            if let Some(reference) = reference_noise {
                if reference.value() > 0.0 {
                    let ratio = sd / reference.value();
                    if ratio < self.quiet_fail {
                        verdict.add(QcClass::Fail, QcReason::QuietChannel { ratio });
                    } else if ratio < self.quiet_suspect {
                        verdict.add(QcClass::Suspect, QcReason::QuietChannel { ratio });
                    }
                }
            }
        }

        // 4. Calibration drift: the baseline should sit near zero.
        let relative_offset = m.baseline.value().abs() / fs;
        if let Some(class) = self.grade(relative_offset, self.drift_suspect, self.drift_fail) {
            verdict.add(class, QcReason::BaselineDrift { relative_offset });
        }

        // 5. Tail stationarity: fit a line over the last third of the
        // post-injection window; a settled sensor trends flat, fouling or
        // drift keeps trending.
        let tail: Vec<(f64, f64)> = m
            .transient
            .iter()
            .filter(|(t, _)| {
                let t0 = m.injection_time.value();
                let span = m.transient.last().map(|(tl, _)| tl.value()).unwrap_or(t0) - t0;
                t.value() >= t0 + 2.0 * span / 3.0
            })
            .map(|(t, i)| (t.value(), i.value()))
            .collect();
        if tail.len() >= 4 {
            let n = tail.len() as f64;
            let sx: f64 = tail.iter().map(|(t, _)| t).sum();
            let sy: f64 = tail.iter().map(|(_, i)| i).sum();
            let sxx: f64 = tail.iter().map(|(t, _)| t * t).sum();
            let sxy: f64 = tail.iter().map(|(t, i)| t * i).sum();
            let denom = n * sxx - sx * sx;
            if denom.abs() > 0.0 {
                let slope = (n * sxy - sx * sy) / denom;
                let window = tail.last().map(|(t, _)| *t).unwrap_or(tail[0].0) - tail[0].0;
                let mean = sy / n;
                let scale = mean.abs().max(0.05 * fs);
                let relative_slope = (slope * window / scale).abs();
                if let Some(class) = self.grade(relative_slope, self.slope_suspect, self.slope_fail)
                {
                    verdict.add(class, QcReason::NonStationaryTail { relative_slope });
                }
                // 5b. Detrended residual: honest chain noise is small
                // against the response; intermittent corruption (stale
                // samples, dropouts) scatters samples across the whole
                // signal span and survives detrending.
                let intercept = (sy - slope * sx) / n;
                let residual_sd = (tail
                    .iter()
                    .map(|(t, i)| (i - (slope * t + intercept)).powi(2))
                    .sum::<f64>()
                    / n)
                    .sqrt();
                let relative_residual = residual_sd / m.delta().value().abs().max(0.02 * fs);
                if let Some(class) =
                    self.grade(relative_residual, self.residual_suspect, self.residual_fail)
                {
                    verdict.add(class, QcReason::NoisyTail { relative_residual });
                }
            }
        }

        // 6. Minimum credible response for a scheduled target.
        let delta = m.delta().value();
        if self.min_delta.value() > 0.0 && delta.abs() < self.min_delta.value() {
            verdict.add(QcClass::Fail, QcReason::LowResponse { delta });
        }

        verdict
    }

    /// Screens a voltammetric measurement against a chain whose
    /// full-scale input current is `full_scale`.
    pub fn check_cv(&self, m: &CvMeasurement, full_scale: Amps) -> QcVerdict {
        let mut verdict = QcVerdict::pass();
        let fs = full_scale.value().abs();
        let currents: Vec<f64> = m.voltammogram.current().iter().map(|i| i.value()).collect();

        if currents.iter().any(|v| !v.is_finite()) {
            verdict.add(QcClass::Fail, QcReason::NonFinite);
            return verdict;
        }
        if currents.is_empty() || fs == 0.0 {
            verdict.add(QcClass::Fail, QcReason::NonFinite);
            return verdict;
        }

        let clipped = currents
            .iter()
            .filter(|v| v.abs() >= self.clip_level * fs)
            .count() as f64
            / currents.len() as f64;
        if let Some(class) = self.grade(clipped, self.clip_suspect, self.clip_fail) {
            verdict.add(class, QcReason::Saturated { fraction: clipped });
        }

        // High-frequency noise estimate from successive differences
        // (insensitive to the slow catalytic wave shape): sd(diff)/√2.
        if currents.len() >= 8 {
            let diffs: Vec<f64> = currents.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
            let sd = (diffs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / diffs.len() as f64)
                .sqrt()
                / core::f64::consts::SQRT_2;
            let relative_sd = sd / fs;
            if let Some(class) = self.grade(relative_sd, self.noise_suspect, self.noise_fail) {
                verdict.add(class, QcReason::BaselineNoise { relative_sd });
            }
        }

        // Minimum credible response: the most prominent detected peak.
        if self.min_delta.value() > 0.0 {
            let best = m.peaks.first().map(|p| p.height.value()).unwrap_or(0.0);
            if best < self.min_delta.value() {
                verdict.add(QcClass::Fail, QcReason::LowResponse { delta: best });
            }
        }

        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_electrochem::Transient;
    use bios_units::Seconds;

    /// A clean synthetic step transient: baseline 0, step to `step` nA at
    /// t = 10 s, exponential settle, tiny deterministic ripple.
    fn clean_measurement(step_na: f64) -> ChronoMeasurement {
        let mut tr = Transient::new();
        for k in 0..280 {
            let t = k as f64 * 0.25;
            let i = if t < 10.0 {
                1e-11 * ((k % 3) as f64 - 1.0)
            } else {
                step_na * 1e-9 * (1.0 - (-(t - 10.0) / 3.0).exp()) + 1e-11 * ((k % 3) as f64 - 1.0)
            };
            tr.push(Seconds::new(t), Amps::new(i));
        }
        crate::analyze_transient(tr, Seconds::new(10.0))
    }

    /// 1 µA test full scale.
    const FS: Amps = Amps::new(1e-6);

    #[test]
    fn clean_transient_passes() {
        let v = QcGate::default().check_chrono(&clean_measurement(100.0), FS);
        assert_eq!(v.class, QcClass::Pass, "{:?}", v.reasons);
        assert!(v.reasons.is_empty());
        assert!(v.is_usable());
    }

    #[test]
    fn nan_sample_fails_nonfinite() {
        let mut m = clean_measurement(100.0);
        let mut tr = Transient::new();
        for (k, (t, i)) in m.transient.iter().enumerate() {
            tr.push(t, if k == 50 { Amps::new(f64::NAN) } else { i });
        }
        m.transient = tr;
        let v = QcGate::default().check_chrono(&m, FS);
        assert_eq!(v.class, QcClass::Fail);
        assert!(matches!(v.reasons[0], QcReason::NonFinite));
    }

    #[test]
    fn railed_transient_fails_saturated() {
        let mut tr = Transient::new();
        for k in 0..280 {
            let t = k as f64 * 0.25;
            let i = if t < 10.0 { 0.0 } else { 1e-6 }; // pinned at full scale
            tr.push(Seconds::new(t), Amps::new(i));
        }
        let m = crate::analyze_transient(tr, Seconds::new(10.0));
        let v = QcGate::default().check_chrono(&m, FS);
        assert_eq!(v.class, QcClass::Fail);
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(r, QcReason::Saturated { .. })));
    }

    #[test]
    fn noisy_baseline_trips_noise_bound() {
        let mut tr = Transient::new();
        for k in 0..280 {
            let t = k as f64 * 0.25;
            // ±60 nA deterministic square ripple = 6% of full scale.
            let ripple = 6e-8 * if k % 2 == 0 { 1.0 } else { -1.0 };
            let i = if t < 10.0 { ripple } else { 1e-7 + ripple };
            tr.push(Seconds::new(t), Amps::new(i));
        }
        let m = crate::analyze_transient(tr, Seconds::new(10.0));
        let v = QcGate::default().check_chrono(&m, FS);
        assert_eq!(v.class, QcClass::Fail, "{:?}", v.reasons);
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(r, QcReason::BaselineNoise { .. })));
    }

    #[test]
    fn offset_baseline_trips_drift_bound() {
        let mut tr = Transient::new();
        for k in 0..280 {
            let t = k as f64 * 0.25;
            let i = 0.35e-6 + if t < 10.0 { 0.0 } else { 1e-7 };
            tr.push(Seconds::new(t), Amps::new(i));
        }
        let m = crate::analyze_transient(tr, Seconds::new(10.0));
        let v = QcGate::default().check_chrono(&m, FS);
        assert_eq!(v.class, QcClass::Fail, "{:?}", v.reasons);
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(r, QcReason::BaselineDrift { .. })));
    }

    #[test]
    fn trending_tail_trips_stationarity() {
        let mut tr = Transient::new();
        for k in 0..280 {
            let t = k as f64 * 0.25;
            // Response keeps decaying instead of settling (fouling-like).
            let i = if t < 10.0 {
                0.0
            } else {
                2e-7 * (-(t - 10.0) / 40.0).exp()
            };
            tr.push(Seconds::new(t), Amps::new(i));
        }
        let m = crate::analyze_transient(tr, Seconds::new(10.0));
        let v = QcGate::default().check_chrono(&m, FS);
        assert!(v.class >= QcClass::Suspect, "{:?}", v.reasons);
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(r, QcReason::NonStationaryTail { .. })));
    }

    #[test]
    fn vanished_response_fails_low_response() {
        let v = QcGate::default().check_chrono(&clean_measurement(0.0), FS);
        assert_eq!(v.class, QcClass::Fail, "{:?}", v.reasons);
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(r, QcReason::LowResponse { .. })));
        // The same gate with the response check disabled passes it.
        let relaxed = QcGate::default().without_min_delta();
        let v = relaxed.check_chrono(&clean_measurement(0.0), FS);
        assert!(v.is_usable());
    }

    #[test]
    fn class_ordering_and_display() {
        assert!(QcClass::Fail > QcClass::Suspect);
        assert!(QcClass::Suspect > QcClass::Pass);
        assert_eq!(QcClass::Fail.to_string(), "fail");
        assert_eq!(QcClass::Pass.worst(QcClass::Suspect), QcClass::Suspect);
    }

    #[test]
    fn verdict_serializes_with_reasons() {
        let mut v = QcVerdict::pass();
        v.add(QcClass::Suspect, QcReason::Saturated { fraction: 0.02 });
        let json = serde_json::to_string(&v).expect("serialize");
        assert!(json.contains("Suspect"));
        assert!(json.contains("Saturated"));
        let back: QcVerdict = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, v);
    }
}
