//! Measurement science for the `advdiag` biosensing platform: protocols,
//! peak analysis and calibration statistics.
//!
//! This crate turns the paper's §II-B "desirable properties of a biosensing
//! acquisition chain" into code:
//!
//! * [`run_chrono`] / [`calibrate_chrono`] — chronoamperometry on oxidase
//!   sensors: injections, `t₉₀` and transient response times (Fig. 3),
//!   full calibration campaigns;
//! * [`run_cv`] / [`calibrate_cv`] — cyclic voltammetry on cytochrome P450
//!   sensors: cathodic [`Peak`] detection, electrochemical
//!   [`match_signature`] identification (Table II), peak-height
//!   calibration;
//! * [`analyze_calibration`] — sensitivity (eq. 6), LOD = `V_b + 3σ_b`
//!   (eq. 5), linear-range detection and `NL_max` (eq. 7);
//! * [`ReplicateStats`] and [`PerformanceReport`] — the statistics and the
//!   Table III-style outputs.
//!
//! Every stochastic function takes an explicit seed; identical seeds give
//! identical measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod chrono_protocol;
mod cv_protocol;
mod error;
mod injection;
mod metrics;
mod peaks;
mod qc;
mod replicate;
mod signature;

pub use calibration::{
    analyze_calibration, fit_line, max_nonlinearity, CalibrationOutcome, CalibrationPoint,
    LinearFit,
};
pub use chrono_protocol::{
    analyze_transient, calibrate_chrono, run_chrono, run_chrono_with_interferents,
    ChronoMeasurement, ChronoProtocol,
};
pub use cv_protocol::{calibrate_cv, peak_readout, run_cv, CvMeasurement, CvProtocol};
pub use error::InstrumentError;
pub use injection::{run_injection_series, InjectionSchedule, InjectionSeriesResult};
pub use metrics::PerformanceReport;
pub use peaks::{
    anodic_segment, cathodic_segment, detect_anodic_peaks, detect_cathodic_peaks, Peak, PeakOptions,
};
pub use qc::{QcClass, QcDecision, QcGate, QcReason, QcVerdict};
pub use replicate::ReplicateStats;
pub use signature::{match_signature, ExpectedPeak, SignatureMatch, DEFAULT_WINDOW};
