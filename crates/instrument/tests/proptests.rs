//! Property-based tests for the measurement-science layer.

use bios_biochem::Analyte;
use bios_instrument::{
    analyze_calibration, detect_cathodic_peaks, fit_line, match_signature, max_nonlinearity,
    CalibrationPoint, ExpectedPeak, PeakOptions, ReplicateStats, DEFAULT_WINDOW,
};
use bios_units::{Amps, Molar, Volts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// fit_line exactly recovers any non-degenerate line.
    #[test]
    fn fit_recovers_exact_lines(
        slope in -1e3f64..1e3,
        intercept in -1.0f64..1.0,
        n in 3usize..40,
        c0 in 0.001f64..1.0,
        dc in 0.001f64..1.0,
    ) {
        let points: Vec<CalibrationPoint> = (0..n)
            .map(|k| {
                let c = c0 + dc * k as f64;
                CalibrationPoint {
                    concentration: Molar::new(c),
                    response: intercept + slope * c,
                }
            })
            .collect();
        let fit = fit_line(&points).expect("non-degenerate");
        let scale = slope.abs().max(1.0);
        prop_assert!((fit.slope - slope).abs() < 1e-6 * scale, "{} vs {slope}", fit.slope);
        prop_assert!(fit.r2 > 0.999999 || slope.abs() < 1e-9);
    }

    /// The fit residual SD is invariant under adding a constant and scales
    /// linearly with response scaling.
    #[test]
    fn fit_residual_equivariance(seed in 0u64..500, scale in 0.5f64..100.0, offset in -10.0f64..10.0) {
        let noise = |k: usize| (((seed as f64 + k as f64) * 12.9898).sin() * 43758.5453).fract() - 0.5;
        let base: Vec<CalibrationPoint> = (0..12)
            .map(|k| CalibrationPoint {
                concentration: Molar::new(0.1 * (k + 1) as f64),
                response: 2.0 * 0.1 * (k + 1) as f64 + 0.05 * noise(k),
            })
            .collect();
        let shifted: Vec<CalibrationPoint> = base
            .iter()
            .map(|p| CalibrationPoint { response: p.response * scale + offset, ..*p })
            .collect();
        let f0 = fit_line(&base).expect("fit");
        let f1 = fit_line(&shifted).expect("fit");
        prop_assert!((f1.residual_sd - f0.residual_sd * scale).abs() < 1e-9 * scale.max(1.0));
        prop_assert!((f1.slope - f0.slope * scale).abs() < 1e-9 * scale.max(1.0));
    }

    /// eq. 7 nonlinearity is invariant under response scaling (it is
    /// normalized) and zero for lines.
    #[test]
    fn nonlinearity_scale_invariant(scale in 0.1f64..100.0, curvature in 0.0f64..0.5) {
        let points: Vec<CalibrationPoint> = (0..8)
            .map(|k| {
                let c = 0.1 * (k + 1) as f64;
                CalibrationPoint {
                    concentration: Molar::new(c),
                    response: c + curvature * c * c,
                }
            })
            .collect();
        let scaled: Vec<CalibrationPoint> = points
            .iter()
            .map(|p| CalibrationPoint { response: p.response * scale, ..*p })
            .collect();
        let n0 = max_nonlinearity(&points).expect("nl");
        let n1 = max_nonlinearity(&scaled).expect("nl");
        prop_assert!((n0 - n1).abs() < 1e-9);
        if curvature == 0.0 {
            prop_assert!(n0 < 1e-12);
        }
    }

    /// Peak detection is equivariant under current scaling: same
    /// positions, proportionally scaled heights.
    #[test]
    fn peak_detection_scale_equivariant(amp_na in 0.5f64..50.0, scale in 1.5f64..20.0) {
        let sweep = |a: f64| -> Vec<(Volts, Amps)> {
            (0..300)
                .map(|k| {
                    let e = -0.7 + 0.002 * k as f64;
                    let i = -a * 1e-9 * (-((e + 0.35) / 0.04).powi(2)).exp();
                    (Volts::new(e), Amps::new(i))
                })
                .collect()
        };
        let opts = PeakOptions {
            min_height: Amps::from_picoamps(100.0),
            smoothing: 2,
        };
        let p0 = detect_cathodic_peaks(&sweep(amp_na), opts).expect("peaks");
        let p1 = detect_cathodic_peaks(&sweep(amp_na * scale), opts).expect("peaks");
        prop_assert_eq!(p0.len(), 1);
        prop_assert_eq!(p1.len(), 1);
        prop_assert_eq!(p0[0].potential, p1[0].potential);
        let ratio = p1[0].height.value() / p0[0].height.value();
        prop_assert!((ratio - scale).abs() < 0.05 * scale, "ratio {ratio}");
    }

    /// Signature matching never assigns one peak to two analytes and never
    /// matches outside the window.
    #[test]
    fn signature_matching_sound(
        peaks_mv in prop::collection::vec(-800.0f64..-10.0, 0..6),
        expected_mv in prop::collection::vec(-800.0f64..-10.0, 1..6),
    ) {
        let peaks: Vec<bios_instrument::Peak> = peaks_mv
            .iter()
            .enumerate()
            .map(|(k, e)| bios_instrument::Peak {
                potential: Volts::from_millivolts(*e),
                current: Amps::new(-1e-9),
                height: Amps::new(1e-9 * (k + 1) as f64),
                index: k,
            })
            .collect();
        let expected: Vec<ExpectedPeak> = expected_mv
            .iter()
            .map(|e| ExpectedPeak {
                analyte: Analyte::Clozapine,
                potential: Volts::from_millivolts(*e),
            })
            .collect();
        let matches = match_signature(&peaks, &expected, DEFAULT_WINDOW);
        prop_assert_eq!(matches.len(), expected.len());
        let mut used = std::collections::HashSet::new();
        for m in &matches {
            if let Some(p) = m.peak {
                prop_assert!(
                    (p.potential - m.expected).abs().value() <= DEFAULT_WINDOW.value() + 1e-12
                );
                prop_assert!(used.insert(p.index), "peak double-claimed");
            }
        }
    }

    /// Replicate statistics: shifting adds to the mean, scaling multiplies
    /// the SD; the detection threshold follows eq. 5.
    #[test]
    fn replicate_stats_affine(
        vals in prop::collection::vec(-1e3f64..1e3, 2..50),
        shift in -100.0f64..100.0,
        scale in 0.1f64..10.0,
    ) {
        let s0 = ReplicateStats::from_samples(&vals).expect("enough data");
        let transformed: Vec<f64> = vals.iter().map(|v| v * scale + shift).collect();
        let s1 = ReplicateStats::from_samples(&transformed).expect("enough data");
        let tol = 1e-9 * (1.0 + s0.mean().abs() + s0.sd());
        prop_assert!((s1.mean() - (s0.mean() * scale + shift)).abs() < tol * scale.max(1.0) * 100.0);
        prop_assert!((s1.sd() - s0.sd() * scale).abs() < tol * scale.max(1.0) * 100.0);
        prop_assert!((s1.detection_threshold() - (s1.mean() + 3.0 * s1.sd())).abs() < 1e-9 * (1.0 + s1.mean().abs()));
    }

    /// Calibration analysis LOD is inversely proportional to sensitivity:
    /// scaling all responses (and blanks) by k leaves the LOD unchanged;
    /// scaling only the slope divides it.
    #[test]
    fn lod_scaling_relations(k in 2.0f64..50.0) {
        let blanks = [0.0, 1e-9, -1e-9, 2e-9, -2e-9];
        let points: Vec<CalibrationPoint> = (1..8)
            .map(|j| CalibrationPoint {
                concentration: Molar::new(1e-3 * j as f64),
                response: 1e-4 * j as f64,
            })
            .collect();
        let base = analyze_calibration(&blanks, &points, 0.1).expect("analysis");
        // Scale everything: LOD invariant.
        let blanks_k: Vec<f64> = blanks.iter().map(|b| b * k).collect();
        let points_k: Vec<CalibrationPoint> = points
            .iter()
            .map(|p| CalibrationPoint { response: p.response * k, ..*p })
            .collect();
        let both = analyze_calibration(&blanks_k, &points_k, 0.1).expect("analysis");
        prop_assert!((both.lod.value() - base.lod.value()).abs() < 1e-9 * base.lod.value());
        // Scale only the slope: LOD divides by k.
        let steeper = analyze_calibration(&blanks, &points_k, 0.1).expect("analysis");
        prop_assert!(
            (steeper.lod.value() - base.lod.value() / k).abs() < 1e-9 * base.lod.value()
        );
    }
}
