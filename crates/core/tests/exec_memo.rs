//! Edge cases of the deterministic parallel engine and the memo caches,
//! exercised through the crate's public API only.
//!
//! Every test that touches `ADVDIAG_THREADS` sets it to the same value
//! (`1`): the engine reads the variable once per process through a
//! `OnceLock`, and integration tests share one process.

use bios_biochem::Analyte;
use bios_electrochem::Nanostructure;
use bios_platform::{
    clear_memo_caches, memo_stats, par_map, predict_lod, try_par_map, DesignPoint, ExecPolicy,
    ProbePreference, ReadoutSharing,
};

/// Pins the env override before the engine's `OnceLock` first resolves it.
fn force_single_thread() {
    std::env::set_var("ADVDIAG_THREADS", "1");
}

#[test]
fn env_override_forces_sequential_auto_policy() {
    force_single_thread();
    assert_eq!(
        ExecPolicy::Auto.threads_for(100),
        1,
        "ADVDIAG_THREADS=1 must win over available parallelism"
    );
    // The sequential path must still produce the reference output.
    let items: Vec<u64> = (0..64).collect();
    let f = |i: usize, x: &u64| (i as u64) ^ (x << 1);
    let reference: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    assert_eq!(par_map(ExecPolicy::Auto, &items, f), reference);
}

#[test]
fn empty_inputs_yield_empty_outputs_under_every_policy() {
    force_single_thread();
    let empty: Vec<u32> = Vec::new();
    for policy in [
        ExecPolicy::Sequential,
        ExecPolicy::Threads(8),
        ExecPolicy::Auto,
    ] {
        assert!(par_map(policy, &empty, |_, x| *x).is_empty());
        let ok: Result<Vec<u32>, ()> = try_par_map(policy, &empty, |_, x| Ok(*x));
        assert_eq!(ok, Ok(Vec::new()));
    }
}

#[test]
fn try_par_map_surfaces_an_error_at_index_zero() {
    force_single_thread();
    let items: Vec<i32> = (0..40).collect();
    let out: Result<Vec<i32>, usize> = try_par_map(ExecPolicy::Threads(4), &items, |i, x| {
        if i == 0 || *x == 25 {
            Err(i)
        } else {
            Ok(*x)
        }
    });
    assert_eq!(
        out,
        Err(0),
        "index 0 is the lowest-index error and must win"
    );
}

fn point() -> DesignPoint {
    DesignPoint {
        nanostructure: Nanostructure::CarbonNanotubes,
        sharing: ReadoutSharing::Shared,
        chopper: true,
        cds: true,
        adc_bits: 12,
        preference: ProbePreference::MinimizeElectrodes,
    }
}

#[test]
fn clear_memo_caches_resets_counters_and_forces_recompute() {
    clear_memo_caches();
    assert_eq!(memo_stats(), (0, 0), "clear must zero the counters");

    let first = predict_lod(Analyte::Glucose, &point()).expect("registered target");
    let (h0, m0) = memo_stats();
    assert_eq!((h0, m0), (0, 1), "cold call is a miss");

    let second = predict_lod(Analyte::Glucose, &point()).expect("registered target");
    let (h1, m1) = memo_stats();
    assert_eq!((h1, m1), (1, 1), "repeat call is a hit");
    assert_eq!(
        first.value().to_bits(),
        second.value().to_bits(),
        "a hit returns the exact cached value"
    );

    clear_memo_caches();
    assert_eq!(memo_stats(), (0, 0));
    let third = predict_lod(Analyte::Glucose, &point()).expect("registered target");
    assert_eq!(
        memo_stats(),
        (0, 1),
        "after a clear the same key must recompute (miss, not hit)"
    );
    assert_eq!(
        first.value().to_bits(),
        third.value().to_bits(),
        "recompute reproduces the original value bit for bit"
    );
}
