//! Property-based tests for the platform layer.

use bios_biochem::Analyte;
use bios_electrochem::Nanostructure;
use bios_platform::{
    crosstalk_fraction, explore_with, minimum_pitch, pareto_front, DesignPoint, DesignSpace,
    ExecPolicy, PanelSpec, PlatformBuilder, ProbePreference, ReadoutSharing, Schedule, TargetSpec,
};
use bios_units::{Centimeters, Seconds};
use proptest::prelude::*;

fn arbitrary_panel() -> impl Strategy<Value = PanelSpec> {
    // Subsets of the sensable analytes, always non-empty.
    let sensable = [
        Analyte::Glucose,
        Analyte::Lactate,
        Analyte::Glutamate,
        Analyte::Cholesterol,
        Analyte::Benzphetamine,
        Analyte::Aminopyrine,
        Analyte::Clozapine,
        Analyte::Lidocaine,
    ];
    prop::collection::vec(0usize..sensable.len(), 1..6).prop_map(move |idxs| {
        idxs.into_iter()
            .map(|i| TargetSpec::typical(sensable[i]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every valid panel builds, covers all its targets, and schedules
    /// without overlap under shared readout.
    #[test]
    fn any_panel_builds_and_covers_targets(panel in arbitrary_panel()) {
        let targets: Vec<Analyte> = panel.targets().iter().map(|t| t.analyte).collect();
        let p = PlatformBuilder::new(panel).build().expect("build");
        for t in &targets {
            let covered = p
                .assignments()
                .iter()
                .any(|a| a.targets().contains(t));
            prop_assert!(covered, "target {t} not covered");
        }
        // WEs never exceed targets.
        prop_assert!(p.assignments().len() <= targets.len());
        let s = p.schedule();
        prop_assert!(!s.has_overlap());
        prop_assert_eq!(s.slots().len(), p.assignments().len());
    }

    /// Cross-talk is monotone decreasing in pitch and the minimum pitch is
    /// the exact boundary.
    #[test]
    fn crosstalk_monotonicity(
        p1_mm in 0.05f64..5.0,
        dp_mm in 0.01f64..5.0,
        t in 5.0f64..1000.0,
        tol in 0.0005f64..0.049,
    ) {
        let t = Seconds::new(t);
        let f1 = crosstalk_fraction(Centimeters::from_millimeters(p1_mm), t);
        let f2 = crosstalk_fraction(Centimeters::from_millimeters(p1_mm + dp_mm), t);
        prop_assert!(f2 <= f1);
        let pmin = minimum_pitch(t, tol);
        if pmin.value() > 0.0 {
            let at_boundary = crosstalk_fraction(pmin, t);
            prop_assert!((at_boundary - tol).abs() < tol * 1e-6);
        }
    }

    /// Pareto marking is sound: no marked design is dominated by another
    /// feasible design, and at least one feasible design is marked.
    #[test]
    fn pareto_soundness(seed in 0u64..50) {
        // A small deterministic space (vary by seed through bit choices).
        let bits = 10 + (seed % 3) as u8 * 2;
        let space = DesignSpace {
            nanostructures: vec![Nanostructure::None, Nanostructure::CarbonNanotubes],
            sharing: vec![ReadoutSharing::Shared, ReadoutSharing::Dedicated],
            chopper: vec![false, true],
            cds: vec![false],
            adc_bits: vec![bits],
            preferences: vec![ProbePreference::MinimizeElectrodes],
        };
        let designs = explore_with(&PanelSpec::paper_fig4(), &space, ExecPolicy::Auto)
            .expect("explore");
        let feasible: Vec<_> = designs.iter().filter(|d| d.feasible).collect();
        if !feasible.is_empty() {
            prop_assert!(designs.iter().any(|d| d.pareto));
        }
        for d in designs.iter().filter(|d| d.pareto) {
            for other in &designs {
                if other.feasible && !std::ptr::eq(d, other) {
                    let dominates = other.cost.scalar() <= d.cost.scalar()
                        && other.worst_lod_margin >= d.worst_lod_margin
                        && (other.cost.scalar() < d.cost.scalar()
                            || other.worst_lod_margin > d.worst_lod_margin);
                    prop_assert!(!dominates);
                }
            }
        }
    }

    /// Re-running pareto_front is idempotent.
    #[test]
    fn pareto_idempotent(_x in 0..5) {
        let point = DesignPoint {
            nanostructure: Nanostructure::CarbonNanotubes,
            sharing: ReadoutSharing::Shared,
            chopper: false,
            cds: false,
            adc_bits: 12,
            preference: ProbePreference::MinimizeElectrodes,
        };
        let mut designs = vec![
            bios_platform::evaluate(&PanelSpec::paper_fig4(), &point).expect("evaluate"),
        ];
        pareto_front(&mut designs);
        let once: Vec<bool> = designs.iter().map(|d| d.pareto).collect();
        pareto_front(&mut designs);
        let twice: Vec<bool> = designs.iter().map(|d| d.pareto).collect();
        prop_assert_eq!(once, twice);
    }

    /// Sequential schedules conserve total time; parallel ones take the max.
    #[test]
    fn schedule_time_arithmetic(durations in prop::collection::vec(1.0f64..200.0, 1..8)) {
        let mux = bios_afe::AnalogMux::typical_cmos(durations.len()).expect("valid");
        let ms: Vec<(usize, bios_biochem::Technique, Seconds)> = durations
            .iter()
            .enumerate()
            .map(|(k, d)| (k, bios_biochem::Technique::Chronoamperometry, Seconds::new(*d)))
            .collect();
        let seq = Schedule::sequential(&ms, &mux);
        let par = Schedule::parallel(&ms);
        let sum: f64 = durations.iter().sum();
        let max = durations.iter().fold(0.0f64, |a, b| a.max(*b));
        prop_assert!((seq.total_duration().value() - sum).abs() < 0.01);
        prop_assert!((par.total_duration().value() - max).abs() < 1e-9);
        prop_assert!(!seq.has_overlap());
    }

    /// Retry slots appended by the robustness runtime never overlap any
    /// existing slot, for arbitrary retry sequences on both sequential and
    /// parallel base schedules.
    #[test]
    fn retry_appends_never_overlap(
        base in prop::collection::vec(1.0f64..120.0, 1..6),
        retries in prop::collection::vec((0usize..6, 0.5f64..90.0, 0.0f64..15.0), 1..10),
        parallel_sel in 0usize..2,
    ) {
        let parallel_base = parallel_sel == 1;
        let mux = bios_afe::AnalogMux::typical_cmos(base.len()).expect("valid");
        let ms: Vec<(usize, bios_biochem::Technique, Seconds)> = base
            .iter()
            .enumerate()
            .map(|(k, d)| (k, bios_biochem::Technique::Chronoamperometry, Seconds::new(*d)))
            .collect();
        let mut s = if parallel_base {
            Schedule::parallel(&ms)
        } else {
            Schedule::sequential(&ms, &mux)
        };
        // Parallel bases overlap by design (dedicated chains); sequential
        // ones must not, and must stay overlap-free through every retry.
        if !parallel_base {
            prop_assert!(!s.has_overlap());
        }
        for (we, dur, gap) in &retries {
            let before = s.total_duration();
            s.append_retry(
                *we,
                bios_biochem::Technique::Chronoamperometry,
                Seconds::new(*dur),
                Seconds::new(*gap),
            );
            let retry = *s.slots().last().expect("appended slot");
            // The retry starts only after everything already scheduled
            // has finished — it can never collide with an earlier slot.
            prop_assert!(retry.start.value() >= before.value());
            if !parallel_base {
                prop_assert!(!s.has_overlap());
            }
            prop_assert!(s.total_duration().value() >= before.value() + *dur);
        }
        prop_assert_eq!(s.slots().len(), base.len() + retries.len());
    }
}

proptest! {
    /// The retry backoff schedule is a pure function of the policy:
    /// computing it twice gives the same ticks, every per-attempt delay is
    /// monotone non-decreasing and capped, and the cumulative schedule is
    /// strictly increasing (so a resumed session can never observe two
    /// retries landing on the same wake tick).
    #[test]
    fn backoff_schedule_is_deterministic_monotone_and_strictly_increasing(
        base in 0u64..1_000,
        cap in 1u64..10_000,
        retries in 0usize..12,
    ) {
        let policy = bios_platform::RetryPolicy {
            max_retries: retries,
            backoff_base_ticks: base,
            backoff_cap_ticks: cap,
            ..bios_platform::RetryPolicy::default()
        };
        let a = policy.backoff_schedule();
        let b = policy.backoff_schedule();
        prop_assert_eq!(&a, &b, "schedule must be deterministic");
        prop_assert_eq!(a.len(), retries, "one entry per retry in the budget");
        for w in a.windows(2) {
            prop_assert!(w[1] > w[0], "cumulative schedule must be strictly increasing");
        }
        for k in 0..retries {
            prop_assert!(policy.backoff_ticks(k) <= cap, "per-attempt delay exceeds cap");
            if k > 0 {
                prop_assert!(
                    policy.backoff_ticks(k) >= policy.backoff_ticks(k - 1),
                    "per-attempt delay must be monotone non-decreasing"
                );
            }
        }
        prop_assert_eq!(policy.attempt_budget(), retries + 1);
    }

    /// Reseed strides never overlap: across every electrode and every
    /// attempt in the retry budget, the derived measurement seeds are
    /// pairwise distinct — no retry can silently replay another
    /// electrode's (or attempt's) noise stream.
    #[test]
    fn attempt_seeds_never_collide_across_electrodes_or_attempts(
        seed in 0u64..u64::MAX,
        wes in 1usize..16,
        retries in 0usize..8,
    ) {
        let policy = bios_platform::RetryPolicy {
            max_retries: retries,
            ..bios_platform::RetryPolicy::default()
        };
        // Mirrors the platform's per-electrode seeding (stride 17): the
        // property pins down that the electrode stride and the retry
        // reseed stride can never alias within a session.
        let we_seed = |we: u64| seed.wrapping_add(17 * (we + 1));
        let mut seen = std::collections::BTreeSet::new();
        for we in 0..wes as u64 {
            for attempt in 0..policy.attempt_budget() {
                seen.insert(policy.attempt_seed(we_seed(we), attempt));
            }
        }
        prop_assert_eq!(
            seen.len(),
            wes * policy.attempt_budget(),
            "a reseed collision would replay another attempt's noise"
        );
    }
}

proptest! {
    /// Backoff saturation over the *full* `u32` attempt range: no shift
    /// or multiply can wrap, huge attempts saturate at the cap, the
    /// delay is monotone non-decreasing in the attempt, and below the
    /// cap it is exactly `base * 2^attempt`.
    #[test]
    fn backoff_ticks_saturate_over_the_full_attempt_range(
        base in 1u64..u64::MAX / 2,
        cap in 1u64..u64::MAX,
        attempt in 0u32..u32::MAX,
    ) {
        let policy = bios_platform::RetryPolicy {
            backoff_base_ticks: base,
            backoff_cap_ticks: cap,
            ..bios_platform::RetryPolicy::default()
        };
        let delay = policy.backoff_ticks(attempt as usize);
        prop_assert!(delay <= cap, "delay must never exceed the cap");
        if attempt < u32::MAX {
            prop_assert!(
                policy.backoff_ticks(attempt as usize + 1) >= delay,
                "delay must be monotone non-decreasing in the attempt"
            );
        }
        // Exact doubling below the cap; saturation at or past it.
        match 2u64.checked_pow(attempt).and_then(|m| base.checked_mul(m)) {
            Some(exact) => prop_assert_eq!(delay, exact.min(cap)),
            None => prop_assert_eq!(delay, cap, "overflowed product saturates at the cap"),
        }
    }
}
