//! `bios-platform` — the DATE 2011 paper's contribution: platform-based
//! design of integrated multi-target electrochemical biosensors.
//!
//! The paper proposes "the use of a platform, i.e., a restriction of the
//! design space to the use of a small number of parametrized components, to
//! cope with the design of integrated multiple-target biosensors" (§I).
//! This crate implements that idea end to end:
//!
//! * [`PanelSpec`] — *what to sense*: targets with LOD/range requirements;
//! * [`PlatformBuilder`] — probe selection (oxidase vs cytochrome,
//!   multi-target grouping), sensor [`SensorStructure`] choice including
//!   the quantitative cross-talk/chamber decision
//!   ([`crosstalk_fraction`]), and readout-chain instantiation;
//! * [`Platform`] — the runnable Fig. 4-style instance: multiplexed
//!   [`Schedule`], full-session simulation
//!   ([`Platform::run_session`]) and a [`PlatformCost`] summary;
//! * [`SessionOptions`] / [`Platform::run_session_with`] — graceful
//!   degradation: seeded fault injection
//!   ([`FaultPlan`](bios_afe::FaultPlan)), per-acquisition QC gating,
//!   bounded retries with quarantine, and a [`DegradationSummary`] so
//!   faulted sessions return partial results with provenance;
//! * [`explore`] / [`DesignSpace`] — design-space exploration with
//!   analytic LOD prediction ([`predict_lod`]) and Pareto filtering
//!   ([`pareto_front`]).
//!
//! # Example: the paper's Fig. 4 platform in four lines
//!
//! ```
//! use bios_biochem::Analyte;
//! use bios_platform::{PanelSpec, PlatformBuilder};
//! use bios_units::Molar;
//!
//! # fn main() -> Result<(), bios_platform::PlatformError> {
//! let platform = PlatformBuilder::new(PanelSpec::paper_fig4()).build()?;
//! let sample = [(Analyte::Glucose, Molar::from_millimolar(3.0))];
//! let report = platform.run_session(&sample, 42)?;
//! assert!(report.reading_for(Analyte::Glucose).expect("on panel").identified);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod chamber;
mod cost;
mod error;
mod exec;
mod explore;
mod memo;
mod platform;
mod report;
mod requirements;
mod robustness;
mod schedule;
mod selectivity;
mod session;
mod structure;

pub use builder::{PlatformBuilder, ProbePreference};
pub use chamber::{crosstalk_fraction, minimum_pitch, needs_chambers, CAPTURE_EFFICIENCY, D_H2O2};
pub use cost::{electronics_budget, PlatformCost, ReadoutSharing};
pub use error::PlatformError;
pub use exec::{par_map, par_map_chunks, par_map_mut, try_par_map, ExecPolicy};
pub use explore::{
    effective_sensitivity, evaluate, explore_with, noise_breakdown, pareto_front, predict_lod,
    required_lod, DesignPoint, DesignSpace, EvaluatedDesign, NoiseBreakdown, PAPER_WE_AREA_CM2,
};
pub use memo::{clear_memo_caches, memo_stats};
pub use platform::{Platform, SensorModel, SessionReport, TargetReading, WeAssignment};
pub use requirements::{PanelSpec, TargetSpec};
pub use robustness::{DegradationSummary, RetryPolicy, SessionOptions, TargetQuality};
pub use schedule::{Schedule, ScheduleSlot};
pub use selectivity::SelectivityMatrix;
pub use session::{
    SampleRequest, SampleResult, SessionCheckpoint, SessionMachine, SessionStep, StepEvent,
    StepKind,
};
pub use structure::SensorStructure;
