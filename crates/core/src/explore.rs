//! Design-space exploration — the paper's thesis (§I): "the proliferation
//! of electronic monitoring techniques would benefit from a systematic
//! design space exploration, in the search of the most cost-effective
//! solution (e.g., small, low energy consumption, low-cost) to a given
//! problem."
//!
//! The explorer enumerates parameterized-component choices, predicts each
//! design's per-target LOD analytically (fast — no transient simulation),
//! checks feasibility against the panel requirements and computes the cost
//! model, then marks the Pareto-efficient designs.

use crate::builder::{PlatformBuilder, ProbePreference};
use crate::cost::{electronics_budget, PlatformCost, ReadoutSharing};
use crate::error::PlatformError;
use crate::exec::{try_par_map, ExecPolicy};
use crate::requirements::PanelSpec;
use bios_afe::{CurrentRange, MatchingQuality, CHOPPER_SUPPRESSION};
use bios_biochem::{tables::performance_of, Analyte, Technique};
use bios_electrochem::Nanostructure;
use bios_units::Molar;

/// One coordinate of the design space.
///
/// All axes are discrete, so the point is `Eq + Hash` and can key caches
/// (see [`crate::memo`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct DesignPoint {
    /// Working-electrode nanostructuring.
    pub nanostructure: Nanostructure,
    /// Shared (muxed) vs dedicated readout.
    pub sharing: ReadoutSharing,
    /// Chopper stabilization.
    pub chopper: bool,
    /// Blank-electrode correlated double sampling.
    pub cds: bool,
    /// ADC resolution.
    pub adc_bits: u8,
    /// Probe preference for ambiguous targets.
    pub preference: ProbePreference,
}

/// The enumerable design space (cartesian product of the axes).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Nanostructure options.
    pub nanostructures: Vec<Nanostructure>,
    /// Sharing options.
    pub sharing: Vec<ReadoutSharing>,
    /// Chopper on/off options.
    pub chopper: Vec<bool>,
    /// CDS on/off options.
    pub cds: Vec<bool>,
    /// ADC bit options.
    pub adc_bits: Vec<u8>,
    /// Probe preferences.
    pub preferences: Vec<ProbePreference>,
}

impl DesignSpace {
    /// The default exploration grid: {bare, CNT} × {shared, dedicated} ×
    /// {chopper on/off} × {CDS on/off} × {10, 12, 14 bits} × {minimize
    /// electrodes, prefer oxidase} = 96 designs.
    pub fn paper_default() -> Self {
        Self {
            nanostructures: vec![Nanostructure::None, Nanostructure::CarbonNanotubes],
            sharing: vec![ReadoutSharing::Shared, ReadoutSharing::Dedicated],
            chopper: vec![false, true],
            cds: vec![false, true],
            adc_bits: vec![10, 12, 14],
            preferences: vec![
                ProbePreference::MinimizeElectrodes,
                ProbePreference::PreferOxidase,
            ],
        }
    }

    /// Lazily enumerates all design points, in the same (row-major) order
    /// as [`DesignSpace::points`]. Nothing is materialized until the
    /// iterator is driven, so callers that stop early (feasibility probes,
    /// `take(n)` sampling) pay only for what they consume.
    pub fn points_iter(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        self.nanostructures
            .iter()
            .copied()
            .flat_map(move |nanostructure| {
                self.sharing.iter().copied().flat_map(move |sharing| {
                    self.chopper.iter().copied().flat_map(move |chopper| {
                        self.cds.iter().copied().flat_map(move |cds| {
                            self.adc_bits.iter().copied().flat_map(move |adc_bits| {
                                self.preferences.iter().copied().map(move |preference| {
                                    DesignPoint {
                                        nanostructure,
                                        sharing,
                                        chopper,
                                        cds,
                                        adc_bits,
                                        preference,
                                    }
                                })
                            })
                        })
                    })
                })
            })
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        self.nanostructures.len()
            * self.sharing.len()
            * self.chopper.len()
            * self.cds.len()
            * self.adc_bits.len()
            * self.preferences.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An evaluated design.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvaluatedDesign {
    /// The design coordinates.
    pub point: DesignPoint,
    /// Predicted LOD per target.
    pub predicted_lods: Vec<(Analyte, Molar)>,
    /// Whether every target's predicted LOD meets its requirement.
    pub feasible: bool,
    /// Worst-case LOD margin: min over targets of `required / predicted`
    /// (>1 means all requirements met with headroom).
    pub worst_lod_margin: f64,
    /// The cost summary.
    pub cost: PlatformCost,
    /// Marked by [`pareto_front`]: no other *feasible* design is both
    /// cheaper and higher-margin.
    pub pareto: bool,
}

/// Fraction of the registry blank noise that is slow/drift-like (removable
/// by CDS); the remainder is stochastic.
const DRIFT_FRACTION: f64 = 0.7;

/// Amplifier flicker noise contribution, as a fraction of the sensor blank
/// noise in the un-chopped slow-sampling regime.
const AMP_FLICKER_FRACTION: f64 = 0.5;

/// Geometric area of the paper's working electrode (0.23 mm²), in cm² —
/// the reference area every current-density figure in the LOD model is
/// referred to.
pub const PAPER_WE_AREA_CM2: f64 = 0.0023;

/// The blank-noise current-density budget behind [`predict_lod`], term by
/// term (all in A/cm²), exposed as a pure closed form so downstream
/// analyses — the `bios-explore` pass pipeline in particular — can rescale
/// individual terms (spatial averaging, oversampling) without re-deriving
/// the model. [`NoiseBreakdown::total`] recombines the terms exactly as
/// [`predict_lod`] does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBreakdown {
    /// Slow/drift-like sensor noise after CDS (if enabled).
    pub drift: f64,
    /// Stochastic sensor noise (CDS doubles its variance).
    pub stochastic: f64,
    /// Amplifier flicker noise after chopper suppression (if enabled).
    pub amp_flicker: f64,
    /// ADC quantization noise referred to the paper WE's current density.
    pub quantization: f64,
}

impl NoiseBreakdown {
    /// Root-sum-square of the four terms — the `σ` in `LOD = 3σ/S`.
    pub fn total(&self) -> f64 {
        (self.drift.powi(2)
            + self.stochastic.powi(2)
            + self.amp_flicker.powi(2)
            + self.quantization.powi(2))
        .sqrt()
    }
}

/// Effective sensitivity (A/(M·cm²)) of a target's registry probe on the
/// given nanostructure: the Table III figure rescaled by roughness relative
/// to the CNT reference electrodes the registry was measured on. Pure in
/// its arguments.
///
/// # Errors
///
/// Returns [`PlatformError::NoProbeFor`] for unregistered targets.
pub fn effective_sensitivity(
    target: Analyte,
    nanostructure: Nanostructure,
) -> Result<f64, PlatformError> {
    let row = performance_of(target).ok_or(PlatformError::NoProbeFor(target))?;
    let gain =
        nanostructure.roughness_factor() / Nanostructure::CarbonNanotubes.roughness_factor();
    Ok(row.sensitivity_si() * gain)
}

/// Computes the blank-noise budget for a target under a design point's
/// conditioning choices (CDS, chopper, ADC bits — the nanostructure enters
/// through [`effective_sensitivity`], not here). Pure in its arguments;
/// this is the closed form the static feasibility passes evaluate once per
/// point *class*.
///
/// # Errors
///
/// Returns [`PlatformError::NoProbeFor`] for unregistered targets.
pub fn noise_breakdown(
    target: Analyte,
    point: &DesignPoint,
) -> Result<NoiseBreakdown, PlatformError> {
    let row = performance_of(target).ok_or(PlatformError::NoProbeFor(target))?;
    let sigma = row.blank_sd().value(); // A/cm²
    let drift = sigma * DRIFT_FRACTION;
    let stochastic = sigma * (1.0 - DRIFT_FRACTION);
    let (drift_eff, stochastic_eff) = if point.cds {
        let residual = 1.0 - MatchingQuality::Monolithic.rejection();
        (drift * residual, stochastic * core::f64::consts::SQRT_2)
    } else {
        (drift, stochastic)
    };
    let amp_flicker = sigma * AMP_FLICKER_FRACTION
        / if point.chopper {
            CHOPPER_SUPPRESSION
        } else {
            1.0
        };

    // Quantization, referred to current density on the paper's 0.23 mm² WE.
    let area = PAPER_WE_AREA_CM2;
    let range = match row.probe {
        bios_biochem::tables::ProbeRef::Oxidase(_) => CurrentRange::oxidase().scaled(area),
        bios_biochem::tables::ProbeRef::Cytochrome(_) => CurrentRange::cytochrome().scaled(area),
    };
    let lsb = 2.0 * range.full_scale().value() / (1u64 << point.adc_bits) as f64;
    let sigma_q = lsb / 12f64.sqrt() / area;

    Ok(NoiseBreakdown {
        drift: drift_eff,
        stochastic: stochastic_eff,
        amp_flicker,
        quantization: sigma_q,
    })
}

/// The LOD requirement for one panel target: the explicit spec if one was
/// set, otherwise 20% above the registry (Table III) LOD — i.e. the
/// design's electronics and electrode choices must not degrade what the
/// reference CNT sensor achieves. (Physiological ranges are not used here:
/// some of the paper's own sensors sit above them, which would make every
/// design trivially infeasible.)
///
/// # Errors
///
/// Returns [`PlatformError::NoProbeFor`] for unregistered targets.
pub fn required_lod(spec: &crate::requirements::TargetSpec) -> Result<Molar, PlatformError> {
    let row = performance_of(spec.analyte).ok_or(PlatformError::NoProbeFor(spec.analyte))?;
    let registry_lod = row.lod().unwrap_or(Molar::from_micromolar(3.0));
    Ok(spec
        .required_lod
        .unwrap_or(Molar::new(1.2 * registry_lod.value())))
}

/// Predicts a target's LOD under a design point, analytically.
///
/// Model (documented in DESIGN.md §4): the blank noise combines the sensor
/// term (drift-like + stochastic, CDS acts on the drift part), the
/// amplifier flicker term (chopper divides it by [`CHOPPER_SUPPRESSION`])
/// and the ADC quantization term; sensitivity scales with the
/// nanostructure's roughness relative to the registry's CNT reference.
pub fn predict_lod(target: Analyte, point: &DesignPoint) -> Result<Molar, PlatformError> {
    crate::memo::predict_lod_cached(target, point, || predict_lod_uncached(target, point))
}

/// The analytic model behind [`predict_lod`] — a pure composition of
/// [`noise_breakdown`] and [`effective_sensitivity`], which is what makes
/// the memoized wrapper exact and lets `bios-explore` reproduce it
/// bit-for-bit at its reference coordinates.
fn predict_lod_uncached(target: Analyte, point: &DesignPoint) -> Result<Molar, PlatformError> {
    let breakdown = noise_breakdown(target, point)?;
    let s_eff = effective_sensitivity(target, point.nanostructure)?;
    Ok(Molar::new(3.0 * breakdown.total() / s_eff))
}

/// Brute-force reference exploration: evaluates *every* point of the space
/// with an explicit [`ExecPolicy`]. Design points are independent, so they
/// fan out across the execution engine; results are merged by point index,
/// making the output bit-identical to [`ExecPolicy::Sequential`] for any
/// thread count.
///
/// This is the O(|space|) baseline the `bios-explore` pass pipeline is
/// verified against on subsampled spaces; for production-scale spaces
/// (10⁶–10⁷ points) use the pipeline, which statically rejects almost the
/// whole space before any evaluation. (The old unparameterized `explore`
/// wrapper and the eager `DesignSpace::points` materializer were removed
/// when the pipeline subsumed them.)
///
/// # Errors
///
/// Returns [`PlatformError`] for invalid panels or an empty design space;
/// with multiple failing points, the error is the one the sequential loop
/// would have hit first.
pub fn explore_with(
    panel: &PanelSpec,
    space: &DesignSpace,
    policy: ExecPolicy,
) -> Result<Vec<EvaluatedDesign>, PlatformError> {
    panel.validate()?;
    if space.is_empty() {
        return Err(PlatformError::invalid("space", "design space is empty"));
    }
    let points: Vec<DesignPoint> = space.points_iter().collect();
    let mut out = try_par_map(policy, &points, |_, point| evaluate(panel, point))?;
    pareto_front(&mut out);
    Ok(out)
}

/// Evaluates one design point.
///
/// # Errors
///
/// Returns [`PlatformError`] if the platform cannot be assembled.
// advdiag::cold(whole design-point evaluation: assembles a platform and runs full
// sessions; per-point cadence by contract)
pub fn evaluate(panel: &PanelSpec, point: &DesignPoint) -> Result<EvaluatedDesign, PlatformError> {
    // Assemble the platform (probe selection, structure, schedule).
    let electrode =
        bios_electrochem::Electrode::paper_gold_we().with_nanostructure(point.nanostructure);
    let platform = PlatformBuilder::new(panel.clone())
        .with_electrode(electrode)
        .with_sharing(point.sharing)
        .with_chopper(point.chopper)
        .with_cds(point.cds)
        .with_preference(point.preference)
        .build()?;

    let mut predicted_lods = Vec::new();
    let mut feasible = true;
    let mut worst_margin = f64::INFINITY;
    for spec in panel.targets() {
        let lod = predict_lod(spec.analyte, point)?;
        // Requirement semantics documented on `required_lod`.
        let required = required_lod(spec)?.value();
        let margin = required / lod.value();
        if margin < 1.0 {
            feasible = false;
        }
        worst_margin = worst_margin.min(margin);
        predicted_lods.push((spec.analyte, lod));
    }

    // Cost via the platform's own model, but with the point's ADC bits.
    let n_we = platform.assignments().len();
    let budget = electronics_budget(
        n_we,
        point.sharing,
        point.adc_bits,
        point.chopper,
        point.cds,
    );
    let cost = PlatformCost::assemble(
        &budget,
        platform.assignments()[0].electrode().geometric_area(),
        platform.structure().total_electrodes(),
        platform.structure().chambers(),
        platform.schedule().total_duration(),
    );
    // CV-only panels don't pay the chrono protocol's dwell; the schedule
    // above already accounts for techniques per WE.
    let _ = platform
        .assignments()
        .iter()
        .filter(|a| a.technique() == Technique::CyclicVoltammetry)
        .count();

    Ok(EvaluatedDesign {
        point: *point,
        predicted_lods,
        feasible,
        worst_lod_margin: worst_margin,
        cost,
        pareto: false,
    })
}

/// Marks the Pareto-efficient designs among the *feasible* ones:
/// minimize [`PlatformCost::scalar`], maximize `worst_lod_margin`.
pub fn pareto_front(designs: &mut [EvaluatedDesign]) {
    let snapshot: Vec<(bool, f64, f64)> = designs
        .iter()
        .map(|d| (d.feasible, d.cost.scalar(), d.worst_lod_margin))
        .collect();
    for (k, d) in designs.iter_mut().enumerate() {
        if !d.feasible {
            d.pareto = false;
            continue;
        }
        let (_, my_cost, my_margin) = snapshot[k];
        d.pareto = !snapshot
            .iter()
            .enumerate()
            .any(|(j, (feas, cost, margin))| {
                j != k
                    && *feas
                    && *cost <= my_cost
                    && *margin >= my_margin
                    && (*cost < my_cost || *margin > my_margin)
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::TargetSpec;

    fn point() -> DesignPoint {
        DesignPoint {
            nanostructure: Nanostructure::CarbonNanotubes,
            sharing: ReadoutSharing::Shared,
            chopper: false,
            cds: false,
            adc_bits: 12,
            preference: ProbePreference::MinimizeElectrodes,
        }
    }

    #[test]
    fn default_space_has_96_points() {
        let s = DesignSpace::paper_default();
        assert_eq!(s.len(), 96);
        assert_eq!(s.points_iter().count(), 96);
        assert!(!s.is_empty());
    }

    #[test]
    fn points_iter_is_row_major_and_stable() {
        let s = DesignSpace::paper_default();
        let all: Vec<DesignPoint> = s.points_iter().collect();
        assert_eq!(all.len(), s.len());
        // The outermost axis varies slowest.
        assert_eq!(all[0].nanostructure, s.nanostructures[0]);
        assert_eq!(all[s.len() - 1].nanostructure, s.nanostructures[1]);
        // Partial consumption sees the same prefix.
        let head: Vec<DesignPoint> = s.points_iter().take(5).collect();
        assert_eq!(head, &all[..5]);
    }

    #[test]
    fn parallel_explore_bit_identical_to_sequential() {
        let panel = PanelSpec::paper_fig4();
        let space = DesignSpace::paper_default();
        let seq = explore_with(&panel, &space, ExecPolicy::Sequential).expect("sequential");
        for threads in [2, 4] {
            let par = explore_with(&panel, &space, ExecPolicy::Threads(threads)).expect("parallel");
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn predicted_lod_close_to_registry_for_reference_point() {
        // CNT + no conditioning + 12 bits should predict an LOD near the
        // registry value (the blank σ dominates).
        let lod = predict_lod(Analyte::Glucose, &point()).expect("registered");
        let paper = 575.0;
        let ratio = lod.as_micromolar() / paper;
        assert!(
            (0.5..2.5).contains(&ratio),
            "predicted {} µM vs paper {paper} µM",
            lod.as_micromolar()
        );
    }

    #[test]
    fn bare_electrode_worsens_lod_12x() {
        let cnt = predict_lod(Analyte::Glucose, &point()).expect("registered");
        let bare = predict_lod(
            Analyte::Glucose,
            &DesignPoint {
                nanostructure: Nanostructure::None,
                ..point()
            },
        )
        .expect("registered");
        let ratio = bare.value() / cnt.value();
        assert!((ratio - 12.0).abs() < 2.0, "ratio {ratio}");
    }

    #[test]
    fn cds_improves_drift_dominated_lod() {
        let plain = predict_lod(Analyte::Glucose, &point()).expect("registered");
        let with_cds = predict_lod(
            Analyte::Glucose,
            &DesignPoint {
                cds: true,
                ..point()
            },
        )
        .expect("registered");
        assert!(
            with_cds.value() < plain.value() * 0.75,
            "cds {} vs plain {}",
            with_cds.value(),
            plain.value()
        );
    }

    #[test]
    fn explore_paper_panel_produces_pareto_front() {
        let panel = PanelSpec::paper_fig4();
        let designs = explore_with(&panel, &DesignSpace::paper_default(), ExecPolicy::Auto)
            .expect("explore");
        assert_eq!(designs.len(), 96);
        let feasible = designs.iter().filter(|d| d.feasible).count();
        assert!(feasible > 0, "some designs must be feasible");
        let pareto: Vec<_> = designs.iter().filter(|d| d.pareto).collect();
        assert!(!pareto.is_empty());
        // Every pareto design is feasible and undominated.
        for p in &pareto {
            assert!(p.feasible);
            for other in &designs {
                if other.feasible {
                    let dominates = other.cost.scalar() <= p.cost.scalar()
                        && other.worst_lod_margin >= p.worst_lod_margin
                        && (other.cost.scalar() < p.cost.scalar()
                            || other.worst_lod_margin > p.worst_lod_margin);
                    assert!(!dominates, "pareto design dominated");
                }
            }
        }
    }

    #[test]
    fn shared_cheaper_dedicated_faster_both_on_front() {
        // The paper's central trade-off should appear on the Pareto front
        // through the cost scalar: shared designs are cheaper.
        let panel = PanelSpec::paper_fig4();
        let designs = explore_with(&panel, &DesignSpace::paper_default(), ExecPolicy::Auto)
            .expect("explore");
        let cheapest_shared = designs
            .iter()
            .filter(|d| d.feasible && d.point.sharing == ReadoutSharing::Shared)
            .map(|d| d.cost.scalar())
            .fold(f64::INFINITY, f64::min);
        let cheapest_dedicated = designs
            .iter()
            .filter(|d| d.feasible && d.point.sharing == ReadoutSharing::Dedicated)
            .map(|d| d.cost.scalar())
            .fold(f64::INFINITY, f64::min);
        assert!(cheapest_shared < cheapest_dedicated);
    }

    #[test]
    fn infeasible_requirements_are_detected() {
        let mut panel = PanelSpec::new();
        panel.push(
            TargetSpec::typical(Analyte::Glucose).with_lod(Molar::from_nanomolar(1.0)), // absurd
        );
        let d = evaluate(&panel, &point()).expect("evaluate");
        assert!(!d.feasible);
        assert!(d.worst_lod_margin < 1.0);
    }
}
