//! Platform-level cost model: electronics power/area, electrode real
//! estate, fluidics — the "small, low energy consumption, low-cost" axis
//! the paper's design-space exploration optimizes (§I).

use bios_afe::{
    adc_cost, chopper_cost, dac_cost, mux_cost, potentiostat_cost, tia_cost, CostBudget,
};
use bios_units::{Hertz, Seconds, SquareCentimeters, Watts};

/// Whether working electrodes share one readout chain through a mux or
/// each get a dedicated chain.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ReadoutSharing {
    /// One chain, multiplexed (the paper's Fig. 4 approach).
    Shared,
    /// One chain per working electrode (parallel acquisition).
    Dedicated,
}

impl core::fmt::Display for ReadoutSharing {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReadoutSharing::Shared => write!(f, "shared (muxed)"),
            ReadoutSharing::Dedicated => write!(f, "dedicated per WE"),
        }
    }
}

/// Builds the electronics bill for a platform.
pub fn electronics_budget(
    working_electrodes: usize,
    sharing: ReadoutSharing,
    adc_bits: u8,
    chopper: bool,
    cds: bool,
) -> CostBudget {
    let mut budget = CostBudget::new();
    let chains = match sharing {
        ReadoutSharing::Shared => 1,
        ReadoutSharing::Dedicated => working_electrodes,
    };
    for _ in 0..chains {
        budget.add(potentiostat_cost());
        budget.add(tia_cost(Hertz::from_kilohertz(1.0)));
        budget.add(adc_cost(adc_bits, Hertz::new(100.0)));
        budget.add(dac_cost(12));
        if chopper {
            budget.add(chopper_cost());
        }
        if cds {
            // CDS needs a second matched TIA for the blank electrode.
            budget.add(tia_cost(Hertz::from_kilohertz(1.0)));
        }
    }
    if sharing == ReadoutSharing::Shared && working_electrodes > 1 {
        budget.add(mux_cost(working_electrodes));
    }
    budget
}

/// Complete platform cost summary.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlatformCost {
    /// Electronics power draw.
    pub power: Watts,
    /// Electronics silicon area, mm².
    pub electronics_area_mm2: f64,
    /// Electrode + routing area, mm².
    pub electrode_area_mm2: f64,
    /// Fluidics/packaging area for chambers, mm².
    pub fluidics_area_mm2: f64,
    /// Total electrode count.
    pub electrodes: usize,
    /// Number of fluidic chambers.
    pub chambers: usize,
    /// Duration of one full measurement session.
    pub session_time: Seconds,
}

impl PlatformCost {
    /// Assembles the summary from its parts.
    pub fn assemble(
        budget: &CostBudget,
        we_area: SquareCentimeters,
        electrodes: usize,
        chambers: usize,
        session_time: Seconds,
    ) -> Self {
        // Each electrode occupies ~3× its active area with routing and
        // passivation margins (the paper's 0.23 mm² WEs on a mm-pitch die);
        // each extra chamber costs ~2 mm² of fluidic packaging.
        let electrode_area_mm2 = we_area.as_square_millimeters() * 3.0 * electrodes as f64;
        let fluidics_area_mm2 = 2.0 * chambers.saturating_sub(1) as f64;
        Self {
            power: budget.total_power(),
            electronics_area_mm2: budget.total_area_mm2(),
            electrode_area_mm2,
            fluidics_area_mm2,
            electrodes,
            chambers,
            session_time,
        }
    }

    /// Total die/module area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.electronics_area_mm2 + self.electrode_area_mm2 + self.fluidics_area_mm2
    }

    /// A single scalar for ranking designs: weighted power (µW), area (mm²,
    /// ×100 — silicon is the scarce resource) and session time (s, ×0.5).
    /// The weights are documented knobs, not physics.
    pub fn scalar(&self) -> f64 {
        self.power.as_microwatts() + 100.0 * self.total_area_mm2() + 0.5 * self.session_time.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_chain_is_cheaper_for_five_wes() {
        let shared = electronics_budget(5, ReadoutSharing::Shared, 12, false, false);
        let dedicated = electronics_budget(5, ReadoutSharing::Dedicated, 12, false, false);
        assert!(shared.total_power().value() < dedicated.total_power().value() / 3.0);
        assert!(shared.total_area_mm2() < dedicated.total_area_mm2() / 3.0);
    }

    #[test]
    fn options_add_cost() {
        let plain = electronics_budget(5, ReadoutSharing::Shared, 12, false, false);
        let full = electronics_budget(5, ReadoutSharing::Shared, 12, true, true);
        assert!(full.total_power().value() > plain.total_power().value());
        let more_bits = electronics_budget(5, ReadoutSharing::Shared, 14, false, false);
        assert!(more_bits.total_power().value() > plain.total_power().value());
    }

    #[test]
    fn single_we_has_no_mux() {
        let b = electronics_budget(1, ReadoutSharing::Shared, 12, false, false);
        assert!(!b.blocks().iter().any(|blk| blk.name.starts_with("mux")));
        let b5 = electronics_budget(5, ReadoutSharing::Shared, 12, false, false);
        assert!(b5.blocks().iter().any(|blk| blk.name.starts_with("mux")));
    }

    #[test]
    fn cost_assembly_totals() {
        let budget = electronics_budget(5, ReadoutSharing::Shared, 12, false, false);
        let cost = PlatformCost::assemble(
            &budget,
            SquareCentimeters::from_square_millimeters(0.23),
            7,
            1,
            Seconds::new(400.0),
        );
        assert_eq!(cost.electrodes, 7);
        assert_eq!(cost.fluidics_area_mm2, 0.0);
        assert!((cost.electrode_area_mm2 - 0.23 * 3.0 * 7.0).abs() < 1e-9);
        assert!(cost.total_area_mm2() > cost.electronics_area_mm2);
        assert!(cost.scalar() > 0.0);
    }

    #[test]
    fn chambers_cost_fluidics() {
        let budget = electronics_budget(4, ReadoutSharing::Shared, 12, false, false);
        let one = PlatformCost::assemble(
            &budget,
            SquareCentimeters::from_square_millimeters(0.23),
            6,
            1,
            Seconds::new(100.0),
        );
        let four = PlatformCost::assemble(
            &budget,
            SquareCentimeters::from_square_millimeters(0.23),
            12,
            4,
            Seconds::new(100.0),
        );
        assert!(four.total_area_mm2() > one.total_area_mm2());
        assert_eq!(four.fluidics_area_mm2, 6.0);
    }
}
