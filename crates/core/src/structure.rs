//! Physical sensor structures (paper §II): single sensors, multi-WE
//! sensors sharing CE/RE, arrays, and chamber-separated arrays.

use crate::error::PlatformError;

/// The bio-electrical interface topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SensorStructure {
    /// One 3-electrode sensor (WE + RE + CE), possibly multi-target via a
    /// CYP probe.
    Single,
    /// `n` working electrodes sharing one RE and one CE (`n + 2` electrodes
    /// total) in a single chamber — the paper's Fig. 4 biointerface.
    MultiElectrode {
        /// Number of working electrodes.
        working: usize,
    },
    /// A 1-D array of `k` independent 3-electrode sensors.
    Array1d {
        /// Number of sensors.
        sensors: usize,
    },
    /// A 2-D array of `k × j` independent 3-electrode sensors.
    Array2d {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Chamber-separated sensors, "when the electrochemical reactions must
    /// be kept separated" (§II).
    MultiChamber {
        /// Number of chambers, one 3-electrode sensor each.
        chambers: usize,
    },
}

impl SensorStructure {
    /// Validates the topology (no zero-sized structures).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] for empty structures.
    pub fn validate(&self) -> Result<(), PlatformError> {
        let ok = match self {
            SensorStructure::Single => true,
            SensorStructure::MultiElectrode { working } => *working >= 1,
            SensorStructure::Array1d { sensors } => *sensors >= 1,
            SensorStructure::Array2d { rows, cols } => *rows >= 1 && *cols >= 1,
            SensorStructure::MultiChamber { chambers } => *chambers >= 1,
        };
        if ok {
            Ok(())
        } else {
            Err(PlatformError::invalid(
                "structure",
                "must contain at least one sensor",
            ))
        }
    }

    /// Number of working electrodes (measurement sites).
    pub fn working_electrodes(&self) -> usize {
        match self {
            SensorStructure::Single => 1,
            SensorStructure::MultiElectrode { working } => *working,
            SensorStructure::Array1d { sensors } => *sensors,
            SensorStructure::Array2d { rows, cols } => rows * cols,
            SensorStructure::MultiChamber { chambers } => *chambers,
        }
    }

    /// Total electrode count, counting shared CE/RE once per chamber
    /// (the paper's `n + 2` arithmetic).
    pub fn total_electrodes(&self) -> usize {
        match self {
            SensorStructure::Single => 3,
            SensorStructure::MultiElectrode { working } => working + 2,
            SensorStructure::Array1d { sensors } => sensors * 3,
            SensorStructure::Array2d { rows, cols } => rows * cols * 3,
            SensorStructure::MultiChamber { chambers } => chambers * 3,
        }
    }

    /// Number of fluidic chambers required.
    pub fn chambers(&self) -> usize {
        match self {
            SensorStructure::MultiChamber { chambers } => *chambers,
            _ => 1,
        }
    }

    /// Whether all working electrodes share one solution volume (and so
    /// can cross-talk).
    pub fn shares_volume(&self) -> bool {
        matches!(
            self,
            SensorStructure::Single | SensorStructure::MultiElectrode { .. }
        )
    }

    /// The paper's Fig. 4 structure: five WEs, one CE, one RE.
    pub fn paper_fig4() -> Self {
        SensorStructure::MultiElectrode { working: 5 }
    }
}

impl core::fmt::Display for SensorStructure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SensorStructure::Single => write!(f, "single 3-electrode sensor"),
            SensorStructure::MultiElectrode { working } => {
                write!(
                    f,
                    "{working}-WE sensor (shared CE/RE, {} electrodes)",
                    working + 2
                )
            }
            SensorStructure::Array1d { sensors } => write!(f, "1-D array of {sensors} sensors"),
            SensorStructure::Array2d { rows, cols } => {
                write!(f, "2-D array of {rows}x{cols} sensors")
            }
            SensorStructure::MultiChamber { chambers } => {
                write!(f, "{chambers}-chamber separated sensors")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig4_arithmetic() {
        let s = SensorStructure::paper_fig4();
        assert_eq!(s.working_electrodes(), 5);
        // "five working electrodes, one counter and one reference" — 7.
        assert_eq!(s.total_electrodes(), 7);
        assert_eq!(s.chambers(), 1);
        assert!(s.shares_volume());
    }

    #[test]
    fn shared_ce_re_saves_electrodes() {
        let shared = SensorStructure::MultiElectrode { working: 5 };
        let discrete = SensorStructure::Array1d { sensors: 5 };
        assert!(shared.total_electrodes() < discrete.total_electrodes());
        assert_eq!(discrete.total_electrodes(), 15);
    }

    #[test]
    fn array2d_counts() {
        let a = SensorStructure::Array2d { rows: 3, cols: 4 };
        assert_eq!(a.working_electrodes(), 12);
        assert_eq!(a.total_electrodes(), 36);
        assert!(!a.shares_volume());
    }

    #[test]
    fn chambers_isolate_reactions() {
        let m = SensorStructure::MultiChamber { chambers: 4 };
        assert_eq!(m.chambers(), 4);
        assert!(!m.shares_volume());
    }

    #[test]
    fn validation_rejects_empty() {
        assert!(SensorStructure::MultiElectrode { working: 0 }
            .validate()
            .is_err());
        assert!(SensorStructure::Array2d { rows: 0, cols: 3 }
            .validate()
            .is_err());
        assert!(SensorStructure::Single.validate().is_ok());
    }

    #[test]
    fn display_readable() {
        assert!(SensorStructure::paper_fig4().to_string().contains("5-WE"));
    }
}
