//! The resumable session state machine: [`Platform::run_session_with`]'s
//! per-electrode pipeline made explicit, steppable and serializable.
//!
//! PR 1 hardened one *blocking* session call; serving thousands of
//! concurrently degrading devices needs the same pipeline sliced into
//! explicit, pure transitions so a scheduler can suspend a session after
//! any step, interleave it with thousands of others, and replay it
//! bit-identically. Each working electrode advances through
//!
//! ```text
//! ApplyPotential → Settle → Sample → Qc ─┬─→ Done
//!        ▲                              ├─→ Quarantine → Done
//!        └───────────── Backoff ←───────┘   (retry budget)
//! ```
//!
//! * **ApplyPotential** — program the (possibly faulted) readout chain
//!   and run the built-in self-test against the commissioning record;
//! * **Settle** — recall the stored baseline-noise reference the QC gate
//!   screens against;
//! * **Sample** — one full acquisition with the attempt's derived seed
//!   (`RetryPolicy::attempt_seed`), the only expensive step;
//! * **Qc** — fold the BIST verdict into the acquisition's and decide:
//!   accept, spend a retry ([`StepEvent::BackedOff`] with a deterministic
//!   [`RetryPolicy::backoff_ticks`] delay), or give up;
//! * **Quarantine** — flag a chronically failing electrode;
//! * **Done** — the electrode's [`WeOutcome`] is sealed.
//!
//! Every piece of machine state is plain serializable data — no readout
//! chains, no platform references. A [`SessionCheckpoint`] captures the
//! full progress of a session; [`Platform::resume_session`] rebuilds a
//! machine from the checkpoint plus the original `(sample, seed,
//! options)`, and the resumed run is bit-identical to the uninterrupted
//! one because every transition is a pure function of that tuple and the
//! checkpointed state.

use crate::error::PlatformError;
use crate::platform::{Platform, TargetReading};
use crate::robustness::{SessionOptions, TargetQuality};
use bios_biochem::{Analyte, Interferent};
use bios_instrument::{QcClass, QcDecision, QcReason, QcVerdict};
use bios_units::{Amps, Molar};

/// The kind of transition a [`SessionStep`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StepKind {
    /// Program the chain and run the built-in self-test.
    ApplyPotential,
    /// Recall the baseline-noise reference for QC.
    Settle,
    /// One seeded acquisition (the expensive step).
    Sample,
    /// Screen the acquisition and decide accept / retry / reject.
    Qc,
    /// Spend one retry slot; the next sample waits out the backoff delay.
    Backoff,
    /// Flag the electrode as chronically failing.
    Quarantine,
    /// Terminal: the electrode's outcome is sealed.
    Done,
}

/// One pending transition of a session: which electrode, which attempt,
/// what happens next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SessionStep {
    /// Assignment slot (index into [`Platform::assignments`]).
    pub slot: usize,
    /// Working-electrode index of that slot.
    pub we: usize,
    /// 0-based acquisition attempt the step belongs to.
    pub attempt: usize,
    /// The transition kind.
    pub kind: StepKind,
}

/// What a single [`SessionMachine::step`] call did.
#[derive(Debug, Clone, PartialEq)]
pub enum StepEvent {
    /// An intermediate transition ran (nothing schedulable happened).
    Progressed(SessionStep),
    /// A retry slot was spent; the session should not re-sample before
    /// `delay_ticks` scheduler ticks have passed.
    BackedOff {
        /// The step that ran.
        step: SessionStep,
        /// Deterministic backoff delay from [`crate::RetryPolicy`].
        delay_ticks: u64,
    },
    /// An electrode was quarantined.
    Quarantined(SessionStep),
    /// An electrode finished (its outcome is sealed).
    WeDone(SessionStep),
    /// [`SessionMachine::step`] was called on an already-finished
    /// session; the report can be merged.
    SessionDone,
}

/// The result of one acquisition attempt, parked between `Sample` and
/// `Qc` (QC verdicts are step *inputs*, not side effects).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
enum SampleOutcome {
    /// The acquisition produced data and a raw QC verdict.
    Measured {
        readings: Vec<TargetReading>,
        verdict: QcVerdict,
    },
    /// The acquisition died with a recoverable typed error.
    Errored { detail: String },
}

/// Everything one electrode contributes to a session once its machine
/// reaches `Done`; the merge phase folds these back in assignment order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) struct WeOutcome {
    pub(crate) readings: Vec<(TargetReading, QcClass)>,
    pub(crate) qualities: Vec<TargetQuality>,
    pub(crate) retry_slots: usize,
    pub(crate) quarantined: bool,
}

/// One working electrode's state machine. All fields are serializable
/// progress data; the immutable context (platform, sample, seed, options)
/// is passed into every transition instead of being captured.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) struct WeMachine {
    /// Assignment slot this machine drives.
    slot: usize,
    /// Current phase.
    phase: StepKind,
    /// 0-based attempt the next `Sample` will run.
    attempt: usize,
    /// Retry slots spent so far (schedule extensions).
    retry_slots: usize,
    /// BIST verdict computed by `ApplyPotential`.
    bist: Option<QcVerdict>,
    /// Baseline-noise reference recalled by `Settle` (`None` for CV
    /// electrodes, which have no chrono baseline).
    reference_noise: Option<Amps>,
    /// Acquisition outcome parked between `Sample` and `Qc`.
    pending: Option<SampleOutcome>,
    /// Most recent recoverable acquisition error.
    last_error: Option<String>,
    /// Sealed outcome once `Done`.
    outcome: Option<WeOutcome>,
}

impl WeMachine {
    pub(crate) fn new_for_slot(slot: usize) -> Self {
        Self {
            slot,
            phase: StepKind::ApplyPotential,
            attempt: 0,
            retry_slots: 0,
            bist: None,
            reference_noise: None,
            pending: None,
            last_error: None,
            outcome: None,
        }
    }

    fn is_done(&self) -> bool {
        self.phase == StepKind::Done
    }

    fn step_descriptor(&self, platform: &Platform) -> SessionStep {
        SessionStep {
            slot: self.slot,
            we: platform.assignments()[self.slot].index(),
            attempt: self.attempt,
            kind: self.phase,
        }
    }

    /// Executes the machine's current phase. Pure in the replay sense:
    /// the successor state is a function of `(platform, sample, seed,
    /// options)` and the current state only.
    fn advance(
        &mut self,
        platform: &Platform,
        sample: &[(Analyte, Molar)],
        interferents: &[(Interferent, Molar)],
        seed: u64,
        options: &SessionOptions,
    ) -> Result<StepEvent, PlatformError> {
        let assignment = &platform.assignments()[self.slot];
        let descriptor = self.step_descriptor(platform);
        match self.phase {
            StepKind::ApplyPotential => {
                self.bist = Some(platform.bist_verdict(assignment, options));
                self.phase = StepKind::Settle;
                Ok(StepEvent::Progressed(descriptor))
            }
            StepKind::Settle => {
                self.reference_noise = platform.reference_noise_for(assignment);
                self.phase = StepKind::Sample;
                Ok(StepEvent::Progressed(descriptor))
            }
            StepKind::Sample => {
                let we_seed = Platform::we_seed(seed, assignment.index());
                let attempt_seed = options.retry.attempt_seed(we_seed, self.attempt);
                let chain = platform.assignment_chain(assignment, options);
                let outcome = platform.measure_assignment(
                    assignment,
                    sample,
                    interferents,
                    &chain,
                    options,
                    self.reference_noise,
                    attempt_seed,
                );
                self.absorb_sample(outcome)?;
                Ok(StepEvent::Progressed(descriptor))
            }
            StepKind::Qc => {
                // The QC transition consumes the parked acquisition
                // outcome as its input. Attempts spent = attempt + 1;
                // the budget is exhausted once the retry allowance is
                // gone (mirrors the PR 1 blocking loop bit for bit).
                let exhausted = self.attempt >= options.retry.max_retries;
                let pending = self.pending.take().ok_or_else(|| {
                    PlatformError::invalid("session_step", "Qc step without a parked sample")
                })?;
                match pending {
                    SampleOutcome::Measured {
                        readings,
                        mut verdict,
                    } => {
                        if let Some(bist) = &self.bist {
                            // advdiag::allow(H1, merging the cached commissioning BIST verdict happens once per acquisition result, not per step)
                            verdict.merge(bist.clone());
                        }
                        match verdict.decision(exhausted) {
                            QcDecision::Accept | QcDecision::Reject => {
                                self.finalize(assignment, Some((readings, verdict)), options)
                            }
                            QcDecision::Retry => {
                                self.phase = StepKind::Backoff;
                                Ok(StepEvent::Progressed(descriptor))
                            }
                        }
                    }
                    SampleOutcome::Errored { detail } => {
                        self.last_error = Some(detail);
                        if exhausted {
                            self.finalize(assignment, None, options)
                        } else {
                            self.phase = StepKind::Backoff;
                            Ok(StepEvent::Progressed(descriptor))
                        }
                    }
                }
            }
            StepKind::Backoff => {
                let delay_ticks = options.retry.backoff_ticks(self.attempt);
                self.retry_slots += 1;
                self.attempt += 1;
                self.phase = StepKind::Sample;
                Ok(StepEvent::BackedOff {
                    step: descriptor,
                    delay_ticks,
                })
            }
            StepKind::Quarantine => {
                self.phase = StepKind::Done;
                Ok(StepEvent::Quarantined(descriptor))
            }
            StepKind::Done => Ok(StepEvent::WeDone(descriptor)),
        }
    }

    /// Absorbs an acquisition outcome as this machine's `Sample`
    /// transition — the one state change shared by the inline
    /// [`Self::advance`] path and the batched
    /// [`SessionMachine::complete_sample`] path, so the two drivings
    /// cannot diverge.
    // advdiag::cold(per-result absorption: grades QC and merges one finished
    // acquisition; per-acquisition cadence by contract)
    fn absorb_sample(
        &mut self,
        outcome: Result<(Vec<TargetReading>, QcVerdict), PlatformError>,
    ) -> Result<(), PlatformError> {
        match outcome {
            Ok((readings, verdict)) => {
                self.pending = Some(SampleOutcome::Measured { readings, verdict });
            }
            Err(e) => {
                if !e.severity().is_recoverable() {
                    return Err(e);
                }
                self.pending = Some(SampleOutcome::Errored {
                    detail: e.to_string(),
                });
            }
        }
        self.phase = StepKind::Qc;
        Ok(())
    }

    /// Seals the electrode's outcome from the final attempt's readings
    /// (or placeholders when every attempt errored out).
    // advdiag::cold(terminal per-electrode outcome construction: runs once per
    // electrode, when its acquisition budget resolves)
    fn finalize(
        &mut self,
        assignment: &crate::platform::WeAssignment,
        outcome: Option<(Vec<TargetReading>, QcVerdict)>,
        options: &SessionOptions,
    ) -> Result<StepEvent, PlatformError> {
        let we = assignment.index();
        let attempts = self.attempt + 1;
        let (mut readings, verdict) = match outcome {
            Some(o) => o,
            None => {
                // Every attempt errored out: emit flagged placeholder
                // readings so the panel stays complete.
                let placeholders = assignment
                    .targets()
                    .iter()
                    .map(|a| TargetReading {
                        analyte: *a,
                        we,
                        response: Amps::ZERO,
                        estimated: None,
                        identified: false,
                    })
                    .collect();
                let verdict = QcVerdict {
                    class: QcClass::Fail,
                    reasons: vec![QcReason::Aborted {
                        detail: self.last_error.clone().unwrap_or_default(),
                    }],
                };
                (placeholders, verdict)
            }
        };
        let failed = verdict.class == QcClass::Fail;
        let quarantine_now = failed && attempts >= options.retry.quarantine_after;
        if failed {
            // Never let a rejected acquisition masquerade as data.
            for r in &mut readings {
                r.estimated = None;
                r.identified = false;
            }
        }
        let qualities = readings
            .iter()
            .map(|r| TargetQuality {
                analyte: r.analyte,
                we,
                class: verdict.class,
                attempts,
                reasons: verdict.reasons.clone(),
                quarantined: quarantine_now,
            })
            .collect();
        self.outcome = Some(WeOutcome {
            readings: readings.into_iter().map(|r| (r, verdict.class)).collect(),
            qualities,
            retry_slots: self.retry_slots,
            quarantined: quarantine_now,
        });
        let descriptor = SessionStep {
            slot: self.slot,
            we,
            attempt: self.attempt,
            kind: self.phase,
        };
        if quarantine_now {
            self.phase = StepKind::Quarantine;
            Ok(StepEvent::Progressed(descriptor))
        } else {
            self.phase = StepKind::Done;
            Ok(StepEvent::WeDone(descriptor))
        }
    }
}

/// The outcome of one acquisition: readings plus the raw QC verdict, or a
/// typed platform error.
pub type SampleResult = Result<(Vec<TargetReading>, QcVerdict), PlatformError>;

/// A `Sample` transition lifted out of its session so it can execute in a
/// batch — the unit of work [`Platform::run_samples`] fans out over the
/// execution engine, possibly alongside requests from *other* sessions.
///
/// The request is self-contained: it carries clones of everything the
/// acquisition reads (sample, interferents, options) plus the machine
/// state it consumes (attempt seed, settled reference noise), so executing
/// it never borrows the session it came from. Because the acquisition is a
/// pure function of these fields, running it batched, reordered, or on
/// another thread produces the byte-for-byte result of the inline
/// transition.
#[derive(Debug, Clone)]
pub struct SampleRequest {
    pub(crate) slot: usize,
    pub(crate) attempt: usize,
    pub(crate) reference_noise: Option<Amps>,
    pub(crate) attempt_seed: u64,
    pub(crate) sample: Vec<(Analyte, Molar)>,
    pub(crate) interferents: Vec<(Interferent, Molar)>,
    pub(crate) options: SessionOptions,
}

impl SampleRequest {
    /// Assignment slot the acquisition belongs to.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// 0-based acquisition attempt.
    pub fn attempt(&self) -> usize {
        self.attempt
    }
}

/// Serializable progress snapshot of a whole session: everything needed
/// to resume it given the original `(platform, sample, seed, options)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionCheckpoint {
    machines: Vec<WeMachine>,
    cursor: usize,
    steps_taken: u64,
}

/// A whole session as an interleavable state machine: one per-electrode
/// machine per assignment, stepped round-robin so a scheduler can
/// multiplex thousands of sessions at step granularity.
///
/// Driving every machine to `Done` and merging yields a [`SessionReport`]
/// bit-identical to [`Platform::run_session_with`] for the same
/// `(sample, seed, options)` — regardless of how the steps were
/// interleaved or how often the session was suspended and resumed.
///
/// [`SessionReport`]: crate::SessionReport
#[derive(Debug, Clone)]
pub struct SessionMachine {
    sample: Vec<(Analyte, Molar)>,
    interferents: Vec<(Interferent, Molar)>,
    seed: u64,
    options: SessionOptions,
    machines: Vec<WeMachine>,
    cursor: usize,
    steps_taken: u64,
}

impl SessionMachine {
    pub(crate) fn new(
        platform: &Platform,
        sample: &[(Analyte, Molar)],
        seed: u64,
        options: &SessionOptions,
    ) -> Self {
        Self {
            sample: sample.to_vec(),
            interferents: Platform::interferents_of(sample),
            seed,
            options: options.clone(),
            machines: (0..platform.assignments().len())
                .map(WeMachine::new_for_slot)
                .collect(),
            cursor: 0,
            steps_taken: 0,
        }
    }

    pub(crate) fn from_checkpoint(
        sample: &[(Analyte, Molar)],
        seed: u64,
        options: &SessionOptions,
        checkpoint: SessionCheckpoint,
    ) -> Self {
        Self {
            sample: sample.to_vec(),
            interferents: Platform::interferents_of(sample),
            seed,
            options: options.clone(),
            machines: checkpoint.machines,
            cursor: checkpoint.cursor,
            steps_taken: checkpoint.steps_taken,
        }
    }

    /// The session seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Steps executed so far (including on a resumed machine).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// True once every electrode's machine is `Done`.
    pub fn is_done(&self) -> bool {
        self.machines.iter().all(WeMachine::is_done)
    }

    /// The next transition the round-robin scheduler would execute, or
    /// `None` when the session is done.
    pub fn next_step(&self, platform: &Platform) -> Option<SessionStep> {
        self.next_slot()
            .map(|slot| self.machines[slot].step_descriptor(platform))
    }

    fn next_slot(&self) -> Option<usize> {
        let n = self.machines.len();
        (0..n)
            .map(|k| (self.cursor + k) % n)
            .find(|&slot| !self.machines[slot].is_done())
    }

    /// Executes exactly one step of one electrode (round-robin across
    /// non-done electrodes), returning what happened.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] only for non-recoverable (configuration)
    /// failures — the same contract as
    /// [`Platform::run_session_with`].
    pub fn step(&mut self, platform: &Platform) -> Result<StepEvent, PlatformError> {
        let Some(slot) = self.next_slot() else {
            return Ok(StepEvent::SessionDone);
        };
        let event = self.machines[slot].advance(
            platform,
            &self.sample,
            &self.interferents,
            self.seed,
            &self.options,
        )?;
        self.steps_taken += 1;
        // Interleave: move past the stepped electrode so siblings make
        // progress before it runs again.
        self.cursor = (slot + 1) % self.machines.len();
        Ok(event)
    }

    /// True when the next round-robin transition is the expensive
    /// `Sample` phase — the point where a scheduler should lift the
    /// acquisition out with [`Self::begin_sample`] and batch it.
    pub fn next_is_sample(&self) -> bool {
        self.next_slot()
            .is_some_and(|slot| self.machines[slot].phase == StepKind::Sample)
    }

    /// When the next transition is a `Sample`, lifts it out as a
    /// self-contained [`SampleRequest`] without mutating the session.
    /// Execute it (batched or alone) with [`Platform::run_samples`], then
    /// apply the result with [`Self::complete_sample`].
    pub fn begin_sample(&self, platform: &Platform) -> Option<SampleRequest> {
        let slot = self.next_slot()?;
        if self.machines[slot].phase != StepKind::Sample {
            return None;
        }
        Some(self.sample_request_for(platform, slot))
    }

    // advdiag::cold(per-acquisition request construction: clones the session inputs
    // once per parked acquisition, not per step)
    fn sample_request_for(&self, platform: &Platform, slot: usize) -> SampleRequest {
        let m = &self.machines[slot];
        let assignment = &platform.assignments()[slot];
        let we_seed = Platform::we_seed(self.seed, assignment.index());
        let attempt_seed = self.options.retry.attempt_seed(we_seed, m.attempt);
        SampleRequest {
            slot,
            attempt: m.attempt,
            reference_noise: m.reference_noise,
            attempt_seed,
            sample: self.sample.clone(),
            interferents: self.interferents.clone(),
            options: self.options.clone(),
        }
    }

    /// Applies the result of a lifted acquisition as this session's next
    /// step — the exact state transition [`Self::step`] would have
    /// performed had it run the acquisition inline, so batched and inline
    /// drivings of the same session are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns a configuration [`PlatformError`] if `request` does not
    /// match the session's next transition (wrong slot, phase, or
    /// attempt), or the acquisition's own error when it is
    /// non-recoverable — the same contract as [`Self::step`].
    pub fn complete_sample(
        &mut self,
        platform: &Platform,
        request: &SampleRequest,
        result: SampleResult,
    ) -> Result<StepEvent, PlatformError> {
        let slot = self
            .next_slot()
            .ok_or_else(|| PlatformError::invalid("sample_request", "session is already done"))?;
        if slot != request.slot
            || self.machines[slot].phase != StepKind::Sample
            || self.machines[slot].attempt != request.attempt
        {
            return Err(PlatformError::invalid(
                "sample_request",
                "request does not match the session's next transition",
            ));
        }
        let descriptor = self.machines[slot].step_descriptor(platform);
        self.machines[slot].absorb_sample(result)?;
        self.steps_taken += 1;
        self.cursor = (slot + 1) % self.machines.len();
        Ok(StepEvent::Progressed(descriptor))
    }

    /// Advances the whole session one *wave*: every electrode's machine
    /// runs its cheap transitions until it parks at its next `Sample` (or
    /// finishes), then all parked acquisitions execute as one batched
    /// [`Platform::run_samples`] dispatch under `policy` and the results
    /// are applied in slot order. Driving waves until
    /// [`Self::is_done`] performs one kernel dispatch per acquisition
    /// round instead of one per electrode.
    ///
    /// Backoff delays are treated as elapsed (the blocking-path
    /// convention); schedulers that honor delays should drive
    /// [`Self::step`]/[`Self::complete_sample`] themselves. Every applied
    /// transition counts toward [`Self::steps_taken`], and because each
    /// acquisition is a pure function of its [`SampleRequest`], the final
    /// report is bit-identical to any other driving of the same session.
    ///
    /// Returns the number of transitions executed this wave (at least 1
    /// unless the session was already done).
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-slot) non-recoverable [`PlatformError`]
    /// of the wave — the same contract as [`Platform::run_session_with`].
    pub fn step_wave(
        &mut self,
        platform: &Platform,
        policy: crate::ExecPolicy,
    ) -> Result<u64, PlatformError> {
        let before = self.steps_taken;
        // Cheap transitions: park every live machine at its next Sample.
        for slot in 0..self.machines.len() {
            loop {
                let m = &self.machines[slot];
                if m.is_done() || m.phase == StepKind::Sample {
                    break;
                }
                self.machines[slot].advance(
                    platform,
                    &self.sample,
                    &self.interferents,
                    self.seed,
                    &self.options,
                )?;
                self.steps_taken += 1;
            }
        }
        // One batched dispatch for every parked acquisition.
        let requests: Vec<SampleRequest> = (0..self.machines.len())
            .filter(|&slot| self.machines[slot].phase == StepKind::Sample)
            .map(|slot| self.sample_request_for(platform, slot))
            .collect();
        if requests.is_empty() {
            self.cursor = 0;
            return Ok(self.steps_taken - before);
        }
        let results = platform.run_samples(&requests, policy);
        // Apply in slot order; surface the lowest-slot fatal error but
        // still absorb the rest so the surviving machines stay coherent.
        let mut first_err = None;
        for (req, res) in requests.iter().zip(results) {
            match self.machines[req.slot].absorb_sample(res) {
                Ok(()) => self.steps_taken += 1,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        self.cursor = 0;
        match first_err {
            Some(e) => Err(e),
            None => Ok(self.steps_taken - before),
        }
    }

    /// Serializes the session's progress. Together with the original
    /// `(sample, seed, options)` this is sufficient to resume the
    /// session bit-identically (see [`Platform::resume_session`]).
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            machines: self.machines.clone(),
            cursor: self.cursor,
            steps_taken: self.steps_taken,
        }
    }

    /// Merges the finished electrodes into the session report. Requires
    /// [`is_done`](Self::is_done).
    ///
    /// # Errors
    ///
    /// Returns a configuration [`PlatformError`] if any electrode is
    /// still in flight (use [`finish_partial`](Self::finish_partial) to
    /// harvest an interrupted session).
    // advdiag::cold(terminal report construction: runs once per completed session)
    pub fn finish(&self, platform: &Platform) -> Result<crate::SessionReport, PlatformError> {
        if !self.is_done() {
            return Err(PlatformError::invalid(
                "session_machine",
                "session not done: electrodes still in flight (use finish_partial)",
            ));
        }
        let outcomes: Vec<WeOutcome> = self
            .machines
            .iter()
            .map(|m| {
                m.outcome.clone().ok_or_else(|| {
                    PlatformError::invalid("session_machine", "done machine without sealed outcome")
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(platform.merge_outcomes(outcomes))
    }

    /// Merges whatever finished, degrading every in-flight electrode to
    /// flagged placeholder readings (deadline-cut sessions serve partial
    /// results with provenance, never silence). The caller records the
    /// cut in [`DegradationSummary::deadline_misses`].
    ///
    /// [`DegradationSummary::deadline_misses`]: crate::DegradationSummary
    // advdiag::cold(terminal report construction: runs once per abandoned session)
    pub fn finish_partial(&self, platform: &Platform) -> crate::SessionReport {
        let outcomes: Vec<WeOutcome> = self
            .machines
            .iter()
            .map(|m| match &m.outcome {
                Some(outcome) => outcome.clone(),
                None => {
                    let assignment = &platform.assignments()[m.slot];
                    let we = assignment.index();
                    let verdict = QcVerdict {
                        class: QcClass::Fail,
                        reasons: vec![QcReason::Aborted {
                            detail: "session cut before this electrode finished".into(),
                        }],
                    };
                    let readings: Vec<TargetReading> = assignment
                        .targets()
                        .iter()
                        .map(|a| TargetReading {
                            analyte: *a,
                            we,
                            response: Amps::ZERO,
                            estimated: None,
                            identified: false,
                        })
                        .collect();
                    WeOutcome {
                        qualities: readings
                            .iter()
                            .map(|r| TargetQuality {
                                analyte: r.analyte,
                                we,
                                class: QcClass::Fail,
                                attempts: m.attempt + 1,
                                reasons: verdict.reasons.clone(),
                                quarantined: false,
                            })
                            .collect(),
                        readings: readings.into_iter().map(|r| (r, QcClass::Fail)).collect(),
                        retry_slots: m.retry_slots,
                        quarantined: false,
                    }
                }
            })
            .collect();
        platform.merge_outcomes(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::requirements::PanelSpec;
    use bios_afe::FaultPlan;
    use bios_instrument::QcGate;

    fn fig4() -> Platform {
        PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build")
    }

    fn fig4_sample() -> Vec<(Analyte, Molar)> {
        vec![
            (Analyte::Glucose, Molar::from_millimolar(3.0)),
            (Analyte::Lactate, Molar::from_millimolar(1.5)),
            (Analyte::Glutamate, Molar::from_millimolar(3.0)),
            (Analyte::Benzphetamine, Molar::from_millimolar(0.8)),
            (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
            (Analyte::Cholesterol, Molar::from_micromolar(50.0)),
        ]
    }

    #[test]
    fn stepped_session_matches_the_blocking_call() {
        let p = fig4();
        let sample = fig4_sample();
        let options = SessionOptions::default()
            .with_fault_plan(FaultPlan::randomized(901, 5))
            .with_qc(QcGate::default());
        let blocking = p
            .run_session_with(&sample, 42, &options)
            .expect("blocking run");
        let mut machine = p.session_machine(&sample, 42, &options);
        let mut steps = 0u64;
        while !machine.is_done() {
            machine.step(&p).expect("step");
            steps += 1;
            assert!(steps < 10_000, "machine must terminate");
        }
        assert_eq!(machine.steps_taken(), steps);
        let report = machine.finish(&p).expect("done");
        assert_eq!(report, blocking, "interleaved = blocking, bit for bit");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let p = fig4();
        let sample = fig4_sample();
        let options = SessionOptions::default()
            .with_fault_plan(FaultPlan::randomized(77, 6))
            .with_qc(QcGate::default());
        let blocking = p
            .run_session_with(&sample, 7, &options)
            .expect("blocking run");

        // Suspend after every prefix length; the resumed run must always
        // converge to the same report.
        for cut in [1u64, 3, 9, 17] {
            let mut machine = p.session_machine(&sample, 7, &options);
            for _ in 0..cut {
                if machine.is_done() {
                    break;
                }
                machine.step(&p).expect("step");
            }
            let snapshot = machine.checkpoint();
            let json = serde_json::to_string(&snapshot).expect("serialize");
            let restored: SessionCheckpoint = serde_json::from_str(&json).expect("deserialize");
            let mut resumed = p.resume_session(&sample, 7, &options, restored);
            while !resumed.is_done() {
                resumed.step(&p).expect("step");
            }
            let report = resumed.finish(&p).expect("done");
            assert_eq!(report, blocking, "cut at {cut} steps");
        }
    }

    #[test]
    fn backoff_events_surface_the_retry_schedule() {
        use bios_afe::{Fault, FaultKind};
        let p = fig4();
        let plan = FaultPlan::new(77).with_fault(
            0,
            Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid"),
        );
        let options = SessionOptions::default()
            .with_fault_plan(plan)
            .with_qc(QcGate::default());
        let mut machine = p.session_machine(&fig4_sample(), 42, &options);
        let mut backoffs = Vec::new();
        let mut quarantines = 0usize;
        while !machine.is_done() {
            match machine.step(&p).expect("step") {
                StepEvent::BackedOff { step, delay_ticks } => {
                    backoffs.push((step.attempt, delay_ticks));
                }
                StepEvent::Quarantined(_) => quarantines += 1,
                _ => {}
            }
        }
        // Default policy: 2 retries, exponential delays 1, 2.
        assert_eq!(backoffs, vec![(0, 1), (1, 2)]);
        assert_eq!(quarantines, 1, "dead electrode quarantined exactly once");
    }

    #[test]
    fn finish_partial_degrades_inflight_electrodes() {
        let p = fig4();
        let sample = fig4_sample();
        let options = SessionOptions::default();
        let mut machine = p.session_machine(&sample, 42, &options);
        // Let only a couple of steps run, then cut the session.
        machine.step(&p).expect("step");
        machine.step(&p).expect("step");
        assert!(machine.finish(&p).is_err(), "finish requires completion");
        let report = machine.finish_partial(&p);
        assert_eq!(report.readings().len(), 6, "panel stays complete");
        assert!(
            report
                .qualities()
                .iter()
                .any(|q| q.class == QcClass::Fail && !q.is_usable()),
            "cut electrodes carry failed provenance"
        );
    }

    #[test]
    fn next_step_previews_the_round_robin_order() {
        let p = fig4();
        let options = SessionOptions::default();
        let machine = p.session_machine(&fig4_sample(), 1, &options);
        let first = machine.next_step(&p).expect("not done");
        assert_eq!(first.slot, 0);
        assert_eq!(first.kind, StepKind::ApplyPotential);
        assert_eq!(first.attempt, 0);
    }
}
