//! The assembled platform: working electrodes, shared readout, scheduling
//! and full-session simulation — the running version of the paper's Fig. 4.

use crate::cost::{electronics_budget, PlatformCost, ReadoutSharing};
use crate::error::PlatformError;
use crate::exec::{par_map, ExecPolicy};
use crate::memo;
use crate::robustness::{DegradationSummary, SessionOptions, TargetQuality};
use crate::schedule::Schedule;
use crate::session::{SampleRequest, SampleResult, SessionCheckpoint, SessionMachine, WeOutcome};
use crate::structure::SensorStructure;
use bios_afe::{AnalogMux, Fault, ReadoutChain};
use bios_biochem::Interferent;
use bios_biochem::{Analyte, CypSensor, MichaelisMenten, OxidaseSensor, Probe, Technique};
use bios_electrochem::{Electrode, PotentialProgram};
use bios_instrument::{
    calibrate_chrono, calibrate_cv, run_chrono_with_interferents, run_cv, ChronoProtocol,
    CvProtocol, PerformanceReport, QcClass, QcVerdict,
};
use bios_units::{Amps, Molar, Seconds};

/// Fixed seed of the commissioning dry run the QC gate's quiet-channel
/// check references — a stored calibration record, not per-session noise.
const NOISE_REFERENCE_SEED: u64 = 0xCA11_B45E;

/// Fixed seed, sample interval and window of the built-in self-test that
/// compares each chain's live gain against its commissioning gain.
const SELF_TEST_SEED: u64 = 0x1B15_7AA5;
const SELF_TEST_DT: Seconds = Seconds::new(0.1);
const SELF_TEST_WINDOW: Seconds = Seconds::new(2.0);
/// Window for the post-assay self-test: assay-length, so faults whose
/// magnitude grows with time (reference drift) are graded at the scale
/// they reached during the measurement, not at power-on scale.
const POST_SELF_TEST_WINDOW: Seconds = Seconds::new(64.0);

/// The sensing model behind one working electrode.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorModel {
    /// Chronoamperometric oxidase sensor.
    Oxidase(OxidaseSensor),
    /// Voltammetric cytochrome P450 sensor.
    Cytochrome(CypSensor),
}

/// One working electrode with its probe and targets.
#[derive(Debug, Clone, PartialEq)]
pub struct WeAssignment {
    index: usize,
    probe: Probe,
    targets: Vec<Analyte>,
    electrode: Electrode,
    sensor: SensorModel,
}

impl WeAssignment {
    pub(crate) fn new(
        index: usize,
        probe: Probe,
        targets: Vec<Analyte>,
        electrode: Electrode,
        sensor: SensorModel,
    ) -> Self {
        Self {
            index,
            probe,
            targets,
            electrode,
            sensor,
        }
    }

    /// The working-electrode index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The biological probe on this electrode.
    pub fn probe(&self) -> Probe {
        self.probe
    }

    /// The analytes read from this electrode.
    pub fn targets(&self) -> &[Analyte] {
        &self.targets
    }

    /// The physical electrode.
    pub fn electrode(&self) -> &Electrode {
        &self.electrode
    }

    /// The readout technique this electrode uses.
    pub fn technique(&self) -> Technique {
        self.probe.technique()
    }

    /// The sensing model.
    pub fn sensor(&self) -> &SensorModel {
        &self.sensor
    }
}

/// One analyte reading out of a session.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TargetReading {
    /// The analyte.
    pub analyte: Analyte,
    /// Which working electrode produced it.
    pub we: usize,
    /// The raw analytical response (ΔI for chrono, peak height for CV).
    pub response: Amps,
    /// Concentration estimate from the registry calibration; `None` when
    /// the sensor saturated or nothing was detected.
    pub estimated: Option<Molar>,
    /// Whether the signal cleared the 3σ detection threshold (and, for CV,
    /// the signature matched).
    pub identified: bool,
}

/// The outcome of one full measurement session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    readings: Vec<TargetReading>,
    schedule: Schedule,
    qualities: Vec<TargetQuality>,
    degradation: DegradationSummary,
}

impl SessionReport {
    /// All readings in measurement order.
    pub fn readings(&self) -> &[TargetReading] {
        &self.readings
    }

    /// The reading for one analyte, if it was on the panel.
    pub fn reading_for(&self, analyte: Analyte) -> Option<&TargetReading> {
        self.readings.iter().find(|r| r.analyte == analyte)
    }

    /// The executed schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Per-electrode, per-target QC provenance for every raw reading
    /// (one record per replicate, before merging).
    pub fn qualities(&self) -> &[TargetQuality] {
        &self.qualities
    }

    /// The best (lowest-class) quality record among an analyte's
    /// replicates — the trust level of the merged reading.
    pub fn quality_for(&self, analyte: Analyte) -> Option<&TargetQuality> {
        self.qualities
            .iter()
            .filter(|q| q.analyte == analyte)
            .min_by_key(|q| q.class)
    }

    /// What the session lost to faults: retries, quarantines and targets
    /// without a usable reading.
    pub fn degradation(&self) -> &DegradationSummary {
        &self.degradation
    }

    /// True when any retry, quarantine or target loss occurred.
    pub fn is_degraded(&self) -> bool {
        !self.degradation.is_clean()
    }

    /// Total session duration.
    pub fn total_duration(&self) -> Seconds {
        self.schedule.total_duration()
    }

    /// Marks this report as having been cut short by `n` serving
    /// deadlines. A deadline-cut session holds partial results and must
    /// never report as clean (see [`DegradationSummary::is_clean`]).
    #[must_use]
    pub fn with_deadline_misses(mut self, n: usize) -> Self {
        self.degradation.deadline_misses += n;
        self
    }

    /// Marks this report as covering `n` work units shed by an
    /// overloaded server before they ran.
    #[must_use]
    pub fn with_shed(mut self, n: usize) -> Self {
        self.degradation.shed += n;
        self
    }

    /// Worst relative concentration error against a ground-truth sample
    /// (readings without an estimate count as 100% error; truths of zero
    /// are skipped).
    pub fn worst_relative_error(&self, truth: &[(Analyte, Molar)]) -> f64 {
        let mut worst: f64 = 0.0;
        for (analyte, c_true) in truth {
            if c_true.value() <= 0.0 {
                continue;
            }
            let err = match self.reading_for(*analyte).and_then(|r| r.estimated) {
                Some(est) => ((est.value() - c_true.value()) / c_true.value()).abs(),
                None => 1.0,
            };
            worst = worst.max(err);
        }
        worst
    }
}

/// A fully assembled multi-target biosensing platform.
///
/// Built by [`PlatformBuilder`](crate::PlatformBuilder); see there for an
/// example.
#[derive(Debug, Clone)]
pub struct Platform {
    assignments: Vec<WeAssignment>,
    structure: SensorStructure,
    mux: AnalogMux,
    chrono_chain: ReadoutChain,
    cv_chain: ReadoutChain,
    chrono_protocol: ChronoProtocol,
    cv_protocol: CvProtocol,
    sharing: ReadoutSharing,
    chopper: bool,
    cds: bool,
}

impl Platform {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        assignments: Vec<WeAssignment>,
        structure: SensorStructure,
        mux: AnalogMux,
        chrono_chain: ReadoutChain,
        cv_chain: ReadoutChain,
        chrono_protocol: ChronoProtocol,
        cv_protocol: CvProtocol,
        sharing: ReadoutSharing,
        chopper: bool,
        cds: bool,
    ) -> Self {
        Self {
            assignments,
            structure,
            mux,
            chrono_chain,
            cv_chain,
            chrono_protocol,
            cv_protocol,
            sharing,
            chopper,
            cds,
        }
    }

    /// The working-electrode assignments.
    pub fn assignments(&self) -> &[WeAssignment] {
        &self.assignments
    }

    /// The physical sensor structure.
    pub fn structure(&self) -> SensorStructure {
        self.structure
    }

    /// The readout-sharing strategy.
    pub fn sharing(&self) -> ReadoutSharing {
        self.sharing
    }

    /// The chronoamperometry protocol in force.
    pub fn chrono_protocol(&self) -> &ChronoProtocol {
        &self.chrono_protocol
    }

    /// The CV protocol in force.
    pub fn cv_protocol(&self) -> &CvProtocol {
        &self.cv_protocol
    }

    /// The duration of one measurement on an assignment.
    pub fn measurement_duration(&self, assignment: &WeAssignment) -> Seconds {
        match &assignment.sensor {
            SensorModel::Oxidase(_) => Seconds::new(
                self.chrono_protocol.settle.value() + self.chrono_protocol.measure.value(),
            ),
            SensorModel::Cytochrome(sensor) => {
                let (start, vertex) = sensor.recommended_window();
                PotentialProgram::cyclic_single(start, vertex, self.cv_protocol.scan_rate)
                    .duration()
            }
        }
    }

    /// The session schedule under the configured sharing strategy.
    pub fn schedule(&self) -> Schedule {
        let measurements: Vec<(usize, Technique, Seconds)> = self
            .assignments
            .iter()
            .map(|a| (a.index, a.technique(), self.measurement_duration(a)))
            .collect();
        match self.sharing {
            ReadoutSharing::Shared => Schedule::sequential(&measurements, &self.mux),
            ReadoutSharing::Dedicated => Schedule::parallel(&measurements),
        }
    }

    /// Runs one full measurement session against a sample.
    ///
    /// The sample is a list of true analyte concentrations; analytes not
    /// listed are absent (zero). Returns per-target readings with
    /// registry-calibration concentration estimates.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if any underlying measurement fails.
    pub fn run_session(
        &self,
        sample: &[(Analyte, Molar)],
        seed: u64,
    ) -> Result<SessionReport, PlatformError> {
        self.run_session_with(sample, seed, &SessionOptions::default())
    }

    /// Runs one full measurement session under an explicit robustness
    /// policy: optional fault injection, per-acquisition QC gating,
    /// bounded retries with fresh seeds, and electrode quarantine.
    ///
    /// Every acquisition is screened by `options.qc`. A `Fail` verdict
    /// triggers a retry with a derived seed
    /// (`we_seed + attempt · reseed_stride`) and a retry slot appended to
    /// the schedule; after `max_retries` retries the reading is kept but
    /// stripped of its estimate and identification — flagged data never
    /// masquerades as results. Electrodes failing `quarantine_after`
    /// consecutive attempts are quarantined and reported in the
    /// [`DegradationSummary`]. Replicate merging uses usable readings
    /// only.
    ///
    /// Identical `(sample, seed, options)` produce an identical
    /// [`SessionReport`], bit for bit — including under any
    /// [`ExecPolicy`](crate::ExecPolicy): electrodes fan out across the
    /// execution engine and merge back in assignment order.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] only for non-recoverable (configuration)
    /// failures; recoverable measurement errors are degraded into flagged
    /// readings instead.
    pub fn run_session_with(
        &self,
        sample: &[(Analyte, Molar)],
        seed: u64,
        options: &SessionOptions,
    ) -> Result<SessionReport, PlatformError> {
        // Every electrode's work — chain selection, BIST, acquisition,
        // retries — is a [`WeMachine`](crate::session) whose transitions
        // depend only on `(assignment, sample, seed, options)`. The wave
        // driver advances all machines through their cheap transitions,
        // then executes every parked acquisition as one batched
        // [`Self::run_samples`] dispatch under `options.exec`; the merge
        // replays outcomes in assignment order, which makes the report
        // bit-identical to the sequential loop — and to any
        // step-interleaved [`SessionMachine`](crate::SessionMachine) run
        // of the same session.
        let mut machine = self.session_machine(sample, seed, options);
        while !machine.is_done() {
            machine.step_wave(self, options.exec)?;
        }
        machine.finish(self)
    }

    /// Executes a batch of lifted [`SampleRequest`]s — possibly gathered
    /// from *different* sessions — fanning out across the execution
    /// engine. Result `i` is exactly what the inline `Sample` transition
    /// of request `i`'s session would have produced: each acquisition is
    /// a pure function of its request, so batching (and the merge-by-index
    /// engine) cannot change any session's outcome.
    pub fn run_samples(&self, requests: &[SampleRequest], policy: ExecPolicy) -> Vec<SampleResult> {
        par_map(policy, requests, |_, req| {
            let assignment = &self.assignments[req.slot];
            let chain = self.assignment_chain(assignment, &req.options);
            self.measure_assignment(
                assignment,
                &req.sample,
                &req.interferents,
                &chain,
                &req.options,
                req.reference_noise,
                req.attempt_seed,
            )
        })
    }

    /// Electroactive species in the sample that interfere with the anodic
    /// (oxidase) readouts; the cathodic CYP window sits below their onset
    /// potentials.
    pub(crate) fn interferents_of(sample: &[(Analyte, Molar)]) -> Vec<(Interferent, Molar)> {
        sample
            .iter()
            .filter_map(|(a, c)| Interferent::of(*a).map(|i| (i, *c)))
            .collect()
    }

    /// Creates a resumable, step-interleavable state machine for one
    /// session — the serving-side entry point. Driving it to completion
    /// and calling [`SessionMachine::finish`] yields a report
    /// bit-identical to [`run_session_with`](Self::run_session_with).
    pub fn session_machine(
        &self,
        sample: &[(Analyte, Molar)],
        seed: u64,
        options: &SessionOptions,
    ) -> SessionMachine {
        SessionMachine::new(self, sample, seed, options)
    }

    /// Rebuilds a suspended session from its checkpoint plus the original
    /// `(sample, seed, options)`. The resumed machine replays the rest of
    /// the session bit-identically to an uninterrupted run.
    pub fn resume_session(
        &self,
        sample: &[(Analyte, Molar)],
        seed: u64,
        options: &SessionOptions,
        checkpoint: SessionCheckpoint,
    ) -> SessionMachine {
        SessionMachine::from_checkpoint(sample, seed, options, checkpoint)
    }

    /// Folds per-electrode outcomes (in assignment order) into the
    /// session report: replays retry slots onto the schedule, merges
    /// replicate readings, and totals the degradation summary.
    pub(crate) fn merge_outcomes(&self, outcomes: Vec<WeOutcome>) -> SessionReport {
        let mut schedule = self.schedule();
        let gap = self.mux.acquisition_delay();
        let mut raw: Vec<(TargetReading, QcClass)> = Vec::new();
        let mut qualities: Vec<TargetQuality> = Vec::new();
        let mut retries = 0usize;
        let mut quarantined: Vec<usize> = Vec::new();

        for (assignment, outcome) in self.assignments.iter().zip(outcomes) {
            let we = assignment.index;
            for _ in 0..outcome.retry_slots {
                schedule.append_retry(
                    we,
                    assignment.technique(),
                    self.measurement_duration(assignment),
                    gap,
                );
            }
            retries += outcome.retry_slots;
            if outcome.quarantined && !quarantined.contains(&we) {
                quarantined.push(we);
            }
            qualities.extend(outcome.qualities);
            raw.extend(outcome.readings);
        }

        // Merge replicate readings of the same analyte (redundant WEs):
        // responses average (uncorrelated noise shrinks by √n), a majority
        // of replicates must agree for identification, and the estimate is
        // re-derived from the averaged response. Only QC-usable readings
        // participate; an analyte with no usable replicate keeps a flagged
        // placeholder and is reported as failed.
        let mut merged: Vec<TargetReading> = Vec::new();
        let mut failed_targets: Vec<Analyte> = Vec::new();
        for (r, _) in &raw {
            if merged.iter().any(|m| m.analyte == r.analyte) {
                continue;
            }
            let group: Vec<&TargetReading> = raw
                .iter()
                .filter(|(x, c)| x.analyte == r.analyte && *c != QcClass::Fail)
                .map(|(x, _)| x)
                .collect();
            if group.is_empty() {
                failed_targets.push(r.analyte);
                merged.push(TargetReading {
                    estimated: None,
                    identified: false,
                    ..*r
                });
                continue;
            }
            if group.len() == 1 {
                merged.push(*group[0]);
                continue;
            }
            let mean_response = Amps::new(
                group.iter().map(|x| x.response.value()).sum::<f64>() / group.len() as f64,
            );
            let votes = group.iter().filter(|x| x.identified).count();
            let estimates: Vec<f64> = group
                .iter()
                .filter_map(|x| x.estimated.map(|c| c.value()))
                .collect();
            merged.push(TargetReading {
                analyte: r.analyte,
                we: r.we,
                response: mean_response,
                estimated: (!estimates.is_empty())
                    .then(|| Molar::new(estimates.iter().sum::<f64>() / estimates.len() as f64)),
                identified: 2 * votes > group.len(),
            });
        }
        SessionReport {
            readings: merged,
            schedule,
            qualities,
            degradation: DegradationSummary {
                retries,
                quarantined,
                failed_targets,
                ..DegradationSummary::default()
            },
        }
    }

    /// The per-electrode base seed every attempt seed derives from.
    pub(crate) fn we_seed(seed: u64, we: usize) -> u64 {
        seed.wrapping_add(17 * (we as u64 + 1))
    }

    /// The readout chain electrode `assignment` measures through: the
    /// technique's shared chain, turned into its faulted twin when the
    /// options' fault plan schedules faults on it. The fault realization
    /// is fixed across retries — a broken electrode stays broken, only
    /// the noise is fresh.
    // advdiag::cold(per-acquisition AFE chain assembly: runs once per acquisition
    // by contract, not once per step)
    pub(crate) fn assignment_chain(
        &self,
        assignment: &WeAssignment,
        options: &SessionOptions,
    ) -> ReadoutChain {
        let base = self.base_chain(assignment);
        match options.fault_plan.as_ref() {
            Some(plan) => {
                let faults = plan.faults_for(assignment.index);
                if faults.is_empty() {
                    base.clone()
                } else {
                    base.clone()
                        .with_faults(faults, plan.chain_seed(assignment.index))
                }
            }
            None => base.clone(),
        }
    }

    fn base_chain(&self, assignment: &WeAssignment) -> &ReadoutChain {
        match &assignment.sensor {
            SensorModel::Oxidase(_) => &self.chrono_chain,
            SensorModel::Cytochrome(_) => &self.cv_chain,
        }
    }

    /// Built-in self-test for the `ApplyPotential` step: a known
    /// half-scale test current through the live chain, graded against the
    /// fault-free chain's commissioning response. Gain faults that hide
    /// below one ADC code at quiescent input cannot hide under a test
    /// signal. Both traces run under fixed seeds, so they memoize.
    // advdiag::cold(built-in self-test: memoized whole-trace simulation, runs once
    // per electrode commissioning step)
    pub(crate) fn bist_verdict(
        &self,
        assignment: &WeAssignment,
        options: &SessionOptions,
    ) -> QcVerdict {
        let base = self.base_chain(assignment);
        let chain = self.assignment_chain(assignment, options);
        if chain.faults().is_empty() {
            return QcVerdict {
                class: QcClass::Pass,
                reasons: Vec::new(),
            };
        }
        let live = memo::self_test_response(&chain, SELF_TEST_DT, SELF_TEST_WINDOW, SELF_TEST_SEED);
        let commissioned =
            memo::self_test_response(base, SELF_TEST_DT, SELF_TEST_WINDOW, SELF_TEST_SEED);
        let mut verdict = match (live, commissioned) {
            (Ok(m), Ok(e)) => options.qc.check_self_test(m, e),
            _ => QcVerdict {
                class: QcClass::Pass,
                reasons: Vec::new(),
            },
        };
        // Post-assay self-test: a fault whose onset falls after the short
        // test window is invisible above — it activates mid-session,
        // settles, and the reading comes out plausibly scaled. Re-grade
        // the chain with every fault fully developed (onsets elapsed) over
        // an assay-length window, the way a bench instrument re-runs its
        // dummy-cell check after the assay: time-growing faults (drift)
        // only reach their material magnitude at assay scale.
        if chain.faults().iter().any(|f| f.onset.value() > 0.0) {
            let settled: Vec<Fault> = chain
                .faults()
                .iter()
                .filter_map(|f| Fault::immediate(f.kind, f.severity).ok())
                .collect();
            let fault_seed = options
                .fault_plan
                .as_ref()
                .map(|p| p.chain_seed(assignment.index()))
                .unwrap_or(0);
            let settled_chain = base.clone().with_faults(settled, fault_seed);
            let post = memo::self_test_response(
                &settled_chain,
                SELF_TEST_DT,
                POST_SELF_TEST_WINDOW,
                SELF_TEST_SEED,
            );
            let reference =
                memo::self_test_response(base, SELF_TEST_DT, POST_SELF_TEST_WINDOW, SELF_TEST_SEED);
            if let (Ok(m), Ok(e)) = (post, reference) {
                verdict.merge(options.qc.check_self_test(m, e));
            }
        }
        verdict
    }

    /// The `Settle` step's stored calibration record: the QC gate
    /// compares live baselines against the chain's commissioning
    /// self-noise — always taken from the fault-free base chain.
    // advdiag::cold(memoized commissioning-time noise reference: the trace is
    // simulated once per electrode and served from the memo cache thereafter)
    pub(crate) fn reference_noise_for(&self, assignment: &WeAssignment) -> Option<Amps> {
        match &assignment.sensor {
            SensorModel::Oxidase(_) => memo::baseline_noise_reference(
                self.base_chain(assignment),
                self.chrono_protocol.dt,
                self.chrono_protocol.settle,
                NOISE_REFERENCE_SEED,
            )
            .ok(),
            SensorModel::Cytochrome(_) => None,
        }
    }

    /// One acquisition on one assignment: runs the protocol against the
    /// (possibly faulted) chain and screens the measurement through the
    /// session's QC gate.
    #[allow(clippy::too_many_arguments)]
    // advdiag::cold(whole-acquisition entry: one call simulates a full experiment;
    // everything below runs at per-acquisition cadence by contract)
    pub(crate) fn measure_assignment(
        &self,
        assignment: &WeAssignment,
        sample: &[(Analyte, Molar)],
        interferents: &[(Interferent, Molar)],
        chain: &ReadoutChain,
        options: &SessionOptions,
        reference_noise: Option<Amps>,
        seed: u64,
    ) -> Result<(Vec<TargetReading>, QcVerdict), PlatformError> {
        let full_scale = chain.config().full_scale_current();
        match &assignment.sensor {
            SensorModel::Oxidase(sensor) => {
                let analyte = assignment.targets[0];
                let c = concentration_of(sample, analyte);
                let m = run_chrono_with_interferents(
                    sensor,
                    &assignment.electrode,
                    chain,
                    c,
                    interferents,
                    &self.chrono_protocol,
                    seed,
                )?;
                let verdict = options
                    .qc
                    .check_chrono_referenced(&m, full_scale, reference_noise);
                let response = m.delta();
                let area = assignment.electrode.geometric_area().value();
                let threshold = 3.0 * sensor.blank_sd().value() * area;
                let estimated = invert_mm(
                    response.value(),
                    area,
                    sensor.sensitivity_si(),
                    sensor.kinetics(),
                );
                Ok((
                    vec![TargetReading {
                        analyte,
                        we: assignment.index,
                        response,
                        estimated,
                        identified: response.value() > threshold,
                    }],
                    verdict,
                ))
            }
            SensorModel::Cytochrome(sensor) => {
                let concs: Vec<(Analyte, Molar)> = assignment
                    .targets
                    .iter()
                    .map(|a| (*a, concentration_of(sample, *a)))
                    .collect();
                let m = run_cv(
                    sensor,
                    &assignment.electrode,
                    chain,
                    &concs,
                    &self.cv_protocol,
                    seed,
                )?;
                let verdict = options.qc.check_cv(&m, full_scale);
                let area = assignment.electrode.geometric_area().value();
                let mut readings = Vec::with_capacity(assignment.targets.len());
                for analyte in &assignment.targets {
                    let height = m.peak_height(*analyte);
                    let response = height.unwrap_or(Amps::ZERO);
                    let blank_sd = sensor
                        .blank_sd(*analyte)
                        .ok_or(PlatformError::NoProbeFor(*analyte))?;
                    let threshold = 3.0 * blank_sd.value() * area;
                    let kinetics = sensor
                        .kinetics(*analyte)
                        .ok_or(PlatformError::NoProbeFor(*analyte))?;
                    let s_si = sensor
                        .sensitivity_si(*analyte)
                        .ok_or(PlatformError::NoProbeFor(*analyte))?;
                    let estimated = height.and_then(|h| invert_mm(h.value(), area, s_si, kinetics));
                    readings.push(TargetReading {
                        analyte: *analyte,
                        we: assignment.index,
                        response,
                        estimated,
                        identified: height.is_some() && response.value() > threshold,
                    });
                }
                Ok((readings, verdict))
            }
        }
    }

    /// Self-characterizes every working electrode with a full calibration
    /// campaign (blank replicates plus a concentration series over the
    /// registry linear range), returning one Table III-style
    /// [`PerformanceReport`] per target.
    ///
    /// This is what a manufactured platform's acceptance test would run.
    /// With `n_blanks` around 6–10 the LODs carry the usual small-sample
    /// scatter; the concentration series uses 6 points per target.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if any underlying campaign fails.
    pub fn calibrate(
        &self,
        n_blanks: usize,
        seed: u64,
    ) -> Result<Vec<PerformanceReport>, PlatformError> {
        let mut reports = Vec::new();
        for assignment in &self.assignments {
            let we_seed = seed.wrapping_add(1009 * (assignment.index as u64 + 1));
            let area = assignment.electrode.geometric_area();
            match &assignment.sensor {
                SensorModel::Oxidase(sensor) => {
                    let analyte = assignment.targets[0];
                    let concs = series_for(analyte);
                    let outcome = calibrate_chrono(
                        sensor,
                        &assignment.electrode,
                        &self.chrono_chain,
                        &concs,
                        n_blanks,
                        &self.chrono_protocol,
                        we_seed,
                    )?;
                    reports.push(
                        PerformanceReport::from_calibration(
                            analyte.to_string(),
                            assignment.probe.to_string(),
                            Technique::Chronoamperometry.to_string(),
                            &outcome,
                            area,
                        )
                        .with_timing(sensor.response_time_t90(), self.chrono_protocol.settle),
                    );
                }
                SensorModel::Cytochrome(sensor) => {
                    for (j, analyte) in assignment.targets.iter().enumerate() {
                        let concs = series_for(*analyte);
                        let outcome = calibrate_cv(
                            sensor,
                            &assignment.electrode,
                            &self.cv_chain,
                            *analyte,
                            &concs,
                            n_blanks,
                            &self.cv_protocol,
                            we_seed.wrapping_add(j as u64),
                        )?;
                        reports.push(PerformanceReport::from_calibration(
                            analyte.to_string(),
                            assignment.probe.to_string(),
                            Technique::CyclicVoltammetry.to_string(),
                            &outcome,
                            area,
                        ));
                    }
                }
            }
        }
        Ok(reports)
    }

    /// The platform's cost summary.
    pub fn cost(&self) -> PlatformCost {
        let n_we = self.assignments.len();
        let adc_bits = self.chrono_chain.config().adc.bits();
        let budget = electronics_budget(n_we, self.sharing, adc_bits, self.chopper, self.cds);
        let we_area = self
            .assignments
            .first()
            .map(|a| a.electrode.geometric_area())
            .unwrap_or_else(|| Electrode::paper_gold_we().geometric_area());
        PlatformCost::assemble(
            &budget,
            we_area,
            self.structure.total_electrodes(),
            self.structure.chambers(),
            self.schedule().total_duration(),
        )
    }
}

/// Inverts the calibrated Michaelis–Menten response `r = A·S·Km·sat(C)` to
/// a concentration. Returns `None` when saturated (≥98% of Vmax) and
/// clamps negative responses to zero concentration.
fn invert_mm(response: f64, area_cm2: f64, s_si: f64, kinetics: &MichaelisMenten) -> Option<Molar> {
    let vmax = area_cm2 * s_si * kinetics.km().value();
    if vmax <= 0.0 {
        return None;
    }
    let x = response / vmax;
    if x <= 0.0 {
        return Some(Molar::ZERO);
    }
    if x >= 0.98 {
        return None;
    }
    Some(Molar::new(kinetics.km().value() * x / (1.0 - x)))
}

/// The calibration concentration series for an analyte: six points over
/// its registry (Table III) linear range, falling back to the typical
/// physiological range for unregistered targets.
fn series_for(analyte: Analyte) -> Vec<Molar> {
    let range = bios_biochem::tables::performance_of(analyte)
        .map(|row| row.linear_range())
        .unwrap_or_else(|| analyte.typical_range());
    range.linspace(6)
}

fn concentration_of(sample: &[(Analyte, Molar)], analyte: Analyte) -> Molar {
    sample
        .iter()
        .find(|(a, _)| *a == analyte)
        .map(|(_, c)| *c)
        .unwrap_or(Molar::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::requirements::{PanelSpec, TargetSpec};

    fn fig4() -> Platform {
        PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build")
    }

    fn fig4_sample() -> Vec<(Analyte, Molar)> {
        vec![
            (Analyte::Glucose, Molar::from_millimolar(3.0)),
            (Analyte::Lactate, Molar::from_millimolar(1.5)),
            // Above the glutamate sensor's 1.57 mM LOD (paper Table III).
            (Analyte::Glutamate, Molar::from_millimolar(3.0)),
            (Analyte::Benzphetamine, Molar::from_millimolar(0.8)),
            (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
            (Analyte::Cholesterol, Molar::from_micromolar(50.0)),
        ]
    }

    #[test]
    fn session_reads_all_six_targets() {
        let p = fig4();
        let report = p.run_session(&fig4_sample(), 42).expect("session");
        assert_eq!(report.readings().len(), 6);
        for r in report.readings() {
            assert!(r.identified, "{} not identified", r.analyte);
        }
    }

    #[test]
    fn session_estimates_are_in_the_right_ballpark() {
        let p = fig4();
        let sample = fig4_sample();
        let report = p.run_session(&sample, 7).expect("session");
        // Glucose at 3 mM with σ_b-level noise: within ~35%.
        let glucose = report
            .reading_for(Analyte::Glucose)
            .expect("on panel")
            .estimated
            .expect("not saturated");
        assert!(
            (glucose.as_millimolar() - 3.0).abs() < 1.0,
            "glucose estimate {glucose}"
        );
        // Aminopyrine at 4 mM: generous band, CV peak readout is noisier.
        let amino = report
            .reading_for(Analyte::Aminopyrine)
            .expect("on panel")
            .estimated
            .expect("not saturated");
        assert!(
            (amino.as_millimolar() - 4.0).abs() < 2.0,
            "aminopyrine estimate {amino}"
        );
    }

    #[test]
    fn absent_analytes_are_not_identified() {
        let p = fig4();
        // Only glucose present.
        let sample = vec![(Analyte::Glucose, Molar::from_millimolar(3.0))];
        let report = p.run_session(&sample, 3).expect("session");
        let benz = report
            .reading_for(Analyte::Benzphetamine)
            .expect("on panel");
        assert!(!benz.identified, "absent drug flagged as identified");
        let glucose = report.reading_for(Analyte::Glucose).expect("on panel");
        assert!(glucose.identified);
    }

    #[test]
    fn shared_schedule_is_sum_of_measurements() {
        let p = fig4();
        let s = p.schedule();
        assert_eq!(s.slots().len(), 5);
        assert!(!s.has_overlap());
        // 3 chrono at 70 s + 2 CVs (window-dependent) — minutes total.
        assert!(s.total_duration().value() > 250.0, "{}", s.total_duration());
    }

    #[test]
    fn dedicated_sharing_shortens_session() {
        let shared = fig4();
        let dedicated = PlatformBuilder::new(PanelSpec::paper_fig4())
            .with_sharing(ReadoutSharing::Dedicated)
            .build()
            .expect("build");
        assert!(
            dedicated.schedule().total_duration().value()
                < shared.schedule().total_duration().value() / 2.0
        );
        // ... at a higher electronics cost.
        assert!(dedicated.cost().power.value() > 2.0 * shared.cost().power.value());
    }

    #[test]
    fn worst_relative_error_metric() {
        let p = fig4();
        let sample = fig4_sample();
        let report = p.run_session(&sample, 42).expect("session");
        let err = report.worst_relative_error(&sample);
        assert!(err < 1.0, "worst error {err}");
        // Perfect self-comparison: estimated vs estimated → mid errors.
        assert!(err >= 0.0);
    }

    #[test]
    fn redundancy_averages_down_the_noise() {
        use crate::builder::PlatformBuilder;
        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Glucose));
        let single = PlatformBuilder::new(panel.clone()).build().expect("build");
        let triple = PlatformBuilder::new(panel)
            .with_redundancy(3)
            .build()
            .expect("build");
        assert_eq!(single.structure().working_electrodes(), 1);
        assert_eq!(triple.structure().working_electrodes(), 3);

        // Replicate sessions: the tripled platform's response scatter must
        // shrink by roughly √3.
        let sample = [(Analyte::Glucose, Molar::from_millimolar(2.0))];
        let scatter = |p: &Platform, base: u64| {
            let vals: Vec<f64> = (0..32)
                .map(|k| {
                    p.run_session(&sample, base + k)
                        .expect("session")
                        .reading_for(Analyte::Glucose)
                        .expect("on panel")
                        .response
                        .value()
                })
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let s1 = scatter(&single, 100);
        let s3 = scatter(&triple, 500);
        assert!(
            s3 < 0.8 * s1,
            "redundancy must reduce scatter: {s3} vs {s1}"
        );
        // And a session still reports exactly one merged glucose reading.
        let report = triple.run_session(&sample, 9).expect("session");
        assert_eq!(report.readings().len(), 1);
        assert!(report.readings()[0].identified);
    }

    #[test]
    fn self_calibration_produces_six_reports() {
        let p = fig4();
        let reports = p.calibrate(6, 314).expect("calibration");
        assert_eq!(reports.len(), 6, "one report per target");
        for r in &reports {
            assert!(r.sensitivity_ua_per_mm_cm2 > 0.0, "{}", r.target);
            assert!(r.lod_um > 0.0, "{}", r.target);
        }
        // Oxidase reports carry timing; CYP reports do not.
        let glucose = reports
            .iter()
            .find(|r| r.target == "glucose")
            .expect("present");
        assert!(glucose.t90.is_some());
        assert!(glucose.throughput_per_hour.expect("timing set") > 10.0);
        let chol = reports
            .iter()
            .find(|r| r.target == "cholesterol")
            .expect("present");
        assert!(chol.t90.is_none());
        // Sensitivities land near the registry (wide band: quick campaign).
        assert!(
            (glucose.sensitivity_ua_per_mm_cm2 - 27.7).abs() / 27.7 < 0.4,
            "glucose S {}",
            glucose.sensitivity_ua_per_mm_cm2
        );
    }

    #[test]
    fn sample_interferents_bias_oxidase_wes_and_cds_restores() {
        // Ascorbate in the sample leaks into every anodic reading unless
        // the platform was built with blank-electrode CDS — §II-C end to
        // end at the platform level.
        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Glucose));
        let sample_clean = vec![(Analyte::Glucose, Molar::from_millimolar(3.0))];
        let sample_dirty = vec![
            (Analyte::Glucose, Molar::from_millimolar(3.0)),
            (Analyte::Ascorbate, Molar::from_millimolar(1.0)),
        ];
        let plain = PlatformBuilder::new(panel.clone()).build().expect("build");
        let with_cds = PlatformBuilder::new(panel)
            .with_cds(true)
            .build()
            .expect("build");

        let read = |p: &Platform, s: &[(Analyte, Molar)]| {
            p.run_session(s, 8)
                .expect("session")
                .reading_for(Analyte::Glucose)
                .expect("on panel")
                .response
                .value()
        };
        let clean = read(&plain, &sample_clean);
        let dirty = read(&plain, &sample_dirty);
        // 1 mM ascorbate at 8 µA/(mM·cm²) on 0.0023 cm² ≈ 18 nA of bias.
        assert!(dirty - clean > 10e-9, "bias {}", dirty - clean);
        let corrected = read(&with_cds, &sample_dirty);
        let clean_cds = read(&with_cds, &sample_clean);
        assert!(
            (corrected - clean_cds).abs() < 5e-9,
            "cds residual {}",
            corrected - clean_cds
        );
    }

    #[test]
    fn open_electrode_is_flagged_quarantined_and_never_silently_reported() {
        use bios_afe::{Fault, FaultKind, FaultPlan};
        use bios_instrument::QcGate;

        let p = fig4();
        let glucose_we = p
            .assignments()
            .iter()
            .find(|a| a.targets().contains(&Analyte::Glucose))
            .expect("on panel")
            .index();
        let plan = FaultPlan::new(77).with_fault(
            glucose_we,
            Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid"),
        );
        let options = SessionOptions::default()
            .with_fault_plan(plan)
            .with_qc(QcGate::default());
        let report = p
            .run_session_with(&fig4_sample(), 42, &options)
            .expect("session degrades, not errors");

        // Panel stays complete, but the dead electrode's reading is
        // stripped: no estimate, not identified.
        assert_eq!(report.readings().len(), 6);
        let glucose = report.reading_for(Analyte::Glucose).expect("on panel");
        assert!(!glucose.identified);
        assert!(glucose.estimated.is_none());

        // Provenance: final class Fail after all attempts, quarantined.
        let q = report.quality_for(Analyte::Glucose).expect("recorded");
        assert_eq!(q.class, QcClass::Fail);
        assert_eq!(q.attempts, 3, "default policy = 1 try + 2 retries");
        assert!(q.quarantined);
        assert!(!q.reasons.is_empty());

        let d = report.degradation();
        assert_eq!(d.retries, 2);
        assert_eq!(d.quarantined, vec![glucose_we]);
        assert_eq!(d.failed_targets, vec![Analyte::Glucose]);
        assert!(report.is_degraded());

        // Retry slots extend the schedule without overlap.
        assert_eq!(report.schedule().slots().len(), 7);
        assert!(!report.schedule().has_overlap());

        // The other five targets are untouched.
        for r in report.readings() {
            if r.analyte != Analyte::Glucose {
                assert!(r.identified, "{} should survive", r.analyte);
            }
        }
    }

    #[test]
    fn parallel_session_bit_identical_to_sequential() {
        use crate::exec::ExecPolicy;
        use bios_afe::FaultPlan;
        use bios_instrument::QcGate;

        let p = fig4();
        let sample = fig4_sample();
        // Once clean, once with faults and retries in play.
        let option_sets = [
            SessionOptions::default(),
            SessionOptions::default()
                .with_fault_plan(FaultPlan::randomized(901, 5))
                .with_qc(QcGate::default()),
        ];
        for options in option_sets {
            let seq = p
                .run_session_with(
                    &sample,
                    42,
                    &options.clone().with_exec(ExecPolicy::Sequential),
                )
                .expect("sequential");
            for threads in [2, 4] {
                let par = p
                    .run_session_with(
                        &sample,
                        42,
                        &options.clone().with_exec(ExecPolicy::Threads(threads)),
                    )
                    .expect("parallel");
                assert_eq!(par, seq, "threads = {threads}");
            }
        }
    }

    #[test]
    fn faulted_sessions_are_reproducible_under_one_seed() {
        use bios_afe::FaultPlan;
        use bios_instrument::QcGate;

        let p = fig4();
        let options = SessionOptions::default()
            .with_fault_plan(FaultPlan::randomized(901, 5))
            .with_qc(QcGate::default());
        let a = p
            .run_session_with(&fig4_sample(), 13, &options)
            .expect("session");
        let b = p
            .run_session_with(&fig4_sample(), 13, &options)
            .expect("session");
        assert_eq!(a, b, "same seed and options ⇒ identical report");
    }

    #[test]
    fn redundancy_rescues_a_faulted_replicate() {
        use bios_afe::{Fault, FaultKind, FaultPlan};
        use bios_instrument::QcGate;

        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Glucose));
        let triple = PlatformBuilder::new(panel)
            .with_redundancy(3)
            .build()
            .expect("build");
        let plan = FaultPlan::new(5).with_fault(
            0,
            Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid"),
        );
        let options = SessionOptions::default()
            .with_fault_plan(plan)
            .with_qc(QcGate::default());
        let sample = [(Analyte::Glucose, Molar::from_millimolar(3.0))];
        let report = triple
            .run_session_with(&sample, 21, &options)
            .expect("session");

        // The two healthy replicates outvote the dead one.
        let glucose = report.reading_for(Analyte::Glucose).expect("on panel");
        assert!(glucose.identified, "healthy replicates carry the target");
        assert!(glucose.estimated.is_some());
        let d = report.degradation();
        assert_eq!(d.quarantined, vec![0]);
        assert!(
            d.failed_targets.is_empty(),
            "redundancy kept the target alive"
        );
        // Best replicate quality is a clean pass.
        assert_eq!(
            report
                .quality_for(Analyte::Glucose)
                .expect("recorded")
                .class,
            QcClass::Pass
        );
    }

    #[test]
    fn mm_inversion_round_trips() {
        let kinetics = MichaelisMenten::new(Molar::from_millimolar(36.0)).expect("valid");
        let area = 0.0023;
        let s = 27.7e-3;
        for c_mm in [0.5, 2.0, 4.0, 10.0] {
            let c = Molar::from_millimolar(c_mm);
            let r = area * s * kinetics.km().value() * kinetics.saturation(c);
            let back = invert_mm(r, area, s, &kinetics).expect("not saturated");
            assert!(
                (back.as_millimolar() - c_mm).abs() < 1e-9,
                "{c_mm} mM → {back}"
            );
        }
        // Saturation returns None; negatives clamp to zero.
        assert_eq!(invert_mm(-1e-9, area, s, &kinetics), Some(Molar::ZERO));
        assert_eq!(invert_mm(1.0, area, s, &kinetics), None);
    }
}
