//! The assembled platform: working electrodes, shared readout, scheduling
//! and full-session simulation — the running version of the paper's Fig. 4.

use crate::cost::{electronics_budget, PlatformCost, ReadoutSharing};
use crate::error::PlatformError;
use crate::schedule::Schedule;
use crate::structure::SensorStructure;
use bios_afe::{AnalogMux, ReadoutChain};
use bios_biochem::Interferent;
use bios_biochem::{Analyte, CypSensor, MichaelisMenten, OxidaseSensor, Probe, Technique};
use bios_electrochem::{Electrode, PotentialProgram};
use bios_instrument::{
    calibrate_chrono, calibrate_cv, run_chrono_with_interferents, run_cv, ChronoProtocol,
    CvProtocol, PerformanceReport,
};
use bios_units::{Amps, Molar, Seconds};

/// The sensing model behind one working electrode.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorModel {
    /// Chronoamperometric oxidase sensor.
    Oxidase(OxidaseSensor),
    /// Voltammetric cytochrome P450 sensor.
    Cytochrome(CypSensor),
}

/// One working electrode with its probe and targets.
#[derive(Debug, Clone, PartialEq)]
pub struct WeAssignment {
    index: usize,
    probe: Probe,
    targets: Vec<Analyte>,
    electrode: Electrode,
    sensor: SensorModel,
}

impl WeAssignment {
    pub(crate) fn new(
        index: usize,
        probe: Probe,
        targets: Vec<Analyte>,
        electrode: Electrode,
        sensor: SensorModel,
    ) -> Self {
        Self {
            index,
            probe,
            targets,
            electrode,
            sensor,
        }
    }

    /// The working-electrode index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The biological probe on this electrode.
    pub fn probe(&self) -> Probe {
        self.probe
    }

    /// The analytes read from this electrode.
    pub fn targets(&self) -> &[Analyte] {
        &self.targets
    }

    /// The physical electrode.
    pub fn electrode(&self) -> &Electrode {
        &self.electrode
    }

    /// The readout technique this electrode uses.
    pub fn technique(&self) -> Technique {
        self.probe.technique()
    }

    /// The sensing model.
    pub fn sensor(&self) -> &SensorModel {
        &self.sensor
    }
}

/// One analyte reading out of a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetReading {
    /// The analyte.
    pub analyte: Analyte,
    /// Which working electrode produced it.
    pub we: usize,
    /// The raw analytical response (ΔI for chrono, peak height for CV).
    pub response: Amps,
    /// Concentration estimate from the registry calibration; `None` when
    /// the sensor saturated or nothing was detected.
    pub estimated: Option<Molar>,
    /// Whether the signal cleared the 3σ detection threshold (and, for CV,
    /// the signature matched).
    pub identified: bool,
}

/// The outcome of one full measurement session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    readings: Vec<TargetReading>,
    schedule: Schedule,
}

impl SessionReport {
    /// All readings in measurement order.
    pub fn readings(&self) -> &[TargetReading] {
        &self.readings
    }

    /// The reading for one analyte, if it was on the panel.
    pub fn reading_for(&self, analyte: Analyte) -> Option<&TargetReading> {
        self.readings.iter().find(|r| r.analyte == analyte)
    }

    /// The executed schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Total session duration.
    pub fn total_duration(&self) -> Seconds {
        self.schedule.total_duration()
    }

    /// Worst relative concentration error against a ground-truth sample
    /// (readings without an estimate count as 100% error; truths of zero
    /// are skipped).
    pub fn worst_relative_error(&self, truth: &[(Analyte, Molar)]) -> f64 {
        let mut worst: f64 = 0.0;
        for (analyte, c_true) in truth {
            if c_true.value() <= 0.0 {
                continue;
            }
            let err = match self.reading_for(*analyte).and_then(|r| r.estimated) {
                Some(est) => ((est.value() - c_true.value()) / c_true.value()).abs(),
                None => 1.0,
            };
            worst = worst.max(err);
        }
        worst
    }
}

/// A fully assembled multi-target biosensing platform.
///
/// Built by [`PlatformBuilder`](crate::PlatformBuilder); see there for an
/// example.
#[derive(Debug, Clone)]
pub struct Platform {
    assignments: Vec<WeAssignment>,
    structure: SensorStructure,
    mux: AnalogMux,
    chrono_chain: ReadoutChain,
    cv_chain: ReadoutChain,
    chrono_protocol: ChronoProtocol,
    cv_protocol: CvProtocol,
    sharing: ReadoutSharing,
    chopper: bool,
    cds: bool,
}

impl Platform {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        assignments: Vec<WeAssignment>,
        structure: SensorStructure,
        mux: AnalogMux,
        chrono_chain: ReadoutChain,
        cv_chain: ReadoutChain,
        chrono_protocol: ChronoProtocol,
        cv_protocol: CvProtocol,
        sharing: ReadoutSharing,
        chopper: bool,
        cds: bool,
    ) -> Self {
        Self {
            assignments,
            structure,
            mux,
            chrono_chain,
            cv_chain,
            chrono_protocol,
            cv_protocol,
            sharing,
            chopper,
            cds,
        }
    }

    /// The working-electrode assignments.
    pub fn assignments(&self) -> &[WeAssignment] {
        &self.assignments
    }

    /// The physical sensor structure.
    pub fn structure(&self) -> SensorStructure {
        self.structure
    }

    /// The readout-sharing strategy.
    pub fn sharing(&self) -> ReadoutSharing {
        self.sharing
    }

    /// The chronoamperometry protocol in force.
    pub fn chrono_protocol(&self) -> &ChronoProtocol {
        &self.chrono_protocol
    }

    /// The CV protocol in force.
    pub fn cv_protocol(&self) -> &CvProtocol {
        &self.cv_protocol
    }

    /// The duration of one measurement on an assignment.
    pub fn measurement_duration(&self, assignment: &WeAssignment) -> Seconds {
        match &assignment.sensor {
            SensorModel::Oxidase(_) => Seconds::new(
                self.chrono_protocol.settle.value() + self.chrono_protocol.measure.value(),
            ),
            SensorModel::Cytochrome(sensor) => {
                let (start, vertex) = sensor.recommended_window();
                PotentialProgram::cyclic_single(start, vertex, self.cv_protocol.scan_rate)
                    .duration()
            }
        }
    }

    /// The session schedule under the configured sharing strategy.
    pub fn schedule(&self) -> Schedule {
        let measurements: Vec<(usize, Technique, Seconds)> = self
            .assignments
            .iter()
            .map(|a| (a.index, a.technique(), self.measurement_duration(a)))
            .collect();
        match self.sharing {
            ReadoutSharing::Shared => Schedule::sequential(&measurements, &self.mux),
            ReadoutSharing::Dedicated => Schedule::parallel(&measurements),
        }
    }

    /// Runs one full measurement session against a sample.
    ///
    /// The sample is a list of true analyte concentrations; analytes not
    /// listed are absent (zero). Returns per-target readings with
    /// registry-calibration concentration estimates.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if any underlying measurement fails.
    pub fn run_session(
        &self,
        sample: &[(Analyte, Molar)],
        seed: u64,
    ) -> Result<SessionReport, PlatformError> {
        // Electroactive species in the sample interfere with the anodic
        // (oxidase) readouts; the cathodic CYP window sits below their
        // onset potentials.
        let interferents: Vec<(Interferent, Molar)> = sample
            .iter()
            .filter_map(|(a, c)| Interferent::of(*a).map(|i| (i, *c)))
            .collect();
        let mut readings = Vec::new();
        for assignment in &self.assignments {
            let we_seed = seed.wrapping_add(17 * (assignment.index as u64 + 1));
            match &assignment.sensor {
                SensorModel::Oxidase(sensor) => {
                    let analyte = assignment.targets[0];
                    let c = concentration_of(sample, analyte);
                    let m = run_chrono_with_interferents(
                        sensor,
                        &assignment.electrode,
                        &self.chrono_chain,
                        c,
                        &interferents,
                        &self.chrono_protocol,
                        we_seed,
                    )?;
                    let response = m.delta();
                    let area = assignment.electrode.geometric_area().value();
                    let threshold = 3.0 * sensor.blank_sd().value() * area;
                    let estimated = invert_mm(
                        response.value(),
                        area,
                        sensor.sensitivity_si(),
                        sensor.kinetics(),
                    );
                    readings.push(TargetReading {
                        analyte,
                        we: assignment.index,
                        response,
                        estimated,
                        identified: response.value() > threshold,
                    });
                }
                SensorModel::Cytochrome(sensor) => {
                    let concs: Vec<(Analyte, Molar)> = assignment
                        .targets
                        .iter()
                        .map(|a| (*a, concentration_of(sample, *a)))
                        .collect();
                    let m = run_cv(
                        sensor,
                        &assignment.electrode,
                        &self.cv_chain,
                        &concs,
                        &self.cv_protocol,
                        we_seed,
                    )?;
                    let area = assignment.electrode.geometric_area().value();
                    for analyte in &assignment.targets {
                        let height = m.peak_height(*analyte);
                        let response = height.unwrap_or(Amps::ZERO);
                        let threshold = 3.0
                            * sensor
                                .blank_sd(*analyte)
                                .expect("assigned targets are registered")
                                .value()
                            * area;
                        let kinetics = sensor
                            .kinetics(*analyte)
                            .expect("assigned targets are registered");
                        let s_si = sensor
                            .sensitivity_si(*analyte)
                            .expect("assigned targets are registered");
                        let estimated =
                            height.and_then(|h| invert_mm(h.value(), area, s_si, kinetics));
                        readings.push(TargetReading {
                            analyte: *analyte,
                            we: assignment.index,
                            response,
                            estimated,
                            identified: height.is_some() && response.value() > threshold,
                        });
                    }
                }
            }
        }
        // Merge replicate readings of the same analyte (redundant WEs):
        // responses average (uncorrelated noise shrinks by √n), a majority
        // of replicates must agree for identification, and the estimate is
        // re-derived from the averaged response.
        let mut merged: Vec<TargetReading> = Vec::new();
        for r in &readings {
            if merged.iter().any(|m| m.analyte == r.analyte) {
                continue;
            }
            let group: Vec<&TargetReading> =
                readings.iter().filter(|x| x.analyte == r.analyte).collect();
            if group.len() == 1 {
                merged.push(*r);
                continue;
            }
            let mean_response = Amps::new(
                group.iter().map(|x| x.response.value()).sum::<f64>() / group.len() as f64,
            );
            let votes = group.iter().filter(|x| x.identified).count();
            let estimates: Vec<f64> = group
                .iter()
                .filter_map(|x| x.estimated.map(|c| c.value()))
                .collect();
            merged.push(TargetReading {
                analyte: r.analyte,
                we: r.we,
                response: mean_response,
                estimated: (!estimates.is_empty())
                    .then(|| Molar::new(estimates.iter().sum::<f64>() / estimates.len() as f64)),
                identified: 2 * votes > group.len(),
            });
        }
        Ok(SessionReport {
            readings: merged,
            schedule: self.schedule(),
        })
    }

    /// Self-characterizes every working electrode with a full calibration
    /// campaign (blank replicates plus a concentration series over the
    /// registry linear range), returning one Table III-style
    /// [`PerformanceReport`] per target.
    ///
    /// This is what a manufactured platform's acceptance test would run.
    /// With `n_blanks` around 6–10 the LODs carry the usual small-sample
    /// scatter; the concentration series uses 6 points per target.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if any underlying campaign fails.
    pub fn calibrate(
        &self,
        n_blanks: usize,
        seed: u64,
    ) -> Result<Vec<PerformanceReport>, PlatformError> {
        let mut reports = Vec::new();
        for assignment in &self.assignments {
            let we_seed = seed.wrapping_add(1009 * (assignment.index as u64 + 1));
            let area = assignment.electrode.geometric_area();
            match &assignment.sensor {
                SensorModel::Oxidase(sensor) => {
                    let analyte = assignment.targets[0];
                    let concs = series_for(analyte);
                    let outcome = calibrate_chrono(
                        sensor,
                        &assignment.electrode,
                        &self.chrono_chain,
                        &concs,
                        n_blanks,
                        &self.chrono_protocol,
                        we_seed,
                    )?;
                    reports.push(
                        PerformanceReport::from_calibration(
                            analyte.to_string(),
                            assignment.probe.to_string(),
                            Technique::Chronoamperometry.to_string(),
                            &outcome,
                            area,
                        )
                        .with_timing(sensor.response_time_t90(), self.chrono_protocol.settle),
                    );
                }
                SensorModel::Cytochrome(sensor) => {
                    for (j, analyte) in assignment.targets.iter().enumerate() {
                        let concs = series_for(*analyte);
                        let outcome = calibrate_cv(
                            sensor,
                            &assignment.electrode,
                            &self.cv_chain,
                            *analyte,
                            &concs,
                            n_blanks,
                            &self.cv_protocol,
                            we_seed.wrapping_add(j as u64),
                        )?;
                        reports.push(PerformanceReport::from_calibration(
                            analyte.to_string(),
                            assignment.probe.to_string(),
                            Technique::CyclicVoltammetry.to_string(),
                            &outcome,
                            area,
                        ));
                    }
                }
            }
        }
        Ok(reports)
    }

    /// The platform's cost summary.
    pub fn cost(&self) -> PlatformCost {
        let n_we = self.assignments.len();
        let adc_bits = self.chrono_chain.config().adc.bits();
        let budget = electronics_budget(n_we, self.sharing, adc_bits, self.chopper, self.cds);
        let we_area = self
            .assignments
            .first()
            .map(|a| a.electrode.geometric_area())
            .unwrap_or_else(|| Electrode::paper_gold_we().geometric_area());
        PlatformCost::assemble(
            &budget,
            we_area,
            self.structure.total_electrodes(),
            self.structure.chambers(),
            self.schedule().total_duration(),
        )
    }
}

/// Inverts the calibrated Michaelis–Menten response `r = A·S·Km·sat(C)` to
/// a concentration. Returns `None` when saturated (≥98% of Vmax) and
/// clamps negative responses to zero concentration.
fn invert_mm(response: f64, area_cm2: f64, s_si: f64, kinetics: &MichaelisMenten) -> Option<Molar> {
    let vmax = area_cm2 * s_si * kinetics.km().value();
    if vmax <= 0.0 {
        return None;
    }
    let x = response / vmax;
    if x <= 0.0 {
        return Some(Molar::ZERO);
    }
    if x >= 0.98 {
        return None;
    }
    Some(Molar::new(kinetics.km().value() * x / (1.0 - x)))
}

/// The calibration concentration series for an analyte: six points over
/// its registry (Table III) linear range, falling back to the typical
/// physiological range for unregistered targets.
fn series_for(analyte: Analyte) -> Vec<Molar> {
    let range = bios_biochem::tables::performance_of(analyte)
        .map(|row| row.linear_range())
        .unwrap_or_else(|| analyte.typical_range());
    range.linspace(6)
}

fn concentration_of(sample: &[(Analyte, Molar)], analyte: Analyte) -> Molar {
    sample
        .iter()
        .find(|(a, _)| *a == analyte)
        .map(|(_, c)| *c)
        .unwrap_or(Molar::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::requirements::{PanelSpec, TargetSpec};

    fn fig4() -> Platform {
        PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build")
    }

    fn fig4_sample() -> Vec<(Analyte, Molar)> {
        vec![
            (Analyte::Glucose, Molar::from_millimolar(3.0)),
            (Analyte::Lactate, Molar::from_millimolar(1.5)),
            // Above the glutamate sensor's 1.57 mM LOD (paper Table III).
            (Analyte::Glutamate, Molar::from_millimolar(3.0)),
            (Analyte::Benzphetamine, Molar::from_millimolar(0.8)),
            (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
            (Analyte::Cholesterol, Molar::from_micromolar(50.0)),
        ]
    }

    #[test]
    fn session_reads_all_six_targets() {
        let p = fig4();
        let report = p.run_session(&fig4_sample(), 42).expect("session");
        assert_eq!(report.readings().len(), 6);
        for r in report.readings() {
            assert!(r.identified, "{} not identified", r.analyte);
        }
    }

    #[test]
    fn session_estimates_are_in_the_right_ballpark() {
        let p = fig4();
        let sample = fig4_sample();
        let report = p.run_session(&sample, 7).expect("session");
        // Glucose at 3 mM with σ_b-level noise: within ~35%.
        let glucose = report
            .reading_for(Analyte::Glucose)
            .expect("on panel")
            .estimated
            .expect("not saturated");
        assert!(
            (glucose.as_millimolar() - 3.0).abs() < 1.0,
            "glucose estimate {glucose}"
        );
        // Aminopyrine at 4 mM: generous band, CV peak readout is noisier.
        let amino = report
            .reading_for(Analyte::Aminopyrine)
            .expect("on panel")
            .estimated
            .expect("not saturated");
        assert!(
            (amino.as_millimolar() - 4.0).abs() < 2.0,
            "aminopyrine estimate {amino}"
        );
    }

    #[test]
    fn absent_analytes_are_not_identified() {
        let p = fig4();
        // Only glucose present.
        let sample = vec![(Analyte::Glucose, Molar::from_millimolar(3.0))];
        let report = p.run_session(&sample, 3).expect("session");
        let benz = report
            .reading_for(Analyte::Benzphetamine)
            .expect("on panel");
        assert!(!benz.identified, "absent drug flagged as identified");
        let glucose = report.reading_for(Analyte::Glucose).expect("on panel");
        assert!(glucose.identified);
    }

    #[test]
    fn shared_schedule_is_sum_of_measurements() {
        let p = fig4();
        let s = p.schedule();
        assert_eq!(s.slots().len(), 5);
        assert!(!s.has_overlap());
        // 3 chrono at 70 s + 2 CVs (window-dependent) — minutes total.
        assert!(s.total_duration().value() > 250.0, "{}", s.total_duration());
    }

    #[test]
    fn dedicated_sharing_shortens_session() {
        let shared = fig4();
        let dedicated = PlatformBuilder::new(PanelSpec::paper_fig4())
            .with_sharing(ReadoutSharing::Dedicated)
            .build()
            .expect("build");
        assert!(
            dedicated.schedule().total_duration().value()
                < shared.schedule().total_duration().value() / 2.0
        );
        // ... at a higher electronics cost.
        assert!(dedicated.cost().power.value() > 2.0 * shared.cost().power.value());
    }

    #[test]
    fn worst_relative_error_metric() {
        let p = fig4();
        let sample = fig4_sample();
        let report = p.run_session(&sample, 42).expect("session");
        let err = report.worst_relative_error(&sample);
        assert!(err < 1.0, "worst error {err}");
        // Perfect self-comparison: estimated vs estimated → mid errors.
        assert!(err >= 0.0);
    }

    #[test]
    fn redundancy_averages_down_the_noise() {
        use crate::builder::PlatformBuilder;
        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Glucose));
        let single = PlatformBuilder::new(panel.clone()).build().expect("build");
        let triple = PlatformBuilder::new(panel)
            .with_redundancy(3)
            .build()
            .expect("build");
        assert_eq!(single.structure().working_electrodes(), 1);
        assert_eq!(triple.structure().working_electrodes(), 3);

        // Replicate sessions: the tripled platform's response scatter must
        // shrink by roughly √3.
        let sample = [(Analyte::Glucose, Molar::from_millimolar(2.0))];
        let scatter = |p: &Platform, base: u64| {
            let vals: Vec<f64> = (0..12)
                .map(|k| {
                    p.run_session(&sample, base + k)
                        .expect("session")
                        .reading_for(Analyte::Glucose)
                        .expect("on panel")
                        .response
                        .value()
                })
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let s1 = scatter(&single, 100);
        let s3 = scatter(&triple, 500);
        assert!(
            s3 < 0.8 * s1,
            "redundancy must reduce scatter: {s3} vs {s1}"
        );
        // And a session still reports exactly one merged glucose reading.
        let report = triple.run_session(&sample, 9).expect("session");
        assert_eq!(report.readings().len(), 1);
        assert!(report.readings()[0].identified);
    }

    #[test]
    fn self_calibration_produces_six_reports() {
        let p = fig4();
        let reports = p.calibrate(6, 314).expect("calibration");
        assert_eq!(reports.len(), 6, "one report per target");
        for r in &reports {
            assert!(r.sensitivity_ua_per_mm_cm2 > 0.0, "{}", r.target);
            assert!(r.lod_um > 0.0, "{}", r.target);
        }
        // Oxidase reports carry timing; CYP reports do not.
        let glucose = reports
            .iter()
            .find(|r| r.target == "glucose")
            .expect("present");
        assert!(glucose.t90.is_some());
        assert!(glucose.throughput_per_hour.expect("timing set") > 10.0);
        let chol = reports
            .iter()
            .find(|r| r.target == "cholesterol")
            .expect("present");
        assert!(chol.t90.is_none());
        // Sensitivities land near the registry (wide band: quick campaign).
        assert!(
            (glucose.sensitivity_ua_per_mm_cm2 - 27.7).abs() / 27.7 < 0.4,
            "glucose S {}",
            glucose.sensitivity_ua_per_mm_cm2
        );
    }

    #[test]
    fn sample_interferents_bias_oxidase_wes_and_cds_restores() {
        // Ascorbate in the sample leaks into every anodic reading unless
        // the platform was built with blank-electrode CDS — §II-C end to
        // end at the platform level.
        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Glucose));
        let sample_clean = vec![(Analyte::Glucose, Molar::from_millimolar(3.0))];
        let sample_dirty = vec![
            (Analyte::Glucose, Molar::from_millimolar(3.0)),
            (Analyte::Ascorbate, Molar::from_millimolar(1.0)),
        ];
        let plain = PlatformBuilder::new(panel.clone()).build().expect("build");
        let with_cds = PlatformBuilder::new(panel)
            .with_cds(true)
            .build()
            .expect("build");

        let read = |p: &Platform, s: &[(Analyte, Molar)]| {
            p.run_session(s, 8)
                .expect("session")
                .reading_for(Analyte::Glucose)
                .expect("on panel")
                .response
                .value()
        };
        let clean = read(&plain, &sample_clean);
        let dirty = read(&plain, &sample_dirty);
        // 1 mM ascorbate at 8 µA/(mM·cm²) on 0.0023 cm² ≈ 18 nA of bias.
        assert!(dirty - clean > 10e-9, "bias {}", dirty - clean);
        let corrected = read(&with_cds, &sample_dirty);
        let clean_cds = read(&with_cds, &sample_clean);
        assert!(
            (corrected - clean_cds).abs() < 5e-9,
            "cds residual {}",
            corrected - clean_cds
        );
    }

    #[test]
    fn mm_inversion_round_trips() {
        let kinetics = MichaelisMenten::new(Molar::from_millimolar(36.0)).expect("valid");
        let area = 0.0023;
        let s = 27.7e-3;
        for c_mm in [0.5, 2.0, 4.0, 10.0] {
            let c = Molar::from_millimolar(c_mm);
            let r = area * s * kinetics.km().value() * kinetics.saturation(c);
            let back = invert_mm(r, area, s, &kinetics).expect("not saturated");
            assert!(
                (back.as_millimolar() - c_mm).abs() < 1e-9,
                "{c_mm} mM → {back}"
            );
        }
        // Saturation returns None; negatives clamp to zero.
        assert_eq!(invert_mm(-1e-9, area, s, &kinetics), Some(Molar::ZERO));
        assert_eq!(invert_mm(1.0, area, s, &kinetics), None);
    }
}
