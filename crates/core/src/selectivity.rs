//! Platform-level selectivity characterization (paper §II-B:
//! "Selectivity. It measures the ability to discriminate between different
//! substances").
//!
//! One single-analyte session per panel target yields a stimulus×readout
//! response matrix; a selective platform is diagonally dominant — each
//! analyte lights up its own channel and nothing else.

use crate::error::PlatformError;
use crate::platform::Platform;
use bios_biochem::Analyte;
use bios_units::Molar;
use core::fmt::Write as _;

/// The cross-response matrix of a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectivityMatrix {
    analytes: Vec<Analyte>,
    /// `responses[i][j]`: channel `j`'s response (A) when only analyte `i`
    /// is present.
    responses: Vec<Vec<f64>>,
    /// `identified[i][j]`: whether channel `j` claimed a detection.
    identified: Vec<Vec<bool>>,
}

impl SelectivityMatrix {
    /// The panel analytes, in matrix order.
    pub fn analytes(&self) -> &[Analyte] {
        &self.analytes
    }

    /// The response of channel `readout` to a sample containing only
    /// `stimulus`.
    pub fn response(&self, stimulus: Analyte, readout: Analyte) -> Option<f64> {
        let i = self.analytes.iter().position(|a| *a == stimulus)?;
        let j = self.analytes.iter().position(|a| *a == readout)?;
        Some(self.responses[i][j])
    }

    /// Whether channel `readout` flagged a detection under `stimulus` only.
    pub fn identified(&self, stimulus: Analyte, readout: Analyte) -> Option<bool> {
        let i = self.analytes.iter().position(|a| *a == stimulus)?;
        let j = self.analytes.iter().position(|a| *a == readout)?;
        Some(self.identified[i][j])
    }

    /// Worst off-diagonal false-positive: the largest off-diagonal response
    /// relative to that channel's own diagonal response.
    pub fn worst_cross_response(&self) -> f64 {
        let n = self.analytes.len();
        let mut worst: f64 = 0.0;
        for j in 0..n {
            let own = self.responses[j][j].abs().max(1e-30);
            for i in 0..n {
                if i != j {
                    worst = worst.max(self.responses[i][j].abs() / own);
                }
            }
        }
        worst
    }

    /// Number of off-diagonal false detections.
    pub fn false_positives(&self) -> usize {
        let n = self.analytes.len();
        let mut count = 0;
        for i in 0..n {
            for j in 0..n {
                if i != j && self.identified[i][j] {
                    count += 1;
                }
            }
        }
        count
    }

    /// Renders the matrix with `x` marking detections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<15}", "stimulus \\ ch");
        for a in &self.analytes {
            let _ = write!(out, "{:>14.13}", a.to_string());
        }
        out.push('\n');
        for (i, a) in self.analytes.iter().enumerate() {
            let _ = write!(out, "{:<15}", a.to_string());
            for j in 0..self.analytes.len() {
                let mark = if self.identified[i][j] { "x" } else { "" };
                let _ = write!(
                    out,
                    "{:>12.2e}{:1}{}",
                    self.responses[i][j],
                    mark,
                    if mark.is_empty() { " " } else { "" }
                );
            }
            out.push('\n');
        }
        out
    }
}

impl Platform {
    /// Measures the full selectivity matrix: one session per panel target,
    /// each with that analyte alone at a firmly detectable concentration —
    /// the top of its registry linear range or twice its LOD, whichever is
    /// larger (the glutamate sensor's LOD sits *above* its linear-range
    /// midpoint in the paper's own data).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if any session fails.
    pub fn selectivity_matrix(&self, seed: u64) -> Result<SelectivityMatrix, PlatformError> {
        let analytes: Vec<Analyte> = self
            .assignments()
            .iter()
            .flat_map(|a| a.targets().iter().copied())
            .collect();
        let mut responses = Vec::with_capacity(analytes.len());
        let mut identified = Vec::with_capacity(analytes.len());
        for (i, stimulus) in analytes.iter().enumerate() {
            let c = bios_biochem::tables::performance_of(*stimulus)
                .map(|row| {
                    let hi = row.linear_range().hi();
                    let lod_floor = row.lod().map(|l| l * 2.0).unwrap_or(Molar::ZERO);
                    hi.max(lod_floor)
                })
                .unwrap_or_else(|| stimulus.typical_range().midpoint());
            let sample: Vec<(Analyte, Molar)> = vec![(*stimulus, c)];
            let report = self.run_session(&sample, seed.wrapping_add(31 * i as u64))?;
            let mut row_r = Vec::with_capacity(analytes.len());
            let mut row_i = Vec::with_capacity(analytes.len());
            for readout in &analytes {
                let reading = report
                    .reading_for(*readout)
                    .ok_or(PlatformError::NoProbeFor(*readout))?;
                row_r.push(reading.response.value());
                row_i.push(reading.identified);
            }
            responses.push(row_r);
            identified.push(row_i);
        }
        Ok(SelectivityMatrix {
            analytes,
            responses,
            identified,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::requirements::PanelSpec;

    #[test]
    fn fig4_platform_is_diagonally_selective() {
        let p = PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build");
        let m = p.selectivity_matrix(2025).expect("matrix");
        assert_eq!(m.analytes().len(), 6);
        // Every diagonal entry identified.
        for a in m.analytes() {
            assert_eq!(m.identified(*a, *a), Some(true), "{a} missed itself");
        }
        // No off-diagonal false positives across enzyme families.
        assert_eq!(m.false_positives(), 0, "{}", m.render());
        // The worst cross-response stays below 40% of a channel's own
        // signal (blank noise on low-SNR channels like glutamate sets the
        // floor; the enzymes themselves do not cross-react).
        assert!(m.worst_cross_response() < 0.4, "{}", m.render());
    }

    #[test]
    fn render_contains_all_targets() {
        let p = PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build");
        let m = p.selectivity_matrix(4).expect("matrix");
        let shown = m.render();
        for a in m.analytes() {
            assert!(shown.contains(&a.to_string()[..5.min(a.to_string().len())]));
        }
        assert!(
            m.response(Analyte::Glucose, Analyte::Glucose)
                .expect("present")
                > 0.0
        );
        assert!(m.response(Analyte::Dopamine, Analyte::Glucose).is_none());
    }
}
