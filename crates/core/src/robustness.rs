//! Graceful-degradation policy for full sessions: fault injection,
//! per-measurement QC gating, bounded retries and electrode quarantine.
//!
//! The contract is the one a clinical instrument needs: a session returns
//! *partial results with provenance* — every reading carries its QC class
//! and retry history, rejected acquisitions never contribute to estimates,
//! and the [`DegradationSummary`] states exactly what was lost. Silent
//! corruption (a faulted value presented as trustworthy) is the failure
//! mode this module exists to prevent.

use crate::exec::ExecPolicy;
use bios_afe::FaultPlan;
use bios_biochem::Analyte;
use bios_instrument::{QcClass, QcGate, QcReason};

/// Bounded-retry and quarantine policy applied by
/// [`Platform::run_session_with`](crate::Platform::run_session_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed per working electrode after a failed acquisition
    /// (total attempts = `max_retries + 1`).
    pub max_retries: usize,
    /// Consecutive failed attempts after which the electrode is
    /// quarantined and reported in the degradation summary.
    pub quarantine_after: usize,
    /// Seed stride between attempts: attempt `k` measures with
    /// `we_seed + k * reseed_stride`, so every retry sees fresh noise
    /// while the whole session stays bit-reproducible under one seed.
    pub reseed_stride: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            quarantine_after: 3,
            reseed_stride: 0x9e37_79b9,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, immediate quarantine).
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            quarantine_after: 1,
            reseed_stride: 0x9e37_79b9,
        }
    }
}

/// Knobs for a robustness-aware session run.
///
/// `Default` reproduces the plain [`run_session`](crate::Platform::run_session)
/// contract: no injected faults, and a QC gate with the response-magnitude
/// check disabled — a sample legitimately lacking an analyte must read as
/// "not identified", not as a hardware failure. Enable the full gate (via
/// [`with_qc`](Self::with_qc) and [`QcGate::default`]) when every scheduled
/// target is known to be present, e.g. in fault-matrix characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOptions {
    /// Seeded faults to inject into the per-electrode readout chains.
    pub fault_plan: Option<FaultPlan>,
    /// The QC gate screening every acquisition.
    pub qc: QcGate,
    /// Retry and quarantine policy.
    pub retry: RetryPolicy,
    /// How the per-electrode work fans out (the output is bit-identical
    /// for every policy; see [`crate::par_map`]).
    pub exec: ExecPolicy,
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self {
            fault_plan: None,
            qc: QcGate::default().without_min_delta(),
            retry: RetryPolicy::default(),
            exec: ExecPolicy::Auto,
        }
    }
}

impl SessionOptions {
    /// Injects a fault plan into the session's readout chains.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Replaces the QC gate.
    pub fn with_qc(mut self, qc: QcGate) -> Self {
        self.qc = qc;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }
}

/// Per-target measurement provenance: how one raw reading earned (or
/// lost) its place in the session report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TargetQuality {
    /// The analyte this quality record describes.
    pub analyte: Analyte,
    /// The working electrode that produced the reading.
    pub we: usize,
    /// Final QC class after all retries.
    pub class: QcClass,
    /// Acquisition attempts spent on this electrode (1 = clean first try).
    pub attempts: usize,
    /// Machine-readable reasons from the final attempt's QC verdict.
    pub reasons: Vec<QcReason>,
    /// Whether the electrode was quarantined after this measurement.
    pub quarantined: bool,
}

impl TargetQuality {
    /// Whether the reading behind this record may be used.
    pub fn is_usable(&self) -> bool {
        self.class != QcClass::Fail
    }
}

/// What a session lost to faults: the aggregate side of "partial results
/// with provenance".
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegradationSummary {
    /// Total retry slots appended to the schedule.
    pub retries: usize,
    /// Working electrodes quarantined after consecutive failures.
    pub quarantined: Vec<usize>,
    /// Analytes left without a single usable reading.
    pub failed_targets: Vec<Analyte>,
}

impl DegradationSummary {
    /// True when the session ran without any retry, quarantine or loss.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.quarantined.is_empty() && self.failed_targets.is_empty()
    }
}

impl core::fmt::Display for DegradationSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        write!(
            f,
            "{} retries, {} quarantined WE(s), {} failed target(s)",
            self.retries,
            self.quarantined.len(),
            self.failed_targets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_mirror_the_plain_session_contract() {
        let opts = SessionOptions::default();
        assert!(opts.fault_plan.is_none());
        assert_eq!(opts.qc.min_delta, bios_units::Amps::ZERO);
        assert_eq!(opts.retry.max_retries, 2);
        assert!(RetryPolicy::none().max_retries == 0);
    }

    #[test]
    fn degradation_summary_reports_cleanliness() {
        let mut d = DegradationSummary::default();
        assert!(d.is_clean());
        assert_eq!(d.to_string(), "clean");
        d.retries = 1;
        d.quarantined.push(2);
        assert!(!d.is_clean());
        assert!(d.to_string().contains("1 retries"));
    }

    #[test]
    fn quality_usability_follows_class() {
        let q = TargetQuality {
            analyte: Analyte::Glucose,
            we: 0,
            class: QcClass::Suspect,
            attempts: 2,
            reasons: Vec::new(),
            quarantined: false,
        };
        assert!(q.is_usable());
        let f = TargetQuality {
            class: QcClass::Fail,
            ..q
        };
        assert!(!f.is_usable());
    }
}
