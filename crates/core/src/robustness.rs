//! Graceful-degradation policy for full sessions: fault injection,
//! per-measurement QC gating, bounded retries and electrode quarantine.
//!
//! The contract is the one a clinical instrument needs: a session returns
//! *partial results with provenance* — every reading carries its QC class
//! and retry history, rejected acquisitions never contribute to estimates,
//! and the [`DegradationSummary`] states exactly what was lost. Silent
//! corruption (a faulted value presented as trustworthy) is the failure
//! mode this module exists to prevent.

use crate::exec::ExecPolicy;
use bios_afe::FaultPlan;
use bios_biochem::Analyte;
use bios_instrument::{QcClass, QcGate, QcReason};

/// Bounded-retry and quarantine policy applied by
/// [`Platform::run_session_with`](crate::Platform::run_session_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed per working electrode after a failed acquisition
    /// (total attempts = `max_retries + 1`).
    pub max_retries: usize,
    /// Consecutive failed attempts after which the electrode is
    /// quarantined and reported in the degradation summary.
    pub quarantine_after: usize,
    /// Seed stride between attempts: attempt `k` measures with
    /// `we_seed + k * reseed_stride`, so every retry sees fresh noise
    /// while the whole session stays bit-reproducible under one seed.
    pub reseed_stride: u64,
    /// Scheduler ticks a session waits before its first retry; each
    /// further retry doubles the wait (exponential backoff). Zero means
    /// retries are immediately runnable.
    pub backoff_base_ticks: u64,
    /// Upper bound on any single backoff wait, in ticks.
    pub backoff_cap_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            quarantine_after: 3,
            reseed_stride: 0x9e37_79b9,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 64,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, immediate quarantine).
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            quarantine_after: 1,
            ..Self::default()
        }
    }

    /// The seed attempt `attempt` (0-based) measures with, derived from
    /// the electrode's base seed. Pure arithmetic: the whole retry
    /// schedule is a function of `(we_seed, policy)` alone, which is what
    /// lets suspended sessions replay bit-identically.
    pub fn attempt_seed(&self, we_seed: u64, attempt: usize) -> u64 {
        we_seed.wrapping_add((attempt as u64).wrapping_mul(self.reseed_stride))
    }

    /// Scheduler ticks to wait before re-sampling after failed attempt
    /// `attempt` (0-based): `base · 2^attempt`, saturating, capped at
    /// [`backoff_cap_ticks`](Self::backoff_cap_ticks). Deterministic and
    /// monotone non-decreasing in `attempt`.
    pub fn backoff_ticks(&self, attempt: usize) -> u64 {
        if self.backoff_base_ticks == 0 {
            return 0;
        }
        // `checked_shl` only rejects shifts >= 64; a shift that spills the
        // base's high bits out (e.g. `2 << 63`) wraps silently and would
        // break monotonicity at large attempts. Compute `base * 2^attempt`
        // with overflow-checked arithmetic instead, saturating to the cap.
        let doubled = u32::try_from(attempt)
            .ok()
            .and_then(|shift| 2u64.checked_pow(shift))
            .and_then(|mult| self.backoff_base_ticks.checked_mul(mult));
        doubled
            .unwrap_or(self.backoff_cap_ticks)
            .min(self.backoff_cap_ticks)
    }

    /// The cumulative backoff schedule for every retry this policy can
    /// spend: element `k` is the total ticks of backoff delay before
    /// attempt `k + 1` becomes runnable. Strictly increasing whenever
    /// `backoff_base_ticks > 0`, so no two retries ever share a wake
    /// slot — retries never collapse into a thundering herd.
    pub fn backoff_schedule(&self) -> Vec<u64> {
        let mut total = 0u64;
        (0..self.max_retries)
            .map(|k| {
                // A strictly positive floor keeps the schedule strictly
                // monotone even once the per-attempt delay hits the cap.
                total = total.saturating_add(self.backoff_ticks(k).max(1));
                total
            })
            .collect()
    }

    /// Total attempts this policy may spend (the retry budget plus the
    /// first try).
    pub fn attempt_budget(&self) -> usize {
        self.max_retries + 1
    }
}

/// Knobs for a robustness-aware session run.
///
/// `Default` reproduces the plain [`run_session`](crate::Platform::run_session)
/// contract: no injected faults, and a QC gate with the response-magnitude
/// check disabled — a sample legitimately lacking an analyte must read as
/// "not identified", not as a hardware failure. Enable the full gate (via
/// [`with_qc`](Self::with_qc) and [`QcGate::default`]) when every scheduled
/// target is known to be present, e.g. in fault-matrix characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOptions {
    /// Seeded faults to inject into the per-electrode readout chains.
    pub fault_plan: Option<FaultPlan>,
    /// The QC gate screening every acquisition.
    pub qc: QcGate,
    /// Retry and quarantine policy.
    pub retry: RetryPolicy,
    /// How the per-electrode work fans out (the output is bit-identical
    /// for every policy; see [`crate::par_map`]).
    pub exec: ExecPolicy,
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self {
            fault_plan: None,
            qc: QcGate::default().without_min_delta(),
            retry: RetryPolicy::default(),
            exec: ExecPolicy::Auto,
        }
    }
}

impl SessionOptions {
    /// Injects a fault plan into the session's readout chains.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Replaces the QC gate.
    pub fn with_qc(mut self, qc: QcGate) -> Self {
        self.qc = qc;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }
}

/// Per-target measurement provenance: how one raw reading earned (or
/// lost) its place in the session report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TargetQuality {
    /// The analyte this quality record describes.
    pub analyte: Analyte,
    /// The working electrode that produced the reading.
    pub we: usize,
    /// Final QC class after all retries.
    pub class: QcClass,
    /// Acquisition attempts spent on this electrode (1 = clean first try).
    pub attempts: usize,
    /// Machine-readable reasons from the final attempt's QC verdict.
    pub reasons: Vec<QcReason>,
    /// Whether the electrode was quarantined after this measurement.
    pub quarantined: bool,
}

impl TargetQuality {
    /// Whether the reading behind this record may be used.
    pub fn is_usable(&self) -> bool {
        self.class != QcClass::Fail
    }
}

/// What a session lost to faults: the aggregate side of "partial results
/// with provenance".
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegradationSummary {
    /// Total retry slots appended to the schedule.
    pub retries: usize,
    /// Working electrodes quarantined after consecutive failures.
    pub quarantined: Vec<usize>,
    /// Analytes left without a single usable reading.
    pub failed_targets: Vec<Analyte>,
    /// Deadlines missed while the session was being served: the session
    /// was cut short by its latency budget and holds partial results.
    pub deadline_misses: usize,
    /// Work units shed by an overloaded server before they ran. A shed
    /// session produced nothing — it is degradation by definition.
    pub shed: usize,
}

impl DegradationSummary {
    /// True when the session ran without any retry, quarantine, loss,
    /// deadline miss or load shedding. A degraded-but-served session —
    /// including one cut short by its deadline or shed under overload —
    /// must never report as clean.
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.quarantined.is_empty()
            && self.failed_targets.is_empty()
            && self.deadline_misses == 0
            && self.shed == 0
    }
}

impl core::fmt::Display for DegradationSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        write!(
            f,
            "{} retries, {} quarantined WE(s), {} failed target(s)",
            self.retries,
            self.quarantined.len(),
            self.failed_targets.len()
        )?;
        if self.deadline_misses > 0 {
            write!(f, ", {} deadline miss(es)", self.deadline_misses)?;
        }
        if self.shed > 0 {
            write!(f, ", {} shed", self.shed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_mirror_the_plain_session_contract() {
        let opts = SessionOptions::default();
        assert!(opts.fault_plan.is_none());
        assert_eq!(opts.qc.min_delta, bios_units::Amps::ZERO);
        assert_eq!(opts.retry.max_retries, 2);
        assert!(RetryPolicy::none().max_retries == 0);
    }

    #[test]
    fn degradation_summary_reports_cleanliness() {
        let mut d = DegradationSummary::default();
        assert!(d.is_clean());
        assert_eq!(d.to_string(), "clean");
        d.retries = 1;
        d.quarantined.push(2);
        assert!(!d.is_clean());
        assert!(d.to_string().contains("1 retries"));
    }

    #[test]
    fn backoff_schedule_is_monotone_and_capped() {
        let policy = RetryPolicy {
            max_retries: 8,
            backoff_base_ticks: 2,
            backoff_cap_ticks: 16,
            ..RetryPolicy::default()
        };
        let schedule = policy.backoff_schedule();
        assert_eq!(schedule.len(), 8);
        for w in schedule.windows(2) {
            assert!(
                w[0] < w[1],
                "cumulative schedule must be strictly increasing"
            );
        }
        for k in 0..8 {
            assert!(policy.backoff_ticks(k) <= 16);
        }
        assert_eq!(policy.backoff_ticks(0), 2);
        assert_eq!(policy.backoff_ticks(1), 4);
        assert_eq!(
            policy.backoff_ticks(200),
            16,
            "huge attempts saturate at the cap"
        );
        // Zero base means retries are immediately runnable.
        let eager = RetryPolicy {
            backoff_base_ticks: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(eager.backoff_ticks(5), 0);
    }

    #[test]
    fn backoff_never_wraps_at_shift_spill_out() {
        // Regression: `checked_shl` only rejects shifts >= 64, so
        // `2 << 63` used to wrap to 0 — a huge attempt got an *immediate*
        // retry instead of a capped wait, breaking monotonicity exactly
        // where a runaway retry loop needs the brake most.
        let policy = RetryPolicy {
            backoff_base_ticks: 2,
            backoff_cap_ticks: 64,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_ticks(63), 64, "spill-out saturates at cap");
        assert_eq!(policy.backoff_ticks(64), 64);
        assert_eq!(policy.backoff_ticks(usize::MAX), 64);
        let wide = RetryPolicy {
            backoff_base_ticks: u64::MAX,
            backoff_cap_ticks: u64::MAX,
            ..RetryPolicy::default()
        };
        assert_eq!(wide.backoff_ticks(1), u64::MAX, "mul overflow saturates");
    }

    #[test]
    fn attempt_seeds_follow_the_stride() {
        let policy = RetryPolicy::default();
        let s = policy.attempt_seed(1000, 0);
        assert_eq!(s, 1000);
        assert_eq!(
            policy.attempt_seed(1000, 3),
            1000 + 3 * policy.reseed_stride
        );
    }

    #[test]
    fn deadline_miss_and_shed_are_never_clean() {
        let mut d = DegradationSummary::default();
        assert!(d.is_clean());
        d.deadline_misses = 1;
        assert!(!d.is_clean());
        assert!(d.to_string().contains("deadline miss"));
        let shed = DegradationSummary {
            shed: 2,
            ..DegradationSummary::default()
        };
        assert!(!shed.is_clean());
        assert!(shed.to_string().contains("2 shed"));
    }

    #[test]
    fn quality_usability_follows_class() {
        let q = TargetQuality {
            analyte: Analyte::Glucose,
            we: 0,
            class: QcClass::Suspect,
            attempts: 2,
            reasons: Vec::new(),
            quarantined: false,
        };
        assert!(q.is_usable());
        let f = TargetQuality {
            class: QcClass::Fail,
            ..q
        };
        assert!(!f.is_usable());
    }
}
