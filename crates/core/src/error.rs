//! Error type for the platform layer.

use bios_biochem::Analyte;
use bios_units::ErrorSeverity;

/// Errors produced while assembling or running a biosensing platform.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A configuration parameter was out of its valid domain.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// No registered probe can sense the requested analyte.
    NoProbeFor(Analyte),
    /// The panel was empty.
    EmptyPanel,
    /// A component could not satisfy the panel's requirements.
    Infeasible {
        /// Which requirement failed.
        requirement: String,
    },
    /// The underlying instrument layer failed.
    Instrument(bios_instrument::InstrumentError),
    /// The underlying AFE layer failed.
    Afe(bios_afe::AfeError),
    /// The underlying biochemistry layer failed.
    Biochem(bios_biochem::BiochemError),
}

impl PlatformError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// How badly this error compromises the session.
    ///
    /// Structural defects (bad parameters, empty panels, infeasible
    /// designs, missing probes) are [`ErrorSeverity::Fatal`]; wrapped
    /// lower-layer errors report the inner severity so the scheduler's
    /// retry decision is uniform across layers.
    pub fn severity(&self) -> ErrorSeverity {
        match self {
            Self::InvalidParameter { .. }
            | Self::NoProbeFor(_)
            | Self::EmptyPanel
            | Self::Infeasible { .. } => ErrorSeverity::Fatal,
            Self::Instrument(e) => e.severity(),
            Self::Afe(e) => e.severity(),
            Self::Biochem(_) => ErrorSeverity::Fatal,
        }
    }

    /// Whether an automatic retry is worthwhile.
    pub fn is_recoverable(&self) -> bool {
        self.severity().is_recoverable()
    }
}

impl core::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            Self::NoProbeFor(a) => write!(f, "no registered probe senses {a}"),
            Self::EmptyPanel => write!(f, "panel has no targets"),
            Self::Infeasible { requirement } => {
                write!(f, "design cannot satisfy requirement: {requirement}")
            }
            Self::Instrument(e) => write!(f, "instrument error: {e}"),
            Self::Afe(e) => write!(f, "afe error: {e}"),
            Self::Biochem(e) => write!(f, "biochemistry error: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Instrument(e) => Some(e),
            Self::Afe(e) => Some(e),
            Self::Biochem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bios_instrument::InstrumentError> for PlatformError {
    fn from(e: bios_instrument::InstrumentError) -> Self {
        Self::Instrument(e)
    }
}

impl From<bios_afe::AfeError> for PlatformError {
    fn from(e: bios_afe::AfeError) -> Self {
        Self::Afe(e)
    }
}

impl From<bios_biochem::BiochemError> for PlatformError {
    fn from(e: bios_biochem::BiochemError) -> Self {
        Self::Biochem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PlatformError::NoProbeFor(Analyte::Dopamine)
            .to_string()
            .contains("dopamine"));
        assert_eq!(
            PlatformError::EmptyPanel.to_string(),
            "panel has no targets"
        );
        let i = PlatformError::Infeasible {
            requirement: "LOD 1 µM for glucose".to_string(),
        };
        assert!(i.to_string().contains("LOD"));
    }

    #[test]
    fn severity_propagates_from_inner_layers() {
        assert_eq!(PlatformError::EmptyPanel.severity(), ErrorSeverity::Fatal);
        let degraded: PlatformError = bios_afe::AfeError::RangeExceeded {
            block: "tia",
            detail: "rail".to_string(),
        }
        .into();
        assert_eq!(degraded.severity(), ErrorSeverity::Degraded);
        assert!(degraded.is_recoverable());
        let fatal: PlatformError = bios_instrument::InstrumentError::InvalidParameter {
            name: "dt",
            reason: "must be positive".to_string(),
        }
        .into();
        assert_eq!(fatal.severity(), ErrorSeverity::Fatal);
        assert!(!fatal.is_recoverable());
    }

    #[test]
    fn error_is_send_sync_with_sources() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<PlatformError>();
        use std::error::Error;
        let wrapped: PlatformError = bios_afe::AfeError::BadChannel {
            requested: 1,
            available: 0,
        }
        .into();
        assert!(wrapped.source().is_some());
    }
}
