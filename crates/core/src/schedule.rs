//! Measurement scheduling: how the mux walks the working electrodes
//! ("it is necessary to multiplex the signal of the working electrodes, in
//! order to activate them sequentially" — paper §III).

use bios_afe::AnalogMux;
use bios_biochem::Technique;
use bios_units::Seconds;

/// One scheduled measurement slot.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScheduleSlot {
    /// Working-electrode index.
    pub we: usize,
    /// Slot start time from session begin.
    pub start: Seconds,
    /// Measurement duration.
    pub duration: Seconds,
    /// The technique used in this slot.
    pub technique: Technique,
}

impl ScheduleSlot {
    /// The slot's end time.
    pub fn end(&self) -> Seconds {
        self.start + self.duration
    }
}

/// A sequential session schedule.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Schedule {
    slots: Vec<ScheduleSlot>,
    total: Seconds,
}

impl Schedule {
    /// Builds a sequential schedule: each `(we, technique, duration)` runs
    /// in turn with the mux's acquisition delay between slots.
    pub fn sequential(measurements: &[(usize, Technique, Seconds)], mux: &AnalogMux) -> Self {
        let gap = mux.acquisition_delay();
        let mut slots = Vec::with_capacity(measurements.len());
        let mut clock = Seconds::ZERO;
        for (k, (we, technique, duration)) in measurements.iter().enumerate() {
            if k > 0 {
                clock += gap;
            }
            slots.push(ScheduleSlot {
                we: *we,
                start: clock,
                duration: *duration,
                technique: *technique,
            });
            clock += *duration;
        }
        Self {
            slots,
            total: clock,
        }
    }

    /// Builds a parallel schedule (dedicated chains): all slots start at
    /// zero; the session lasts as long as the longest measurement.
    pub fn parallel(measurements: &[(usize, Technique, Seconds)]) -> Self {
        let slots: Vec<ScheduleSlot> = measurements
            .iter()
            .map(|(we, technique, duration)| ScheduleSlot {
                we: *we,
                start: Seconds::ZERO,
                duration: *duration,
                technique: *technique,
            })
            .collect();
        let total = slots
            .iter()
            .map(|s| s.duration)
            .fold(Seconds::ZERO, Seconds::max);
        Self { slots, total }
    }

    /// Appends a retry slot at the end of the schedule, separated from
    /// everything already scheduled by `gap`. Because the new slot starts
    /// after the current total duration, the no-overlap invariant is
    /// preserved by construction — even on parallel schedules, where the
    /// retry begins once the longest original slot has finished.
    pub fn append_retry(
        &mut self,
        we: usize,
        technique: Technique,
        duration: Seconds,
        gap: Seconds,
    ) {
        let start = if self.slots.is_empty() {
            self.total
        } else {
            self.total + gap
        };
        self.slots.push(ScheduleSlot {
            we,
            start,
            duration,
            technique,
        });
        self.total = start + duration;
    }

    /// The slots in execution order.
    pub fn slots(&self) -> &[ScheduleSlot] {
        &self.slots
    }

    /// Total session duration.
    pub fn total_duration(&self) -> Seconds {
        self.total
    }

    /// Whether any two slots overlap (never true for sequential schedules).
    pub fn has_overlap(&self) -> bool {
        for (i, a) in self.slots.iter().enumerate() {
            for b in &self.slots[i + 1..] {
                if a.start.value() < b.end().value() && b.start.value() < a.end().value() {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux() -> AnalogMux {
        AnalogMux::typical_cmos(5).expect("valid")
    }

    fn fig4_measurements() -> Vec<(usize, Technique, Seconds)> {
        vec![
            (0, Technique::Chronoamperometry, Seconds::new(70.0)), // glucose
            (1, Technique::Chronoamperometry, Seconds::new(70.0)), // lactate
            (2, Technique::Chronoamperometry, Seconds::new(70.0)), // glutamate
            (3, Technique::CyclicVoltammetry, Seconds::new(55.0)), // CYP2B4
            (4, Technique::CyclicVoltammetry, Seconds::new(65.0)), // CYP11A1
        ]
    }

    #[test]
    fn sequential_schedule_is_gapless_up_to_mux_delay() {
        let s = Schedule::sequential(&fig4_measurements(), &mux());
        assert_eq!(s.slots().len(), 5);
        assert!(!s.has_overlap());
        // Total ≈ sum of durations + 4 mux delays (µs-scale).
        let sum: f64 = fig4_measurements().iter().map(|m| m.2.value()).sum();
        assert!((s.total_duration().value() - sum).abs() < 0.01);
        // Slots are ordered and contiguous.
        for pair in s.slots().windows(2) {
            assert!(pair[1].start.value() >= pair[0].end().value());
        }
    }

    #[test]
    fn parallel_schedule_is_max_duration() {
        let s = Schedule::parallel(&fig4_measurements());
        assert!((s.total_duration().value() - 70.0).abs() < 1e-9);
        assert!(s.has_overlap());
    }

    #[test]
    fn sharing_trades_time_for_hardware() {
        // The quantitative version of the paper's resource-sharing
        // discussion: mux sharing stretches the session ~5×.
        let seq = Schedule::sequential(&fig4_measurements(), &mux());
        let par = Schedule::parallel(&fig4_measurements());
        assert!(seq.total_duration().value() > 4.0 * par.total_duration().value());
    }

    #[test]
    fn retry_slots_never_overlap() {
        let m = mux();
        let mut seq = Schedule::sequential(&fig4_measurements(), &m);
        let before = seq.total_duration();
        seq.append_retry(
            3,
            Technique::CyclicVoltammetry,
            Seconds::new(55.0),
            m.acquisition_delay(),
        );
        seq.append_retry(
            0,
            Technique::Chronoamperometry,
            Seconds::new(70.0),
            m.acquisition_delay(),
        );
        assert_eq!(seq.slots().len(), 7);
        assert!(!seq.has_overlap());
        assert!(seq.total_duration().value() > before.value() + 125.0 - 1e-9);

        // Even on a parallel schedule the retry waits for the longest slot.
        let mut par = Schedule::parallel(&fig4_measurements());
        par.append_retry(
            1,
            Technique::Chronoamperometry,
            Seconds::new(70.0),
            m.acquisition_delay(),
        );
        let retry = *par.slots().last().expect("appended");
        assert!(retry.start.value() >= 70.0);
        for slot in &par.slots()[..par.slots().len() - 1] {
            assert!(slot.end().value() <= retry.start.value() + 1e-12);
        }
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::sequential(&[], &mux());
        assert!(s.slots().is_empty());
        assert_eq!(s.total_duration(), Seconds::ZERO);
        assert!(!s.has_overlap());
    }
}
