//! Deterministic parallel execution engine.
//!
//! Multi-channel acquisition is inherently parallel across electrodes, and
//! design-space exploration across design points — but the robustness
//! guarantees of this platform (identical `(input, seed)` ⇒ bit-identical
//! output) must survive the fan-out. The engine here provides exactly one
//! primitive, [`par_map`], with one contract: the result vector is the same,
//! element for element and bit for bit, as the sequential
//! `items.iter().map(f).collect()`, regardless of thread count or OS
//! scheduling.
//!
//! How the contract is kept:
//!
//! * work units are *independent* — every seed in this codebase is derived
//!   per-unit (per electrode, per design point, per matrix cell), never
//!   drawn from a shared RNG stream;
//! * workers claim unit indices from an atomic counter and tag each result
//!   with its index; the results are merged *by index* after all workers
//!   join, so scheduling can reorder execution but never output;
//! * no worker mutates shared state — reductions happen on the caller's
//!   thread after the merge.
//!
//! Thread count resolves from [`ExecPolicy`]; the `ADVDIAG_THREADS`
//! environment variable forces a global override (`1` = sequential), which
//! CI uses to digest-compare parallel against sequential runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// How a parallelizable operation should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ExecPolicy {
    /// Run on the calling thread, in index order. The reference behavior.
    Sequential,
    /// Fan out over exactly `threads` workers (clamped to ≥ 1).
    Threads(usize),
    /// Resolve from `ADVDIAG_THREADS` if set, else the machine's available
    /// parallelism. The default everywhere.
    #[default]
    Auto,
}

/// `ADVDIAG_THREADS`, parsed once per process (0/unset ⇒ no override).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("ADVDIAG_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

impl ExecPolicy {
    /// The worker count this policy resolves to for `items` work units.
    /// Never exceeds the number of units; never below 1.
    pub fn threads_for(self, items: usize) -> usize {
        let raw = match self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => env_threads().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        };
        raw.min(items.max(1))
    }
}

/// Maps `f` over `items`, possibly in parallel, returning results in item
/// order. Guaranteed bit-identical to the sequential map for any thread
/// count (see module docs). `f` receives `(index, &item)` so callers can
/// derive per-unit seeds or labels without capturing extra state.
///
/// # Panics
///
/// Propagates a panic from `f` (the first observed worker panic).
// advdiag::cold(dispatch machinery: allocates O(workers) scratch and joins at the
// barrier by design; per-element work is checked through the closure root)
pub fn par_map<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = policy.threads_for(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Merge by index: scheduling order is irrelevant to the output.
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        // advdiag::allow(P1, invariant: the atomic counter hands out each index once; a hole here is corruption, so aborting beats returning wrong data)
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

/// Mutates every element of `items` in place, possibly in parallel, and
/// returns `f`'s outputs in item order. The contract matches [`par_map`]:
/// the final state of `items` and the returned vector are bit-identical
/// to the sequential `for (i, t) in items.iter_mut().enumerate()` loop
/// for any thread count.
///
/// Unlike [`par_map`], work is distributed as *contiguous chunks* (one
/// per worker, split with `split_at_mut`) rather than stolen from an
/// atomic counter — mutable aliasing rules out stealing in safe Rust.
/// Each element is still visited exactly once by exactly one worker, so
/// determinism holds; load balance is the caller's job (give workers
/// comparably sized elements, e.g. pre-sharded state).
///
/// # Panics
///
/// Propagates a panic from `f` (the first observed worker panic).
// advdiag::cold(dispatch machinery: allocates O(workers) scratch and joins at the
// barrier by design; per-element work is checked through the closure root)
pub fn par_map_mut<T, R, F>(policy: ExecPolicy, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = policy.threads_for(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Split into `threads` contiguous chunks, remembering each chunk's
    // starting index so results can merge back in item order.
    let chunk = items.len().div_ceil(threads);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest = items;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let start = base;
            base += take;
            let f = &f;
            handles.push(scope.spawn(move || {
                head.iter_mut()
                    .enumerate()
                    .map(|(k, t)| (start + k, f(start + k, t)))
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..base_len(&buckets)).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        // advdiag::allow(P1, invariant: chunking visits each index exactly once; a hole here is corruption, so aborting beats returning wrong data)
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

/// Total element count across per-worker buckets (the original length).
fn base_len<R>(buckets: &[Vec<(usize, R)>]) -> usize {
    buckets.iter().map(Vec::len).sum()
}

/// Maps `f` over *contiguous chunks* of `items` (one chunk per worker,
/// sized like [`par_map_mut`]) and concatenates the per-chunk outputs in
/// chunk order. `f` receives `(start_index, chunk)` and must return one
/// output per element.
///
/// This is the batching primitive: a chunk-level `f` can run one batched
/// kernel across its whole chunk instead of a task per element. The
/// determinism contract is conditional on the caller — when `f`'s output
/// for each element is independent of how the slice was chunked (true for
/// the batched diffusion kernel, whose lanes are bit-identical to scalar
/// runs), the concatenated result equals `f(0, items)` for any thread
/// count. The bench harness digest-checks exactly this.
///
/// # Panics
///
/// Propagates a panic from `f`, and panics if `f` returns a vector whose
/// length differs from its chunk.
// advdiag::cold(dispatch machinery: allocates O(workers) scratch and joins at the
// barrier by design; per-element work is checked through the closure root)
pub fn par_map_chunks<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let threads = policy.threads_for(items.len());
    if threads <= 1 || items.len() <= 1 {
        let out = f(0, items);
        assert_eq!(out.len(), items.len(), "chunk output length mismatch");
        return out;
    }
    let chunk = items.len().div_ceil(threads);
    let pieces: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(k, head)| {
                let f = &f;
                let start = k * chunk;
                scope.spawn(move || {
                    let out = f(start, head);
                    assert_eq!(out.len(), head.len(), "chunk output length mismatch");
                    (start, out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(piece) => piece,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (start, piece) in pieces {
        for (k, r) in piece.into_iter().enumerate() {
            out[start + k] = Some(r);
        }
    }
    out.into_iter()
        // advdiag::allow(P1, invariant: chunking covers each index exactly once; a hole here is corruption, so aborting beats returning wrong data)
        .map(|slot| slot.expect("every index covered exactly once"))
        .collect()
}

/// [`par_map`] over fallible work: stops at nothing (all units run), then
/// returns the first error *by item index* — the same error the sequential
/// loop would have surfaced first.
///
/// # Errors
///
/// The lowest-index `Err` produced by `f`, if any.
// advdiag::cold(dispatch machinery: allocates O(workers) scratch and joins at the
// barrier by design; per-element work is checked through the closure root)
pub fn try_par_map<T, R, E, F>(policy: ExecPolicy, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let results = par_map(policy, items, f);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(0x9e3779b9) ^ (x * 3);
        let reference: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map(ExecPolicy::Threads(threads), &items, f);
            assert_eq!(got, reference, "threads = {threads}");
        }
        assert_eq!(par_map(ExecPolicy::Sequential, &items, f), reference);
        assert_eq!(par_map(ExecPolicy::Auto, &items, f), reference);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(ExecPolicy::Threads(4), &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(ExecPolicy::Threads(4), &[7u32], |_, x| x + 1), [8]);
    }

    #[test]
    fn threads_resolve_sanely() {
        assert_eq!(ExecPolicy::Sequential.threads_for(100), 1);
        assert_eq!(ExecPolicy::Threads(4).threads_for(100), 4);
        assert_eq!(ExecPolicy::Threads(0).threads_for(100), 1);
        // Never more workers than work.
        assert_eq!(ExecPolicy::Threads(64).threads_for(3), 3);
        assert!(ExecPolicy::Auto.threads_for(100) >= 1);
    }

    #[test]
    fn par_map_mut_matches_sequential_for_any_thread_count() {
        let f = |i: usize, x: &mut u64| {
            *x = x.wrapping_mul(31).wrapping_add(i as u64);
            *x ^ 0x5a5a
        };
        let mut reference: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = reference
            .iter_mut()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let mut items: Vec<u64> = (0..97).collect();
            let got = par_map_mut(ExecPolicy::Threads(threads), &mut items, f);
            assert_eq!(got, expected, "threads = {threads}");
            assert_eq!(items, reference, "threads = {threads}");
        }
        let mut empty: Vec<u64> = Vec::new();
        assert!(par_map_mut(ExecPolicy::Threads(4), &mut empty, f).is_empty());
    }

    #[test]
    fn par_map_chunks_matches_whole_slice_call() {
        // Element-wise-independent chunk function: partitioning must not
        // change the concatenated output.
        let items: Vec<u64> = (0..97).collect();
        let f = |start: usize, chunk: &[u64]| {
            chunk
                .iter()
                .enumerate()
                .map(|(k, x)| ((start + k) as u64).wrapping_mul(0x9e37) ^ (x * 7))
                .collect::<Vec<u64>>()
        };
        let reference = f(0, &items);
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map_chunks(ExecPolicy::Threads(threads), &items, f);
            assert_eq!(got, reference, "threads = {threads}");
        }
        assert_eq!(par_map_chunks(ExecPolicy::Sequential, &items, f), reference);
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_chunks(ExecPolicy::Threads(4), &empty, f).is_empty());
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let items: Vec<i32> = (0..50).collect();
        let out: Result<Vec<i32>, usize> = try_par_map(ExecPolicy::Threads(8), &items, |i, x| {
            if *x == 13 || *x == 31 {
                Err(i)
            } else {
                Ok(*x)
            }
        });
        assert_eq!(out, Err(13), "sequential semantics: first error wins");
        let ok: Result<Vec<i32>, usize> =
            try_par_map(ExecPolicy::Threads(8), &items, |_, x| Ok::<_, usize>(*x));
        assert_eq!(ok.expect("no errors"), items);
    }
}
