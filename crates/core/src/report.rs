//! Human-readable platform datasheets.

use crate::platform::{Platform, SensorModel};
use core::fmt::Write as _;

impl Platform {
    /// Renders a datasheet: structure, per-WE assignments, readout
    /// configuration, schedule and cost — the §III "platform example"
    /// description as text.
    pub fn datasheet(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== advdiag platform datasheet ===");
        let _ = writeln!(out, "structure     : {}", self.structure());
        let _ = writeln!(out, "readout       : {}", self.sharing());
        let _ = writeln!(out, "working electrodes:");
        for a in self.assignments() {
            let technique = a.technique();
            let targets: Vec<String> = a.targets().iter().map(|t| t.to_string()).collect();
            let extra = match a.sensor() {
                SensorModel::Oxidase(s) => format!(
                    "bias {} | t90 {:.0} s",
                    s.applied_potential(),
                    s.response_time_t90().value()
                ),
                SensorModel::Cytochrome(s) => {
                    let (start, vertex) = s.recommended_window();
                    format!("sweep {start} → {vertex}")
                }
            };
            let _ = writeln!(
                out,
                "  WE{}: {:<22} [{}] via {technique} ({extra})",
                a.index(),
                a.probe().to_string(),
                targets.join(", "),
            );
        }
        let schedule = self.schedule();
        let _ = writeln!(
            out,
            "session       : {} slots, {:.0} s total",
            schedule.slots().len(),
            schedule.total_duration().value()
        );
        let cost = self.cost();
        let _ = writeln!(
            out,
            "cost          : {} | {:.2} mm² total ({} electrodes, {} chamber(s))",
            cost.power,
            cost.total_area_mm2(),
            cost.electrodes,
            cost.chambers
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::PlatformBuilder;
    use crate::requirements::PanelSpec;

    #[test]
    fn datasheet_mentions_all_wes_and_costs() {
        let p = PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build");
        let sheet = p.datasheet();
        assert!(sheet.contains("5-WE"));
        for we in ["WE0", "WE1", "WE2", "WE3", "WE4"] {
            assert!(sheet.contains(we), "missing {we} in:\n{sheet}");
        }
        assert!(sheet.contains("glucose"));
        assert!(sheet.contains("CYP2B4"));
        assert!(sheet.contains("session"));
        assert!(sheet.contains("cost"));
    }
}
