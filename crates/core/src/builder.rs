//! The platform builder: from a panel specification to a concrete,
//! runnable multi-target biosensing platform — the paper's §II-A design
//! flow ("consider jointly: the choice of the probe; the choice of the
//! sensor structure; the choice of electronic readout circuitry").

use crate::chamber::needs_chambers;
use crate::cost::ReadoutSharing;
use crate::error::PlatformError;
use crate::platform::{Platform, SensorModel, WeAssignment};
use crate::requirements::PanelSpec;
use crate::structure::SensorStructure;
use bios_afe::{AnalogMux, ChainConfig, CorrelatedDoubleSampler, CurrentRange, ReadoutChain};
use bios_biochem::{Analyte, CypIsoform, CypSensor, Oxidase, OxidaseSensor, Probe};
use bios_electrochem::{Electrode, Nanostructure};
use bios_instrument::{ChronoProtocol, CvProtocol};
use bios_units::{Centimeters, Seconds};

/// How to resolve targets with more than one candidate probe (e.g.
/// cholesterol: cholesterol oxidase vs CYP11A1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ProbePreference {
    /// Group targets onto shared CYP electrodes where possible; ties go to
    /// the cytochrome (this reproduces the paper's Fig. 4 instance).
    MinimizeElectrodes,
    /// Prefer oxidase probes when available.
    PreferOxidase,
    /// Prefer cytochrome probes when available.
    PreferCytochrome,
}

/// Builder for [`Platform`] (guideline C-BUILDER).
///
/// # Example
///
/// ```
/// use bios_platform::{PanelSpec, PlatformBuilder};
///
/// # fn main() -> Result<(), bios_platform::PlatformError> {
/// let platform = PlatformBuilder::new(PanelSpec::paper_fig4()).build()?;
/// // The paper's Fig. 4: five working electrodes, shared CE and RE.
/// assert_eq!(platform.structure().working_electrodes(), 5);
/// assert_eq!(platform.structure().total_electrodes(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    panel: PanelSpec,
    we_template: Electrode,
    pitch: Centimeters,
    chrono_protocol: ChronoProtocol,
    cv_protocol: CvProtocol,
    sharing: ReadoutSharing,
    chopper: bool,
    cds: bool,
    preference: ProbePreference,
    crosstalk_tolerance: f64,
    redundancy: usize,
}

impl PlatformBuilder {
    /// Starts a builder for the given panel with the paper's defaults:
    /// 0.23 mm² CNT-nanostructured gold WEs at 1 mm pitch, shared muxed
    /// readout, 1% cross-talk tolerance.
    pub fn new(panel: PanelSpec) -> Self {
        Self {
            panel,
            we_template: Electrode::paper_gold_we()
                .with_nanostructure(Nanostructure::CarbonNanotubes),
            pitch: Centimeters::from_millimeters(1.0),
            chrono_protocol: ChronoProtocol::default(),
            cv_protocol: CvProtocol::default(),
            sharing: ReadoutSharing::Shared,
            chopper: false,
            cds: false,
            preference: ProbePreference::MinimizeElectrodes,
            crosstalk_tolerance: 0.01,
            redundancy: 1,
        }
    }

    /// Replicates every working electrode `n` times; session readings are
    /// averaged across replicates, cutting uncorrelated blank noise by
    /// √n — the paper's §II sensor *arrays* used for precision rather than
    /// for extra targets. Costs electrodes, mux channels and (with shared
    /// readout) session time.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_redundancy(mut self, n: usize) -> Self {
        assert!(n >= 1, "redundancy must be at least 1");
        self.redundancy = n;
        self
    }

    /// Overrides the working-electrode template.
    pub fn with_electrode(mut self, electrode: Electrode) -> Self {
        self.we_template = electrode;
        self
    }

    /// Overrides the electrode pitch (cross-talk input).
    pub fn with_pitch(mut self, pitch: Centimeters) -> Self {
        self.pitch = pitch;
        self
    }

    /// Overrides the chronoamperometry timing.
    pub fn with_chrono_protocol(mut self, protocol: ChronoProtocol) -> Self {
        self.chrono_protocol = protocol;
        self
    }

    /// Overrides the CV settings.
    pub fn with_cv_protocol(mut self, protocol: CvProtocol) -> Self {
        self.cv_protocol = protocol;
        self
    }

    /// Chooses shared (muxed) or dedicated readout chains.
    pub fn with_sharing(mut self, sharing: ReadoutSharing) -> Self {
        self.sharing = sharing;
        self
    }

    /// Enables chopper stabilization in the readout chains.
    pub fn with_chopper(mut self, on: bool) -> Self {
        self.chopper = on;
        self
    }

    /// Enables blank-electrode correlated double sampling.
    pub fn with_cds(mut self, on: bool) -> Self {
        self.cds = on;
        self
    }

    /// Sets the probe preference for ambiguous targets.
    pub fn with_preference(mut self, preference: ProbePreference) -> Self {
        self.preference = preference;
        self
    }

    /// Sets the acceptable neighbour cross-talk fraction before chamber
    /// separation is forced.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tolerance < 1`.
    pub fn with_crosstalk_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must be in (0, 1)"
        );
        self.crosstalk_tolerance = tolerance;
        self
    }

    /// Resolves probes, lays out working electrodes, decides the structure
    /// and instantiates the readout chains.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for invalid panels, targets without
    /// probes, or component construction failures.
    pub fn build(self) -> Result<Platform, PlatformError> {
        self.panel.validate()?;
        self.chrono_protocol.validate()?;
        self.cv_protocol.validate()?;

        // 1. Probe selection.
        let mut oxidase_targets: Vec<Oxidase> = Vec::new();
        let mut cyp_groups: Vec<(CypIsoform, Vec<Analyte>)> = Vec::new();
        for t in self.panel.targets() {
            let probe = self.pick_probe(t.analyte)?;
            match probe {
                Probe::Oxidase(o) => {
                    if !oxidase_targets.contains(&o) {
                        oxidase_targets.push(o);
                    }
                }
                Probe::Cytochrome(c) => {
                    if let Some((_, targets)) = cyp_groups.iter_mut().find(|(iso, _)| *iso == c) {
                        if !targets.contains(&t.analyte) {
                            targets.push(t.analyte);
                        }
                    } else {
                        cyp_groups.push((c, vec![t.analyte]));
                    }
                }
            }
        }

        // 2. Working-electrode assignments.
        let mut assignments = Vec::new();
        for o in &oxidase_targets {
            assignments.push(WeAssignment::new(
                assignments.len(),
                Probe::Oxidase(*o),
                vec![o.target()],
                self.we_template.clone(),
                SensorModel::Oxidase(OxidaseSensor::from_registry(*o)?),
            ));
        }
        for (iso, targets) in &cyp_groups {
            assignments.push(WeAssignment::new(
                assignments.len(),
                Probe::Cytochrome(*iso),
                targets.clone(),
                self.we_template.clone(),
                SensorModel::Cytochrome(CypSensor::from_registry(*iso)?),
            ));
        }
        // Replicate electrodes for redundancy averaging.
        if self.redundancy > 1 {
            let base = assignments.clone();
            for _ in 1..self.redundancy {
                for a in &base {
                    assignments.push(WeAssignment::new(
                        assignments.len(),
                        a.probe(),
                        a.targets().to_vec(),
                        a.electrode().clone(),
                        a.sensor().clone(),
                    ));
                }
            }
        }
        let n_we = assignments.len();

        // 3. Structure: shared chamber unless cross-talk forces separation.
        let chrono_dwell = Seconds::new(
            self.chrono_protocol.settle.value() + self.chrono_protocol.measure.value(),
        );
        let multiple_oxidases = oxidase_targets.len() > 1;
        let structure = if n_we == 1 {
            SensorStructure::Single
        } else if multiple_oxidases
            && needs_chambers(self.pitch, chrono_dwell, self.crosstalk_tolerance)
        {
            SensorStructure::MultiChamber { chambers: n_we }
        } else {
            SensorStructure::MultiElectrode { working: n_we }
        };
        structure.validate()?;

        // 4. Readout chains. The paper's §II-C range classes are specified
        //    for ≈1 cm² electrodes; here the ranges are *derived* from the
        //    assigned sensor models — full scale covers the largest Vmax
        //    current with 20% margin, resolution resolves a third of the
        //    smallest blank noise — which is exactly the "parameterized
        //    component" selection the platform methodology calls for.
        let area = self.we_template.geometric_area().value();
        let chrono_range = derive_oxidase_range(&assignments)
            .unwrap_or_else(|| CurrentRange::oxidase().scaled(area.min(1.0)));
        let cv_range = derive_cyp_range(&assignments)
            .unwrap_or_else(|| CurrentRange::cytochrome().scaled(area.min(1.0)));
        let mut chrono_cfg = ChainConfig::for_range(chrono_range)?;
        let mut cv_cfg = ChainConfig::for_range(cv_range)?;
        if self.chopper {
            chrono_cfg = chrono_cfg.with_chopper();
            cv_cfg = cv_cfg.with_chopper();
        }
        if self.cds {
            chrono_cfg = chrono_cfg.with_cds(CorrelatedDoubleSampler::default());
            cv_cfg = cv_cfg.with_cds(CorrelatedDoubleSampler::default());
        }
        let mux = AnalogMux::typical_cmos(n_we.max(1))?;

        Ok(Platform::from_parts(
            assignments,
            structure,
            mux,
            ReadoutChain::new(chrono_cfg),
            ReadoutChain::new(cv_cfg),
            self.chrono_protocol,
            self.cv_protocol,
            self.sharing,
            self.chopper,
            self.cds,
        ))
    }

    fn pick_probe(&self, analyte: Analyte) -> Result<Probe, PlatformError> {
        let candidates = Probe::candidates_for(analyte);
        if candidates.is_empty() {
            return Err(PlatformError::NoProbeFor(analyte));
        }
        if candidates.len() == 1 {
            return Ok(candidates[0]);
        }
        let pick = match self.preference {
            ProbePreference::PreferOxidase => candidates
                .iter()
                .find(|p| matches!(p, Probe::Oxidase(_)))
                .copied(),
            ProbePreference::PreferCytochrome => candidates
                .iter()
                .find(|p| matches!(p, Probe::Cytochrome(_)))
                .copied(),
            ProbePreference::MinimizeElectrodes => {
                // Prefer a cytochrome that also senses another panel target;
                // ties go to the cytochrome (multi-target CV reuse, as in
                // the paper's Fig. 4 instance).
                let grouping = candidates.iter().find(|p| {
                    matches!(p, Probe::Cytochrome(_))
                        && self
                            .panel
                            .targets()
                            .iter()
                            .any(|t| t.analyte != analyte && p.senses(t.analyte))
                });
                grouping
                    .or_else(|| {
                        candidates
                            .iter()
                            .find(|p| matches!(p, Probe::Cytochrome(_)))
                    })
                    .copied()
            }
        };
        Ok(pick.unwrap_or(candidates[0]))
    }
}

/// Derives the chronoamperometry current range from the oxidase sensors:
/// full scale covers the largest saturation (Vmax) current with 20% margin;
/// resolution resolves a third of the smallest blank noise (floored at a
/// 15-bit dynamic range so [`ChainConfig::for_range`] stays realizable).
fn derive_oxidase_range(assignments: &[WeAssignment]) -> Option<CurrentRange> {
    let mut full_scale: f64 = 0.0;
    let mut resolution = f64::INFINITY;
    for a in assignments {
        if let SensorModel::Oxidase(sensor) = a.sensor() {
            let area = a.electrode().geometric_area().value();
            let vmax = area * sensor.sensitivity_si() * sensor.kinetics().km().value();
            full_scale = full_scale.max(1.2 * vmax);
            resolution = resolution.min(sensor.blank_sd().value() * area / 3.0);
        }
    }
    if full_scale == 0.0 {
        return None;
    }
    let resolution = resolution.max(full_scale / 32768.0);
    Some(CurrentRange::new(
        bios_units::Amps::new(full_scale),
        bios_units::Amps::new(resolution),
    ))
}

/// Derives the voltammetry current range from the cytochrome sensors: full
/// scale covers the largest catalytic amplitude plus headroom for the heme
/// baseline wave; resolution resolves a third of the smallest blank noise.
fn derive_cyp_range(assignments: &[WeAssignment]) -> Option<CurrentRange> {
    let mut full_scale: f64 = 0.0;
    let mut resolution = f64::INFINITY;
    for a in assignments {
        if let SensorModel::Cytochrome(sensor) = a.sensor() {
            let area = a.electrode().geometric_area().value();
            for analyte in a.targets() {
                // A target the sensor does not register contributes nothing
                // to the range rather than aborting the whole derivation.
                let (Some(s), Some(kinetics), Some(blank_sd)) = (
                    sensor.sensitivity_si(*analyte),
                    sensor.kinetics(*analyte),
                    sensor.blank_sd(*analyte),
                ) else {
                    continue;
                };
                let km = kinetics.km().value();
                full_scale = full_scale.max(1.2 * (s * km * area + 5e-9));
                resolution = resolution.min(blank_sd.value() * area / 3.0);
            }
        }
    }
    if full_scale == 0.0 {
        return None;
    }
    let resolution = resolution.max(full_scale / 32768.0);
    Some(CurrentRange::new(
        bios_units::Amps::new(full_scale),
        bios_units::Amps::new(resolution),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::TargetSpec;
    use bios_biochem::Technique;

    #[test]
    fn paper_panel_builds_fig4_layout() {
        let p = PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build");
        // 3 oxidase WEs + CYP2B4 (two drugs) + CYP11A1 (cholesterol).
        assert_eq!(p.structure().working_electrodes(), 5);
        let cv_wes = p
            .assignments()
            .iter()
            .filter(|a| a.technique() == Technique::CyclicVoltammetry)
            .count();
        assert_eq!(cv_wes, 2);
        // CYP2B4 carries two targets on one electrode.
        let grouped = p
            .assignments()
            .iter()
            .find(|a| a.targets().len() == 2)
            .expect("CYP2B4 groups benzphetamine and aminopyrine");
        assert!(grouped.targets().contains(&Analyte::Benzphetamine));
        assert!(grouped.targets().contains(&Analyte::Aminopyrine));
    }

    #[test]
    fn prefer_oxidase_uses_cholesterol_oxidase() {
        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Cholesterol));
        let p = PlatformBuilder::new(panel)
            .with_preference(ProbePreference::PreferOxidase)
            .build()
            .expect("build");
        assert_eq!(p.structure().working_electrodes(), 1);
        assert!(matches!(
            p.assignments()[0].probe(),
            Probe::Oxidase(Oxidase::Cholesterol)
        ));
    }

    #[test]
    fn single_target_panel_is_a_single_sensor() {
        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Glucose));
        let p = PlatformBuilder::new(panel).build().expect("build");
        assert_eq!(p.structure(), SensorStructure::Single);
    }

    #[test]
    fn tight_pitch_forces_chambers() {
        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Glucose));
        panel.push(TargetSpec::typical(Analyte::Lactate));
        let long_dwell = ChronoProtocol {
            settle: Seconds::new(10.0),
            measure: Seconds::new(600.0),
            dt: Seconds::new(1.0),
        };
        let p = PlatformBuilder::new(panel)
            .with_pitch(Centimeters::from_millimeters(0.15))
            .with_chrono_protocol(long_dwell)
            .build()
            .expect("build");
        assert!(matches!(
            p.structure(),
            SensorStructure::MultiChamber { chambers: 2 }
        ));
    }

    #[test]
    fn empty_panel_fails() {
        assert!(matches!(
            PlatformBuilder::new(PanelSpec::new()).build(),
            Err(PlatformError::EmptyPanel)
        ));
    }

    #[test]
    fn duplicate_targets_share_a_we() {
        let mut panel = PanelSpec::new();
        panel.push(TargetSpec::typical(Analyte::Benzphetamine));
        panel.push(TargetSpec::typical(Analyte::Aminopyrine));
        let p = PlatformBuilder::new(panel).build().expect("build");
        assert_eq!(p.structure().working_electrodes(), 1);
        assert_eq!(p.assignments()[0].targets().len(), 2);
    }
}
