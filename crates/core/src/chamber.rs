//! Cross-talk between working electrodes sharing one solution volume, and
//! the chamber-separation decision (paper §II-A).
//!
//! The paper argues that oxidases can share a chamber because H₂O₂
//! cross-talk is negligible; this module makes that argument quantitative
//! so the design explorer can re-derive it (and find where it breaks).

use bios_units::{Centimeters, DiffusionCoefficient, Seconds};

/// Diffusion coefficient of H₂O₂ in aqueous solution.
pub const D_H2O2: DiffusionCoefficient = DiffusionCoefficient::new(1.71e-5);

/// Geometric capture efficiency of a neighbouring electrode for product
/// spreading in 3-D solution (most of the product diffuses into the bulk,
/// not onto the neighbour).
pub const CAPTURE_EFFICIENCY: f64 = 0.05;

/// Fraction of one WE's H₂O₂ signal that appears on a neighbour a distance
/// `pitch` away after a measurement of duration `t`:
/// `f = η·exp(−pitch²/(4·D·t))`.
///
/// # Panics
///
/// Panics for non-positive pitch or time.
///
/// # Example
///
/// ```
/// use bios_platform::crosstalk_fraction;
/// use bios_units::{Centimeters, Seconds};
///
/// // 1 mm pitch, 70 s measurement: well under 1% — the paper's
/// // "negligible cross-talk" claim.
/// let f = crosstalk_fraction(Centimeters::from_millimeters(1.0), Seconds::new(70.0));
/// assert!(f < 0.01);
/// ```
pub fn crosstalk_fraction(pitch: Centimeters, t: Seconds) -> f64 {
    assert!(pitch.value() > 0.0, "pitch must be positive");
    assert!(t.value() > 0.0, "measurement time must be positive");
    let spread = 4.0 * D_H2O2.value() * t.value();
    CAPTURE_EFFICIENCY * (-pitch.value().powi(2) / spread).exp()
}

/// Decides whether a shared-volume multi-WE design needs chamber
/// separation: `true` when the worst-case neighbour cross-talk exceeds
/// `tolerance` of the signal.
///
/// # Panics
///
/// Panics unless `0 < tolerance < 1`.
pub fn needs_chambers(pitch: Centimeters, measurement: Seconds, tolerance: f64) -> bool {
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tolerance must be in (0, 1)"
    );
    crosstalk_fraction(pitch, measurement) > tolerance
}

/// The minimum electrode pitch keeping cross-talk below `tolerance` for a
/// measurement of duration `t` (bisection on [`crosstalk_fraction`]).
///
/// Returns zero pitch when even touching electrodes satisfy the tolerance
/// (i.e. `η ≤ tolerance`).
///
/// # Panics
///
/// Panics unless `0 < tolerance < 1`.
pub fn minimum_pitch(t: Seconds, tolerance: f64) -> Centimeters {
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tolerance must be in (0, 1)"
    );
    if CAPTURE_EFFICIENCY <= tolerance {
        return Centimeters::ZERO;
    }
    // f = η·exp(−p²/4Dt) = tol  →  p = √(4Dt·ln(η/tol)).
    let spread = 4.0 * D_H2O2.value() * t.value();
    Centimeters::new((spread * (CAPTURE_EFFICIENCY / tolerance).ln()).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosstalk_decays_with_pitch() {
        let t = Seconds::new(70.0);
        let close = crosstalk_fraction(Centimeters::from_millimeters(0.2), t);
        let far = crosstalk_fraction(Centimeters::from_millimeters(2.0), t);
        assert!(close > far);
        assert!(far < 1e-4);
    }

    #[test]
    fn crosstalk_grows_with_time() {
        let p = Centimeters::from_millimeters(1.0);
        let short = crosstalk_fraction(p, Seconds::new(10.0));
        let long = crosstalk_fraction(p, Seconds::new(1000.0));
        assert!(long > short);
    }

    #[test]
    fn paper_claim_1mm_pitch_is_fine() {
        // The Fig. 4 layout at ~1 mm pitch with 70 s chronoamperometry:
        // cross-talk < 1%, so a shared chamber works — the paper's claim.
        assert!(!needs_chambers(
            Centimeters::from_millimeters(1.0),
            Seconds::new(70.0),
            0.01
        ));
    }

    #[test]
    fn tight_pitch_long_dwell_needs_chambers() {
        assert!(needs_chambers(
            Centimeters::from_millimeters(0.2),
            Seconds::new(300.0),
            0.01
        ));
    }

    #[test]
    fn minimum_pitch_is_consistent() {
        let t = Seconds::new(70.0);
        let p = minimum_pitch(t, 0.01);
        assert!(p.value() > 0.0);
        let f = crosstalk_fraction(p, t);
        assert!((f - 0.01).abs() < 1e-9, "f = {f}");
        // Just above the minimum pitch: fine; just below: not.
        assert!(!needs_chambers(p * 1.01, t, 0.01));
        assert!(needs_chambers(p * 0.99, t, 0.01));
    }

    #[test]
    fn loose_tolerance_allows_any_pitch() {
        assert_eq!(minimum_pitch(Seconds::new(100.0), 0.10), Centimeters::ZERO);
    }
}
