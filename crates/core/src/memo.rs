//! Content-hash memoization for repeated deterministic computations.
//!
//! Two families of work are recomputed verbatim across sessions and
//! exploration runs:
//!
//! * **Calibration traces** — `ReadoutChain::baseline_noise_reference` and
//!   `ReadoutChain::self_test_response` run with *fixed* protocol seeds
//!   ([`NOISE_REFERENCE_SEED`](crate::platform) and friends), so a given
//!   chain configuration always produces the same figure. A fault-matrix
//!   campaign re-derives the same reference on every one of its ~150
//!   sessions.
//! * **LOD predictions** — `predict_lod(target, point)` is a pure function
//!   of its arguments; exploration calls it once per `(target, point)`
//!   pair, and repeated exploration (parameter sweeps, benches) repeats
//!   the whole grid.
//!
//! Both caches key on the *content* of the inputs — the chain's
//! [`content_hash`](bios_afe::ReadoutChain::content_hash) plus the exact
//! bit patterns of `dt`/`window`/`seed` for traces, and the full
//! `(Analyte, DesignPoint)` value for LODs — so a hit can only ever return
//! the value the miss path would have computed. Only successful results
//! are cached; errors always re-run. Caches are process-global,
//! mutex-guarded, capped (wholesale clear on overflow, like the solver
//! cache), and clearable via [`clear_memo_caches`] so benchmarks can time
//! cold paths honestly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use bios_afe::{AfeError, ReadoutChain};
use bios_biochem::Analyte;
use bios_units::{Amps, Molar, Seconds};

use crate::explore::DesignPoint;

/// Entries per cache before a wholesale clear (traces and LODs are a few
/// dozen distinct keys in realistic workloads; the cap only guards
/// pathological key churn).
const CACHE_CAP: usize = 4096;

/// Which calibration trace a cached figure belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum TraceKind {
    BaselineNoise,
    SelfTest,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct TraceKey {
    chain: u64,
    kind: TraceKind,
    dt_bits: u64,
    window_bits: u64,
    seed: u64,
}

fn trace_cache() -> &'static Mutex<BTreeMap<TraceKey, f64>> {
    static CACHE: OnceLock<Mutex<BTreeMap<TraceKey, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lod_cache() -> &'static Mutex<BTreeMap<(Analyte, DesignPoint), f64>> {
    static CACHE: OnceLock<Mutex<BTreeMap<(Analyte, DesignPoint), f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn memoized_trace(
    chain: &ReadoutChain,
    kind: TraceKind,
    dt: Seconds,
    window: Seconds,
    seed: u64,
) -> Result<Amps, AfeError> {
    let key = TraceKey {
        chain: chain.content_hash(),
        kind,
        dt_bits: dt.value().to_bits(),
        window_bits: window.value().to_bits(),
        seed,
    };
    if let Ok(cache) = trace_cache().lock() {
        if let Some(&v) = cache.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(Amps::new(v));
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let value = match kind {
        TraceKind::BaselineNoise => chain.baseline_noise_reference(dt, window, seed)?,
        TraceKind::SelfTest => chain.self_test_response(dt, window, seed)?,
    };
    if let Ok(mut cache) = trace_cache().lock() {
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, value.value());
    }
    Ok(value)
}

/// Memoized [`ReadoutChain::baseline_noise_reference`]. Bit-identical to
/// the direct call: the trace is deterministic in `(chain, dt, window,
/// seed)` and the cache key captures all four exactly.
pub(crate) fn baseline_noise_reference(
    chain: &ReadoutChain,
    dt: Seconds,
    window: Seconds,
    seed: u64,
) -> Result<Amps, AfeError> {
    memoized_trace(chain, TraceKind::BaselineNoise, dt, window, seed)
}

/// Memoized [`ReadoutChain::self_test_response`].
pub(crate) fn self_test_response(
    chain: &ReadoutChain,
    dt: Seconds,
    window: Seconds,
    seed: u64,
) -> Result<Amps, AfeError> {
    memoized_trace(chain, TraceKind::SelfTest, dt, window, seed)
}

/// Memoized wrapper used by [`crate::explore::predict_lod`]. `compute`
/// runs only on a miss; only `Ok` results enter the cache.
pub(crate) fn predict_lod_cached<E>(
    target: Analyte,
    point: &DesignPoint,
    compute: impl FnOnce() -> Result<Molar, E>,
) -> Result<Molar, E> {
    let key = (target, *point);
    if let Ok(cache) = lod_cache().lock() {
        if let Some(&v) = cache.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(Molar::new(v));
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let value = compute()?;
    if let Ok(mut cache) = lod_cache().lock() {
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, value.value());
    }
    Ok(value)
}

/// Empties both memo caches (calibration traces and LOD predictions) and
/// zeroes the hit/miss counters. Benchmarks call this between runs so
/// cold-path timings stay honest.
pub fn clear_memo_caches() {
    if let Ok(mut c) = trace_cache().lock() {
        c.clear();
    }
    if let Ok(mut c) = lod_cache().lock() {
        c.clear();
    }
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// `(hits, misses)` across both memo caches since the last
/// [`clear_memo_caches`].
pub fn memo_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_afe::{ChainConfig, CurrentRange};

    fn chain() -> ReadoutChain {
        ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("paper config"))
    }

    #[test]
    fn memoized_trace_matches_direct_call() {
        clear_memo_caches();
        let c = chain();
        let dt = Seconds::new(0.1);
        let window = Seconds::new(2.0);
        let direct = c.baseline_noise_reference(dt, window, 7).expect("direct");
        let first = baseline_noise_reference(&c, dt, window, 7).expect("miss path");
        let second = baseline_noise_reference(&c, dt, window, 7).expect("hit path");
        assert_eq!(direct.value().to_bits(), first.value().to_bits());
        assert_eq!(direct.value().to_bits(), second.value().to_bits());
        let (hits, misses) = memo_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn distinct_seeds_do_not_collide() {
        clear_memo_caches();
        let c = chain();
        let dt = Seconds::new(0.1);
        let window = Seconds::new(2.0);
        // Different seeds, trace kinds and windows are distinct cache
        // keys: each first call is a miss, never a (wrong) hit.
        let a = baseline_noise_reference(&c, dt, window, 1).expect("seed 1");
        let _ = baseline_noise_reference(&c, dt, window, 2).expect("seed 2");
        let _ = self_test_response(&c, dt, window, 1).expect("self test");
        let _ = baseline_noise_reference(&c, dt, Seconds::new(4.0), 1).expect("window");
        assert_eq!(memo_stats(), (0, 4), "four distinct keys, four misses");
        let a_again = baseline_noise_reference(&c, dt, window, 1).expect("seed 1 again");
        assert_eq!(a.value().to_bits(), a_again.value().to_bits());
        assert_eq!(memo_stats(), (1, 4), "repeat is a hit");
    }

    #[test]
    fn clear_resets_counters_and_forces_recompute() {
        clear_memo_caches();
        let c = chain();
        let dt = Seconds::new(0.1);
        let window = Seconds::new(2.0);
        let _ = baseline_noise_reference(&c, dt, window, 3);
        let _ = baseline_noise_reference(&c, dt, window, 3);
        clear_memo_caches();
        assert_eq!(memo_stats(), (0, 0));
        let _ = baseline_noise_reference(&c, dt, window, 3);
        assert_eq!(memo_stats(), (0, 1), "recompute after clear is a miss");
    }
}
