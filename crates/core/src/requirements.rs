//! Panel specifications: what the platform is asked to measure and how
//! well (the input of the design process, §II-A).

use crate::error::PlatformError;
use bios_biochem::Analyte;
use bios_units::{Molar, QRange};

/// The requirement for one target analyte.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TargetSpec {
    /// The analyte to monitor.
    pub analyte: Analyte,
    /// Required limit of detection; `None` accepts whatever the registry
    /// sensor achieves.
    pub required_lod: Option<Molar>,
    /// Concentration window the measurement must cover linearly.
    pub required_range: QRange<Molar>,
}

impl TargetSpec {
    /// A spec using the analyte's typical physiological/therapeutic range
    /// and no explicit LOD requirement.
    pub fn typical(analyte: Analyte) -> Self {
        Self {
            analyte,
            required_lod: None,
            required_range: analyte.typical_range(),
        }
    }

    /// Tightens the LOD requirement.
    pub fn with_lod(mut self, lod: Molar) -> Self {
        self.required_lod = Some(lod);
        self
    }

    /// Overrides the required range.
    pub fn with_range(mut self, range: QRange<Molar>) -> Self {
        self.required_range = range;
        self
    }
}

/// A multi-target sensing panel.
///
/// # Example
///
/// ```
/// use bios_biochem::Analyte;
/// use bios_platform::PanelSpec;
///
/// # fn main() -> Result<(), bios_platform::PlatformError> {
/// let panel = PanelSpec::paper_fig4();
/// assert_eq!(panel.targets().len(), 6);
/// panel.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PanelSpec {
    targets: Vec<TargetSpec>,
}

impl PanelSpec {
    /// An empty panel to be filled with [`PanelSpec::push`].
    pub fn new() -> Self {
        Self {
            targets: Vec::new(),
        }
    }

    /// The paper's §III multi-panel: glucose, lactate, glutamate,
    /// benzphetamine, aminopyrine and cholesterol — the Fig. 4 biointerface
    /// workload.
    pub fn paper_fig4() -> Self {
        let mut p = Self::new();
        for a in [
            Analyte::Glucose,
            Analyte::Lactate,
            Analyte::Glutamate,
            Analyte::Benzphetamine,
            Analyte::Aminopyrine,
            Analyte::Cholesterol,
        ] {
            p.push(TargetSpec::typical(a));
        }
        p
    }

    /// Adds a target (replacing any existing spec for the same analyte).
    pub fn push(&mut self, spec: TargetSpec) -> &mut Self {
        self.targets.retain(|t| t.analyte != spec.analyte);
        self.targets.push(spec);
        self
    }

    /// The targets in insertion order.
    pub fn targets(&self) -> &[TargetSpec] {
        &self.targets
    }

    /// Looks up the spec for an analyte.
    pub fn spec_for(&self, analyte: Analyte) -> Option<&TargetSpec> {
        self.targets.iter().find(|t| t.analyte == analyte)
    }

    /// Checks the panel is non-empty and every target has at least one
    /// registered probe.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::EmptyPanel`] or
    /// [`PlatformError::NoProbeFor`] accordingly.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.targets.is_empty() {
            return Err(PlatformError::EmptyPanel);
        }
        for t in &self.targets {
            if bios_biochem::Probe::candidates_for(t.analyte).is_empty() {
                return Err(PlatformError::NoProbeFor(t.analyte));
            }
        }
        Ok(())
    }
}

impl Default for PanelSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<TargetSpec> for PanelSpec {
    fn from_iter<T: IntoIterator<Item = TargetSpec>>(iter: T) -> Self {
        let mut p = Self::new();
        for t in iter {
            p.push(t);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_panel_is_valid() {
        let p = PanelSpec::paper_fig4();
        assert!(p.validate().is_ok());
        assert!(p.spec_for(Analyte::Glucose).is_some());
        assert!(p.spec_for(Analyte::Dopamine).is_none());
    }

    #[test]
    fn empty_panel_rejected() {
        assert_eq!(PanelSpec::new().validate(), Err(PlatformError::EmptyPanel));
    }

    #[test]
    fn unsensable_target_rejected() {
        let mut p = PanelSpec::new();
        p.push(TargetSpec::typical(Analyte::Dopamine));
        assert_eq!(
            p.validate(),
            Err(PlatformError::NoProbeFor(Analyte::Dopamine))
        );
    }

    #[test]
    fn push_deduplicates_by_analyte() {
        let mut p = PanelSpec::new();
        p.push(TargetSpec::typical(Analyte::Glucose));
        p.push(TargetSpec::typical(Analyte::Glucose).with_lod(Molar::from_micromolar(100.0)));
        assert_eq!(p.targets().len(), 1);
        assert_eq!(
            p.spec_for(Analyte::Glucose).expect("present").required_lod,
            Some(Molar::from_micromolar(100.0))
        );
    }

    #[test]
    fn collects_from_iterator() {
        let p: PanelSpec = [Analyte::Glucose, Analyte::Lactate]
            .into_iter()
            .map(TargetSpec::typical)
            .collect();
        assert_eq!(p.targets().len(), 2);
    }
}
