//! Property-based tests for the electrochemistry engine.

use bios_electrochem::{
    cottrell_current, rate_constants, simulate_chrono_fleet, simulate_chrono_with,
    simulate_cv_with, BatchDiffusionSim, Cell, DiffusionSim, Electrode, ElectrodeMaterial, Grid,
    PotentialProgram, RedoxCouple, SimOptions, Tridiagonal,
};
use bios_units::{
    DiffusionCoefficient, Molar, MolesPerCm3, Seconds, SquareCentimeters, Volts, VoltsPerSecond,
    T_ROOM,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Thomas solver inverts any diagonally dominant system it accepts.
    #[test]
    fn tridiagonal_solver_inverts(
        n in 2usize..64,
        seed in 0u64..1000,
    ) {
        // Deterministic pseudo-random diagonally dominant system.
        let r = |k: usize| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((k as u64).wrapping_mul(1442695040888963407)) as f64;
            (x / u64::MAX as f64) - 0.5
        };
        let lower: Vec<f64> = (0..n - 1).map(&r).collect();
        let upper: Vec<f64> = (0..n - 1).map(|k| r(k + 1000)).collect();
        let main: Vec<f64> = (0..n)
            .map(|k| {
                let off = lower.get(k.wrapping_sub(1)).map(|v| v.abs()).unwrap_or(0.0)
                    + upper.get(k).map(|v| v.abs()).unwrap_or(0.0);
                off + 1.0 + r(k + 2000).abs()
            })
            .collect();
        let sys = Tridiagonal::new(lower, main, upper).expect("diagonally dominant");
        let x_true: Vec<f64> = (0..n).map(|k| r(k + 3000) * 10.0).collect();
        let d = sys.apply(&x_true);
        let x = sys.solve(&d).expect("solve");
        for (a, b) in x.iter().zip(x_true.iter()) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    /// Mass is conserved by the diffusion stepper for any (kf, kb) program.
    #[test]
    fn diffusion_conserves_mass(
        kf_exp in -6.0f64..2.0,
        kb_exp in -6.0f64..2.0,
        bulk_mm in 0.1f64..10.0,
        steps in 10usize..200,
    ) {
        let d = DiffusionCoefficient::new(1e-5);
        let dt = Seconds::new(0.01);
        let grid = Grid::for_experiment(d, Seconds::new(steps as f64 * 0.01 + 1.0), dt).expect("grid");
        let mut sim = DiffusionSim::new(
            grid,
            d,
            d,
            Molar::from_millimolar(bulk_mm).to_moles_per_cm3(),
            MolesPerCm3::ZERO,
            dt,
        ).expect("sim");
        for _ in 0..steps {
            sim.step_with_rate_constants(10f64.powf(kf_exp), 10f64.powf(kb_exp));
        }
        prop_assert!(sim.mass_balance_error() < 5e-3, "mass error {}", sim.mass_balance_error());
    }

    /// Concentrations never go negative under pure consumption.
    #[test]
    fn concentrations_stay_nonnegative(
        kf_exp in -4.0f64..6.0,
        steps in 10usize..300,
    ) {
        let d = DiffusionCoefficient::new(1e-5);
        let dt = Seconds::new(0.01);
        let grid = Grid::for_experiment(d, Seconds::new(5.0), dt).expect("grid");
        let mut sim = DiffusionSim::new(
            grid, d, d,
            Molar::from_millimolar(1.0).to_moles_per_cm3(),
            MolesPerCm3::ZERO,
            dt,
        ).expect("sim");
        for _ in 0..steps {
            sim.step_with_rate_constants(10f64.powf(kf_exp), 0.0);
        }
        for c in sim.profile_ox() {
            prop_assert!(*c >= -1e-12, "negative concentration {c}");
        }
        prop_assert!(sim.surface_ox().value() >= -1e-12);
    }

    /// Butler–Volmer rates satisfy the thermodynamic ratio
    /// kf/kb = exp(−nF(E−E0)/RT) for any potential and α.
    #[test]
    fn bv_rates_respect_thermodynamics(
        e_mv in -900.0f64..900.0,
        alpha in 0.05f64..0.95,
        n in 1u32..3,
    ) {
        let couple = RedoxCouple::builder("p")
            .electrons(n)
            .transfer_coefficient(alpha)
            .formal_potential(Volts::new(0.1))
            .build()
            .expect("valid");
        let e = Volts::from_millivolts(e_mv);
        let (kf, kb) = rate_constants(&couple, e, T_ROOM, 1.0);
        let f = bios_units::FARADAY / (bios_units::GAS_CONSTANT * T_ROOM.value());
        let eta = e.value() - 0.1;
        let expected = -(n as f64) * f * eta;
        let ratio = kf / kb;
        // The implementation clamps each exponent to ±50; only assert the
        // thermodynamic ratio where neither exponent is clamped.
        let worst_exponent = (n as f64) * f * eta.abs() * alpha.max(1.0 - alpha);
        if worst_exponent < 49.0 {
            prop_assert!((ratio.ln() - expected).abs() < 1e-9);
        }
        prop_assert!(kf > 0.0 && kb > 0.0);
    }

    /// The CV peak current grows monotonically with concentration.
    #[test]
    fn cv_peak_monotone_in_concentration(c1_mm in 0.2f64..2.0, factor in 1.5f64..4.0) {
        let cell = Cell::builder(
            Electrode::new(ElectrodeMaterial::Gold, SquareCentimeters::new(0.0023)).expect("area"),
        ).build().expect("cell");
        let couple = RedoxCouple::ferrocyanide();
        let e0 = couple.formal_potential();
        let program = PotentialProgram::cyclic_single(
            e0 + Volts::new(0.25),
            e0 - Volts::new(0.25),
            VoltsPerSecond::new(0.1),
        );
        let opts = SimOptions { dt: Some(Seconds::new(0.025)), include_charging: false, grid_gamma: None };
        let run = |c_mm: f64| {
            simulate_cv_with(&cell, &couple, Molar::from_millimolar(c_mm), Molar::ZERO, &program, opts)
                .expect("sim")
                .min_current()
                .expect("nonempty")
                .1
                .abs()
                .value()
        };
        let i1 = run(c1_mm);
        let i2 = run(c1_mm * factor);
        prop_assert!(i2 > i1, "peak must grow with concentration");
        // And approximately linearly.
        prop_assert!(((i2 / i1) - factor).abs() < 0.1 * factor);
    }

    /// The batched SoA kernel is bit-identical to per-lane scalar sims for
    /// any batch width, expanding grid and kinetics program: every step's
    /// flux, every surface value and every profile node, compared by bit
    /// pattern.
    #[test]
    fn batch_kernel_bit_identical_to_scalar(
        lanes in 1usize..5,
        gamma in 1.02f64..1.6,
        steps in 5usize..60,
        seed in 0u64..1000,
    ) {
        let r = |k: usize| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((k as u64).wrapping_mul(1442695040888963407)) as f64;
            x / u64::MAX as f64
        };
        let d = DiffusionCoefficient::new(6.7e-6);
        let dt = Seconds::new(0.005);
        let grid = Grid::for_experiment_with(
            d,
            Seconds::new(steps as f64 * 0.005 + 0.5),
            dt,
            gamma,
        ).expect("grid");
        let bulks: Vec<(bios_units::MolesPerCm3, bios_units::MolesPerCm3)> = (0..lanes)
            .map(|b| (
                Molar::from_millimolar(0.5 + 5.0 * r(b)).to_moles_per_cm3(),
                Molar::from_millimolar(2.0 * r(b + 100)).to_moles_per_cm3(),
            ))
            .collect();
        let mut batch = BatchDiffusionSim::new(grid.clone(), d, d, &bulks, dt).expect("batch");
        let mut scalars: Vec<DiffusionSim> = bulks
            .iter()
            .map(|&(o, rd)| DiffusionSim::new(grid.clone(), d, d, o, rd, dt).expect("sim"))
            .collect();
        for k in 0..steps {
            let rates: Vec<(f64, f64)> = (0..lanes)
                .map(|b| (
                    10f64.powf(4.0 * r(7 * k + b) - 3.0),
                    10f64.powf(4.0 * r(11 * k + b + 5000) - 3.0),
                ))
                .collect();
            let fluxes = batch.step_with_rate_constants(&rates);
            for (b, s) in scalars.iter_mut().enumerate() {
                let f = s.step_with_rate_constants(rates[b].0, rates[b].1);
                prop_assert_eq!(f.to_bits(), fluxes[b].to_bits(), "flux lane {} step {}", b, k);
            }
        }
        for (b, s) in scalars.iter().enumerate() {
            prop_assert_eq!(
                batch.surface_ox(b).value().to_bits(),
                s.surface_ox().value().to_bits()
            );
            prop_assert_eq!(
                batch.surface_red(b).value().to_bits(),
                s.surface_red().value().to_bits()
            );
            for (x, y) in batch.profile_ox(b).iter().zip(s.profile_ox()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "ox profile lane {}", b);
            }
            for (x, y) in batch.profile_red(b).iter().zip(s.profile_red()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "red profile lane {}", b);
            }
        }
    }

    /// The fleet chrono driver equals the per-cell scalar driver exactly
    /// — full `Transient` equality lane by lane — for random fleets,
    /// waveforms and grid ratios.
    #[test]
    fn fleet_driver_bit_identical_to_scalar_map(
        lanes in 1usize..4,
        gamma_pick in 0usize..3,
        hold_mv in 200.0f64..700.0,
        seed in 0u64..500,
    ) {
        let r = |k: usize| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((k as u64).wrapping_mul(1442695040888963407)) as f64;
            x / u64::MAX as f64
        };
        let gamma = [None, Some(1.2), Some(1.5)][gamma_pick];
        let couple = RedoxCouple::ferrocyanide();
        let program = PotentialProgram::Hold {
            potential: Volts::from_millivolts(hold_mv),
            duration: Seconds::new(0.1),
        };
        let cells: Vec<Cell> = (0..lanes)
            .map(|b| {
                let area = SquareCentimeters::new(5e-4 + 3e-3 * r(b + 40));
                Cell::builder(
                    Electrode::new(ElectrodeMaterial::Gold, area).expect("area"),
                )
                .build()
                .expect("cell")
            })
            .collect();
        let bulk_ox: Vec<Molar> = (0..lanes)
            .map(|b| Molar::from_millimolar(0.3 + 3.0 * r(b + 80)))
            .collect();
        let bulk_red: Vec<Molar> = (0..lanes)
            .map(|b| Molar::from_millimolar(r(b + 120)))
            .collect();
        let options = SimOptions { dt: None, include_charging: true, grid_gamma: gamma };
        let fleet = simulate_chrono_fleet(&cells, &couple, &bulk_ox, &bulk_red, &program, options)
            .expect("fleet");
        for b in 0..lanes {
            let scalar = simulate_chrono_with(
                &cells[b], &couple, bulk_ox[b], bulk_red[b], &program, options,
            ).expect("scalar");
            prop_assert_eq!(&fleet[b], &scalar, "lane {} diverged", b);
        }
    }

    /// Nonuniform (expanding) grids converge to the analytic Cottrell
    /// reference: for any ratio up to 1.5, the diffusion-limited transient
    /// stays within 5% of `cottrell_current` over the mid/late transient,
    /// while coarser ratios use strictly fewer nodes than the default.
    #[test]
    fn expanding_grid_converges_to_cottrell(
        gamma in 1.05f64..1.5,
        bulk_mm in 0.5f64..3.0,
    ) {
        let couple = RedoxCouple::ferrocyanide();
        let cell = Cell::builder(Electrode::paper_gold_we()).build().expect("cell");
        let e0 = couple.formal_potential();
        // Hold far below E0: reduction is diffusion-limited and the
        // current follows Cottrell decay.
        let program = PotentialProgram::Hold {
            potential: e0 - Volts::new(0.4),
            duration: Seconds::new(2.0),
        };
        let dt = Seconds::new(0.005);
        let options = SimOptions {
            dt: Some(dt),
            include_charging: false,
            grid_gamma: Some(gamma),
        };
        let bulk = Molar::from_millimolar(bulk_mm);
        let transient = simulate_chrono_with(&cell, &couple, bulk, Molar::ZERO, &program, options)
            .expect("transient");
        let area = cell.working().active_area();
        for t_s in [0.5, 1.0, 1.5, 2.0] {
            let t = Seconds::new(t_s);
            let simulated = transient.current_at(t).expect("in range").value();
            let analytic = -cottrell_current(&couple, area, bulk, t).value();
            let rel = (simulated - analytic).abs() / analytic.abs();
            prop_assert!(
                rel < 0.05,
                "gamma {gamma}: {rel:.4} relative error vs Cottrell at t = {t_s}s"
            );
        }
        // The coarse grid must actually be smaller than the default.
        let d_max = couple.diffusion_ox().value().max(couple.diffusion_red().value());
        let nodes = |g: f64| {
            Grid::for_experiment_with(
                DiffusionCoefficient::new(d_max), program.duration(), dt, g,
            ).expect("grid").len()
        };
        if gamma > Grid::DEFAULT_GAMMA + 0.05 {
            prop_assert!(nodes(gamma) < nodes(Grid::DEFAULT_GAMMA));
        }
    }
}
