//! Property-based tests for the electrochemistry engine.

use bios_electrochem::{
    rate_constants, simulate_cv_with, Cell, DiffusionSim, Electrode, ElectrodeMaterial, Grid,
    PotentialProgram, RedoxCouple, SimOptions, Tridiagonal,
};
use bios_units::{
    DiffusionCoefficient, Molar, MolesPerCm3, Seconds, SquareCentimeters, Volts, VoltsPerSecond,
    T_ROOM,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Thomas solver inverts any diagonally dominant system it accepts.
    #[test]
    fn tridiagonal_solver_inverts(
        n in 2usize..64,
        seed in 0u64..1000,
    ) {
        // Deterministic pseudo-random diagonally dominant system.
        let r = |k: usize| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((k as u64).wrapping_mul(1442695040888963407)) as f64;
            (x / u64::MAX as f64) - 0.5
        };
        let lower: Vec<f64> = (0..n - 1).map(&r).collect();
        let upper: Vec<f64> = (0..n - 1).map(|k| r(k + 1000)).collect();
        let main: Vec<f64> = (0..n)
            .map(|k| {
                let off = lower.get(k.wrapping_sub(1)).map(|v| v.abs()).unwrap_or(0.0)
                    + upper.get(k).map(|v| v.abs()).unwrap_or(0.0);
                off + 1.0 + r(k + 2000).abs()
            })
            .collect();
        let sys = Tridiagonal::new(lower, main, upper).expect("diagonally dominant");
        let x_true: Vec<f64> = (0..n).map(|k| r(k + 3000) * 10.0).collect();
        let d = sys.apply(&x_true);
        let x = sys.solve(&d).expect("solve");
        for (a, b) in x.iter().zip(x_true.iter()) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    /// Mass is conserved by the diffusion stepper for any (kf, kb) program.
    #[test]
    fn diffusion_conserves_mass(
        kf_exp in -6.0f64..2.0,
        kb_exp in -6.0f64..2.0,
        bulk_mm in 0.1f64..10.0,
        steps in 10usize..200,
    ) {
        let d = DiffusionCoefficient::new(1e-5);
        let dt = Seconds::new(0.01);
        let grid = Grid::for_experiment(d, Seconds::new(steps as f64 * 0.01 + 1.0), dt).expect("grid");
        let mut sim = DiffusionSim::new(
            grid,
            d,
            d,
            Molar::from_millimolar(bulk_mm).to_moles_per_cm3(),
            MolesPerCm3::ZERO,
            dt,
        ).expect("sim");
        for _ in 0..steps {
            sim.step_with_rate_constants(10f64.powf(kf_exp), 10f64.powf(kb_exp));
        }
        prop_assert!(sim.mass_balance_error() < 5e-3, "mass error {}", sim.mass_balance_error());
    }

    /// Concentrations never go negative under pure consumption.
    #[test]
    fn concentrations_stay_nonnegative(
        kf_exp in -4.0f64..6.0,
        steps in 10usize..300,
    ) {
        let d = DiffusionCoefficient::new(1e-5);
        let dt = Seconds::new(0.01);
        let grid = Grid::for_experiment(d, Seconds::new(5.0), dt).expect("grid");
        let mut sim = DiffusionSim::new(
            grid, d, d,
            Molar::from_millimolar(1.0).to_moles_per_cm3(),
            MolesPerCm3::ZERO,
            dt,
        ).expect("sim");
        for _ in 0..steps {
            sim.step_with_rate_constants(10f64.powf(kf_exp), 0.0);
        }
        for c in sim.profile_ox() {
            prop_assert!(*c >= -1e-12, "negative concentration {c}");
        }
        prop_assert!(sim.surface_ox().value() >= -1e-12);
    }

    /// Butler–Volmer rates satisfy the thermodynamic ratio
    /// kf/kb = exp(−nF(E−E0)/RT) for any potential and α.
    #[test]
    fn bv_rates_respect_thermodynamics(
        e_mv in -900.0f64..900.0,
        alpha in 0.05f64..0.95,
        n in 1u32..3,
    ) {
        let couple = RedoxCouple::builder("p")
            .electrons(n)
            .transfer_coefficient(alpha)
            .formal_potential(Volts::new(0.1))
            .build()
            .expect("valid");
        let e = Volts::from_millivolts(e_mv);
        let (kf, kb) = rate_constants(&couple, e, T_ROOM, 1.0);
        let f = bios_units::FARADAY / (bios_units::GAS_CONSTANT * T_ROOM.value());
        let eta = e.value() - 0.1;
        let expected = -(n as f64) * f * eta;
        let ratio = kf / kb;
        // The implementation clamps each exponent to ±50; only assert the
        // thermodynamic ratio where neither exponent is clamped.
        let worst_exponent = (n as f64) * f * eta.abs() * alpha.max(1.0 - alpha);
        if worst_exponent < 49.0 {
            prop_assert!((ratio.ln() - expected).abs() < 1e-9);
        }
        prop_assert!(kf > 0.0 && kb > 0.0);
    }

    /// The CV peak current grows monotonically with concentration.
    #[test]
    fn cv_peak_monotone_in_concentration(c1_mm in 0.2f64..2.0, factor in 1.5f64..4.0) {
        let cell = Cell::builder(
            Electrode::new(ElectrodeMaterial::Gold, SquareCentimeters::new(0.0023)).expect("area"),
        ).build().expect("cell");
        let couple = RedoxCouple::ferrocyanide();
        let e0 = couple.formal_potential();
        let program = PotentialProgram::cyclic_single(
            e0 + Volts::new(0.25),
            e0 - Volts::new(0.25),
            VoltsPerSecond::new(0.1),
        );
        let opts = SimOptions { dt: Some(Seconds::new(0.025)), include_charging: false };
        let run = |c_mm: f64| {
            simulate_cv_with(&cell, &couple, Molar::from_millimolar(c_mm), Molar::ZERO, &program, opts)
                .expect("sim")
                .min_current()
                .expect("nonempty")
                .1
                .abs()
                .value()
        };
        let i1 = run(c1_mm);
        let i2 = run(c1_mm * factor);
        prop_assert!(i2 > i1, "peak must grow with concentration");
        // And approximately linearly.
        prop_assert!(((i2 / i1) - factor).abs() < 0.1 * factor);
    }
}
