//! Butler–Volmer heterogeneous electron-transfer kinetics.

use crate::species::RedoxCouple;
use bios_units::{Kelvin, Volts, FARADAY, GAS_CONSTANT};

/// Forward (reduction) and backward (oxidation) heterogeneous rate constants
/// in cm/s at applied potential `e` for the given couple.
///
/// `kf = k⁰·exp(−α·n·f·(E−E⁰'))`, `kb = k⁰·exp((1−α)·n·f·(E−E⁰'))` with
/// `f = F/(RT)`; exponents are clamped to ±50 to avoid overflow at extreme
/// overpotentials (the rates are unphysically large there anyway).
///
/// # Example
///
/// ```
/// use bios_electrochem::{rate_constants, RedoxCouple};
/// use bios_units::{Volts, T_ROOM};
///
/// let couple = RedoxCouple::ferrocyanide();
/// // At E = E⁰' both rate constants equal k⁰.
/// let (kf, kb) = rate_constants(&couple, couple.formal_potential(), T_ROOM, 1.0);
/// assert!((kf - couple.rate_constant_cm_per_s()).abs() < 1e-12);
/// assert!((kb - couple.rate_constant_cm_per_s()).abs() < 1e-12);
/// ```
pub fn rate_constants(
    couple: &RedoxCouple,
    e: Volts,
    temperature: Kelvin,
    kinetic_factor: f64,
) -> (f64, f64) {
    let f = FARADAY / (GAS_CONSTANT * temperature.value());
    let n = couple.electrons() as f64;
    let alpha = couple.transfer_coefficient();
    let eta = e.value() - couple.formal_potential().value();
    let k0 = couple.rate_constant_cm_per_s() * kinetic_factor;
    let kf = k0 * (-alpha * n * f * eta).clamp(-50.0, 50.0).exp();
    let kb = k0 * ((1.0 - alpha) * n * f * eta).clamp(-50.0, 50.0).exp();
    (kf, kb)
}

/// Electrochemical reversibility regime at a given scan rate, classified by
/// the Matsuda–Ayabe parameter `Λ = k⁰ / √(D·f·v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Reversibility {
    /// `Λ ≥ 15`: Nernstian behaviour; CV peaks at `E⁰' ± 28.5/n mV`.
    Reversible,
    /// `15 > Λ ≥ 10⁻³`: intermediate; peaks shift with scan rate.
    QuasiReversible,
    /// `Λ < 10⁻³`: fully irreversible; large overpotentials needed — the
    /// regime of H₂O₂ oxidation that forces the paper's +650 mV bias.
    Irreversible,
}

impl core::fmt::Display for Reversibility {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Reversibility::Reversible => "reversible",
            Reversibility::QuasiReversible => "quasi-reversible",
            Reversibility::Irreversible => "irreversible",
        };
        f.write_str(s)
    }
}

/// Classifies the couple's reversibility at scan rate `v` (V/s).
///
/// # Example
///
/// ```
/// use bios_electrochem::{classify_reversibility, RedoxCouple, Reversibility};
/// use bios_units::{T_ROOM, VoltsPerSecond};
///
/// let v = VoltsPerSecond::from_millivolts_per_second(20.0);
/// let fast = RedoxCouple::ferrocyanide();
/// assert_eq!(classify_reversibility(&fast, v, T_ROOM, 1.0), Reversibility::Reversible);
/// let slow = RedoxCouple::hydrogen_peroxide();
/// assert_eq!(classify_reversibility(&slow, v, T_ROOM, 1.0), Reversibility::Irreversible);
/// ```
pub fn classify_reversibility(
    couple: &RedoxCouple,
    scan_rate: bios_units::VoltsPerSecond,
    temperature: Kelvin,
    kinetic_factor: f64,
) -> Reversibility {
    let f = FARADAY / (GAS_CONSTANT * temperature.value());
    let d = couple.diffusion_ox().value();
    let lambda =
        couple.rate_constant_cm_per_s() * kinetic_factor / (d * f * scan_rate.value()).sqrt();
    if lambda >= 15.0 {
        Reversibility::Reversible
    } else if lambda >= 1e-3 {
        Reversibility::QuasiReversible
    } else {
        Reversibility::Irreversible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::{VoltsPerSecond, T_ROOM};

    #[test]
    fn rates_cross_at_formal_potential() {
        let c = RedoxCouple::ferrocyanide();
        let (kf, kb) = rate_constants(&c, c.formal_potential(), T_ROOM, 1.0);
        assert!((kf - kb).abs() < 1e-15);
    }

    #[test]
    fn negative_overpotential_favors_reduction() {
        let c = RedoxCouple::ferrocyanide();
        let e = c.formal_potential() - Volts::from_millivolts(100.0);
        let (kf, kb) = rate_constants(&c, e, T_ROOM, 1.0);
        assert!(
            kf > kb,
            "cathodic overpotential must favor the forward (reduction) rate"
        );
        // α = 0.5, 100 mV → kf/k0 = exp(0.5·f·0.1) ≈ e^1.946 ≈ 7.0.
        assert!((kf / c.rate_constant_cm_per_s() - 7.0).abs() < 0.1);
    }

    #[test]
    fn kinetic_factor_scales_both_rates() {
        let c = RedoxCouple::hydrogen_peroxide();
        let e = Volts::new(0.65);
        let (kf1, kb1) = rate_constants(&c, e, T_ROOM, 1.0);
        let (kf2, kb2) = rate_constants(&c, e, T_ROOM, 10.0);
        assert!((kf2 / kf1 - 10.0).abs() < 1e-9);
        assert!((kb2 / kb1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_overpotential_does_not_overflow() {
        let c = RedoxCouple::ferrocyanide();
        let (kf, kb) = rate_constants(&c, Volts::new(-100.0), T_ROOM, 1.0);
        assert!(kf.is_finite() && kb.is_finite());
    }

    #[test]
    fn electrons_steepen_the_exponent() {
        let c1 = RedoxCouple::builder("a")
            .electrons(1)
            .build()
            .expect("valid");
        let c2 = RedoxCouple::builder("b")
            .electrons(2)
            .build()
            .expect("valid");
        let e = Volts::from_millivolts(-50.0);
        let (kf1, _) = rate_constants(&c1, e, T_ROOM, 1.0);
        let (kf2, _) = rate_constants(&c2, e, T_ROOM, 1.0);
        assert!(kf2 > kf1);
    }

    #[test]
    fn nanostructuring_can_promote_quasi_reversibility() {
        let h2o2 = RedoxCouple::hydrogen_peroxide();
        let v = VoltsPerSecond::from_millivolts_per_second(20.0);
        assert_eq!(
            classify_reversibility(&h2o2, v, T_ROOM, 1.0),
            Reversibility::Irreversible
        );
        // CNT kinetic factor ≈ 25: moves H2O2 into the quasi-reversible band.
        assert_eq!(
            classify_reversibility(&h2o2, v, T_ROOM, 1000.0),
            Reversibility::QuasiReversible
        );
    }

    #[test]
    fn faster_scans_reduce_reversibility() {
        // A moderately fast couple looks reversible at 20 mV/s but only
        // quasi-reversible at very high scan rates.
        let c = RedoxCouple::builder("m")
            .rate_constant(0.1)
            .diffusion(1e-5)
            .build()
            .expect("valid");
        let slow = VoltsPerSecond::from_millivolts_per_second(20.0);
        let fast = VoltsPerSecond::new(100.0);
        assert_eq!(
            classify_reversibility(&c, slow, T_ROOM, 1.0),
            Reversibility::Reversible
        );
        assert_eq!(
            classify_reversibility(&c, fast, T_ROOM, 1.0),
            Reversibility::QuasiReversible
        );
    }
}
