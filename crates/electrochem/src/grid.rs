//! Spatial grids for the 1-D diffusion solver.
//!
//! Concentration gradients are steepest at the electrode surface, so the
//! default grid expands geometrically away from it (Feldberg-style): fine
//! where the physics happens, coarse in the bulk.

use crate::error::ElectrochemError;
use bios_units::{Centimeters, DiffusionCoefficient, Seconds};

/// A 1-D spatial grid normal to the electrode, `x[0] = 0` at the surface.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Grid {
    x: Vec<f64>, // node positions in cm, strictly increasing
}

impl Grid {
    /// A uniform grid of `n` nodes spanning `[0, length]`.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for non-positive length
    /// and [`ElectrochemError::GridTooCoarse`] for fewer than 8 nodes.
    pub fn uniform(length: Centimeters, n: usize) -> Result<Self, ElectrochemError> {
        let length_cm = length.value();
        if length_cm <= 0.0 || !length_cm.is_finite() {
            return Err(ElectrochemError::invalid(
                "length",
                "must be positive and finite",
            ));
        }
        if n < 8 {
            return Err(ElectrochemError::GridTooCoarse {
                nodes: n,
                minimum: 8,
            });
        }
        let dx = length_cm / (n - 1) as f64;
        Ok(Self {
            x: (0..n).map(|i| i as f64 * dx).collect(),
        })
    }

    /// A geometrically expanding grid: spacing starts at `first_dx` and
    /// grows by `gamma` per interval until `length` is covered.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for non-positive
    /// `first_dx`/`length` or `gamma < 1`.
    pub fn expanding(
        first_dx: Centimeters,
        gamma: f64,
        length: Centimeters,
    ) -> Result<Self, ElectrochemError> {
        let first_dx_cm = first_dx.value();
        let length_cm = length.value();
        if first_dx_cm <= 0.0 || !first_dx_cm.is_finite() {
            return Err(ElectrochemError::invalid(
                "first_dx",
                "must be positive and finite",
            ));
        }
        if length_cm <= first_dx_cm {
            return Err(ElectrochemError::invalid(
                "length",
                "must exceed the first spacing",
            ));
        }
        if gamma < 1.0 || !gamma.is_finite() {
            return Err(ElectrochemError::invalid("gamma", "must be at least 1"));
        }
        let mut x = vec![0.0];
        let mut last = 0.0;
        let mut dx = first_dx_cm;
        while last < length_cm {
            // Same accumulation as `x.last() + dx`, operation for
            // operation, without the panic path.
            last += dx;
            x.push(last);
            dx *= gamma;
        }
        Ok(Self { x })
    }

    /// Builds a grid sized for an experiment of duration `t_total` on a
    /// species with diffusion coefficient `d`, resolving time step `dt`.
    ///
    /// The domain extends 6 diffusion lengths (`6·√(D·t_total)`), far enough
    /// that the bulk boundary never feels the electrode. The first spacing is
    /// half of `√(D·dt)`, which resolves the per-step diffusion layer.
    /// Expansion uses [`Self::DEFAULT_GAMMA`]; see
    /// [`Self::for_experiment_with`] for coarser trade-offs.
    ///
    /// # Errors
    ///
    /// Propagates construction errors for degenerate inputs.
    pub fn for_experiment(
        d: DiffusionCoefficient,
        t_total: Seconds,
        dt: Seconds,
    ) -> Result<Self, ElectrochemError> {
        Self::for_experiment_with(d, t_total, dt, Self::DEFAULT_GAMMA)
    }

    /// Default geometric expansion ratio of [`Self::for_experiment`].
    pub const DEFAULT_GAMMA: f64 = 1.05;

    /// [`Self::for_experiment`] with an explicit expansion ratio `gamma`.
    ///
    /// The first spacing (which sets surface resolution, and therefore flux
    /// accuracy) and the domain length are unchanged; `gamma` only controls
    /// how fast spacing grows toward the bulk. Because an implicit
    /// backward-Euler step has no stability limit, a steeper ratio trades a
    /// little far-field smoothness for a much smaller system: at the platform
    /// operating point, `gamma = 1.4` covers the same domain with ~12× fewer
    /// nodes than a uniform grid at the surface spacing (and ~3× fewer than
    /// the 1.05 default) while Cottrell currents stay within a few percent.
    ///
    /// # Errors
    ///
    /// Propagates construction errors for degenerate inputs, including
    /// `gamma < 1`.
    pub fn for_experiment_with(
        d: DiffusionCoefficient,
        t_total: Seconds,
        dt: Seconds,
        gamma: f64,
    ) -> Result<Self, ElectrochemError> {
        if d.value() <= 0.0 {
            return Err(ElectrochemError::invalid("d", "must be positive"));
        }
        if t_total.value() <= 0.0 || dt.value() <= 0.0 {
            return Err(ElectrochemError::invalid("t", "durations must be positive"));
        }
        let length = 6.0 * (d.value() * t_total.value()).sqrt();
        let first_dx = 0.5 * (d.value() * dt.value()).sqrt();
        Self::expanding(
            Centimeters::new(first_dx.min(length / 16.0)),
            gamma,
            Centimeters::new(length),
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Node positions in cm.
    pub fn positions(&self) -> &[f64] {
        &self.x
    }

    /// Spacing `x[i+1] - x[i]` in cm.
    ///
    /// # Panics
    ///
    /// Panics if `i + 1` is out of bounds.
    pub fn spacing(&self, i: usize) -> f64 {
        self.x[i + 1] - self.x[i]
    }

    /// Total domain length in cm (0 for the empty grid, which no
    /// constructor produces).
    pub fn length(&self) -> f64 {
        self.x.last().copied().unwrap_or(0.0)
    }

    /// Finite-volume control width of node `i` (half-cells at both ends).
    pub fn control_width(&self, i: usize) -> f64 {
        let n = self.x.len();
        if i == 0 {
            (self.x[1] - self.x[0]) / 2.0
        } else if i == n - 1 {
            (self.x[n - 1] - self.x[n - 2]) / 2.0
        } else {
            (self.x[i + 1] - self.x[i - 1]) / 2.0
        }
    }

    /// Integrates a nodal field over the domain (mol/cm³ → mol/cm²).
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the grid length.
    pub fn integrate(&self, field: &[f64]) -> f64 {
        assert_eq!(field.len(), self.len(), "field length mismatch");
        field
            .iter()
            .enumerate()
            .map(|(i, c)| c * self.control_width(i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spacing() {
        let g = Grid::uniform(Centimeters::new(1.0), 11).expect("valid");
        assert_eq!(g.len(), 11);
        assert!((g.spacing(0) - 0.1).abs() < 1e-12);
        assert!((g.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expanding_grows_geometrically() {
        let g = Grid::expanding(Centimeters::new(0.01), 1.5, Centimeters::new(1.0)).expect("valid");
        assert!(g.len() > 3);
        let r = g.spacing(1) / g.spacing(0);
        assert!((r - 1.5).abs() < 1e-12);
        assert!(g.length() >= 1.0);
        // Strictly increasing positions.
        for w in g.positions().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn experiment_grid_spans_diffusion_layer() {
        let d = DiffusionCoefficient::new(1e-5);
        let g = Grid::for_experiment(d, Seconds::new(100.0), Seconds::new(0.05)).expect("valid");
        let expected = 6.0 * (1e-5f64 * 100.0).sqrt();
        assert!(g.length() >= expected);
        // First spacing resolves the per-step layer.
        assert!(g.spacing(0) <= (1e-5f64 * 0.05).sqrt());
        // Expanding grid keeps the node count modest.
        assert!(g.len() < 400, "got {} nodes", g.len());
    }

    #[test]
    fn default_gamma_delegation_is_bit_identical() {
        let d = DiffusionCoefficient::new(6.7e-6);
        let t = Seconds::new(0.5);
        let dt = Seconds::new(0.0025);
        let a = Grid::for_experiment(d, t, dt).expect("grid");
        let b = Grid::for_experiment_with(d, t, dt, Grid::DEFAULT_GAMMA).expect("grid");
        assert_eq!(a, b);
    }

    #[test]
    fn coarse_gamma_cuts_node_count_sharply() {
        let d = DiffusionCoefficient::new(6.7e-6);
        let t = Seconds::new(0.5);
        let dt = Seconds::new(0.0025);
        let standard = Grid::for_experiment(d, t, dt).expect("grid");
        let coarse = Grid::for_experiment_with(d, t, dt, 1.4).expect("grid");
        // Same resolution where it matters and same covered domain…
        assert_eq!(coarse.spacing(0).to_bits(), standard.spacing(0).to_bits());
        assert!(coarse.length() >= 6.0 * (6.7e-6f64 * 0.5).sqrt());
        // …with roughly 3× fewer nodes than the 1.05 default, and an order
        // of magnitude fewer than a uniform grid at the surface spacing.
        assert!(
            coarse.len() * 3 <= standard.len(),
            "coarse {} vs standard {}",
            coarse.len(),
            standard.len()
        );
        let uniform_equivalent = (standard.length() / standard.spacing(0)).ceil() as usize + 1;
        assert!(
            coarse.len() * 10 <= uniform_equivalent,
            "coarse {} vs uniform-equivalent {}",
            coarse.len(),
            uniform_equivalent
        );
    }

    #[test]
    fn control_widths_partition_domain() {
        let g = Grid::expanding(Centimeters::new(0.01), 1.3, Centimeters::new(0.5)).expect("valid");
        let total: f64 = (0..g.len()).map(|i| g.control_width(i)).sum();
        assert!((total - g.length()).abs() < 1e-12);
    }

    #[test]
    fn integrate_constant_field() {
        let g = Grid::uniform(Centimeters::new(2.0), 21).expect("valid");
        let field = vec![3.0; 21];
        assert!((g.integrate(&field) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Grid::uniform(Centimeters::new(0.0), 10).is_err());
        assert!(Grid::uniform(Centimeters::new(1.0), 4).is_err());
        assert!(Grid::expanding(Centimeters::new(0.0), 1.1, Centimeters::new(1.0)).is_err());
        assert!(Grid::expanding(Centimeters::new(0.1), 0.9, Centimeters::new(1.0)).is_err());
        assert!(Grid::expanding(Centimeters::new(0.1), 1.1, Centimeters::new(0.05)).is_err());
    }
}
