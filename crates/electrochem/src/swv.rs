//! Square-wave voltammetry (SWV) — an extension beyond the paper's CV
//! readout that sharpens multi-target discrimination.
//!
//! A square modulation of amplitude `E_sw` rides on a staircase of height
//! `ΔE_s`; the current is sampled at the end of each forward and reverse
//! half-period and the *differential* `i_f − i_r` is plotted against the
//! staircase potential. Two properties make SWV attractive for the
//! platform's crowded Table II windows: the differential peak sits at the
//! half-wave potential `E_1/2` itself (no ±28.5/n mV CV offset), and the
//! (slow) double-layer charging contribution largely cancels between the
//! two samples.

use crate::cell::Cell;
use crate::diffusion::DiffusionSim;
use crate::error::ElectrochemError;
use crate::grid::Grid;
use crate::kinetics::rate_constants;
use crate::species::RedoxCouple;
use crate::trace::Voltammogram;
use bios_units::{Amps, Hertz, Molar, Seconds, Volts, FARADAY};

/// Parameters of a square-wave voltammetry scan.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SwvParams {
    /// Staircase start potential.
    pub start: Volts,
    /// Staircase end potential.
    pub end: Volts,
    /// Staircase step `ΔE_s` (per full period).
    pub step: Volts,
    /// Square-wave half-amplitude `E_sw`.
    pub amplitude: Volts,
    /// Square-wave frequency (one staircase step per period).
    pub frequency: Hertz,
}

impl SwvParams {
    /// A typical protein-film scan: 4 mV steps, 25 mV amplitude, 10 Hz.
    pub fn typical(start: Volts, end: Volts) -> Self {
        Self {
            start,
            end,
            step: Volts::from_millivolts(4.0),
            amplitude: Volts::from_millivolts(25.0),
            frequency: Hertz::new(10.0),
        }
    }

    /// Effective staircase scan rate `ΔE_s·f`.
    pub fn effective_rate(&self) -> bios_units::VoltsPerSecond {
        bios_units::VoltsPerSecond::new(self.step.value() * self.frequency.value())
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for non-positive
    /// step/amplitude/frequency or a span smaller than one step.
    pub fn validate(&self) -> Result<(), ElectrochemError> {
        if self.step.value() <= 0.0 {
            return Err(ElectrochemError::invalid("step", "must be positive"));
        }
        if self.amplitude.value() <= 0.0 {
            return Err(ElectrochemError::invalid("amplitude", "must be positive"));
        }
        if self.frequency.value() <= 0.0 {
            return Err(ElectrochemError::invalid("frequency", "must be positive"));
        }
        if (self.end.value() - self.start.value()).abs() < self.step.value() {
            return Err(ElectrochemError::invalid(
                "end",
                "span must exceed one step",
            ));
        }
        Ok(())
    }
}

/// Simulates a square-wave voltammogram of a solution-phase couple.
///
/// The returned [`Voltammogram`] holds the *differential* current
/// `i_forward − i_reverse` against the staircase potential (one point per
/// period). With IUPAC signs a reduction scan gives a negative-going
/// differential peak at `E_1/2 ≈ E⁰'`.
///
/// # Errors
///
/// Returns [`ElectrochemError`] for invalid parameters or degenerate grids.
///
/// # Example
///
/// ```
/// use bios_electrochem::{simulate_swv, Cell, Electrode, RedoxCouple, SwvParams};
/// use bios_units::{Molar, Volts};
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// let cell = Cell::builder(Electrode::paper_gold_we()).build()?;
/// let couple = RedoxCouple::ferrocyanide();
/// let params = SwvParams::typical(Volts::new(0.53), Volts::new(-0.07));
/// let swv = simulate_swv(&cell, &couple, Molar::from_millimolar(1.0), Molar::ZERO, &params)?;
/// let (e_peak, i_peak) = swv.min_current().expect("nonempty");
/// assert!(i_peak.value() < 0.0);
/// // The SWV peak sits at E1/2 ≈ E0' — no 28.5 mV CV offset.
/// assert!((e_peak.value() - couple.formal_potential().value()).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn simulate_swv(
    cell: &Cell,
    couple: &RedoxCouple,
    bulk_ox: Molar,
    bulk_red: Molar,
    params: &SwvParams,
) -> Result<Voltammogram, ElectrochemError> {
    params.validate()?;
    if bulk_ox.value() < 0.0 || bulk_red.value() < 0.0 {
        return Err(ElectrochemError::invalid(
            "bulk concentration",
            "must be non-negative",
        ));
    }
    let half_period = Seconds::new(0.5 / params.frequency.value());
    let span = (params.end.value() - params.start.value()).abs();
    let n_steps = (span / params.step.value()).floor() as usize;
    let total = Seconds::new((n_steps + 1) as f64 / params.frequency.value());
    let d_max = couple
        .diffusion_ox()
        .value()
        .max(couple.diffusion_red().value());
    let grid = Grid::for_experiment(
        bios_units::DiffusionCoefficient::new(d_max),
        total,
        half_period,
    )?;
    let mut sim = DiffusionSim::new(
        grid,
        couple.diffusion_ox(),
        couple.diffusion_red(),
        bulk_ox.to_moles_per_cm3(),
        bulk_red.to_moles_per_cm3(),
        half_period,
    )?;
    let area = cell.working().active_area();
    let kinetic_factor = cell.working().kinetic_factor();
    let n = couple.electrons() as f64;
    let direction = (params.end.value() - params.start.value()).signum();

    let mut out = Voltammogram::new();
    for k in 0..=n_steps {
        let e_base = Volts::new(params.start.value() + direction * k as f64 * params.step.value());
        // Forward pulse: in the scan direction.
        let e_fwd = Volts::new(e_base.value() + direction * params.amplitude.value());
        let (kf, kb) = rate_constants(couple, e_fwd, cell.temperature(), kinetic_factor);
        let flux_f = sim.step_with_rate_constants(kf, kb);
        let i_f = -n * FARADAY * area.value() * flux_f;
        // Reverse pulse.
        let e_rev = Volts::new(e_base.value() - direction * params.amplitude.value());
        let (kf, kb) = rate_constants(couple, e_rev, cell.temperature(), kinetic_factor);
        let flux_r = sim.step_with_rate_constants(kf, kb);
        let i_r = -n * FARADAY * area.value() * flux_r;
        let t = Seconds::new((k + 1) as f64 / params.frequency.value());
        out.push(t, e_base, Amps::new(i_f - i_r));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::electrode::Electrode;
    use crate::simulate::{simulate_cv_with, SimOptions};
    use crate::waveform::PotentialProgram;
    use bios_units::VoltsPerSecond;

    fn cell() -> Cell {
        Cell::builder(Electrode::paper_gold_we())
            .build()
            .expect("valid")
    }

    fn scan() -> SwvParams {
        SwvParams::typical(Volts::new(0.53), Volts::new(-0.07))
    }

    #[test]
    fn validation_rejects_degenerate_scans() {
        let mut p = scan();
        p.step = Volts::ZERO;
        assert!(p.validate().is_err());
        let mut p = scan();
        p.amplitude = Volts::new(-0.01);
        assert!(p.validate().is_err());
        let mut p = scan();
        p.frequency = Hertz::ZERO;
        assert!(p.validate().is_err());
        let mut p = scan();
        p.end = p.start;
        assert!(p.validate().is_err());
    }

    #[test]
    fn peak_sits_at_half_wave_potential() {
        let couple = RedoxCouple::ferrocyanide();
        let swv = simulate_swv(
            &cell(),
            &couple,
            Molar::from_millimolar(1.0),
            Molar::ZERO,
            &scan(),
        )
        .expect("simulation");
        let (e_peak, i_peak) = swv.min_current().expect("nonempty");
        assert!(
            i_peak.value() < 0.0,
            "reduction gives a negative differential"
        );
        assert!(
            (e_peak.value() - couple.formal_potential().value()).abs() < 0.008,
            "SWV peak at {} vs E0 {}",
            e_peak,
            couple.formal_potential()
        );
    }

    #[test]
    fn differential_peak_is_concentration_linear() {
        let couple = RedoxCouple::ferrocyanide();
        let peak = |mm: f64| {
            simulate_swv(
                &cell(),
                &couple,
                Molar::from_millimolar(mm),
                Molar::ZERO,
                &scan(),
            )
            .expect("simulation")
            .min_current()
            .expect("nonempty")
            .1
            .abs()
            .value()
        };
        let p1 = peak(1.0);
        let p3 = peak(3.0);
        assert!((p3 / p1 - 3.0).abs() < 0.05, "ratio {}", p3 / p1);
    }

    #[test]
    fn swv_discriminates_better_than_cv_per_unit_background() {
        // Compare signal-to-charging-background: SWV's differential
        // sampling cancels the staircase charging, CV pays Cdl·v always.
        let couple = RedoxCouple::ferrocyanide();
        let c = cell();
        let bulk = Molar::from_millimolar(1.0);
        let params = scan();
        let swv = simulate_swv(&c, &couple, bulk, Molar::ZERO, &params).expect("simulation");
        let swv_peak = swv.min_current().expect("nonempty").1.abs().value();

        let rate = params.effective_rate();
        let program = PotentialProgram::cyclic_single(params.start, params.end, rate);
        let cv = simulate_cv_with(
            &c,
            &couple,
            bulk,
            Molar::ZERO,
            &program,
            SimOptions {
                dt: None,
                include_charging: false,
                grid_gamma: None,
            },
        )
        .expect("simulation");
        let cv_peak = cv.min_current().expect("nonempty").1.abs().value();
        // At matched effective scan rate SWV's differential peak exceeds
        // the CV peak (the textbook SWV advantage).
        assert!(
            swv_peak > cv_peak,
            "SWV {swv_peak} should beat CV {cv_peak} at matched rate"
        );
        // And CV's charging background Cdl·v is a *fixed* overhead that SWV
        // does not pay: check it is a meaningful fraction of the CV peak.
        let charging = c.double_layer_capacitance().value() * rate.value();
        assert!(charging > 0.0);
        let _ = VoltsPerSecond::new(0.0); // keep the import exercised
    }

    #[test]
    fn rejects_negative_concentrations() {
        let couple = RedoxCouple::ferrocyanide();
        assert!(simulate_swv(&cell(), &couple, Molar::new(-1.0), Molar::ZERO, &scan()).is_err());
    }

    #[test]
    fn staircase_axis_is_monotone() {
        let couple = RedoxCouple::ferrocyanide();
        let swv = simulate_swv(
            &cell(),
            &couple,
            Molar::from_millimolar(1.0),
            Molar::ZERO,
            &scan(),
        )
        .expect("simulation");
        for pair in swv.potential().windows(2) {
            assert!(pair[1].value() < pair[0].value(), "downward staircase");
        }
    }
}
