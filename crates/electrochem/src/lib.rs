//! Electrochemistry simulation engine for the `advdiag` biosensing platform.
//!
//! This crate replaces the wet-lab electrochemical cell of the DATE 2011
//! paper with a quantitative model:
//!
//! * [`RedoxCouple`] / [`SurfaceCouple`] — the species the electrode sees,
//! * [`Electrode`] / [`Cell`] — geometry, materials, nanostructuring,
//!   double layer and uncompensated resistance,
//! * [`PotentialProgram`] — holds, steps and triangular sweeps,
//! * [`DiffusionSim`] — an implicit (backward-Euler, Thomas-solver) 1-D
//!   finite-volume solver for Fick's second law with an exact linear
//!   Butler–Volmer boundary,
//! * [`BatchDiffusionSim`] — the same solver vectorized across an electrode
//!   fleet: structure-of-arrays `[node × lane]` planes and one batched
//!   Thomas sweep per species per step, bit-identical per lane,
//! * [`simulate_chrono`] / [`simulate_cv`] / [`simulate_chrono_fleet`] —
//!   experiment drivers producing [`Transient`]s and [`Voltammogram`]s,
//! * closed-form cross-checks: [`cottrell_current`],
//!   [`randles_sevcik_peak`], microelectrode steady states.
//!
//! Sign convention is IUPAC throughout: anodic (oxidation) current positive.
//!
//! # Example: a cyclic voltammogram in six lines
//!
//! ```
//! use bios_electrochem::{simulate_cv, Cell, Electrode, PotentialProgram, RedoxCouple};
//! use bios_units::{Molar, Volts, VoltsPerSecond};
//!
//! # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
//! let cell = Cell::builder(Electrode::paper_gold_we()).build()?;
//! let couple = RedoxCouple::ferrocyanide();
//! let sweep = PotentialProgram::cyclic_single(
//!     Volts::new(0.55), Volts::new(-0.1),
//!     VoltsPerSecond::from_millivolts_per_second(50.0));
//! let cv = simulate_cv(&cell, &couple, Molar::from_millimolar(1.0), Molar::ZERO, &sweep)?;
//! assert!(cv.min_current().expect("nonempty").1.value() < 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod cottrell;
mod diffusion;
mod double_layer;
mod electrode;
mod error;
mod grid;
mod kinetics;
mod nernst;
mod randles_sevcik;
mod simulate;
mod solver_cache;
mod species;
mod surface;
mod swv;
mod trace;
mod tridiag;
mod waveform;

pub use cell::{Cell, CellBuilder};
pub use cottrell::{
    cottrell_charge, cottrell_current, microdisk_settling_time, microdisk_steady_state,
};
pub use diffusion::{BatchDiffusionSim, DiffusionSim};
pub use double_layer::{
    charging_settling_time, step_charging_current, sweep_charging_current, ChargingFilter,
};
pub use electrode::{Electrode, ElectrodeMaterial, Nanostructure};
pub use error::ElectrochemError;
pub use grid::Grid;
pub use kinetics::{classify_reversibility, rate_constants, Reversibility};
pub use nernst::{equilibrium_potential, nernst_ratio};
pub use randles_sevcik::{
    randles_sevcik_peak, reversible_anodic_peak_potential, reversible_cathodic_peak_potential,
    reversible_peak_separation,
};
pub use simulate::{
    simulate_chrono, simulate_chrono_fleet, simulate_chrono_with, simulate_cv, simulate_cv_with,
    SimOptions,
};
pub use solver_cache::{clear_solver_cache, solver_cache_stats};
pub use species::{RedoxCouple, RedoxCoupleBuilder};
pub use surface::SurfaceCouple;
pub use swv::{simulate_swv, SwvParams};
pub use trace::{Transient, Voltammogram};
pub use tridiag::Tridiagonal;
pub use waveform::PotentialProgram;
