//! The three-electrode electrochemical cell.

use crate::electrode::Electrode;
use crate::error::ElectrochemError;
use bios_units::{Farads, Kelvin, Ohms, T_ROOM};

/// A three-electrode cell: working electrode (WE), reference (RE), counter
/// (CE), plus the solution-side parasitics the potentiostat has to fight.
///
/// The RE and CE are assumed ideal here (the AFE crate models the control
/// loop); the cell contributes the WE geometry/kinetics, the double-layer
/// capacitance and the uncompensated solution resistance `R_u`.
///
/// # Example
///
/// ```
/// use bios_electrochem::{Cell, Electrode};
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// let cell = Cell::builder(Electrode::paper_gold_we()).build()?;
/// assert!(cell.double_layer_capacitance().as_nanofarads() > 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cell {
    working: Electrode,
    temperature: Kelvin,
    uncompensated_resistance: Ohms,
    double_layer_override: Option<Farads>,
}

impl Cell {
    /// Starts building a cell around the given working electrode.
    pub fn builder(working: Electrode) -> CellBuilder {
        CellBuilder {
            working,
            temperature: T_ROOM,
            uncompensated_resistance: Ohms::new(100.0),
            double_layer_override: None,
        }
    }

    /// The working electrode.
    pub fn working(&self) -> &Electrode {
        &self.working
    }

    /// Solution temperature.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Uncompensated solution resistance between RE tip and WE.
    pub fn uncompensated_resistance(&self) -> Ohms {
        self.uncompensated_resistance
    }

    /// Double-layer capacitance (override, or derived from the electrode).
    pub fn double_layer_capacitance(&self) -> Farads {
        self.double_layer_override
            .unwrap_or_else(|| self.working.double_layer_capacitance())
    }

    /// Cell time constant `R_u·C_dl` — sets how fast the interface charges
    /// after a potential step.
    pub fn time_constant(&self) -> bios_units::Seconds {
        bios_units::Seconds::new(
            self.uncompensated_resistance.value() * self.double_layer_capacitance().value(),
        )
    }
}

/// Builder for [`Cell`].
#[derive(Debug, Clone)]
pub struct CellBuilder {
    working: Electrode,
    temperature: Kelvin,
    uncompensated_resistance: Ohms,
    double_layer_override: Option<Farads>,
}

impl CellBuilder {
    /// Sets the solution temperature (default 25 °C).
    pub fn temperature(mut self, t: Kelvin) -> Self {
        self.temperature = t;
        self
    }

    /// Sets the uncompensated resistance (default 100 Ω).
    pub fn uncompensated_resistance(mut self, r: Ohms) -> Self {
        self.uncompensated_resistance = r;
        self
    }

    /// Overrides the double-layer capacitance instead of deriving it from
    /// the electrode material and area.
    pub fn double_layer_capacitance(mut self, c: Farads) -> Self {
        self.double_layer_override = Some(c);
        self
    }

    /// Validates and builds the cell.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for non-physical
    /// temperature, negative resistance or non-positive capacitance override.
    pub fn build(self) -> Result<Cell, ElectrochemError> {
        if self.temperature.value() <= 0.0 || !self.temperature.value().is_finite() {
            return Err(ElectrochemError::invalid(
                "temperature",
                "must be positive kelvin",
            ));
        }
        if self.uncompensated_resistance.value() < 0.0
            || !self.uncompensated_resistance.value().is_finite()
        {
            return Err(ElectrochemError::invalid(
                "uncompensated_resistance",
                "must be non-negative and finite",
            ));
        }
        if let Some(c) = self.double_layer_override {
            if c.value() <= 0.0 || !c.value().is_finite() {
                return Err(ElectrochemError::invalid(
                    "double_layer_capacitance",
                    "must be positive and finite",
                ));
            }
        }
        Ok(Cell {
            working: self.working,
            temperature: self.temperature,
            uncompensated_resistance: self.uncompensated_resistance,
            double_layer_override: self.double_layer_override,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::T_BODY;

    #[test]
    fn defaults_are_sensible() {
        let cell = Cell::builder(Electrode::paper_gold_we())
            .build()
            .expect("valid");
        assert_eq!(cell.temperature(), T_ROOM);
        assert_eq!(cell.uncompensated_resistance(), Ohms::new(100.0));
        // 0.23 mm² gold at 20 µF/cm² = 46 nF.
        assert!((cell.double_layer_capacitance().as_nanofarads() - 46.0).abs() < 0.5);
        // τ = 100 Ω · 46 nF ≈ 4.6 µs.
        assert!((cell.time_constant().as_micros() - 4.6).abs() < 0.1);
    }

    #[test]
    fn override_capacitance() {
        let cell = Cell::builder(Electrode::paper_gold_we())
            .double_layer_capacitance(Farads::from_nanofarads(100.0))
            .build()
            .expect("valid");
        assert!((cell.double_layer_capacitance().as_nanofarads() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn body_temperature_cell() {
        let cell = Cell::builder(Electrode::paper_gold_we())
            .temperature(T_BODY)
            .build()
            .expect("valid");
        assert_eq!(cell.temperature(), T_BODY);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Cell::builder(Electrode::paper_gold_we())
            .temperature(Kelvin::new(0.0))
            .build()
            .is_err());
        assert!(Cell::builder(Electrode::paper_gold_we())
            .uncompensated_resistance(Ohms::new(-1.0))
            .build()
            .is_err());
        assert!(Cell::builder(Electrode::paper_gold_we())
            .double_layer_capacitance(Farads::ZERO)
            .build()
            .is_err());
    }
}
