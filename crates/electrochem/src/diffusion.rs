//! Implicit 1-D diffusion solver with an electrode flux boundary.
//!
//! Fick's second law is discretized with finite volumes on a (possibly
//! non-uniform) [`Grid`] and stepped with backward Euler, which is
//! unconditionally stable — the cyclic-voltammetry driver can take exactly
//! one step per potential increment regardless of grid fineness.
//!
//! The electrode boundary uses an exact superposition trick: because both
//! the diffusion operator and the Butler–Volmer rate law are *linear in the
//! concentrations* (the rate constants depend only on potential), the new
//! surface concentrations can be written as `base + J·s`, where `base` is
//! the zero-flux solve, `s` the (precomputed) response to a unit surface
//! flux, and `J` the unknown flux. Substituting into the rate law yields a
//! scalar linear equation for `J` — no iteration, no stability limit.

use crate::error::ElectrochemError;
use crate::grid::Grid;
use crate::solver_cache::{self, Prefactorized};
use bios_units::{DiffusionCoefficient, MolesPerCm3, Seconds};
use std::sync::Arc;

/// One diffusing species on a grid. The per-`(grid, dt, D)` invariants —
/// factorized operator, unit-flux response, control widths — are shared
/// through the [`solver_cache`]; only the concentration field and the RHS
/// scratch buffer are owned per instance.
#[derive(Debug, Clone)]
struct SpeciesField {
    conc: Vec<f64>, // mol/cm³
    pre: Arc<Prefactorized>,
    scratch: Vec<f64>,
}

impl SpeciesField {
    fn new(grid: &Grid, d: f64, bulk: f64, dt: f64) -> Result<Self, ElectrochemError> {
        if d <= 0.0 || !d.is_finite() {
            return Err(ElectrochemError::invalid(
                "d",
                "must be positive and finite",
            ));
        }
        if bulk < 0.0 || !bulk.is_finite() {
            return Err(ElectrochemError::invalid(
                "bulk",
                "must be non-negative and finite",
            ));
        }
        if dt <= 0.0 || !dt.is_finite() {
            return Err(ElectrochemError::invalid(
                "dt",
                "must be positive and finite",
            ));
        }
        let pre = solver_cache::prefactorized(grid, d, dt)?;
        let n = grid.len();
        Ok(Self {
            conc: vec![bulk; n],
            pre,
            scratch: vec![0.0; n],
        })
    }

    /// Assembles the zero-flux RHS into `scratch` and solves in place,
    /// leaving the zero-flux solution in `scratch`. The control widths come
    /// from the prefactorization (one multiply per node, no grid lookups);
    /// the arithmetic matches the pre-cache assembly bit for bit.
    fn solve_base(&mut self, dt: f64, bulk: f64) {
        let n = self.scratch.len();
        for ((s, c), w) in self.scratch[..n - 1]
            .iter_mut()
            .zip(&self.conc)
            .zip(&self.pre.widths)
        {
            *s = c * w / dt;
        }
        self.scratch[n - 1] = bulk;
        self.pre.sys.solve_in_place(&mut self.scratch);
    }

    /// Commits `base + flux·response` as the new concentration field.
    fn commit(&mut self, flux: f64) {
        for (c, (b, r)) in self
            .conc
            .iter_mut()
            .zip(self.scratch.iter().zip(self.pre.unit_flux_response.iter()))
        {
            *c = b + flux * r;
        }
    }
}

/// Two-species (`O`/`R`) diffusion field with an electrode reaction boundary.
///
/// Concentrations are in mol/cm³ internally; fluxes in mol/(cm²·s) with
/// positive flux meaning *consumption of `O`* (reduction) at the electrode.
///
/// # Example
///
/// ```
/// use bios_electrochem::{DiffusionSim, Grid};
/// use bios_units::{DiffusionCoefficient, MolesPerCm3, Seconds};
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// let d = DiffusionCoefficient::new(1e-5);
/// let grid = Grid::for_experiment(d, Seconds::new(10.0), Seconds::new(0.01))?;
/// let mut sim = DiffusionSim::new(
///     grid,
///     d,
///     d,
///     MolesPerCm3::new(1e-6), // 1 mM of O
///     MolesPerCm3::ZERO,
///     Seconds::new(0.01),
/// )?;
/// // Diffusion-limited reduction: huge forward rate constant.
/// let flux = sim.step_with_rate_constants(1e6, 0.0);
/// assert!(flux > 0.0);
/// assert!(sim.surface_ox().value() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiffusionSim {
    grid: Grid,
    dt: f64,
    bulk_ox: f64,
    bulk_red: f64,
    ox: SpeciesField,
    red: SpeciesField,
    /// Cumulative `O` consumed through the electrode, mol/cm².
    consumed_ox: f64,
    initial_inventory_ox: f64,
    initial_inventory_red: f64,
}

impl DiffusionSim {
    /// Creates a field with uniform initial concentrations equal to the bulk
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for non-positive
    /// diffusion coefficients or time step, or negative concentrations.
    pub fn new(
        grid: Grid,
        d_ox: DiffusionCoefficient,
        d_red: DiffusionCoefficient,
        bulk_ox: MolesPerCm3,
        bulk_red: MolesPerCm3,
        dt: Seconds,
    ) -> Result<Self, ElectrochemError> {
        let ox = SpeciesField::new(&grid, d_ox.value(), bulk_ox.value(), dt.value())?;
        let red = SpeciesField::new(&grid, d_red.value(), bulk_red.value(), dt.value())?;
        let initial_inventory_ox = grid.integrate(&ox.conc);
        let initial_inventory_red = grid.integrate(&red.conc);
        Ok(Self {
            grid,
            dt: dt.value(),
            bulk_ox: bulk_ox.value(),
            bulk_red: bulk_red.value(),
            ox,
            red,
            consumed_ox: 0.0,
            initial_inventory_ox,
            initial_inventory_red,
        })
    }

    /// The time step the field was built for.
    pub fn dt(&self) -> Seconds {
        Seconds::new(self.dt)
    }

    /// The spatial grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Advances one step with Butler–Volmer rate constants `kf`, `kb` (cm/s):
    /// surface reaction `flux = kf·[O]₀ − kb·[R]₀`, solved implicitly.
    ///
    /// Returns the reaction flux in mol/(cm²·s); positive = `O` consumed
    /// (net reduction).
    pub fn step_with_rate_constants(&mut self, kf: f64, kb: f64) -> f64 {
        self.ox.solve_base(self.dt, self.bulk_ox);
        self.red.solve_base(self.dt, self.bulk_red);
        let base_o0 = self.ox.scratch[0];
        let base_r0 = self.red.scratch[0];
        let s_o0 = self.ox.pre.unit_flux_response[0]; // ≤ 0: consumption lowers [O]₀
        let s_r0 = self.red.pre.unit_flux_response[0];
        // J = kf([O]base + J·s_o0) − kb([R]base − J·s_r0)
        let denom = 1.0 - kf * s_o0 - kb * s_r0;
        let flux = (kf * base_o0 - kb * base_r0) / denom;
        self.ox.commit(flux);
        self.red.commit(-flux);
        self.consumed_ox += flux * self.dt;
        flux
    }

    /// Advances one step with a *prescribed* surface flux in mol/(cm²·s)
    /// (positive = `O` consumed, `R` produced). Used for enzyme-generated
    /// product streams where the chemistry, not the electrode, sets the rate.
    pub fn step_with_flux(&mut self, flux: f64) {
        self.ox.solve_base(self.dt, self.bulk_ox);
        self.red.solve_base(self.dt, self.bulk_red);
        self.ox.commit(flux);
        self.red.commit(-flux);
        self.consumed_ox += flux * self.dt;
    }

    /// Surface concentration of the oxidized species.
    pub fn surface_ox(&self) -> MolesPerCm3 {
        MolesPerCm3::new(self.ox.conc[0])
    }

    /// Surface concentration of the reduced species.
    pub fn surface_red(&self) -> MolesPerCm3 {
        MolesPerCm3::new(self.red.conc[0])
    }

    /// Concentration profile of the oxidized species (mol/cm³ per node).
    pub fn profile_ox(&self) -> &[f64] {
        &self.ox.conc
    }

    /// Concentration profile of the reduced species (mol/cm³ per node).
    pub fn profile_red(&self) -> &[f64] {
        &self.red.conc
    }

    /// Cumulative `O` consumed through the electrode (mol/cm²).
    pub fn consumed_ox(&self) -> f64 {
        self.consumed_ox
    }

    /// Relative mass-balance error of the `O + R` inventory.
    ///
    /// The far boundary is held at bulk concentration, so the check is only
    /// meaningful while the depletion layer has not reached the far wall —
    /// which the [`Grid::for_experiment`] sizing guarantees. A well-behaved
    /// run stays below 10⁻³.
    pub fn mass_balance_error(&self) -> f64 {
        let now_o = self.grid.integrate(&self.ox.conc);
        let now_r = self.grid.integrate(&self.red.conc);
        let initial = self.initial_inventory_ox + self.initial_inventory_red;
        // O consumed at the electrode became R (already counted in now_r),
        // so total inventory should be conserved.
        let scale = initial.abs().max(1e-30);
        ((now_o + now_r) - initial).abs() / scale
    }
}

/// One diffusing species across a whole electrode batch, stored as a
/// structure-of-arrays `[node × lane]` plane: `conc[i * batch + b]` is lane
/// `b`'s concentration at node `i`. All lanes of a node are contiguous, so
/// the per-node inner loops of assembly, sweep, and commit are unit-stride
/// and autovectorizable.
#[derive(Debug, Clone)]
struct BatchSpeciesField {
    conc: Vec<f64>, // mol/cm³, [node × lane]
    pre: Arc<Prefactorized>,
    scratch: Vec<f64>, // [node × lane]
}

impl BatchSpeciesField {
    fn new(grid: &Grid, d: f64, bulks: &[f64], dt: f64) -> Result<Self, ElectrochemError> {
        if d <= 0.0 || !d.is_finite() {
            return Err(ElectrochemError::invalid(
                "d",
                "must be positive and finite",
            ));
        }
        if bulks.iter().any(|b| *b < 0.0 || !b.is_finite()) {
            return Err(ElectrochemError::invalid(
                "bulk",
                "must be non-negative and finite",
            ));
        }
        if dt <= 0.0 || !dt.is_finite() {
            return Err(ElectrochemError::invalid(
                "dt",
                "must be positive and finite",
            ));
        }
        let pre = solver_cache::prefactorized(grid, d, dt)?;
        let n = grid.len();
        let batch = bulks.len();
        let mut conc = vec![0.0; n * batch];
        for row in conc.chunks_exact_mut(batch) {
            row.copy_from_slice(bulks);
        }
        Ok(Self {
            conc,
            pre,
            scratch: vec![0.0; n * batch],
        })
    }

    /// Zero-flux solve for every lane at once; results land in `scratch`.
    fn solve_base(&mut self, dt: f64, bulks: &[f64]) {
        self.pre
            .solve_base_batch(&self.conc, &mut self.scratch, bulks, dt);
    }

    /// Commits `base + (sign·flux_b)·response` per lane. `sign` is ±1.0;
    /// multiplying by it is an exact IEEE sign flip (or identity), so each
    /// lane reproduces the scalar `commit(flux)` / `commit(-flux)` bits.
    fn commit_scaled(&mut self, fluxes: &[f64], sign: f64) {
        let batch = fluxes.len();
        for ((crow, brow), r) in self
            .conc
            .chunks_exact_mut(batch)
            .zip(self.scratch.chunks_exact(batch))
            .zip(self.pre.unit_flux_response.iter())
        {
            for ((c, b), f) in crow.iter_mut().zip(brow).zip(fluxes) {
                *c = b + (sign * f) * r;
            }
        }
    }

    /// Copies lane `b`'s profile out of the strided plane.
    fn lane_profile(&self, batch: usize, lane: usize) -> Vec<f64> {
        self.conc[lane..].iter().step_by(batch).copied().collect()
    }
}

/// A fleet of [`DiffusionSim`]s sharing one `(grid, dt, D)` — the whole batch
/// advances with *one* Thomas sweep per species per step instead of one per
/// electrode.
///
/// Concentration planes are stored node-major (`[node × lane]`), so the sweep
/// streams each node row once and the lane loop vectorizes. Per lane, every
/// operation (RHS assembly, forward elimination, back substitution, flux
/// superposition, inventory bookkeeping) is the *same* floating-point
/// sequence as a standalone [`DiffusionSim`], which makes the batch
/// bit-identical to `batch` scalar sims — the property the equivalence
/// proptests and the bench digests pin down.
///
/// # Example
///
/// ```
/// use bios_electrochem::{BatchDiffusionSim, Grid};
/// use bios_units::{DiffusionCoefficient, MolesPerCm3, Seconds};
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// let d = DiffusionCoefficient::new(1e-5);
/// let grid = Grid::for_experiment(d, Seconds::new(10.0), Seconds::new(0.01))?;
/// let bulks = [
///     (MolesPerCm3::new(1e-6), MolesPerCm3::ZERO),
///     (MolesPerCm3::new(2e-6), MolesPerCm3::ZERO),
/// ];
/// let mut batch = BatchDiffusionSim::new(grid, d, d, &bulks, Seconds::new(0.01))?;
/// let fluxes = batch.step_with_rate_constants(&[(1e6, 0.0), (1e6, 0.0)]);
/// assert!(fluxes[1] > fluxes[0]); // twice the bulk, twice the flux
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchDiffusionSim {
    grid: Grid,
    dt: f64,
    batch: usize,
    bulk_ox: Vec<f64>,
    bulk_red: Vec<f64>,
    ox: BatchSpeciesField,
    red: BatchSpeciesField,
    consumed_ox: Vec<f64>,
    initial_inventory_ox: Vec<f64>,
    initial_inventory_red: Vec<f64>,
    /// Reused by [`Self::step_with_rate_constants`] so the convenience
    /// entry stays allocation-free per step (H1).
    flux_scratch: Vec<f64>,
}

impl BatchDiffusionSim {
    /// Creates a batch of fields, one lane per `(bulk_ox, bulk_red)` pair,
    /// all starting uniform at their bulk values.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for an empty batch,
    /// non-positive diffusion coefficients or time step, or negative
    /// concentrations.
    pub fn new(
        grid: Grid,
        d_ox: DiffusionCoefficient,
        d_red: DiffusionCoefficient,
        bulks: &[(MolesPerCm3, MolesPerCm3)],
        dt: Seconds,
    ) -> Result<Self, ElectrochemError> {
        if bulks.is_empty() {
            return Err(ElectrochemError::invalid(
                "bulks",
                "batch must contain at least one lane",
            ));
        }
        let batch = bulks.len();
        let bulk_ox: Vec<f64> = bulks.iter().map(|(o, _)| o.value()).collect();
        let bulk_red: Vec<f64> = bulks.iter().map(|(_, r)| r.value()).collect();
        let ox = BatchSpeciesField::new(&grid, d_ox.value(), &bulk_ox, dt.value())?;
        let red = BatchSpeciesField::new(&grid, d_red.value(), &bulk_red, dt.value())?;
        // Per-lane inventories mirror the scalar constructor: integrate the
        // (uniform) initial profile with the same control-width sum.
        let n = grid.len();
        let initial_inventory_ox = bulk_ox
            .iter()
            .map(|b| grid.integrate(&vec![*b; n]))
            .collect();
        let initial_inventory_red = bulk_red
            .iter()
            .map(|b| grid.integrate(&vec![*b; n]))
            .collect();
        Ok(Self {
            grid,
            dt: dt.value(),
            batch,
            bulk_ox,
            bulk_red,
            ox,
            red,
            consumed_ox: vec![0.0; batch],
            initial_inventory_ox,
            initial_inventory_red,
            flux_scratch: vec![0.0; batch],
        })
    }

    /// Number of lanes in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The time step the batch was built for.
    pub fn dt(&self) -> Seconds {
        Seconds::new(self.dt)
    }

    /// The shared spatial grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Advances every lane one step with its own Butler–Volmer rate constants
    /// `(kf, kb)`, writing the per-lane reaction fluxes (mol/(cm²·s),
    /// positive = `O` consumed) into `fluxes`.
    ///
    /// # Panics
    ///
    /// Panics if `rates` or `fluxes` don't match the batch width.
    pub fn step_with_rate_constants_into(&mut self, rates: &[(f64, f64)], fluxes: &mut [f64]) {
        assert_eq!(rates.len(), self.batch, "rate batch width mismatch");
        assert_eq!(fluxes.len(), self.batch, "flux batch width mismatch");
        self.ox.solve_base(self.dt, &self.bulk_ox);
        self.red.solve_base(self.dt, &self.bulk_red);
        let s_o0 = self.ox.pre.unit_flux_response[0];
        let s_r0 = self.red.pre.unit_flux_response[0];
        for ((f, (kf, kb)), (base_o0, base_r0)) in fluxes.iter_mut().zip(rates).zip(
            self.ox.scratch[..self.batch]
                .iter()
                .zip(&self.red.scratch[..self.batch]),
        ) {
            let denom = 1.0 - kf * s_o0 - kb * s_r0;
            *f = (kf * base_o0 - kb * base_r0) / denom;
        }
        self.ox.commit_scaled(fluxes, 1.0);
        self.red.commit_scaled(fluxes, -1.0);
        for (acc, f) in self.consumed_ox.iter_mut().zip(fluxes.iter()) {
            *acc += f * self.dt;
        }
    }

    /// Convenience wrapper around
    /// [`Self::step_with_rate_constants_into`] that lends the per-lane
    /// fluxes from a persistent scratch buffer (allocated once at
    /// construction, so stepping through here stays allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `rates` doesn't match the batch width.
    pub fn step_with_rate_constants(&mut self, rates: &[(f64, f64)]) -> &[f64] {
        let mut fluxes = std::mem::take(&mut self.flux_scratch);
        self.step_with_rate_constants_into(rates, &mut fluxes);
        self.flux_scratch = fluxes;
        &self.flux_scratch
    }

    /// Advances every lane one step with a prescribed surface flux
    /// (positive = `O` consumed, `R` produced).
    ///
    /// # Panics
    ///
    /// Panics if `fluxes` doesn't match the batch width.
    pub fn step_with_flux(&mut self, fluxes: &[f64]) {
        assert_eq!(fluxes.len(), self.batch, "flux batch width mismatch");
        self.ox.solve_base(self.dt, &self.bulk_ox);
        self.red.solve_base(self.dt, &self.bulk_red);
        self.ox.commit_scaled(fluxes, 1.0);
        self.red.commit_scaled(fluxes, -1.0);
        for (acc, f) in self.consumed_ox.iter_mut().zip(fluxes.iter()) {
            *acc += f * self.dt;
        }
    }

    /// Surface concentration of the oxidized species in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn surface_ox(&self, lane: usize) -> MolesPerCm3 {
        assert!(lane < self.batch, "lane out of bounds");
        MolesPerCm3::new(self.ox.conc[lane])
    }

    /// Surface concentration of the reduced species in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn surface_red(&self, lane: usize) -> MolesPerCm3 {
        assert!(lane < self.batch, "lane out of bounds");
        MolesPerCm3::new(self.red.conc[lane])
    }

    /// Concentration profile of the oxidized species in lane `lane`
    /// (mol/cm³ per node, copied out of the strided plane).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn profile_ox(&self, lane: usize) -> Vec<f64> {
        assert!(lane < self.batch, "lane out of bounds");
        self.ox.lane_profile(self.batch, lane)
    }

    /// Concentration profile of the reduced species in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn profile_red(&self, lane: usize) -> Vec<f64> {
        assert!(lane < self.batch, "lane out of bounds");
        self.red.lane_profile(self.batch, lane)
    }

    /// Cumulative `O` consumed through lane `lane`'s electrode (mol/cm²).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn consumed_ox(&self, lane: usize) -> f64 {
        self.consumed_ox[lane]
    }

    /// Relative mass-balance error of lane `lane`'s `O + R` inventory; same
    /// contract as [`DiffusionSim::mass_balance_error`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn mass_balance_error(&self, lane: usize) -> f64 {
        let now_o = self.grid.integrate(&self.profile_ox(lane));
        let now_r = self.grid.integrate(&self.profile_red(lane));
        let initial = self.initial_inventory_ox[lane] + self.initial_inventory_red[lane];
        let scale = initial.abs().max(1e-30);
        ((now_o + now_r) - initial).abs() / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::{Volts, FARADAY};

    fn make_sim(bulk_mol_per_cm3: f64, dt: f64, t_total: f64) -> DiffusionSim {
        let d = DiffusionCoefficient::new(1e-5);
        let grid = Grid::for_experiment(d, Seconds::new(t_total), Seconds::new(dt)).expect("grid");
        DiffusionSim::new(
            grid,
            d,
            d,
            MolesPerCm3::new(bulk_mol_per_cm3),
            MolesPerCm3::ZERO,
            Seconds::new(dt),
        )
        .expect("sim")
    }

    #[test]
    fn no_reaction_keeps_field_flat() {
        let mut sim = make_sim(1e-6, 0.01, 1.0);
        for _ in 0..100 {
            let f = sim.step_with_rate_constants(0.0, 0.0);
            assert_eq!(f, 0.0);
        }
        for c in sim.profile_ox() {
            assert!((c - 1e-6).abs() < 1e-18);
        }
        assert!(sim.mass_balance_error() < 1e-12);
    }

    #[test]
    fn diffusion_limited_step_follows_cottrell() {
        // i(t) = n F A C √(D/(π t)); flux(t) = C √(D/(π t)).
        let bulk = 1e-6; // 1 mM
        let dt = 0.001;
        let mut sim = make_sim(bulk, dt, 2.0);
        let d = 1e-5;
        let mut worst_rel = 0.0f64;
        for k in 1..=2000usize {
            let flux = sim.step_with_rate_constants(1e6, 0.0);
            let t = k as f64 * dt;
            // Skip the first few steps where the step singularity dominates.
            if t > 0.05 {
                let analytic = bulk * (d / (core::f64::consts::PI * t)).sqrt();
                let rel = ((flux - analytic) / analytic).abs();
                worst_rel = worst_rel.max(rel);
            }
        }
        assert!(worst_rel < 0.03, "worst Cottrell deviation {worst_rel}");
        assert!(
            sim.mass_balance_error() < 1e-3,
            "mass error {}",
            sim.mass_balance_error()
        );
    }

    #[test]
    fn surface_concentration_tracks_nernst_under_fast_kinetics() {
        // With very fast kinetics, surface concentrations satisfy
        // [O]/[R] = exp(nF(E−E0)/RT). Step to E = E0 → ratio 1.
        let bulk = 1e-6;
        let dt = 0.01;
        let mut sim = make_sim(bulk, dt, 10.0);
        // kf = kb = large ↔ E = E0 for α = 0.5.
        for _ in 0..1000 {
            sim.step_with_rate_constants(1e4, 1e4);
        }
        let ratio = sim.surface_ox().value() / sim.surface_red().value();
        assert!((ratio - 1.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn prescribed_flux_accumulates_product() {
        let mut sim = make_sim(0.0, 0.01, 10.0);
        // Negative flux: R consumed... here negative means O produced.
        for _ in 0..100 {
            sim.step_with_flux(-1e-12);
        }
        // O appears at the surface.
        assert!(sim.surface_ox().value() > 0.0);
        assert!((sim.consumed_ox() + 1e-12 * 0.01 * 100.0).abs() < 1e-20);
    }

    #[test]
    fn mass_balance_holds_during_partial_electrolysis() {
        let mut sim = make_sim(1e-6, 0.005, 5.0);
        for _ in 0..1000 {
            sim.step_with_rate_constants(0.05, 0.0);
        }
        assert!(
            sim.mass_balance_error() < 1e-3,
            "mass error {}",
            sim.mass_balance_error()
        );
        // O was consumed, R produced.
        assert!(sim.surface_ox().value() < 1e-6);
        assert!(sim.surface_red().value() > 0.0);
    }

    #[test]
    fn batch_matches_scalar_sims_bit_for_bit() {
        let d = DiffusionCoefficient::new(6.7e-6);
        let dt = 0.005;
        let grid = Grid::for_experiment(d, Seconds::new(1.0), Seconds::new(dt)).expect("grid");
        let bulks = [
            (MolesPerCm3::new(1e-6), MolesPerCm3::ZERO),
            (MolesPerCm3::new(2.5e-6), MolesPerCm3::new(1e-7)),
            (MolesPerCm3::ZERO, MolesPerCm3::new(5e-7)),
        ];
        let mut batch =
            BatchDiffusionSim::new(grid.clone(), d, d, &bulks, Seconds::new(dt)).expect("batch");
        let mut scalars: Vec<DiffusionSim> = bulks
            .iter()
            .map(|(o, r)| {
                DiffusionSim::new(grid.clone(), d, d, *o, *r, Seconds::new(dt)).expect("sim")
            })
            .collect();
        // Heterogeneous per-lane kinetics, varying per step.
        for k in 0..50usize {
            let rates: Vec<(f64, f64)> = (0..bulks.len())
                .map(|b| {
                    let kf = 1e-3 * (1.0 + b as f64) * (1.0 + 0.1 * (k % 7) as f64);
                    let kb = 2e-4 * (1.0 + 0.05 * b as f64);
                    (kf, kb)
                })
                .collect();
            let fluxes = batch.step_with_rate_constants(&rates);
            for (b, sim) in scalars.iter_mut().enumerate() {
                let f = sim.step_with_rate_constants(rates[b].0, rates[b].1);
                assert_eq!(f.to_bits(), fluxes[b].to_bits(), "step {k} lane {b}");
            }
        }
        for (b, sim) in scalars.iter().enumerate() {
            assert_eq!(
                batch.surface_ox(b).value().to_bits(),
                sim.surface_ox().value().to_bits()
            );
            assert_eq!(batch.consumed_ox(b).to_bits(), sim.consumed_ox().to_bits());
            let bp = batch.profile_ox(b);
            for (x, y) in bp.iter().zip(sim.profile_ox()) {
                assert_eq!(x.to_bits(), y.to_bits(), "lane {b}");
            }
            let bp = batch.profile_red(b);
            for (x, y) in bp.iter().zip(sim.profile_red()) {
                assert_eq!(x.to_bits(), y.to_bits(), "lane {b}");
            }
            assert_eq!(
                batch.mass_balance_error(b).to_bits(),
                sim.mass_balance_error().to_bits()
            );
        }
    }

    #[test]
    fn batch_prescribed_flux_matches_scalar() {
        let d = DiffusionCoefficient::new(1e-5);
        let dt = 0.01;
        let grid = Grid::for_experiment(d, Seconds::new(5.0), Seconds::new(dt)).expect("grid");
        let bulks = [
            (MolesPerCm3::ZERO, MolesPerCm3::ZERO),
            (MolesPerCm3::new(1e-6), MolesPerCm3::ZERO),
        ];
        let mut batch =
            BatchDiffusionSim::new(grid.clone(), d, d, &bulks, Seconds::new(dt)).expect("batch");
        let mut scalars: Vec<DiffusionSim> = bulks
            .iter()
            .map(|(o, r)| {
                DiffusionSim::new(grid.clone(), d, d, *o, *r, Seconds::new(dt)).expect("sim")
            })
            .collect();
        for k in 0..40usize {
            let fluxes = [-1e-12 * (1.0 + k as f64 * 0.01), 3e-13];
            batch.step_with_flux(&fluxes);
            for (b, sim) in scalars.iter_mut().enumerate() {
                sim.step_with_flux(fluxes[b]);
            }
        }
        for (b, sim) in scalars.iter().enumerate() {
            assert_eq!(
                batch.surface_ox(b).value().to_bits(),
                sim.surface_ox().value().to_bits()
            );
            assert_eq!(batch.consumed_ox(b).to_bits(), sim.consumed_ox().to_bits());
        }
    }

    #[test]
    fn batch_rejects_degenerate_inputs() {
        let d = DiffusionCoefficient::new(1e-5);
        let grid = Grid::for_experiment(d, Seconds::new(1.0), Seconds::new(0.01)).expect("grid");
        assert!(BatchDiffusionSim::new(grid.clone(), d, d, &[], Seconds::new(0.01)).is_err());
        assert!(BatchDiffusionSim::new(
            grid,
            d,
            d,
            &[(MolesPerCm3::new(-1.0), MolesPerCm3::ZERO)],
            Seconds::new(0.01),
        )
        .is_err());
    }

    #[test]
    fn flux_to_current_density_conversion_sane() {
        // 1 mM, diffusion-limited at t = 1 s, n = 1:
        // i = F·C·√(D/πt) ≈ 96485·1e-6·1.784e-3 ≈ 0.17 mA/cm².
        let bulk = 1e-6;
        let dt = 0.001;
        let mut sim = make_sim(bulk, dt, 1.5);
        let mut flux_at_1s = 0.0;
        for k in 1..=1000usize {
            flux_at_1s = sim.step_with_rate_constants(1e6, 0.0);
            let _ = k;
        }
        let i = FARADAY * flux_at_1s; // A/cm²
        assert!((i - 1.72e-4).abs() < 1e-5, "i = {i}");
        let _ = Volts::ZERO; // keep the import used in all cfgs
    }
}
