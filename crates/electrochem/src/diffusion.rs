//! Implicit 1-D diffusion solver with an electrode flux boundary.
//!
//! Fick's second law is discretized with finite volumes on a (possibly
//! non-uniform) [`Grid`] and stepped with backward Euler, which is
//! unconditionally stable — the cyclic-voltammetry driver can take exactly
//! one step per potential increment regardless of grid fineness.
//!
//! The electrode boundary uses an exact superposition trick: because both
//! the diffusion operator and the Butler–Volmer rate law are *linear in the
//! concentrations* (the rate constants depend only on potential), the new
//! surface concentrations can be written as `base + J·s`, where `base` is
//! the zero-flux solve, `s` the (precomputed) response to a unit surface
//! flux, and `J` the unknown flux. Substituting into the rate law yields a
//! scalar linear equation for `J` — no iteration, no stability limit.

use crate::error::ElectrochemError;
use crate::grid::Grid;
use crate::solver_cache::{self, Prefactorized};
use bios_units::{DiffusionCoefficient, MolesPerCm3, Seconds};
use std::sync::Arc;

/// One diffusing species on a grid. The per-`(grid, dt, D)` invariants —
/// factorized operator, unit-flux response, control widths — are shared
/// through the [`solver_cache`]; only the concentration field and the RHS
/// scratch buffer are owned per instance.
#[derive(Debug, Clone)]
struct SpeciesField {
    conc: Vec<f64>, // mol/cm³
    pre: Arc<Prefactorized>,
    scratch: Vec<f64>,
}

impl SpeciesField {
    fn new(grid: &Grid, d: f64, bulk: f64, dt: f64) -> Result<Self, ElectrochemError> {
        if d <= 0.0 || !d.is_finite() {
            return Err(ElectrochemError::invalid(
                "d",
                "must be positive and finite",
            ));
        }
        if bulk < 0.0 || !bulk.is_finite() {
            return Err(ElectrochemError::invalid(
                "bulk",
                "must be non-negative and finite",
            ));
        }
        if dt <= 0.0 || !dt.is_finite() {
            return Err(ElectrochemError::invalid(
                "dt",
                "must be positive and finite",
            ));
        }
        let pre = solver_cache::prefactorized(grid, d, dt)?;
        let n = grid.len();
        Ok(Self {
            conc: vec![bulk; n],
            pre,
            scratch: vec![0.0; n],
        })
    }

    /// Assembles the zero-flux RHS into `scratch` and solves in place,
    /// leaving the zero-flux solution in `scratch`. The control widths come
    /// from the prefactorization (one multiply per node, no grid lookups);
    /// the arithmetic matches the pre-cache assembly bit for bit.
    fn solve_base(&mut self, dt: f64, bulk: f64) {
        let n = self.scratch.len();
        for ((s, c), w) in self.scratch[..n - 1]
            .iter_mut()
            .zip(&self.conc)
            .zip(&self.pre.widths)
        {
            *s = c * w / dt;
        }
        self.scratch[n - 1] = bulk;
        self.pre.sys.solve_in_place(&mut self.scratch);
    }

    /// Commits `base + flux·response` as the new concentration field.
    fn commit(&mut self, flux: f64) {
        for (c, (b, r)) in self
            .conc
            .iter_mut()
            .zip(self.scratch.iter().zip(self.pre.unit_flux_response.iter()))
        {
            *c = b + flux * r;
        }
    }
}

/// Two-species (`O`/`R`) diffusion field with an electrode reaction boundary.
///
/// Concentrations are in mol/cm³ internally; fluxes in mol/(cm²·s) with
/// positive flux meaning *consumption of `O`* (reduction) at the electrode.
///
/// # Example
///
/// ```
/// use bios_electrochem::{DiffusionSim, Grid};
/// use bios_units::{DiffusionCoefficient, MolesPerCm3, Seconds};
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// let d = DiffusionCoefficient::new(1e-5);
/// let grid = Grid::for_experiment(d, Seconds::new(10.0), Seconds::new(0.01))?;
/// let mut sim = DiffusionSim::new(
///     grid,
///     d,
///     d,
///     MolesPerCm3::new(1e-6), // 1 mM of O
///     MolesPerCm3::ZERO,
///     Seconds::new(0.01),
/// )?;
/// // Diffusion-limited reduction: huge forward rate constant.
/// let flux = sim.step_with_rate_constants(1e6, 0.0);
/// assert!(flux > 0.0);
/// assert!(sim.surface_ox().value() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiffusionSim {
    grid: Grid,
    dt: f64,
    bulk_ox: f64,
    bulk_red: f64,
    ox: SpeciesField,
    red: SpeciesField,
    /// Cumulative `O` consumed through the electrode, mol/cm².
    consumed_ox: f64,
    initial_inventory_ox: f64,
    initial_inventory_red: f64,
}

impl DiffusionSim {
    /// Creates a field with uniform initial concentrations equal to the bulk
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for non-positive
    /// diffusion coefficients or time step, or negative concentrations.
    pub fn new(
        grid: Grid,
        d_ox: DiffusionCoefficient,
        d_red: DiffusionCoefficient,
        bulk_ox: MolesPerCm3,
        bulk_red: MolesPerCm3,
        dt: Seconds,
    ) -> Result<Self, ElectrochemError> {
        let ox = SpeciesField::new(&grid, d_ox.value(), bulk_ox.value(), dt.value())?;
        let red = SpeciesField::new(&grid, d_red.value(), bulk_red.value(), dt.value())?;
        let initial_inventory_ox = grid.integrate(&ox.conc);
        let initial_inventory_red = grid.integrate(&red.conc);
        Ok(Self {
            grid,
            dt: dt.value(),
            bulk_ox: bulk_ox.value(),
            bulk_red: bulk_red.value(),
            ox,
            red,
            consumed_ox: 0.0,
            initial_inventory_ox,
            initial_inventory_red,
        })
    }

    /// The time step the field was built for.
    pub fn dt(&self) -> Seconds {
        Seconds::new(self.dt)
    }

    /// The spatial grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Advances one step with Butler–Volmer rate constants `kf`, `kb` (cm/s):
    /// surface reaction `flux = kf·[O]₀ − kb·[R]₀`, solved implicitly.
    ///
    /// Returns the reaction flux in mol/(cm²·s); positive = `O` consumed
    /// (net reduction).
    pub fn step_with_rate_constants(&mut self, kf: f64, kb: f64) -> f64 {
        self.ox.solve_base(self.dt, self.bulk_ox);
        self.red.solve_base(self.dt, self.bulk_red);
        let base_o0 = self.ox.scratch[0];
        let base_r0 = self.red.scratch[0];
        let s_o0 = self.ox.pre.unit_flux_response[0]; // ≤ 0: consumption lowers [O]₀
        let s_r0 = self.red.pre.unit_flux_response[0];
        // J = kf([O]base + J·s_o0) − kb([R]base − J·s_r0)
        let denom = 1.0 - kf * s_o0 - kb * s_r0;
        let flux = (kf * base_o0 - kb * base_r0) / denom;
        self.ox.commit(flux);
        self.red.commit(-flux);
        self.consumed_ox += flux * self.dt;
        flux
    }

    /// Advances one step with a *prescribed* surface flux in mol/(cm²·s)
    /// (positive = `O` consumed, `R` produced). Used for enzyme-generated
    /// product streams where the chemistry, not the electrode, sets the rate.
    pub fn step_with_flux(&mut self, flux: f64) {
        self.ox.solve_base(self.dt, self.bulk_ox);
        self.red.solve_base(self.dt, self.bulk_red);
        self.ox.commit(flux);
        self.red.commit(-flux);
        self.consumed_ox += flux * self.dt;
    }

    /// Surface concentration of the oxidized species.
    pub fn surface_ox(&self) -> MolesPerCm3 {
        MolesPerCm3::new(self.ox.conc[0])
    }

    /// Surface concentration of the reduced species.
    pub fn surface_red(&self) -> MolesPerCm3 {
        MolesPerCm3::new(self.red.conc[0])
    }

    /// Concentration profile of the oxidized species (mol/cm³ per node).
    pub fn profile_ox(&self) -> &[f64] {
        &self.ox.conc
    }

    /// Concentration profile of the reduced species (mol/cm³ per node).
    pub fn profile_red(&self) -> &[f64] {
        &self.red.conc
    }

    /// Cumulative `O` consumed through the electrode (mol/cm²).
    pub fn consumed_ox(&self) -> f64 {
        self.consumed_ox
    }

    /// Relative mass-balance error of the `O + R` inventory.
    ///
    /// The far boundary is held at bulk concentration, so the check is only
    /// meaningful while the depletion layer has not reached the far wall —
    /// which the [`Grid::for_experiment`] sizing guarantees. A well-behaved
    /// run stays below 10⁻³.
    pub fn mass_balance_error(&self) -> f64 {
        let now_o = self.grid.integrate(&self.ox.conc);
        let now_r = self.grid.integrate(&self.red.conc);
        let initial = self.initial_inventory_ox + self.initial_inventory_red;
        // O consumed at the electrode became R (already counted in now_r),
        // so total inventory should be conserved.
        let scale = initial.abs().max(1e-30);
        ((now_o + now_r) - initial).abs() / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::{Volts, FARADAY};

    fn make_sim(bulk_mol_per_cm3: f64, dt: f64, t_total: f64) -> DiffusionSim {
        let d = DiffusionCoefficient::new(1e-5);
        let grid = Grid::for_experiment(d, Seconds::new(t_total), Seconds::new(dt)).expect("grid");
        DiffusionSim::new(
            grid,
            d,
            d,
            MolesPerCm3::new(bulk_mol_per_cm3),
            MolesPerCm3::ZERO,
            Seconds::new(dt),
        )
        .expect("sim")
    }

    #[test]
    fn no_reaction_keeps_field_flat() {
        let mut sim = make_sim(1e-6, 0.01, 1.0);
        for _ in 0..100 {
            let f = sim.step_with_rate_constants(0.0, 0.0);
            assert_eq!(f, 0.0);
        }
        for c in sim.profile_ox() {
            assert!((c - 1e-6).abs() < 1e-18);
        }
        assert!(sim.mass_balance_error() < 1e-12);
    }

    #[test]
    fn diffusion_limited_step_follows_cottrell() {
        // i(t) = n F A C √(D/(π t)); flux(t) = C √(D/(π t)).
        let bulk = 1e-6; // 1 mM
        let dt = 0.001;
        let mut sim = make_sim(bulk, dt, 2.0);
        let d = 1e-5;
        let mut worst_rel = 0.0f64;
        for k in 1..=2000usize {
            let flux = sim.step_with_rate_constants(1e6, 0.0);
            let t = k as f64 * dt;
            // Skip the first few steps where the step singularity dominates.
            if t > 0.05 {
                let analytic = bulk * (d / (core::f64::consts::PI * t)).sqrt();
                let rel = ((flux - analytic) / analytic).abs();
                worst_rel = worst_rel.max(rel);
            }
        }
        assert!(worst_rel < 0.03, "worst Cottrell deviation {worst_rel}");
        assert!(
            sim.mass_balance_error() < 1e-3,
            "mass error {}",
            sim.mass_balance_error()
        );
    }

    #[test]
    fn surface_concentration_tracks_nernst_under_fast_kinetics() {
        // With very fast kinetics, surface concentrations satisfy
        // [O]/[R] = exp(nF(E−E0)/RT). Step to E = E0 → ratio 1.
        let bulk = 1e-6;
        let dt = 0.01;
        let mut sim = make_sim(bulk, dt, 10.0);
        // kf = kb = large ↔ E = E0 for α = 0.5.
        for _ in 0..1000 {
            sim.step_with_rate_constants(1e4, 1e4);
        }
        let ratio = sim.surface_ox().value() / sim.surface_red().value();
        assert!((ratio - 1.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn prescribed_flux_accumulates_product() {
        let mut sim = make_sim(0.0, 0.01, 10.0);
        // Negative flux: R consumed... here negative means O produced.
        for _ in 0..100 {
            sim.step_with_flux(-1e-12);
        }
        // O appears at the surface.
        assert!(sim.surface_ox().value() > 0.0);
        assert!((sim.consumed_ox() + 1e-12 * 0.01 * 100.0).abs() < 1e-20);
    }

    #[test]
    fn mass_balance_holds_during_partial_electrolysis() {
        let mut sim = make_sim(1e-6, 0.005, 5.0);
        for _ in 0..1000 {
            sim.step_with_rate_constants(0.05, 0.0);
        }
        assert!(
            sim.mass_balance_error() < 1e-3,
            "mass error {}",
            sim.mass_balance_error()
        );
        // O was consumed, R produced.
        assert!(sim.surface_ox().value() < 1e-6);
        assert!(sim.surface_red().value() > 0.0);
    }

    #[test]
    fn flux_to_current_density_conversion_sane() {
        // 1 mM, diffusion-limited at t = 1 s, n = 1:
        // i = F·C·√(D/πt) ≈ 96485·1e-6·1.784e-3 ≈ 0.17 mA/cm².
        let bulk = 1e-6;
        let dt = 0.001;
        let mut sim = make_sim(bulk, dt, 1.5);
        let mut flux_at_1s = 0.0;
        for k in 1..=1000usize {
            flux_at_1s = sim.step_with_rate_constants(1e6, 0.0);
            let _ = k;
        }
        let i = FARADAY * flux_at_1s; // A/cm²
        assert!((i - 1.72e-4).abs() < 1e-5, "i = {i}");
        let _ = Volts::ZERO; // keep the import used in all cfgs
    }
}
