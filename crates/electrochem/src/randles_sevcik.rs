//! Randles–Ševčík relations for reversible cyclic voltammetry — the
//! closed-form benchmarks the CV simulator must reproduce.

use crate::species::RedoxCouple;
use bios_units::{
    Amps, Kelvin, Molar, SquareCentimeters, Volts, VoltsPerSecond, FARADAY, GAS_CONSTANT,
};

/// Reversible CV peak current magnitude:
/// `i_p = 0.4463·n·F·A·C·√(n·F·v·D/(R·T))`.
///
/// # Example
///
/// ```
/// use bios_electrochem::{randles_sevcik_peak, RedoxCouple};
/// use bios_units::{Molar, SquareCentimeters, T_ROOM, VoltsPerSecond};
///
/// let c = RedoxCouple::ferrocyanide();
/// let ip = randles_sevcik_peak(
///     &c,
///     SquareCentimeters::new(0.01),
///     Molar::from_millimolar(1.0),
///     VoltsPerSecond::from_millivolts_per_second(20.0),
///     T_ROOM,
/// );
/// // ≈ 0.98 µA for these parameters.
/// assert!((ip.as_microamps() - 0.98).abs() < 0.02);
/// ```
pub fn randles_sevcik_peak(
    couple: &RedoxCouple,
    area: SquareCentimeters,
    bulk: Molar,
    scan_rate: VoltsPerSecond,
    temperature: Kelvin,
) -> Amps {
    let n = couple.electrons() as f64;
    let d = couple.diffusion_ox().value();
    let c = bulk.to_moles_per_cm3().value();
    let f_over_rt = FARADAY / (GAS_CONSTANT * temperature.value());
    Amps::new(
        0.4463 * n * FARADAY * area.value() * c * (n * f_over_rt * scan_rate.value() * d).sqrt(),
    )
}

/// Cathodic peak potential of a reversible reduction:
/// `E_p = E⁰' − 1.109·RT/(nF)` (≈ `E⁰' − 28.5/n` mV at 25 °C).
pub fn reversible_cathodic_peak_potential(couple: &RedoxCouple, temperature: Kelvin) -> Volts {
    let shift = 1.109 * GAS_CONSTANT * temperature.value() / (couple.electrons() as f64 * FARADAY);
    Volts::new(couple.formal_potential().value() - shift)
}

/// Anodic peak potential of a reversible oxidation:
/// `E_p = E⁰' + 1.109·RT/(nF)`.
pub fn reversible_anodic_peak_potential(couple: &RedoxCouple, temperature: Kelvin) -> Volts {
    let shift = 1.109 * GAS_CONSTANT * temperature.value() / (couple.electrons() as f64 * FARADAY);
    Volts::new(couple.formal_potential().value() + shift)
}

/// Reversible peak-to-peak separation `ΔE_p ≈ 2.218·RT/(nF)`
/// (≈ 57/n mV at 25 °C) — the classic reversibility diagnostic.
pub fn reversible_peak_separation(couple: &RedoxCouple, temperature: Kelvin) -> Volts {
    Volts::new(2.218 * GAS_CONSTANT * temperature.value() / (couple.electrons() as f64 * FARADAY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::T_ROOM;

    #[test]
    fn peak_scales_with_sqrt_scan_rate() {
        let c = RedoxCouple::ferrocyanide();
        let a = SquareCentimeters::new(0.01);
        let conc = Molar::from_millimolar(1.0);
        let i1 = randles_sevcik_peak(&c, a, conc, VoltsPerSecond::new(0.02), T_ROOM);
        let i4 = randles_sevcik_peak(&c, a, conc, VoltsPerSecond::new(0.08), T_ROOM);
        assert!((i4.value() / i1.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn peak_linear_in_concentration() {
        let c = RedoxCouple::ferrocyanide();
        let a = SquareCentimeters::new(0.01);
        let v = VoltsPerSecond::new(0.02);
        let i1 = randles_sevcik_peak(&c, a, Molar::from_millimolar(1.0), v, T_ROOM);
        let i3 = randles_sevcik_peak(&c, a, Molar::from_millimolar(3.0), v, T_ROOM);
        assert!((i3.value() / i1.value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn peak_potentials_bracket_formal_potential() {
        let c = RedoxCouple::ferrocyanide();
        let ec = reversible_cathodic_peak_potential(&c, T_ROOM);
        let ea = reversible_anodic_peak_potential(&c, T_ROOM);
        assert!(ec.value() < c.formal_potential().value());
        assert!(ea.value() > c.formal_potential().value());
        // 28.5 mV shifts at room temperature for n = 1.
        assert!(((c.formal_potential() - ec).as_millivolts() - 28.5).abs() < 0.2);
        let sep = reversible_peak_separation(&c, T_ROOM);
        assert!((sep.as_millivolts() - 57.0).abs() < 0.5);
    }

    #[test]
    fn multi_electron_compresses_separation() {
        let c2 = RedoxCouple::builder("x")
            .electrons(2)
            .build()
            .expect("valid");
        let sep = reversible_peak_separation(&c2, T_ROOM);
        assert!((sep.as_millivolts() - 28.5).abs() < 0.3);
    }
}
