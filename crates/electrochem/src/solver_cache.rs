//! Process-wide prefactorization cache for the implicit diffusion solver.
//!
//! The backward-Euler tridiagonal system of a [`SpeciesField`] depends only
//! on `(grid, dt, D)` — not on concentrations — so its Thomas
//! forward-elimination coefficients, unit-flux response and finite-volume
//! control widths are constant across timesteps *and* across simulations.
//! Protocol drivers rebuild a [`DiffusionSim`](crate::DiffusionSim) per
//! measurement (every session, every retry, every calibration point), which
//! used to re-assemble and re-factorize the same few systems thousands of
//! times. This cache shares one immutable [`Prefactorized`] per exact
//! `(grid, dt, D)` triple behind an [`Arc`].
//!
//! Keys compare the *bit patterns* of every node position, `dt` and `D`, so
//! a hit is only possible for inputs that would have produced a bit-identical
//! factorization — the cache can never change a simulation result, only skip
//! recomputing it. The map is bounded ([`CACHE_CAP`] entries) and clears
//! wholesale when full; hit/miss counters feed the perf harness.
//!
//! [`SpeciesField`]: crate::diffusion::DiffusionSim

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::ElectrochemError;
use crate::grid::Grid;
use crate::tridiag::Tridiagonal;

/// Everything about a species field that is invariant across timesteps and
/// concentrations: the factorized system, its unit-flux response, and the
/// grid's control widths (hoisted out of the per-step RHS assembly).
#[derive(Debug)]
pub(crate) struct Prefactorized {
    /// The factorized backward-Euler operator.
    pub sys: Tridiagonal,
    /// Response of the field to a unit surface flux over one step.
    pub unit_flux_response: Vec<f64>,
    /// `Grid::control_width(i)` for every node.
    pub widths: Vec<f64>,
}

impl Prefactorized {
    /// Assembles the zero-flux backward-Euler RHS for a whole `[node × lane]`
    /// concentration plane and solves it with one batched Thomas sweep,
    /// leaving the zero-flux solutions in `scratch` (same layout). Lane `b`
    /// performs the exact scalar operation sequence (`c·w/dt` assembly, then
    /// the factorized sweep), so each lane is bit-identical to a scalar
    /// `SpeciesField` stepping alone — the factorization is computed once per
    /// `(grid, dt, D)` and amortized across the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `bulks` is empty or the plane sizes don't match
    /// `nodes × bulks.len()`.
    pub(crate) fn solve_base_batch(
        &self,
        conc: &[f64],
        scratch: &mut [f64],
        bulks: &[f64],
        dt: f64,
    ) {
        let n = self.widths.len();
        let batch = bulks.len();
        assert!(batch > 0, "batch must be nonzero");
        assert_eq!(conc.len(), n * batch, "concentration plane size mismatch");
        assert_eq!(scratch.len(), n * batch, "scratch plane size mismatch");
        for (i, w) in self.widths[..n - 1].iter().enumerate() {
            let row = i * batch;
            for (s, c) in scratch[row..row + batch]
                .iter_mut()
                .zip(&conc[row..row + batch])
            {
                *s = c * w / dt;
            }
        }
        scratch[(n - 1) * batch..].copy_from_slice(bulks);
        self.sys.solve_batch_in_place(scratch, batch);
    }

    /// Assembles and factorizes the system — the code that used to live in
    /// `SpeciesField::new`, unchanged operation for operation.
    fn build(grid: &Grid, d: f64, dt: f64) -> Result<Self, ElectrochemError> {
        let n = grid.len();
        let mut lower = vec![0.0; n - 1];
        let mut main = vec![0.0; n];
        let mut upper = vec![0.0; n - 1];
        // Interior nodes: w_i/dt·c_i - D/h_{i-1}·c_{i-1} - D/h_i·c_{i+1}
        //                 + (D/h_{i-1} + D/h_i)·c_i = w_i/dt·c_i_old
        for i in 1..n - 1 {
            let a = d / grid.spacing(i - 1);
            let g = d / grid.spacing(i);
            let w = grid.control_width(i);
            lower[i - 1] = -a;
            upper[i] = -g;
            main[i] = w / dt + a + g;
        }
        // Surface node 0: flux boundary (flux enters the RHS).
        let g0 = d / grid.spacing(0);
        main[0] = grid.control_width(0) / dt + g0;
        upper[0] = -g0;
        // Far node: Dirichlet at bulk concentration.
        main[n - 1] = 1.0;
        lower[n - 2] = 0.0;
        let sys = Tridiagonal::new(lower, main, upper)?;
        // Unit-flux response: RHS = -1 at node 0 (consumption), 0 elsewhere,
        // homogeneous far boundary.
        let mut rhs = vec![0.0; n];
        rhs[0] = -1.0;
        let unit_flux_response = sys.solve(&rhs)?;
        let widths = (0..n).map(|i| grid.control_width(i)).collect();
        Ok(Self {
            sys,
            unit_flux_response,
            widths,
        })
    }
}

/// Exact cache key: the bit patterns of every quantity the factorization
/// depends on. No hashing shortcut — two keys are equal iff the assembled
/// systems would be bit-identical.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Key {
    positions: Vec<u64>,
    d_bits: u64,
    dt_bits: u64,
}

impl Key {
    fn new(grid: &Grid, d: f64, dt: f64) -> Self {
        Self {
            positions: grid.positions().iter().map(|x| x.to_bits()).collect(),
            d_bits: d.to_bits(),
            dt_bits: dt.to_bits(),
        }
    }
}

/// Bound on distinct factorizations kept alive; a platform session uses a
/// handful, so eviction is a wholesale clear rather than LRU bookkeeping.
const CACHE_CAP: usize = 256;

static CACHE: OnceLock<Mutex<BTreeMap<Key, Arc<Prefactorized>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<BTreeMap<Key, Arc<Prefactorized>>> {
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the shared factorization for `(grid, d, dt)`, building it on the
/// first request.
pub(crate) fn prefactorized(
    grid: &Grid,
    d: f64,
    dt: f64,
) -> Result<Arc<Prefactorized>, ElectrochemError> {
    let key = Key::new(grid, d, dt);
    if let Ok(map) = cache().lock() {
        if let Some(hit) = map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let built = Arc::new(Prefactorized::build(grid, d, dt)?);
    // A poisoned cache (a panic while another thread held the lock) degrades
    // to serving the freshly built factorization uncached.
    let Ok(mut map) = cache().lock() else {
        return Ok(built);
    };
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    // Two threads may race to build the same key; keep the first insert so
    // every caller shares one allocation.
    let entry = map.entry(key).or_insert_with(|| Arc::clone(&built));
    Ok(Arc::clone(entry))
}

/// Empties the cache and resets the hit/miss counters (perf-harness use:
/// timing a cold run after a warm one).
pub fn clear_solver_cache() {
    if let Ok(mut map) = cache().lock() {
        map.clear();
    }
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// `(hits, misses)` since process start or the last
/// [`clear_solver_cache`].
pub fn solver_cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::{Centimeters, DiffusionCoefficient, Seconds};

    #[test]
    fn identical_inputs_share_one_factorization() {
        clear_solver_cache();
        let grid = Grid::for_experiment(
            DiffusionCoefficient::new(1e-5),
            Seconds::new(1.0),
            Seconds::new(0.01),
        )
        .expect("grid");
        let a = prefactorized(&grid, 1e-5, 0.01).expect("build");
        let b = prefactorized(&grid, 1e-5, 0.01).expect("build");
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        let (hits, misses) = solver_cache_stats();
        assert!(hits >= 1 && misses >= 1, "hits {hits} misses {misses}");
    }

    #[test]
    fn distinct_inputs_do_not_collide() {
        let grid = Grid::for_experiment(
            DiffusionCoefficient::new(1e-5),
            Seconds::new(1.0),
            Seconds::new(0.01),
        )
        .expect("grid");
        let a = prefactorized(&grid, 1e-5, 0.01).expect("build");
        let b = prefactorized(&grid, 2e-5, 0.01).expect("build");
        let c = prefactorized(&grid, 1e-5, 0.02).expect("build");
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_ne!(a.sys, b.sys);
    }

    #[test]
    fn cached_factorization_matches_fresh_build() {
        let grid =
            Grid::expanding(Centimeters::new(1e-4), 1.1, Centimeters::new(0.05)).expect("grid");
        let cached = prefactorized(&grid, 7.6e-6, 0.005).expect("build");
        let fresh = Prefactorized::build(&grid, 7.6e-6, 0.005).expect("build");
        assert_eq!(cached.sys, fresh.sys);
        assert_eq!(cached.unit_flux_response, fresh.unit_flux_response);
        assert_eq!(cached.widths, fresh.widths);
    }
}
