//! Potential programs: what the voltage generator applies to the cell.
//!
//! The paper's platform needs "a voltage generator that generates a fixed or
//! variable voltage" (§II-C): fixed holds for chronoamperometry, triangular
//! sweeps for cyclic voltammetry. Programs here are pure descriptions; the
//! AFE crate adds DAC quantization and slew limits on top.

use crate::error::ElectrochemError;
use bios_units::{Seconds, Volts, VoltsPerSecond};

/// A time-parameterized potential program applied between RE and WE.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PotentialProgram {
    /// Constant potential for a duration (single-target chronoamperometry).
    Hold {
        /// Applied potential.
        potential: Volts,
        /// Total duration.
        duration: Seconds,
    },
    /// Potential step at a given time (classic Cottrell experiment).
    Step {
        /// Potential before the step.
        initial: Volts,
        /// Potential after the step.
        stepped: Volts,
        /// Step instant.
        at: Seconds,
        /// Total duration.
        duration: Seconds,
    },
    /// Single linear sweep from one potential to another.
    LinearSweep {
        /// Start potential.
        from: Volts,
        /// End potential.
        to: Volts,
        /// Magnitude of the scan rate.
        rate: VoltsPerSecond,
    },
    /// Cyclic voltammetry: start → vertex1 → vertex2 → start, repeated.
    Cyclic {
        /// Start (and end) potential of each cycle.
        start: Volts,
        /// First vertex.
        vertex1: Volts,
        /// Second vertex.
        vertex2: Volts,
        /// Magnitude of the scan rate.
        rate: VoltsPerSecond,
        /// Number of full cycles.
        cycles: u32,
    },
    /// Staircase sweep: discrete potential steps of `step_height` held for
    /// `step_duration` each — what a DAC-driven sweep really looks like,
    /// and the base waveform of square-wave voltammetry.
    Staircase {
        /// Start potential.
        from: Volts,
        /// End potential (inclusive of the final tread).
        to: Volts,
        /// Magnitude of one step.
        step_height: Volts,
        /// Dwell on each tread.
        step_duration: Seconds,
    },
}

impl PotentialProgram {
    /// A one-cycle CV sweep `start → vertex → start`, the shape used for the
    /// paper's CYP reduction scans.
    ///
    /// # Example
    ///
    /// ```
    /// use bios_electrochem::PotentialProgram;
    /// use bios_units::{Volts, VoltsPerSecond};
    ///
    /// let cv = PotentialProgram::cyclic_single(
    ///     Volts::new(0.1),
    ///     Volts::new(-0.8),
    ///     VoltsPerSecond::from_millivolts_per_second(20.0),
    /// );
    /// // 0.9 V down + 0.9 V up at 20 mV/s = 90 s.
    /// assert!((cv.duration().value() - 90.0).abs() < 1e-9);
    /// ```
    pub fn cyclic_single(start: Volts, vertex: Volts, rate: VoltsPerSecond) -> Self {
        PotentialProgram::Cyclic {
            start,
            vertex1: vertex,
            vertex2: start,
            rate,
            cycles: 1,
        }
    }

    /// Validates the program's physical parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for non-positive
    /// durations or scan rates, zero-width sweeps, or zero cycle counts.
    pub fn validate(&self) -> Result<(), ElectrochemError> {
        match self {
            PotentialProgram::Hold { duration, .. } => {
                if duration.value() <= 0.0 {
                    return Err(ElectrochemError::invalid("duration", "must be positive"));
                }
            }
            PotentialProgram::Step { at, duration, .. } => {
                if duration.value() <= 0.0 {
                    return Err(ElectrochemError::invalid("duration", "must be positive"));
                }
                if at.value() < 0.0 || at.value() >= duration.value() {
                    return Err(ElectrochemError::invalid(
                        "at",
                        "step time must lie inside the program duration",
                    ));
                }
            }
            PotentialProgram::LinearSweep { from, to, rate } => {
                if rate.value() <= 0.0 {
                    return Err(ElectrochemError::invalid("rate", "must be positive"));
                }
                // advdiag::allow(F1, exact sentinel: zero sweep span means a hold, not a ramp)
                if (from.value() - to.value()).abs() == 0.0 {
                    return Err(ElectrochemError::invalid(
                        "to",
                        "sweep must have nonzero span",
                    ));
                }
            }
            PotentialProgram::Cyclic {
                start,
                vertex1,
                rate,
                cycles,
                ..
            } => {
                if rate.value() <= 0.0 {
                    return Err(ElectrochemError::invalid("rate", "must be positive"));
                }
                if *cycles == 0 {
                    return Err(ElectrochemError::invalid("cycles", "must be at least 1"));
                }
                // advdiag::allow(F1, exact sentinel: coincident vertices degenerate to a hold)
                if (start.value() - vertex1.value()).abs() == 0.0 {
                    return Err(ElectrochemError::invalid(
                        "vertex1",
                        "first segment must have nonzero span",
                    ));
                }
            }
            PotentialProgram::Staircase {
                from,
                to,
                step_height,
                step_duration,
            } => {
                if step_height.value() <= 0.0 {
                    return Err(ElectrochemError::invalid("step_height", "must be positive"));
                }
                if step_duration.value() <= 0.0 {
                    return Err(ElectrochemError::invalid(
                        "step_duration",
                        "must be positive",
                    ));
                }
                if (from.value() - to.value()).abs() < step_height.value() {
                    return Err(ElectrochemError::invalid(
                        "to",
                        "staircase must span at least one step",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total program duration.
    pub fn duration(&self) -> Seconds {
        match self {
            PotentialProgram::Hold { duration, .. } => *duration,
            PotentialProgram::Step { duration, .. } => *duration,
            PotentialProgram::LinearSweep { from, to, rate } => {
                Seconds::new((to.value() - from.value()).abs() / rate.value())
            }
            PotentialProgram::Cyclic {
                start,
                vertex1,
                vertex2,
                rate,
                cycles,
            } => {
                let leg1 = (vertex1.value() - start.value()).abs();
                let leg2 = (vertex2.value() - vertex1.value()).abs();
                let leg3 = (start.value() - vertex2.value()).abs();
                Seconds::new((leg1 + leg2 + leg3) * *cycles as f64 / rate.value())
            }
            PotentialProgram::Staircase {
                from,
                to,
                step_height,
                step_duration,
            } => {
                let steps = ((to.value() - from.value()).abs() / step_height.value()).floor();
                Seconds::new((steps + 1.0) * step_duration.value())
            }
        }
    }

    /// The potential applied at time `t` (clamped to the program's ends).
    pub fn potential_at(&self, t: Seconds) -> Volts {
        let t = t.value().max(0.0);
        match self {
            PotentialProgram::Hold { potential, .. } => *potential,
            PotentialProgram::Step {
                initial,
                stepped,
                at,
                ..
            } => {
                if t < at.value() {
                    *initial
                } else {
                    *stepped
                }
            }
            PotentialProgram::LinearSweep { from, to, rate } => {
                let span = to.value() - from.value();
                let dur = span.abs() / rate.value();
                let frac = (t / dur).min(1.0);
                Volts::new(from.value() + span * frac)
            }
            PotentialProgram::Cyclic {
                start,
                vertex1,
                vertex2,
                rate,
                cycles,
            } => {
                let leg1 = (vertex1.value() - start.value()).abs();
                let leg2 = (vertex2.value() - vertex1.value()).abs();
                let leg3 = (start.value() - vertex2.value()).abs();
                let period = (leg1 + leg2 + leg3) / rate.value();
                let total = period * *cycles as f64;
                let t = t.min(total - f64::EPSILON.max(total * 1e-15));
                let tau = if period > 0.0 { t % period } else { 0.0 };
                let d = tau * rate.value(); // potential distance travelled in this cycle
                if d < leg1 {
                    Volts::new(start.value() + (vertex1.value() - start.value()).signum() * d)
                } else if d < leg1 + leg2 {
                    let d2 = d - leg1;
                    Volts::new(vertex1.value() + (vertex2.value() - vertex1.value()).signum() * d2)
                } else {
                    let d3 = d - leg1 - leg2;
                    Volts::new(vertex2.value() + (start.value() - vertex2.value()).signum() * d3)
                }
            }
            PotentialProgram::Staircase {
                from,
                to,
                step_height,
                step_duration,
            } => {
                let steps = ((to.value() - from.value()).abs() / step_height.value()).floor();
                let k = (t / step_duration.value()).floor().min(steps);
                let sign = (to.value() - from.value()).signum();
                Volts::new(from.value() + sign * k * step_height.value())
            }
        }
    }

    /// Peak |dE/dt| of the program — zero for holds, the scan rate for sweeps.
    pub fn max_slew(&self) -> VoltsPerSecond {
        match self {
            PotentialProgram::Hold { .. } => VoltsPerSecond::ZERO,
            // A step is instantaneous; report a large sentinel slew.
            PotentialProgram::Step { .. } => VoltsPerSecond::new(f64::INFINITY),
            PotentialProgram::LinearSweep { rate, .. } => *rate,
            PotentialProgram::Cyclic { rate, .. } => *rate,
            // Each tread edge is an instantaneous step.
            PotentialProgram::Staircase { .. } => VoltsPerSecond::new(f64::INFINITY),
        }
    }

    /// A reasonable sample interval: 1 mV of potential movement for sweeps,
    /// 1/200 of the duration for holds and steps.
    pub fn suggested_dt(&self) -> Seconds {
        match self {
            PotentialProgram::Hold { duration, .. } | PotentialProgram::Step { duration, .. } => {
                Seconds::new(duration.value() / 200.0)
            }
            PotentialProgram::LinearSweep { rate, .. } | PotentialProgram::Cyclic { rate, .. } => {
                Seconds::new(1e-3 / rate.value())
            }
            // Resolve each tread with a few samples.
            PotentialProgram::Staircase { step_duration, .. } => {
                Seconds::new(step_duration.value() / 4.0)
            }
        }
    }

    /// Samples the program at interval `dt`, yielding `(t, E)` pairs covering
    /// `[0, duration]` inclusive of the endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn sample(&self, dt: Seconds) -> Vec<(Seconds, Volts)> {
        assert!(dt.value() > 0.0, "sample interval must be positive");
        let dur = self.duration().value();
        let n = (dur / dt.value()).round() as usize;
        let mut out = Vec::with_capacity(n + 1);
        for k in 0..=n {
            let t = Seconds::new((k as f64 * dt.value()).min(dur));
            out.push((t, self.potential_at(t)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(v: f64) -> Volts {
        Volts::from_millivolts(v)
    }

    #[test]
    fn hold_is_constant() {
        let p = PotentialProgram::Hold {
            potential: mv(650.0),
            duration: Seconds::new(60.0),
        };
        p.validate().expect("valid");
        assert_eq!(p.potential_at(Seconds::new(0.0)), mv(650.0));
        assert_eq!(p.potential_at(Seconds::new(59.9)), mv(650.0));
        assert_eq!(p.duration(), Seconds::new(60.0));
        assert_eq!(p.max_slew(), VoltsPerSecond::ZERO);
    }

    #[test]
    fn step_switches_at_the_right_time() {
        let p = PotentialProgram::Step {
            initial: mv(0.0),
            stepped: mv(650.0),
            at: Seconds::new(5.0),
            duration: Seconds::new(30.0),
        };
        p.validate().expect("valid");
        assert_eq!(p.potential_at(Seconds::new(4.999)), mv(0.0));
        assert_eq!(p.potential_at(Seconds::new(5.0)), mv(650.0));
    }

    #[test]
    fn linear_sweep_interpolates_and_clamps() {
        let p = PotentialProgram::LinearSweep {
            from: mv(0.0),
            to: mv(-800.0),
            rate: VoltsPerSecond::from_millivolts_per_second(20.0),
        };
        p.validate().expect("valid");
        assert!((p.duration().value() - 40.0).abs() < 1e-9);
        let half = p.potential_at(Seconds::new(20.0));
        assert!((half.as_millivolts() + 400.0).abs() < 1e-9);
        // Past the end: clamp at the final potential.
        assert!((p.potential_at(Seconds::new(100.0)).as_millivolts() + 800.0).abs() < 1e-9);
    }

    #[test]
    fn cyclic_triangle_shape() {
        let p = PotentialProgram::cyclic_single(
            mv(100.0),
            mv(-800.0),
            VoltsPerSecond::from_millivolts_per_second(20.0),
        );
        p.validate().expect("valid");
        // Down leg 0.9 V, up leg 0.9 V at 20 mV/s → 90 s.
        assert!((p.duration().value() - 90.0).abs() < 1e-9);
        // Quarter way: 22.5 s → 450 mV descended.
        let q = p.potential_at(Seconds::new(22.5));
        assert!((q.as_millivolts() + 350.0).abs() < 1e-6);
        // At the vertex (45 s).
        let v = p.potential_at(Seconds::new(45.0));
        assert!((v.as_millivolts() + 800.0).abs() < 1e-6);
        // On the way back (67.5 s): -350 mV again.
        let b = p.potential_at(Seconds::new(67.5));
        assert!((b.as_millivolts() + 350.0).abs() < 1e-6);
    }

    #[test]
    fn multi_cycle_repeats() {
        let p = PotentialProgram::Cyclic {
            start: mv(0.0),
            vertex1: mv(-500.0),
            vertex2: mv(0.0),
            rate: VoltsPerSecond::from_millivolts_per_second(50.0),
            cycles: 3,
        };
        p.validate().expect("valid");
        let period = 20.0; // (0.5+0.5)/0.05
        for k in 0..3 {
            let t = Seconds::new(period * k as f64 + 5.0);
            assert!(
                (p.potential_at(t).as_millivolts() + 250.0).abs() < 1e-6,
                "cycle {k}"
            );
        }
    }

    #[test]
    fn validation_rejects_degenerate_programs() {
        assert!(PotentialProgram::Hold {
            potential: mv(0.0),
            duration: Seconds::ZERO
        }
        .validate()
        .is_err());
        assert!(PotentialProgram::LinearSweep {
            from: mv(0.0),
            to: mv(0.0),
            rate: VoltsPerSecond::new(0.02)
        }
        .validate()
        .is_err());
        assert!(PotentialProgram::Cyclic {
            start: mv(0.0),
            vertex1: mv(-500.0),
            vertex2: mv(0.0),
            rate: VoltsPerSecond::new(0.02),
            cycles: 0
        }
        .validate()
        .is_err());
        assert!(PotentialProgram::Step {
            initial: mv(0.0),
            stepped: mv(1.0),
            at: Seconds::new(50.0),
            duration: Seconds::new(30.0)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn staircase_quantizes_the_sweep() {
        let p = PotentialProgram::Staircase {
            from: mv(0.0),
            to: mv(-500.0),
            step_height: Volts::from_millivolts(5.0),
            step_duration: Seconds::new(0.25),
        };
        p.validate().expect("valid");
        // 100 steps + the first tread: 25.25 s total.
        assert!((p.duration().value() - 25.25).abs() < 1e-9);
        // Mid-tread: constant.
        let e1 = p.potential_at(Seconds::new(1.0));
        let e2 = p.potential_at(Seconds::new(1.24));
        assert_eq!(e1, e2);
        assert!((e1.as_millivolts() + 20.0).abs() < 1e-9);
        // The final tread holds the end potential.
        assert!((p.potential_at(Seconds::new(100.0)).as_millivolts() + 500.0).abs() < 1e-9);
        // Steps are exact multiples of the height.
        for k in 0..50 {
            let e = p.potential_at(Seconds::new(k as f64 * 0.25 + 0.01));
            let steps = e.as_millivolts() / -5.0;
            assert!((steps - steps.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn staircase_validation() {
        assert!(PotentialProgram::Staircase {
            from: mv(0.0),
            to: mv(-500.0),
            step_height: Volts::ZERO,
            step_duration: Seconds::new(0.25),
        }
        .validate()
        .is_err());
        assert!(PotentialProgram::Staircase {
            from: mv(0.0),
            to: mv(-2.0),
            step_height: Volts::from_millivolts(5.0),
            step_duration: Seconds::new(0.25),
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sampling_covers_program_inclusively() {
        let p = PotentialProgram::Hold {
            potential: mv(650.0),
            duration: Seconds::new(1.0),
        };
        let samples = p.sample(Seconds::new(0.1));
        assert_eq!(samples.len(), 11);
        assert_eq!(samples[0].0, Seconds::new(0.0));
        assert!((samples[10].0.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn suggested_dt_tracks_rate() {
        let p = PotentialProgram::cyclic_single(
            mv(0.0),
            mv(-500.0),
            VoltsPerSecond::from_millivolts_per_second(20.0),
        );
        // 1 mV per sample at 20 mV/s = 50 ms.
        assert!((p.suggested_dt().value() - 0.05).abs() < 1e-12);
    }
}
