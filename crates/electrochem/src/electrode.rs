//! Electrode materials, nanostructuring and geometry.
//!
//! The paper's biointerface (§III, Fig. 4) uses thin-film gold working and
//! counter electrodes and a silver reference, with optional carbon-nanotube
//! nanostructuring to boost sensitivity and electron-transfer kinetics.

use crate::error::ElectrochemError;
use bios_units::{FaradsPerCm2, SquareCentimeters};

/// Electrode conductor material.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ElectrodeMaterial {
    /// Thin-film gold — the paper's working/counter electrode metal.
    Gold,
    /// Silver (chloridized in situ to Ag/AgCl) — the reference electrode.
    SilverSilverChloride,
    /// Platinum, common for H₂O₂ oxidation.
    Platinum,
    /// Screen-printed carbon.
    Carbon,
    /// Rhodium–graphite, used for CYP2B4 electrodes (paper ref. \[16\]).
    RhodiumGraphite,
    /// Glassy carbon.
    GlassyCarbon,
}

impl ElectrodeMaterial {
    /// Typical specific double-layer capacitance of the bare material.
    ///
    /// Double layers run 10–40 µF/cm²; carbons sit at the high end.
    pub fn double_layer_capacitance(self) -> FaradsPerCm2 {
        let uf = match self {
            ElectrodeMaterial::Gold => 20.0,
            ElectrodeMaterial::SilverSilverChloride => 25.0,
            ElectrodeMaterial::Platinum => 24.0,
            ElectrodeMaterial::Carbon => 30.0,
            ElectrodeMaterial::RhodiumGraphite => 32.0,
            ElectrodeMaterial::GlassyCarbon => 28.0,
        };
        FaradsPerCm2::from_microfarads_per_cm2(uf)
    }

    /// Multiplier on heterogeneous electron-transfer rate constants relative
    /// to gold (electrocatalytic activity for inner-sphere reactions such as
    /// H₂O₂ oxidation).
    pub fn kinetic_factor(self) -> f64 {
        match self {
            ElectrodeMaterial::Gold => 1.0,
            ElectrodeMaterial::SilverSilverChloride => 0.2,
            ElectrodeMaterial::Platinum => 8.0,
            ElectrodeMaterial::Carbon => 0.6,
            ElectrodeMaterial::RhodiumGraphite => 3.0,
            ElectrodeMaterial::GlassyCarbon => 0.8,
        }
    }
}

impl core::fmt::Display for ElectrodeMaterial {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ElectrodeMaterial::Gold => "Au",
            ElectrodeMaterial::SilverSilverChloride => "Ag/AgCl",
            ElectrodeMaterial::Platinum => "Pt",
            ElectrodeMaterial::Carbon => "C",
            ElectrodeMaterial::RhodiumGraphite => "Rh-graphite",
            ElectrodeMaterial::GlassyCarbon => "GC",
        };
        f.write_str(s)
    }
}

/// Nanostructuring applied on top of the conductor (§III: "Working electrodes
/// can be functionalized by nanostructures, to increase sensitivity").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Nanostructure {
    /// Bare electrode.
    None,
    /// Multi-walled carbon nanotubes (paper refs. \[8\], \[15\]).
    CarbonNanotubes,
    /// Electrodeposited cobalt-oxide nanostructures (paper ref. \[11\]).
    CobaltOxide,
    /// Gold nanoparticles.
    GoldNanoparticles,
}

impl Nanostructure {
    /// Electrochemically active area divided by geometric area.
    ///
    /// CNT forests raise the roughness factor by an order of magnitude, which
    /// is the mechanism behind the "much larger signals" the paper notes for
    /// nanostructured electrodes (§III).
    pub fn roughness_factor(self) -> f64 {
        match self {
            Nanostructure::None => 1.0,
            Nanostructure::CarbonNanotubes => 12.0,
            Nanostructure::CobaltOxide => 6.0,
            Nanostructure::GoldNanoparticles => 4.0,
        }
    }

    /// Multiplier on electron-transfer kinetics (nanostructures also act as
    /// electrocatalysts and promote direct electron transfer to enzymes).
    pub fn kinetic_factor(self) -> f64 {
        match self {
            Nanostructure::None => 1.0,
            Nanostructure::CarbonNanotubes => 25.0,
            Nanostructure::CobaltOxide => 10.0,
            Nanostructure::GoldNanoparticles => 8.0,
        }
    }
}

impl core::fmt::Display for Nanostructure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Nanostructure::None => "bare",
            Nanostructure::CarbonNanotubes => "CNT",
            Nanostructure::CobaltOxide => "CoOx",
            Nanostructure::GoldNanoparticles => "AuNP",
        };
        f.write_str(s)
    }
}

/// A working electrode: conductor + geometry + optional nanostructure.
///
/// # Example
///
/// ```
/// use bios_electrochem::{Electrode, ElectrodeMaterial, Nanostructure};
/// use bios_units::SquareCentimeters;
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// // The paper's biointerface WE: 0.23 mm² thin-film gold with CNTs.
/// let we = Electrode::new(
///     ElectrodeMaterial::Gold,
///     SquareCentimeters::from_square_millimeters(0.23),
/// )?
/// .with_nanostructure(Nanostructure::CarbonNanotubes);
/// assert!(we.active_area().value() > we.geometric_area().value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Electrode {
    material: ElectrodeMaterial,
    geometric_area: SquareCentimeters,
    nanostructure: Nanostructure,
}

impl Electrode {
    /// Creates a bare electrode of the given material and geometric area.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] if the area is not
    /// strictly positive and finite.
    pub fn new(
        material: ElectrodeMaterial,
        geometric_area: SquareCentimeters,
    ) -> Result<Self, ElectrochemError> {
        if geometric_area.value() <= 0.0 || !geometric_area.value().is_finite() {
            return Err(ElectrochemError::invalid(
                "geometric_area",
                "must be positive and finite",
            ));
        }
        Ok(Self {
            material,
            geometric_area,
            nanostructure: Nanostructure::None,
        })
    }

    /// The paper's reference working electrode: 0.23 mm² thin-film gold.
    ///
    /// A literal, not `Self::new`, so this constant constructor cannot panic.
    pub fn paper_gold_we() -> Self {
        Self {
            material: ElectrodeMaterial::Gold,
            geometric_area: SquareCentimeters::from_square_millimeters(0.23),
            nanostructure: Nanostructure::None,
        }
    }

    /// Adds a nanostructure coating.
    pub fn with_nanostructure(mut self, nanostructure: Nanostructure) -> Self {
        self.nanostructure = nanostructure;
        self
    }

    /// Conductor material.
    pub fn material(&self) -> ElectrodeMaterial {
        self.material
    }

    /// Geometric (projected) area.
    pub fn geometric_area(&self) -> SquareCentimeters {
        self.geometric_area
    }

    /// Nanostructure coating.
    pub fn nanostructure(&self) -> Nanostructure {
        self.nanostructure
    }

    /// Electrochemically active area = geometric area × roughness factor.
    pub fn active_area(&self) -> SquareCentimeters {
        self.geometric_area * self.nanostructure.roughness_factor()
    }

    /// Double-layer capacitance of the whole electrode.
    ///
    /// Scales with *active* area — the microelectrode advantage the paper
    /// cites ("the background current is smaller" for scaled-down electrodes)
    /// falls directly out of this product.
    pub fn double_layer_capacitance(&self) -> bios_units::Farads {
        self.material.double_layer_capacitance() * self.active_area()
    }

    /// Combined electron-transfer kinetic enhancement over bare gold.
    pub fn kinetic_factor(&self) -> f64 {
        self.material.kinetic_factor() * self.nanostructure.kinetic_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nonpositive_area() {
        assert!(Electrode::new(ElectrodeMaterial::Gold, SquareCentimeters::new(0.0)).is_err());
        assert!(Electrode::new(ElectrodeMaterial::Gold, SquareCentimeters::new(-1.0)).is_err());
        assert!(Electrode::new(ElectrodeMaterial::Gold, SquareCentimeters::new(f64::NAN)).is_err());
    }

    #[test]
    fn paper_we_dimensions() {
        let we = Electrode::paper_gold_we();
        assert!((we.geometric_area().as_square_millimeters() - 0.23).abs() < 1e-12);
        assert_eq!(we.material(), ElectrodeMaterial::Gold);
    }

    #[test]
    fn nanostructure_boosts_area_and_kinetics() {
        let bare = Electrode::paper_gold_we();
        let cnt = Electrode::paper_gold_we().with_nanostructure(Nanostructure::CarbonNanotubes);
        assert!(cnt.active_area().value() > 10.0 * bare.active_area().value());
        assert!(cnt.kinetic_factor() > 10.0 * bare.kinetic_factor());
        assert_eq!(bare.active_area(), bare.geometric_area());
    }

    #[test]
    fn double_layer_scales_with_area() {
        let small =
            Electrode::new(ElectrodeMaterial::Gold, SquareCentimeters::new(0.001)).expect("valid");
        let large =
            Electrode::new(ElectrodeMaterial::Gold, SquareCentimeters::new(0.01)).expect("valid");
        let ratio =
            large.double_layer_capacitance().value() / small.double_layer_capacitance().value();
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn material_display() {
        assert_eq!(ElectrodeMaterial::Gold.to_string(), "Au");
        assert_eq!(
            ElectrodeMaterial::SilverSilverChloride.to_string(),
            "Ag/AgCl"
        );
        assert_eq!(Nanostructure::CarbonNanotubes.to_string(), "CNT");
    }

    #[test]
    fn platinum_catalyzes_h2o2() {
        assert!(
            ElectrodeMaterial::Platinum.kinetic_factor() > ElectrodeMaterial::Gold.kinetic_factor()
        );
    }
}
