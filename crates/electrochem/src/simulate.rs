//! Experiment drivers: run a potential program against a cell and a redox
//! couple, producing sampled records.

use crate::cell::Cell;
use crate::diffusion::{BatchDiffusionSim, DiffusionSim};
use crate::double_layer::ChargingFilter;
use crate::error::ElectrochemError;
use crate::grid::Grid;
use crate::kinetics::rate_constants;
use crate::species::RedoxCouple;
use crate::trace::{Transient, Voltammogram};
use crate::waveform::PotentialProgram;
use bios_units::{Amps, Molar, Seconds, FARADAY};

/// Options for the simulation drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Time step; `None` uses [`PotentialProgram::suggested_dt`].
    pub dt: Option<Seconds>,
    /// Whether to add the double-layer charging current to the output.
    pub include_charging: bool,
    /// Geometric expansion ratio of the spatial grid; `None` uses
    /// [`Grid::DEFAULT_GAMMA`] (bit-identical to the pre-option behaviour).
    /// Coarser ratios (e.g. `1.4`) shrink the system ~3× at a few-percent
    /// accuracy cost — see [`Grid::for_experiment_with`].
    pub grid_gamma: Option<f64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            dt: None,
            include_charging: true,
            grid_gamma: None,
        }
    }
}

/// Shared stepping core for both drivers.
///
/// Sign convention: the diffusion flux is positive for net *reduction*
/// (`O` consumed); the returned current follows IUPAC (anodic positive), so
/// `i_faradaic = −n·F·A·flux`.
fn run<F: FnMut(Seconds, bios_units::Volts, Amps)>(
    cell: &Cell,
    couple: &RedoxCouple,
    bulk_ox: Molar,
    bulk_red: Molar,
    program: &PotentialProgram,
    options: SimOptions,
    mut record: F,
) -> Result<(), ElectrochemError> {
    program.validate()?;
    if bulk_ox.value() < 0.0 || bulk_red.value() < 0.0 {
        return Err(ElectrochemError::invalid(
            "bulk concentration",
            "must be non-negative",
        ));
    }
    let dt = options.dt.unwrap_or_else(|| program.suggested_dt());
    if dt.value() <= 0.0 {
        return Err(ElectrochemError::invalid("dt", "must be positive"));
    }
    let duration = program.duration();
    let steps = (duration.value() / dt.value()).round() as usize;
    if steps == 0 {
        return Err(ElectrochemError::EmptyProgram);
    }
    let d_max = couple
        .diffusion_ox()
        .value()
        .max(couple.diffusion_red().value());
    let grid = Grid::for_experiment_with(
        bios_units::DiffusionCoefficient::new(d_max),
        duration,
        dt,
        options.grid_gamma.unwrap_or(Grid::DEFAULT_GAMMA),
    )?;
    let mut sim = DiffusionSim::new(
        grid,
        couple.diffusion_ox(),
        couple.diffusion_red(),
        bulk_ox.to_moles_per_cm3(),
        bulk_red.to_moles_per_cm3(),
        dt,
    )?;
    let area = cell.working().active_area();
    let kinetic_factor = cell.working().kinetic_factor();
    let n = couple.electrons() as f64;
    let mut charging = ChargingFilter::new(cell, program.potential_at(Seconds::ZERO));

    // Record the initial rest point.
    record(
        Seconds::ZERO,
        program.potential_at(Seconds::ZERO),
        Amps::ZERO,
    );
    for k in 1..=steps {
        let t = Seconds::new((k as f64 * dt.value()).min(duration.value()));
        let e = program.potential_at(t);
        let (kf, kb) = rate_constants(couple, e, cell.temperature(), kinetic_factor);
        let flux = sim.step_with_rate_constants(kf, kb);
        let i_far = Amps::new(-n * FARADAY * area.value() * flux);
        let i_c = if options.include_charging {
            charging.step(e, dt)
        } else {
            Amps::ZERO
        };
        record(t, e, i_far + i_c);
    }
    Ok(())
}

/// Simulates a chronoamperometry (or any potential-vs-time) experiment,
/// returning the current transient.
///
/// # Errors
///
/// Returns [`ElectrochemError`] for invalid programs, negative bulk
/// concentrations or degenerate grids.
///
/// # Example
///
/// ```
/// use bios_electrochem::{simulate_chrono, Cell, Electrode, PotentialProgram, RedoxCouple};
/// use bios_units::{Molar, Seconds, Volts};
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// let cell = Cell::builder(Electrode::paper_gold_we()).build()?;
/// let couple = RedoxCouple::ferrocyanide();
/// let program = PotentialProgram::Step {
///     initial: Volts::new(0.5),
///     stepped: Volts::new(-0.2),
///     at: Seconds::new(0.5),
///     duration: Seconds::new(5.0),
/// };
/// let transient = simulate_chrono(&cell, &couple, Molar::from_millimolar(1.0), Molar::ZERO, &program)?;
/// assert!(!transient.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn simulate_chrono(
    cell: &Cell,
    couple: &RedoxCouple,
    bulk_ox: Molar,
    bulk_red: Molar,
    program: &PotentialProgram,
) -> Result<Transient, ElectrochemError> {
    simulate_chrono_with(
        cell,
        couple,
        bulk_ox,
        bulk_red,
        program,
        SimOptions::default(),
    )
}

/// [`simulate_chrono`] with explicit [`SimOptions`].
///
/// # Errors
///
/// See [`simulate_chrono`].
pub fn simulate_chrono_with(
    cell: &Cell,
    couple: &RedoxCouple,
    bulk_ox: Molar,
    bulk_red: Molar,
    program: &PotentialProgram,
    options: SimOptions,
) -> Result<Transient, ElectrochemError> {
    let mut out = Transient::new();
    run(
        cell,
        couple,
        bulk_ox,
        bulk_red,
        program,
        options,
        |t, _e, i| {
            out.push(t, i);
        },
    )?;
    Ok(out)
}

/// Simulates one chronoamperometry program against a whole electrode fleet
/// with a single batched diffusion kernel.
///
/// Every lane shares the `(couple, program, options)` triple — and therefore
/// the grid, time step, and factorized operator — while `cells[b]`,
/// `bulk_ox[b]`, `bulk_red[b]` vary per lane (different electrode areas,
/// kinetic factors, temperatures, concentrations). Each time step performs
/// *one* Thomas sweep per species across the batch via
/// [`BatchDiffusionSim`] instead of one per electrode.
///
/// Lane `b` of the result is bit-identical to
/// [`simulate_chrono_with`]`(cells[b], couple, bulk_ox[b], bulk_red[b],
/// program, options)`: the batched kernel performs the scalar kernel's exact
/// per-lane operation sequence, and everything outside the kernel (rate
/// constants, current conversion, charging filter) is already per-lane. The
/// equivalence proptests and the bench digest gates pin this down.
///
/// # Errors
///
/// Returns [`ElectrochemError::InvalidParameter`] for an empty fleet or
/// mismatched slice lengths, plus everything [`simulate_chrono_with`]
/// rejects.
pub fn simulate_chrono_fleet(
    cells: &[Cell],
    couple: &RedoxCouple,
    bulk_ox: &[Molar],
    bulk_red: &[Molar],
    program: &PotentialProgram,
    options: SimOptions,
) -> Result<Vec<Transient>, ElectrochemError> {
    let lanes = cells.len();
    if lanes == 0 {
        return Err(ElectrochemError::invalid(
            "cells",
            "fleet must contain at least one electrode",
        ));
    }
    if bulk_ox.len() != lanes || bulk_red.len() != lanes {
        return Err(ElectrochemError::invalid(
            "bulk concentrations",
            "must match the fleet size",
        ));
    }
    program.validate()?;
    if bulk_ox
        .iter()
        .chain(bulk_red.iter())
        .any(|c| c.value() < 0.0)
    {
        return Err(ElectrochemError::invalid(
            "bulk concentration",
            "must be non-negative",
        ));
    }
    let dt = options.dt.unwrap_or_else(|| program.suggested_dt());
    if dt.value() <= 0.0 {
        return Err(ElectrochemError::invalid("dt", "must be positive"));
    }
    let duration = program.duration();
    let steps = (duration.value() / dt.value()).round() as usize;
    if steps == 0 {
        return Err(ElectrochemError::EmptyProgram);
    }
    let d_max = couple
        .diffusion_ox()
        .value()
        .max(couple.diffusion_red().value());
    let grid = Grid::for_experiment_with(
        bios_units::DiffusionCoefficient::new(d_max),
        duration,
        dt,
        options.grid_gamma.unwrap_or(Grid::DEFAULT_GAMMA),
    )?;
    let bulks: Vec<(bios_units::MolesPerCm3, bios_units::MolesPerCm3)> = bulk_ox
        .iter()
        .zip(bulk_red)
        .map(|(o, r)| (o.to_moles_per_cm3(), r.to_moles_per_cm3()))
        .collect();
    let mut sim = BatchDiffusionSim::new(
        grid,
        couple.diffusion_ox(),
        couple.diffusion_red(),
        &bulks,
        dt,
    )?;
    let areas: Vec<f64> = cells
        .iter()
        .map(|c| c.working().active_area().value())
        .collect();
    let kinetic_factors: Vec<f64> = cells.iter().map(|c| c.working().kinetic_factor()).collect();
    let n = couple.electrons() as f64;
    let e0 = program.potential_at(Seconds::ZERO);
    let mut chargers: Vec<ChargingFilter> =
        cells.iter().map(|c| ChargingFilter::new(c, e0)).collect();

    let mut out = vec![Transient::new(); lanes];
    for tr in &mut out {
        tr.push(Seconds::ZERO, Amps::ZERO);
    }
    let mut rates = vec![(0.0, 0.0); lanes];
    let mut fluxes = vec![0.0; lanes];
    for k in 1..=steps {
        let t = Seconds::new((k as f64 * dt.value()).min(duration.value()));
        // The potential program is shared: evaluated once per step for the
        // whole fleet instead of once per electrode.
        let e = program.potential_at(t);
        for ((rate, cell), kfac) in rates.iter_mut().zip(cells).zip(&kinetic_factors) {
            *rate = rate_constants(couple, e, cell.temperature(), *kfac);
        }
        sim.step_with_rate_constants_into(&rates, &mut fluxes);
        for (b, tr) in out.iter_mut().enumerate() {
            let i_far = Amps::new(-n * FARADAY * areas[b] * fluxes[b]);
            let i_c = if options.include_charging {
                chargers[b].step(e, dt)
            } else {
                Amps::ZERO
            };
            tr.push(t, i_far + i_c);
        }
    }
    Ok(out)
}

/// Simulates a voltammetry experiment (typically a [`PotentialProgram::Cyclic`]
/// sweep), returning the voltammogram.
///
/// # Errors
///
/// Returns [`ElectrochemError`] for invalid programs, negative bulk
/// concentrations or degenerate grids.
///
/// # Example
///
/// ```
/// use bios_electrochem::{simulate_cv, Cell, Electrode, PotentialProgram, RedoxCouple};
/// use bios_units::{Molar, Volts, VoltsPerSecond};
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// let cell = Cell::builder(Electrode::paper_gold_we()).build()?;
/// let couple = RedoxCouple::ferrocyanide();
/// let program = PotentialProgram::cyclic_single(
///     Volts::new(0.55),
///     Volts::new(-0.1),
///     VoltsPerSecond::from_millivolts_per_second(50.0),
/// );
/// let cv = simulate_cv(&cell, &couple, Molar::from_millimolar(1.0), Molar::ZERO, &program)?;
/// let (peak_e, peak_i) = cv.min_current().expect("nonempty");
/// assert!(peak_i.value() < 0.0); // a cathodic peak appears
/// assert!(peak_e.value() < couple.formal_potential().value());
/// # Ok(())
/// # }
/// ```
pub fn simulate_cv(
    cell: &Cell,
    couple: &RedoxCouple,
    bulk_ox: Molar,
    bulk_red: Molar,
    program: &PotentialProgram,
) -> Result<Voltammogram, ElectrochemError> {
    simulate_cv_with(
        cell,
        couple,
        bulk_ox,
        bulk_red,
        program,
        SimOptions::default(),
    )
}

/// [`simulate_cv`] with explicit [`SimOptions`].
///
/// # Errors
///
/// See [`simulate_cv`].
pub fn simulate_cv_with(
    cell: &Cell,
    couple: &RedoxCouple,
    bulk_ox: Molar,
    bulk_red: Molar,
    program: &PotentialProgram,
    options: SimOptions,
) -> Result<Voltammogram, ElectrochemError> {
    let mut out = Voltammogram::new();
    run(
        cell,
        couple,
        bulk_ox,
        bulk_red,
        program,
        options,
        |t, e, i| {
            out.push(t, e, i);
        },
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cottrell::cottrell_current;
    use crate::electrode::Electrode;
    use crate::randles_sevcik::{randles_sevcik_peak, reversible_cathodic_peak_potential};
    use bios_units::{Volts, VoltsPerSecond};

    fn cell() -> Cell {
        Cell::builder(Electrode::paper_gold_we())
            .build()
            .expect("valid")
    }

    #[test]
    fn chrono_step_matches_cottrell() {
        let couple = RedoxCouple::ferrocyanide();
        let bulk = Molar::from_millimolar(1.0);
        let program = PotentialProgram::Step {
            initial: Volts::new(0.6),
            stepped: Volts::new(-0.3), // >500 mV overpotential: diffusion limited
            at: Seconds::ZERO,
            duration: Seconds::new(5.0),
        };
        let options = SimOptions {
            dt: Some(Seconds::from_millis(5.0)),
            include_charging: false,
            grid_gamma: None,
        };
        let tr = simulate_chrono_with(&cell(), &couple, bulk, Molar::ZERO, &program, options)
            .expect("simulation");
        // Compare at t = 1 s and t = 4 s.
        for t in [1.0, 4.0] {
            let sim_i = tr.current_at(Seconds::new(t)).expect("nonempty");
            let analytic = cottrell_current(
                &couple,
                cell().working().active_area(),
                bulk,
                Seconds::new(t),
            );
            // Reduction: simulated current is negative of the analytic magnitude.
            let rel = (sim_i.value() + analytic.value()).abs() / analytic.value();
            assert!(
                rel < 0.03,
                "t={t}: sim {} vs analytic {}",
                sim_i.value(),
                -analytic.value()
            );
        }
    }

    #[test]
    fn cv_reproduces_randles_sevcik() {
        let couple = RedoxCouple::ferrocyanide();
        let bulk = Molar::from_millimolar(1.0);
        let e0 = couple.formal_potential();
        let program = PotentialProgram::cyclic_single(
            e0 + Volts::new(0.3),
            e0 - Volts::new(0.3),
            VoltsPerSecond::from_millivolts_per_second(50.0),
        );
        let options = SimOptions {
            dt: None,
            include_charging: false,
            grid_gamma: None,
        };
        let cv = simulate_cv_with(&cell(), &couple, bulk, Molar::ZERO, &program, options)
            .expect("simulation");
        let (peak_e, peak_i) = cv.min_current().expect("nonempty");
        let analytic = randles_sevcik_peak(
            &couple,
            cell().working().active_area(),
            bulk,
            VoltsPerSecond::from_millivolts_per_second(50.0),
            cell().temperature(),
        );
        let rel = (peak_i.value().abs() - analytic.value()).abs() / analytic.value();
        assert!(
            rel < 0.04,
            "peak {} vs RS {}",
            peak_i.value().abs(),
            analytic.value()
        );
        // Peak potential ≈ E0 − 28.5 mV.
        let expected_e = reversible_cathodic_peak_potential(&couple, cell().temperature());
        assert!(
            (peak_e - expected_e).abs().as_millivolts() < 5.0,
            "peak at {} vs expected {}",
            peak_e,
            expected_e
        );
    }

    #[test]
    fn cv_reverse_scan_shows_anodic_peak() {
        let couple = RedoxCouple::ferrocyanide();
        let e0 = couple.formal_potential();
        let program = PotentialProgram::cyclic_single(
            e0 + Volts::new(0.3),
            e0 - Volts::new(0.3),
            VoltsPerSecond::from_millivolts_per_second(50.0),
        );
        let cv = simulate_cv(
            &cell(),
            &couple,
            Molar::from_millimolar(1.0),
            Molar::ZERO,
            &program,
        )
        .expect("simulation");
        let (e_an, i_an) = cv.max_current().expect("nonempty");
        assert!(i_an.value() > 0.0, "reverse scan must reoxidize R");
        assert!(e_an.value() > e0.value(), "anodic peak sits above E0");
    }

    #[test]
    fn charging_adds_scan_rate_proportional_background() {
        let couple = RedoxCouple::ferrocyanide();
        // Blank solution: no electroactive species, pure background.
        let program = PotentialProgram::cyclic_single(
            Volts::new(-0.6),
            Volts::new(-0.8),
            VoltsPerSecond::from_millivolts_per_second(20.0),
        );
        let with =
            simulate_cv(&cell(), &couple, Molar::ZERO, Molar::ZERO, &program).expect("simulation");
        // Mid-scan sample on the downward leg: ≈ −Cdl·v.
        let k = with.len() / 4;
        let i = with.current()[k];
        let expected = -cell().double_layer_capacitance().value() * 0.02;
        assert!(
            (i.value() - expected).abs() < 0.2 * expected.abs(),
            "i = {} vs {}",
            i.value(),
            expected
        );
    }

    #[test]
    fn h2o2_oxidation_gives_anodic_current_at_650mv() {
        // The oxidase readout condition (paper Table I): H2O2 as the reduced
        // form, polled at +650 mV.
        let couple = RedoxCouple::hydrogen_peroxide();
        let program = PotentialProgram::Hold {
            potential: Volts::from_millivolts(650.0),
            duration: Seconds::new(20.0),
        };
        let tr = simulate_chrono(
            &cell(),
            &couple,
            Molar::ZERO,
            Molar::from_millimolar(1.0),
            &program,
        )
        .expect("simulation");
        let (_, i_end) = tr.last().expect("nonempty");
        assert!(i_end.value() > 0.0, "oxidation must be anodic-positive");
    }

    #[test]
    fn fleet_matches_scalar_map_bit_for_bit() {
        use crate::electrode::{Electrode, ElectrodeMaterial};
        use bios_units::SquareCentimeters;
        // Heterogeneous fleet: different areas (→ different currents and
        // charging filters) and different concentrations per lane.
        let cells: Vec<Cell> = [0.23, 0.5, 1.0, 2.0, 0.1]
            .iter()
            .map(|mm2| {
                let we = Electrode::new(
                    ElectrodeMaterial::Gold,
                    SquareCentimeters::from_square_millimeters(*mm2),
                )
                .expect("electrode");
                Cell::builder(we).build().expect("cell")
            })
            .collect();
        let bulk_ox: Vec<Molar> = (0..cells.len())
            .map(|b| Molar::from_millimolar(0.2 + 0.3 * b as f64))
            .collect();
        let bulk_red: Vec<Molar> = (0..cells.len())
            .map(|b| Molar::from_millimolar(0.05 * b as f64))
            .collect();
        let couple = RedoxCouple::ferrocyanide();
        let program = PotentialProgram::Step {
            initial: Volts::new(0.5),
            stepped: Volts::new(-0.2),
            at: Seconds::new(0.1),
            duration: Seconds::new(1.0),
        };
        for gamma in [None, Some(1.4)] {
            let options = SimOptions {
                dt: Some(Seconds::from_millis(5.0)),
                include_charging: true,
                grid_gamma: gamma,
            };
            let fleet =
                simulate_chrono_fleet(&cells, &couple, &bulk_ox, &bulk_red, &program, options)
                    .expect("fleet");
            for (b, cell) in cells.iter().enumerate() {
                let scalar =
                    simulate_chrono_with(cell, &couple, bulk_ox[b], bulk_red[b], &program, options)
                        .expect("scalar");
                assert_eq!(fleet[b], scalar, "gamma {gamma:?} lane {b}");
            }
        }
    }

    #[test]
    fn fleet_rejects_mismatched_lanes() {
        let couple = RedoxCouple::ferrocyanide();
        let program = PotentialProgram::Hold {
            potential: Volts::ZERO,
            duration: Seconds::new(1.0),
        };
        assert!(
            simulate_chrono_fleet(&[], &couple, &[], &[], &program, SimOptions::default()).is_err()
        );
        assert!(simulate_chrono_fleet(
            &[cell()],
            &couple,
            &[Molar::ZERO, Molar::ZERO],
            &[Molar::ZERO],
            &program,
            SimOptions::default(),
        )
        .is_err());
    }

    #[test]
    fn coarse_gamma_stays_close_to_default_grid() {
        // The coarse-grid option trades a little accuracy for ~3× fewer
        // nodes; sampled currents must stay within a few percent.
        let couple = RedoxCouple::hydrogen_peroxide();
        let program = PotentialProgram::Hold {
            potential: Volts::from_millivolts(650.0),
            duration: Seconds::new(20.0),
        };
        let run_with = |gamma| {
            let options = SimOptions {
                dt: None,
                include_charging: false,
                grid_gamma: gamma,
            };
            simulate_chrono_with(
                &cell(),
                &couple,
                Molar::ZERO,
                Molar::from_millimolar(1.0),
                &program,
                options,
            )
            .expect("sim")
            .tail_mean(0.1)
            .expect("nonempty")
        };
        let fine = run_with(None);
        let coarse = run_with(Some(1.4));
        let rel = (coarse.value() - fine.value()).abs() / fine.value().abs();
        assert!(rel < 0.03, "coarse-grid deviation {rel}");
    }

    #[test]
    fn rejects_negative_concentrations() {
        let couple = RedoxCouple::ferrocyanide();
        let program = PotentialProgram::Hold {
            potential: Volts::ZERO,
            duration: Seconds::new(1.0),
        };
        assert!(
            simulate_chrono(&cell(), &couple, Molar::new(-1.0), Molar::ZERO, &program).is_err()
        );
    }

    #[test]
    fn mass_transport_limited_plateau_is_concentration_linear() {
        // Double the H2O2 → double the sampled current.
        let couple = RedoxCouple::hydrogen_peroxide();
        let program = PotentialProgram::Hold {
            potential: Volts::from_millivolts(650.0),
            duration: Seconds::new(30.0),
        };
        let i1 = simulate_chrono(
            &cell(),
            &couple,
            Molar::ZERO,
            Molar::from_millimolar(1.0),
            &program,
        )
        .expect("sim")
        .tail_mean(0.1)
        .expect("nonempty");
        let i2 = simulate_chrono(
            &cell(),
            &couple,
            Molar::ZERO,
            Molar::from_millimolar(2.0),
            &program,
        )
        .expect("sim")
        .tail_mean(0.1)
        .expect("nonempty");
        assert!((i2.value() / i1.value() - 2.0).abs() < 0.02);
    }
}
