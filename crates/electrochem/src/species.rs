//! Redox couples: the electroactive species observed at the working electrode.

use crate::error::ElectrochemError;
use bios_units::{DiffusionCoefficient, Volts};

/// A redox couple `O + n·e⁻ ⇌ R` with its transport and kinetic parameters.
///
/// This is the species the electrode *sees*: for oxidase biosensors it is the
/// H₂O₂/O₂ couple produced by the enzyme (paper eq. 3); for cytochrome P450
/// sensors it is the heme Fe³⁺/Fe²⁺ centre whose reduction drives eq. 4.
///
/// # Example
///
/// ```
/// use bios_electrochem::RedoxCouple;
/// use bios_units::Volts;
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// let h2o2 = RedoxCouple::builder("H2O2")
///     .electrons(2)
///     .formal_potential(Volts::new(0.45))
///     .diffusion(1.7e-5)
///     .rate_constant(1e-4) // sluggish kinetics: needs the +650 mV overpotential
///     .build()?;
/// assert_eq!(h2o2.electrons(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RedoxCouple {
    name: String,
    electrons: u32,
    formal_potential: Volts,
    diffusion_ox: DiffusionCoefficient,
    diffusion_red: DiffusionCoefficient,
    rate_constant_cm_per_s: f64,
    transfer_coefficient: f64,
}

impl RedoxCouple {
    /// Starts building a couple with the given display name.
    pub fn builder(name: impl Into<String>) -> RedoxCoupleBuilder {
        RedoxCoupleBuilder {
            name: name.into(),
            electrons: 1,
            formal_potential: Volts::ZERO,
            diffusion_ox: DiffusionCoefficient::new(1e-5),
            diffusion_red: None,
            rate_constant_cm_per_s: 1.0,
            transfer_coefficient: 0.5,
        }
    }

    /// Display name of the couple (e.g. `"H2O2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of electrons `n` transferred.
    pub fn electrons(&self) -> u32 {
        self.electrons
    }

    /// Formal potential `E⁰'` vs Ag/AgCl.
    pub fn formal_potential(&self) -> Volts {
        self.formal_potential
    }

    /// Diffusion coefficient of the oxidized form.
    pub fn diffusion_ox(&self) -> DiffusionCoefficient {
        self.diffusion_ox
    }

    /// Diffusion coefficient of the reduced form.
    pub fn diffusion_red(&self) -> DiffusionCoefficient {
        self.diffusion_red
    }

    /// Standard heterogeneous rate constant `k⁰` in cm/s.
    ///
    /// ≳0.1 cm/s behaves reversibly at the paper's 20 mV/s scan rates;
    /// ≲10⁻⁴ cm/s is irreversible and needs a large overpotential.
    pub fn rate_constant_cm_per_s(&self) -> f64 {
        self.rate_constant_cm_per_s
    }

    /// Charge-transfer coefficient `α` (0 < α < 1, usually ≈0.5).
    pub fn transfer_coefficient(&self) -> f64 {
        self.transfer_coefficient
    }
}

/// Builder for [`RedoxCouple`] (guideline C-BUILDER).
#[derive(Debug, Clone)]
pub struct RedoxCoupleBuilder {
    name: String,
    electrons: u32,
    formal_potential: Volts,
    diffusion_ox: DiffusionCoefficient,
    diffusion_red: Option<DiffusionCoefficient>,
    rate_constant_cm_per_s: f64,
    transfer_coefficient: f64,
}

impl RedoxCoupleBuilder {
    /// Sets the number of electrons transferred (default 1).
    pub fn electrons(mut self, n: u32) -> Self {
        self.electrons = n;
        self
    }

    /// Sets the formal potential `E⁰'` vs Ag/AgCl (default 0 V).
    pub fn formal_potential(mut self, e0: Volts) -> Self {
        self.formal_potential = e0;
        self
    }

    /// Sets the diffusion coefficient of both forms, in cm²/s (default 10⁻⁵).
    pub fn diffusion(mut self, d_cm2_per_s: f64) -> Self {
        self.diffusion_ox = DiffusionCoefficient::new(d_cm2_per_s);
        self
    }

    /// Sets a distinct diffusion coefficient for the reduced form.
    pub fn diffusion_red(mut self, d_cm2_per_s: f64) -> Self {
        self.diffusion_red = Some(DiffusionCoefficient::new(d_cm2_per_s));
        self
    }

    /// Sets the standard heterogeneous rate constant `k⁰` in cm/s (default 1.0).
    pub fn rate_constant(mut self, k0_cm_per_s: f64) -> Self {
        self.rate_constant_cm_per_s = k0_cm_per_s;
        self
    }

    /// Sets the charge-transfer coefficient `α` (default 0.5).
    pub fn transfer_coefficient(mut self, alpha: f64) -> Self {
        self.transfer_coefficient = alpha;
        self
    }

    /// Validates the parameters and builds the couple.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] when `n == 0`, a
    /// diffusion coefficient or rate constant is non-positive, or `α` is
    /// outside `(0, 1)`.
    pub fn build(self) -> Result<RedoxCouple, ElectrochemError> {
        if self.electrons == 0 {
            return Err(ElectrochemError::invalid("electrons", "must be at least 1"));
        }
        if self.diffusion_ox.value() <= 0.0 || !self.diffusion_ox.value().is_finite() {
            return Err(ElectrochemError::invalid(
                "diffusion_ox",
                "must be positive and finite",
            ));
        }
        let diffusion_red = self.diffusion_red.unwrap_or(self.diffusion_ox);
        if diffusion_red.value() <= 0.0 || !diffusion_red.value().is_finite() {
            return Err(ElectrochemError::invalid(
                "diffusion_red",
                "must be positive and finite",
            ));
        }
        if self.rate_constant_cm_per_s <= 0.0 || !self.rate_constant_cm_per_s.is_finite() {
            return Err(ElectrochemError::invalid(
                "rate_constant",
                "must be positive and finite",
            ));
        }
        if !(self.transfer_coefficient > 0.0 && self.transfer_coefficient < 1.0) {
            return Err(ElectrochemError::invalid(
                "transfer_coefficient",
                "must lie strictly between 0 and 1",
            ));
        }
        if !self.formal_potential.is_finite() {
            return Err(ElectrochemError::invalid(
                "formal_potential",
                "must be finite",
            ));
        }
        Ok(RedoxCouple {
            name: self.name,
            electrons: self.electrons,
            formal_potential: self.formal_potential,
            diffusion_ox: self.diffusion_ox,
            diffusion_red,
            rate_constant_cm_per_s: self.rate_constant_cm_per_s,
            transfer_coefficient: self.transfer_coefficient,
        })
    }
}

/// Well-known couples used throughout the workspace.
impl RedoxCouple {
    /// Hydrogen peroxide oxidation (paper eq. 3): the common oxidase product.
    ///
    /// Kinetically sluggish on plain electrodes — the reason the paper's
    /// Table I oxidase sensors poll at +550…+700 mV instead of near `E⁰'`.
    ///
    /// Constructed as a literal rather than through the validating builder so
    /// this constant constructor has no panic path.
    pub fn hydrogen_peroxide() -> Self {
        Self {
            name: "H2O2".to_string(),
            electrons: 2,
            formal_potential: Volts::new(0.27),
            diffusion_ox: DiffusionCoefficient::new(1.71e-5),
            diffusion_red: DiffusionCoefficient::new(1.71e-5),
            rate_constant_cm_per_s: 2.0e-6,
            transfer_coefficient: 0.5,
        }
    }

    /// Ferrocyanide/ferricyanide: the classic fast, reversible test couple
    /// used to validate potentiostats and simulators.
    pub fn ferrocyanide() -> Self {
        Self {
            name: "Fe(CN)6^3-/4-".to_string(),
            electrons: 1,
            formal_potential: Volts::new(0.23),
            diffusion_ox: DiffusionCoefficient::new(6.7e-6),
            diffusion_red: DiffusionCoefficient::new(6.7e-6),
            rate_constant_cm_per_s: 0.1,
            transfer_coefficient: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let c = RedoxCouple::builder("X")
            .electrons(2)
            .formal_potential(Volts::new(-0.25))
            .diffusion(5e-6)
            .build()
            .expect("valid");
        assert_eq!(c.name(), "X");
        assert_eq!(c.electrons(), 2);
        assert_eq!(c.formal_potential(), Volts::new(-0.25));
        // diffusion_red defaults to diffusion_ox
        assert_eq!(c.diffusion_red(), c.diffusion_ox());
        assert_eq!(c.transfer_coefficient(), 0.5);
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(RedoxCouple::builder("X").electrons(0).build().is_err());
        assert!(RedoxCouple::builder("X").diffusion(-1.0).build().is_err());
        assert!(RedoxCouple::builder("X")
            .rate_constant(0.0)
            .build()
            .is_err());
        assert!(RedoxCouple::builder("X")
            .transfer_coefficient(1.0)
            .build()
            .is_err());
        assert!(RedoxCouple::builder("X")
            .transfer_coefficient(0.0)
            .build()
            .is_err());
        assert!(RedoxCouple::builder("X")
            .formal_potential(Volts::new(f64::NAN))
            .build()
            .is_err());
    }

    #[test]
    fn distinct_reduced_diffusion() {
        let c = RedoxCouple::builder("X")
            .diffusion(1e-5)
            .diffusion_red(2e-5)
            .build()
            .expect("valid");
        assert_eq!(c.diffusion_ox().value(), 1e-5);
        assert_eq!(c.diffusion_red().value(), 2e-5);
    }

    #[test]
    fn presets_are_physical() {
        let h = RedoxCouple::hydrogen_peroxide();
        assert_eq!(h.electrons(), 2);
        assert!(
            h.rate_constant_cm_per_s() < 1e-4,
            "H2O2 must be irreversible"
        );
        let f = RedoxCouple::ferrocyanide();
        assert!(
            f.rate_constant_cm_per_s() >= 0.01,
            "ferrocyanide must be fast"
        );
    }
}
