//! Error type for the electrochemistry engine.

/// Errors produced while configuring or running electrochemical simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum ElectrochemError {
    /// A physical parameter was out of its valid domain.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The requested simulation would produce no samples.
    EmptyProgram,
    /// The spatial grid could not resolve the diffusion layer.
    GridTooCoarse {
        /// Requested node count.
        nodes: usize,
        /// Minimum node count for the requested accuracy.
        minimum: usize,
    },
    /// The tridiagonal system was singular.
    SingularSystem,
}

impl ElectrochemError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl core::fmt::Display for ElectrochemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            Self::EmptyProgram => write!(f, "potential program produces no samples"),
            Self::GridTooCoarse { nodes, minimum } => write!(
                f,
                "spatial grid of {nodes} nodes cannot resolve the diffusion layer (need at least {minimum})"
            ),
            Self::SingularSystem => write!(f, "tridiagonal diffusion system is singular"),
        }
    }
}

impl std::error::Error for ElectrochemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ElectrochemError::invalid("k0", "must be positive");
        assert_eq!(e.to_string(), "invalid parameter k0: must be positive");
        assert!(ElectrochemError::EmptyProgram
            .to_string()
            .contains("no samples"));
        let g = ElectrochemError::GridTooCoarse {
            nodes: 4,
            minimum: 32,
        };
        assert!(g.to_string().contains('4') && g.to_string().contains("32"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ElectrochemError>();
    }
}
