//! Closed-form chronoamperometry relations (Cottrell and microelectrode
//! steady state) used to validate the numerical solver and to size readout
//! circuits quickly.

use crate::species::RedoxCouple;
use bios_units::{Amps, Centimeters, Molar, Seconds, SquareCentimeters, FARADAY};

/// Cottrell current for a diffusion-limited potential step on a planar
/// electrode: `i(t) = n·F·A·C·√(D/(π·t))`.
///
/// # Panics
///
/// Panics if `t` is not strictly positive (the Cottrell expression diverges
/// at `t = 0`).
///
/// # Example
///
/// ```
/// use bios_electrochem::{cottrell_current, RedoxCouple};
/// use bios_units::{Molar, Seconds, SquareCentimeters};
///
/// let c = RedoxCouple::ferrocyanide();
/// let i = cottrell_current(
///     &c,
///     SquareCentimeters::new(0.01),
///     Molar::from_millimolar(1.0),
///     Seconds::new(1.0),
/// );
/// // ≈ 96485 · 0.01 · 1e-6 · √(6.7e-6/π) ≈ 1.41 µA
/// assert!((i.as_microamps() - 1.41).abs() < 0.02);
/// ```
pub fn cottrell_current(
    couple: &RedoxCouple,
    area: SquareCentimeters,
    bulk: Molar,
    t: Seconds,
) -> Amps {
    assert!(t.value() > 0.0, "cottrell current diverges at t = 0");
    let n = couple.electrons() as f64;
    let d = couple.diffusion_ox().value();
    let c = bulk.to_moles_per_cm3().value();
    Amps::new(n * FARADAY * area.value() * c * (d / (core::f64::consts::PI * t.value())).sqrt())
}

/// Steady-state limiting current of a disk *microelectrode* of radius `r`:
/// `i_ss = 4·n·F·D·C·r`.
///
/// Unlike planar electrodes, microelectrodes reach a true steady state —
/// the basis of the paper's §III observation that scaled-down electrodes
/// enable "much shorter measurements".
pub fn microdisk_steady_state(couple: &RedoxCouple, radius: Centimeters, bulk: Molar) -> Amps {
    let n = couple.electrons() as f64;
    let d = couple.diffusion_ox().value();
    let c = bulk.to_moles_per_cm3().value();
    Amps::new(4.0 * n * FARADAY * d * c * radius.value())
}

/// Time for a disk microelectrode of radius `r` to settle within ~10% of its
/// steady state, `t ≈ r²/D` — the response-time advantage of miniaturization.
pub fn microdisk_settling_time(couple: &RedoxCouple, radius: Centimeters) -> Seconds {
    Seconds::new(radius.value().powi(2) / couple.diffusion_ox().value())
}

/// Charge passed by a Cottrell transient between `t0` and `t1`
/// (`Q = 2·n·F·A·C·√(D/π)·(√t₁ − √t₀)`), for coulometric sizing.
///
/// # Panics
///
/// Panics if `t0 > t1` or `t0 < 0`.
pub fn cottrell_charge(
    couple: &RedoxCouple,
    area: SquareCentimeters,
    bulk: Molar,
    t0: Seconds,
    t1: Seconds,
) -> bios_units::Coulombs {
    assert!(
        t0.value() >= 0.0 && t1.value() >= t0.value(),
        "need 0 <= t0 <= t1"
    );
    let n = couple.electrons() as f64;
    let d = couple.diffusion_ox().value();
    let c = bulk.to_moles_per_cm3().value();
    let k = 2.0 * n * FARADAY * area.value() * c * (d / core::f64::consts::PI).sqrt();
    bios_units::Coulombs::new(k * (t1.value().sqrt() - t0.value().sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_decays_as_inverse_sqrt_t() {
        let c = RedoxCouple::ferrocyanide();
        let a = SquareCentimeters::new(0.01);
        let conc = Molar::from_millimolar(1.0);
        let i1 = cottrell_current(&c, a, conc, Seconds::new(1.0));
        let i4 = cottrell_current(&c, a, conc, Seconds::new(4.0));
        assert!((i1.value() / i4.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn current_scales_linearly_with_concentration_and_area() {
        let c = RedoxCouple::ferrocyanide();
        let i1 = cottrell_current(
            &c,
            SquareCentimeters::new(0.01),
            Molar::from_millimolar(1.0),
            Seconds::new(1.0),
        );
        let i2 = cottrell_current(
            &c,
            SquareCentimeters::new(0.02),
            Molar::from_millimolar(2.0),
            Seconds::new(1.0),
        );
        assert!((i2.value() / i1.value() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn zero_time_panics() {
        let c = RedoxCouple::ferrocyanide();
        let _ = cottrell_current(
            &c,
            SquareCentimeters::new(0.01),
            Molar::from_millimolar(1.0),
            Seconds::ZERO,
        );
    }

    #[test]
    fn microdisk_is_faster_when_smaller() {
        let c = RedoxCouple::ferrocyanide();
        let small = microdisk_settling_time(&c, Centimeters::from_micrometers(5.0));
        let large = microdisk_settling_time(&c, Centimeters::from_micrometers(50.0));
        assert!(small.value() < large.value() / 50.0);
        // 5 µm disk settles in well under a second.
        assert!(small.value() < 0.1);
    }

    #[test]
    fn microdisk_steady_state_magnitude() {
        // 4·n·F·D·C·r for 1 mM, 6.7e-6 cm²/s, 10 µm radius:
        // 4·96485·6.7e-6·1e-6·1e-3 ≈ 2.59 nA.
        let c = RedoxCouple::ferrocyanide();
        let i = microdisk_steady_state(
            &c,
            Centimeters::from_micrometers(10.0),
            Molar::from_millimolar(1.0),
        );
        assert!(
            (i.as_nanoamps() - 2.59).abs() < 0.05,
            "i = {}",
            i.as_nanoamps()
        );
    }

    #[test]
    fn charge_integrates_current() {
        // dQ/dt at t must match i(t): check with a finite difference.
        let c = RedoxCouple::ferrocyanide();
        let a = SquareCentimeters::new(0.01);
        let conc = Molar::from_millimolar(1.0);
        let t = 2.0;
        let eps = 1e-4;
        let dq = cottrell_charge(&c, a, conc, Seconds::new(t - eps), Seconds::new(t + eps));
        let i = cottrell_current(&c, a, conc, Seconds::new(t));
        assert!((dq.value() / (2.0 * eps) - i.value()).abs() / i.value() < 1e-6);
    }
}
