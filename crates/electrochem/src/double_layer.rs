//! Double-layer (non-faradaic) charging currents — the background every
//! biosensor measurement sits on.
//!
//! The paper (§III) notes that scaling electrodes down shrinks the
//! background current "due to different double-layer capacitance phenomena";
//! these models quantify that.

use crate::cell::Cell;
use bios_units::{Amps, Seconds, Volts, VoltsPerSecond};

/// Charging current during a linear sweep: `i_c = C_dl·(dE/dt)`.
///
/// After a few cell time constants the capacitor tracks the ramp and the
/// charging current is constant; this returns that asymptote, signed with
/// the sweep direction (anodic-positive convention).
pub fn sweep_charging_current(cell: &Cell, rate: VoltsPerSecond, direction_up: bool) -> Amps {
    let magnitude = cell.double_layer_capacitance().value() * rate.value();
    Amps::new(if direction_up { magnitude } else { -magnitude })
}

/// Charging transient after a potential step `ΔE` through the uncompensated
/// resistance: `i_c(t) = (ΔE/R_u)·exp(−t/(R_u·C_dl))`.
///
/// Returns zero for `t < 0`. With `R_u = 0` the step charges instantly and
/// the function returns zero for `t > 0` (and ΔE/0 = ∞ is avoided by
/// convention: use a small series resistance if you need the spike).
pub fn step_charging_current(cell: &Cell, delta_e: Volts, t: Seconds) -> Amps {
    if t.value() < 0.0 {
        return Amps::ZERO;
    }
    let ru = cell.uncompensated_resistance().value();
    // advdiag::allow(F1, exact sentinel: an ideally unresisted cell charges instantaneously)
    if ru == 0.0 {
        return Amps::ZERO;
    }
    let tau = cell.time_constant().value();
    Amps::new(delta_e.value() / ru * (-t.value() / tau).exp())
}

/// Time for the step-charging transient to decay below `fraction` of its
/// initial value: `t = τ·ln(1/fraction)`.
///
/// # Panics
///
/// Panics unless `0 < fraction < 1`.
pub fn charging_settling_time(cell: &Cell, fraction: f64) -> Seconds {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "fraction must be in (0, 1)"
    );
    Seconds::new(cell.time_constant().value() * (1.0 / fraction).ln())
}

/// Discrete-time double-layer charging model for the simulation drivers.
///
/// The interface capacitance `C_dl` charges through the uncompensated
/// resistance `R_u`; for a piecewise-constant applied potential the update
/// is exact: `E_cap ← E + (E_cap − E)·exp(−Δt/τ)`, and the average charging
/// current over the step is `C_dl·ΔE_cap/Δt`. As `τ → 0` this recovers the
/// ideal `i_c = C_dl·dE/dt`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargingFilter {
    e_cap: f64,
    tau: f64,
    cdl: f64,
}

impl ChargingFilter {
    /// Creates the filter pre-equilibrated at `initial` potential.
    pub fn new(cell: &Cell, initial: Volts) -> Self {
        Self {
            e_cap: initial.value(),
            tau: cell.time_constant().value(),
            cdl: cell.double_layer_capacitance().value(),
        }
    }

    /// Advances one step of length `dt` with applied potential `e`; returns
    /// the average charging current over the step (anodic positive).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, e: Volts, dt: Seconds) -> Amps {
        assert!(dt.value() > 0.0, "time step must be positive");
        let next = if self.tau <= 0.0 {
            e.value()
        } else {
            e.value() + (self.e_cap - e.value()) * (-dt.value() / self.tau).exp()
        };
        let i = self.cdl * (next - self.e_cap) / dt.value();
        self.e_cap = next;
        Amps::new(i)
    }

    /// The capacitor's present potential.
    pub fn capacitor_potential(&self) -> Volts {
        Volts::new(self.e_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::electrode::{Electrode, ElectrodeMaterial};
    use bios_units::SquareCentimeters;

    fn cell_with_area(area_mm2: f64) -> Cell {
        let we = Electrode::new(
            ElectrodeMaterial::Gold,
            SquareCentimeters::from_square_millimeters(area_mm2),
        )
        .expect("valid");
        Cell::builder(we).build().expect("valid")
    }

    #[test]
    fn sweep_charging_scales_with_area() {
        // The microelectrode advantage: 10× smaller electrode → 10× smaller background.
        let rate = VoltsPerSecond::from_millivolts_per_second(20.0);
        let big = sweep_charging_current(&cell_with_area(2.3), rate, true);
        let small = sweep_charging_current(&cell_with_area(0.23), rate, true);
        assert!((big.value() / small.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_charging_signs_follow_direction() {
        let cell = cell_with_area(0.23);
        let rate = VoltsPerSecond::from_millivolts_per_second(20.0);
        assert!(sweep_charging_current(&cell, rate, true).value() > 0.0);
        assert!(sweep_charging_current(&cell, rate, false).value() < 0.0);
    }

    #[test]
    fn paper_electrode_background_magnitude() {
        // 0.23 mm² gold, 20 µF/cm², 20 mV/s → 46 nF · 0.02 V/s ≈ 0.92 nA.
        let cell = cell_with_area(0.23);
        let i = sweep_charging_current(
            &cell,
            VoltsPerSecond::from_millivolts_per_second(20.0),
            true,
        );
        assert!(
            (i.as_nanoamps() - 0.92).abs() < 0.05,
            "i = {}",
            i.as_nanoamps()
        );
    }

    #[test]
    fn step_transient_decays_exponentially() {
        let cell = cell_with_area(0.23);
        let de = Volts::from_millivolts(650.0);
        let i0 = step_charging_current(&cell, de, Seconds::ZERO);
        assert!((i0.value() - 0.65 / 100.0).abs() < 1e-12);
        let tau = cell.time_constant();
        let i_tau = step_charging_current(&cell, de, tau);
        assert!((i_tau.value() / i0.value() - (-1.0f64).exp()).abs() < 1e-9);
        assert_eq!(
            step_charging_current(&cell, de, Seconds::new(-1.0)),
            Amps::ZERO
        );
    }

    #[test]
    fn settling_time_log_relation() {
        let cell = cell_with_area(0.23);
        let t1 = charging_settling_time(&cell, 0.01);
        // ln(100) ≈ 4.6 time constants.
        assert!((t1.value() / cell.time_constant().value() - 100.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn settling_rejects_bad_fraction() {
        let _ = charging_settling_time(&cell_with_area(0.23), 1.5);
    }

    #[test]
    fn charging_filter_tracks_ramp_asymptote() {
        let cell = cell_with_area(0.23);
        let mut filt = ChargingFilter::new(&cell, Volts::ZERO);
        let dt = Seconds::from_millis(1.0);
        let rate = 0.02; // 20 mV/s
        let mut i = Amps::ZERO;
        for k in 0..2000 {
            let e = Volts::new(rate * (k + 1) as f64 * dt.value());
            i = filt.step(e, dt);
        }
        let expected = sweep_charging_current(
            &cell,
            VoltsPerSecond::from_millivolts_per_second(20.0),
            true,
        );
        assert!((i.value() - expected.value()).abs() / expected.value() < 0.01);
    }

    #[test]
    fn charging_filter_step_charge_conserved() {
        // Total charge through the filter after a step equals C·ΔE.
        let cell = cell_with_area(0.23);
        let mut filt = ChargingFilter::new(&cell, Volts::ZERO);
        let dt = Seconds::from_micros(1.0);
        let e = Volts::from_millivolts(650.0);
        let mut q = 0.0;
        for _ in 0..200 {
            q += filt.step(e, dt).value() * dt.value();
        }
        let expected = cell.double_layer_capacitance().value() * 0.65;
        assert!(
            (q - expected).abs() / expected < 1e-6,
            "q = {q}, expected {expected}"
        );
        assert!((filt.capacitor_potential().value() - 0.65).abs() < 1e-9);
    }
}
