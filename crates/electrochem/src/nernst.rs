//! Nernstian equilibrium relations.

use crate::species::RedoxCouple;
use bios_units::{Kelvin, Molar, Volts, FARADAY, GAS_CONSTANT};

/// Equilibrium electrode potential for the couple at the given bulk
/// concentrations (Nernst equation):
/// `E = E⁰' + (RT/nF)·ln([O]/[R])`.
///
/// # Panics
///
/// Panics if either concentration is non-positive (the logarithm is
/// undefined there — use activities with a supporting electrolyte model if
/// you need the trace limit).
///
/// # Example
///
/// ```
/// use bios_electrochem::{equilibrium_potential, RedoxCouple};
/// use bios_units::{Molar, T_ROOM};
///
/// let c = RedoxCouple::ferrocyanide();
/// // Equal concentrations: E = E⁰'.
/// let e = equilibrium_potential(&c, Molar::from_millimolar(1.0), Molar::from_millimolar(1.0), T_ROOM);
/// assert!((e.value() - c.formal_potential().value()).abs() < 1e-12);
/// ```
pub fn equilibrium_potential(
    couple: &RedoxCouple,
    ox: Molar,
    red: Molar,
    temperature: Kelvin,
) -> Volts {
    assert!(
        ox.value() > 0.0 && red.value() > 0.0,
        "nernst: concentrations must be strictly positive"
    );
    let slope = GAS_CONSTANT * temperature.value() / (couple.electrons() as f64 * FARADAY);
    Volts::new(couple.formal_potential().value() + slope * (ox.value() / red.value()).ln())
}

/// Surface concentration ratio `[O]₀/[R]₀` imposed by a Nernstian electrode
/// at potential `e`: `exp(nF(E−E⁰')/RT)`.
///
/// # Example
///
/// ```
/// use bios_electrochem::{nernst_ratio, RedoxCouple};
/// use bios_units::{T_ROOM, Volts};
///
/// let c = RedoxCouple::ferrocyanide();
/// // 59.2/n mV positive of E⁰' → ratio 10 (for n = 1).
/// let e = Volts::new(c.formal_potential().value() + 0.05916);
/// let r = nernst_ratio(&c, e, T_ROOM);
/// assert!((r - 10.0).abs() < 0.01);
/// ```
pub fn nernst_ratio(couple: &RedoxCouple, e: Volts, temperature: Kelvin) -> f64 {
    let f = FARADAY / (GAS_CONSTANT * temperature.value());
    let n = couple.electrons() as f64;
    (n * f * (e.value() - couple.formal_potential().value()))
        .clamp(-200.0, 200.0)
        .exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::T_ROOM;

    #[test]
    fn decade_shift_is_59_mv() {
        let c = RedoxCouple::ferrocyanide();
        let e1 = equilibrium_potential(
            &c,
            Molar::from_millimolar(10.0),
            Molar::from_millimolar(1.0),
            T_ROOM,
        );
        let e2 = equilibrium_potential(
            &c,
            Molar::from_millimolar(1.0),
            Molar::from_millimolar(1.0),
            T_ROOM,
        );
        assert!(((e1 - e2).as_millivolts() - 59.16).abs() < 0.05);
    }

    #[test]
    fn two_electron_halves_the_slope() {
        let c2 = RedoxCouple::builder("x")
            .electrons(2)
            .build()
            .expect("valid");
        let e = equilibrium_potential(
            &c2,
            Molar::from_millimolar(10.0),
            Molar::from_millimolar(1.0),
            T_ROOM,
        );
        assert!((e.as_millivolts() - 29.58).abs() < 0.05);
    }

    #[test]
    fn ratio_is_consistent_with_equilibrium() {
        let c = RedoxCouple::ferrocyanide();
        let ox = Molar::from_millimolar(3.0);
        let red = Molar::from_millimolar(0.7);
        let e = equilibrium_potential(&c, ox, red, T_ROOM);
        let ratio = nernst_ratio(&c, e, T_ROOM);
        assert!((ratio - ox.value() / red.value()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_concentration_panics() {
        let c = RedoxCouple::ferrocyanide();
        let _ = equilibrium_potential(&c, Molar::ZERO, Molar::from_millimolar(1.0), T_ROOM);
    }

    #[test]
    fn extreme_potentials_clamp() {
        let c = RedoxCouple::ferrocyanide();
        let r = nernst_ratio(&c, Volts::new(1e6), T_ROOM);
        assert!(r.is_finite());
    }
}
