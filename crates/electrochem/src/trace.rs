//! Recorded signals: current transients and voltammograms.

use bios_units::{Amps, Seconds, Volts};

/// A sampled current-vs-time record (chronoamperometry output).
///
/// Sign convention: anodic (oxidation) currents are positive, cathodic
/// (reduction) currents negative, following IUPAC.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Transient {
    time: Vec<Seconds>,
    current: Vec<Amps>,
}

impl Transient {
    /// Creates an empty transient.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a transient from parallel sample vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_samples(time: Vec<Seconds>, current: Vec<Amps>) -> Self {
        assert_eq!(time.len(), current.len(), "sample vectors must align");
        Self { time, current }
    }

    /// Appends one sample.
    pub fn push(&mut self, t: Seconds, i: Amps) {
        self.time.push(t);
        self.current.push(i);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the transient has no samples.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Time stamps.
    pub fn time(&self) -> &[Seconds] {
        &self.time
    }

    /// Current samples.
    pub fn current(&self) -> &[Amps] {
        &self.current
    }

    /// Iterates over `(t, i)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, Amps)> + '_ {
        self.time.iter().copied().zip(self.current.iter().copied())
    }

    /// The final sample, if any.
    pub fn last(&self) -> Option<(Seconds, Amps)> {
        Some((*self.time.last()?, *self.current.last()?))
    }

    /// Linear interpolation of the current at time `t`.
    ///
    /// Clamps to the first/last sample outside the record; returns `None`
    /// for an empty record.
    pub fn current_at(&self, t: Seconds) -> Option<Amps> {
        if self.is_empty() {
            return None;
        }
        let ts = &self.time;
        if t.value() <= ts[0].value() {
            return Some(self.current[0]);
        }
        if t.value() >= ts[ts.len() - 1].value() {
            return Some(self.current[ts.len() - 1]);
        }
        let idx = ts.partition_point(|x| x.value() <= t.value());
        let (t0, t1) = (ts[idx - 1].value(), ts[idx].value());
        let (i0, i1) = (self.current[idx - 1].value(), self.current[idx].value());
        let f = if t1 > t0 {
            (t.value() - t0) / (t1 - t0)
        } else {
            0.0
        };
        Some(Amps::new(i0 + f * (i1 - i0)))
    }

    /// Mean current over the final `fraction` of the record — a simple
    /// steady-state estimate for decayed chronoamperograms.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn tail_mean(&self, fraction: f64) -> Option<Amps> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        if self.is_empty() {
            return None;
        }
        let start = ((self.len() as f64) * (1.0 - fraction)) as usize;
        let tail = &self.current[start.min(self.len() - 1)..];
        Some(Amps::new(
            tail.iter().map(|i| i.value()).sum::<f64>() / tail.len() as f64,
        ))
    }

    /// Sample with the maximum absolute current.
    pub fn peak_abs(&self) -> Option<(Seconds, Amps)> {
        self.iter()
            .max_by(|a, b| a.1.abs().value().total_cmp(&b.1.abs().value()))
    }

    /// Renders the record as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,current_a\n");
        for (t, i) in self.iter() {
            out.push_str(&format!("{},{}\n", t.value(), i.value()));
        }
        out
    }
}

impl FromIterator<(Seconds, Amps)> for Transient {
    fn from_iter<I: IntoIterator<Item = (Seconds, Amps)>>(iter: I) -> Self {
        let mut t = Transient::new();
        for (time, current) in iter {
            t.push(time, current);
        }
        t
    }
}

/// A sampled current-vs-potential record (cyclic voltammetry output).
///
/// Keeps the time axis too, so scan segments can be separated.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Voltammogram {
    time: Vec<Seconds>,
    potential: Vec<Volts>,
    current: Vec<Amps>,
}

impl Voltammogram {
    /// Creates an empty voltammogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample.
    pub fn push(&mut self, t: Seconds, e: Volts, i: Amps) {
        self.time.push(t);
        self.potential.push(e);
        self.current.push(i);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the record is empty.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Time stamps.
    pub fn time(&self) -> &[Seconds] {
        &self.time
    }

    /// Potential samples.
    pub fn potential(&self) -> &[Volts] {
        &self.potential
    }

    /// Current samples.
    pub fn current(&self) -> &[Amps] {
        &self.current
    }

    /// Iterates over `(t, e, i)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, Volts, Amps)> + '_ {
        self.time
            .iter()
            .zip(self.potential.iter())
            .zip(self.current.iter())
            .map(|((t, e), i)| (*t, *e, *i))
    }

    /// Splits the record into monotone potential segments (forward/reverse
    /// scan legs). Returns index ranges into the sample arrays.
    pub fn segments(&self) -> Vec<core::ops::Range<usize>> {
        let n = self.len();
        if n < 2 {
            #[allow(clippy::single_range_in_vec_init)] // one segment really is the answer
            return if n == 0 { Vec::new() } else { vec![0..n] };
        }
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut dir = 0i8;
        for k in 1..n {
            let d = self.potential[k].value() - self.potential[k - 1].value();
            let s = if d > 0.0 {
                1
            } else if d < 0.0 {
                -1
            } else {
                dir
            };
            if dir == 0 {
                dir = s;
            } else if s != 0 && s != dir {
                out.push(start..k);
                start = k - 1;
                dir = s;
            }
        }
        out.push(start..n);
        out
    }

    /// The sample with the most positive current (anodic peak candidate).
    pub fn max_current(&self) -> Option<(Volts, Amps)> {
        self.potential
            .iter()
            .zip(self.current.iter())
            .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .map(|(e, i)| (*e, *i))
    }

    /// The sample with the most negative current (cathodic peak candidate).
    pub fn min_current(&self) -> Option<(Volts, Amps)> {
        self.potential
            .iter()
            .zip(self.current.iter())
            .min_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .map(|(e, i)| (*e, *i))
    }

    /// Renders the record as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,potential_v,current_a\n");
        for (t, e, i) in self.iter() {
            out.push_str(&format!("{},{},{}\n", t.value(), e.value(), i.value()));
        }
        out
    }
}

impl FromIterator<(Seconds, Volts, Amps)> for Voltammogram {
    fn from_iter<I: IntoIterator<Item = (Seconds, Volts, Amps)>>(iter: I) -> Self {
        let mut v = Voltammogram::new();
        for (t, e, i) in iter {
            v.push(t, e, i);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_transient() -> Transient {
        (0..=10)
            .map(|k| (Seconds::new(k as f64), Amps::new(k as f64 * 2.0)))
            .collect()
    }

    #[test]
    fn interpolation_and_clamping() {
        let t = ramp_transient();
        assert_eq!(
            t.current_at(Seconds::new(2.5)).expect("nonempty"),
            Amps::new(5.0)
        );
        assert_eq!(
            t.current_at(Seconds::new(-1.0)).expect("nonempty"),
            Amps::new(0.0)
        );
        assert_eq!(
            t.current_at(Seconds::new(99.0)).expect("nonempty"),
            Amps::new(20.0)
        );
        assert!(Transient::new().current_at(Seconds::ZERO).is_none());
    }

    #[test]
    fn tail_mean_estimates_plateau() {
        let mut t = Transient::new();
        for k in 0..100 {
            let i = if k < 50 { 0.0 } else { 4.0 };
            t.push(Seconds::new(k as f64), Amps::new(i));
        }
        let ss = t.tail_mean(0.2).expect("nonempty");
        assert_eq!(ss, Amps::new(4.0));
    }

    #[test]
    fn peak_abs_finds_largest_magnitude() {
        let mut t = Transient::new();
        t.push(Seconds::new(0.0), Amps::new(1.0));
        t.push(Seconds::new(1.0), Amps::new(-5.0));
        t.push(Seconds::new(2.0), Amps::new(3.0));
        let (pt, pi) = t.peak_abs().expect("nonempty");
        assert_eq!(pt, Seconds::new(1.0));
        assert_eq!(pi, Amps::new(-5.0));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = ramp_transient();
        let csv = t.to_csv();
        assert!(csv.starts_with("time_s,current_a\n"));
        assert_eq!(csv.lines().count(), 12);
    }

    #[test]
    fn voltammogram_segments_split_at_vertices() {
        let mut v = Voltammogram::new();
        // Triangle: 0 → -3 → 0.
        let es = [0.0, -1.0, -2.0, -3.0, -2.0, -1.0, 0.0];
        for (k, e) in es.iter().enumerate() {
            v.push(Seconds::new(k as f64), Volts::new(*e), Amps::new(0.0));
        }
        let segs = v.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], 0..4);
        assert_eq!(segs[1], 3..7);
    }

    #[test]
    fn voltammogram_extrema() {
        let mut v = Voltammogram::new();
        v.push(Seconds::new(0.0), Volts::new(-0.2), Amps::new(-1.0));
        v.push(Seconds::new(1.0), Volts::new(-0.4), Amps::new(-8.0));
        v.push(Seconds::new(2.0), Volts::new(-0.6), Amps::new(2.0));
        let (e_min, i_min) = v.min_current().expect("nonempty");
        assert_eq!(e_min, Volts::new(-0.4));
        assert_eq!(i_min, Amps::new(-8.0));
        let (e_max, i_max) = v.max_current().expect("nonempty");
        assert_eq!(e_max, Volts::new(-0.6));
        assert_eq!(i_max, Amps::new(2.0));
    }

    #[test]
    fn empty_and_single_sample_segments() {
        let v = Voltammogram::new();
        assert!(v.segments().is_empty());
        let mut one = Voltammogram::new();
        one.push(Seconds::ZERO, Volts::ZERO, Amps::ZERO);
        assert_eq!(one.segments(), vec![0..1]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_sample_vectors_panic() {
        let _ = Transient::from_samples(vec![Seconds::ZERO], vec![]);
    }
}
