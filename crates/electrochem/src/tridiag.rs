//! Tridiagonal linear solver (Thomas algorithm).
//!
//! The implicit diffusion step reduces to one tridiagonal solve per species
//! per time step; the Thomas algorithm does it in O(N).

use crate::error::ElectrochemError;

/// A tridiagonal system `A·x = d` with diagonals `(lower, main, upper)`.
///
/// # Example
///
/// ```
/// use bios_electrochem::Tridiagonal;
///
/// # fn main() -> Result<(), bios_electrochem::ElectrochemError> {
/// // [2 1 0] [x0]   [3]
/// // [1 2 1] [x1] = [4]   → x = [1, 1, 1]
/// // [0 1 2] [x2]   [3]
/// let sys = Tridiagonal::new(vec![1.0, 1.0], vec![2.0, 2.0, 2.0], vec![1.0, 1.0])?;
/// let x = sys.solve(&[3.0, 4.0, 3.0])?;
/// for v in x {
///     assert!((v - 1.0).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal {
    lower: Vec<f64>,
    main: Vec<f64>,
    upper: Vec<f64>,
    // Precomputed LU-style factorization for repeated solves.
    factor_main: Vec<f64>,
    factor_lower: Vec<f64>,
}

impl Tridiagonal {
    /// Builds (and factorizes) the system from its three diagonals.
    ///
    /// `main` has length `n`; `lower` and `upper` have length `n - 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] on mismatched diagonal
    /// lengths or non-finite entries, and
    /// [`ElectrochemError::SingularSystem`] if a pivot vanishes — including
    /// pivots that survive the naive `!= 0` test but are pure cancellation
    /// noise (e.g. `main = [1, 1 + 4ε]` with unit off-diagonals factors to a
    /// ~1e-16 pivot whose "solution" is garbage amplified by ~1e16).
    pub fn new(lower: Vec<f64>, main: Vec<f64>, upper: Vec<f64>) -> Result<Self, ElectrochemError> {
        let n = main.len();
        if n == 0 {
            return Err(ElectrochemError::invalid("main", "system must be nonempty"));
        }
        if lower.len() != n - 1 || upper.len() != n - 1 {
            return Err(ElectrochemError::invalid(
                "lower/upper",
                format!(
                    "off-diagonals must have length {} (got {} and {})",
                    n - 1,
                    lower.len(),
                    upper.len()
                ),
            ));
        }
        if lower
            .iter()
            .chain(main.iter())
            .chain(upper.iter())
            .any(|v| !v.is_finite())
        {
            return Err(ElectrochemError::invalid(
                "diagonals",
                "entries must be finite",
            ));
        }
        // A factored pivot smaller than this, relative to the operands whose
        // subtraction produced it, is catastrophic-cancellation noise: every
        // significant bit of `main[i]` was annihilated by `m·upper[i-1]` and
        // the residue is rounding error, so a solve through it returns
        // garbage scaled by ~1/pivot. The diffusion operators this solver
        // exists for are strictly diagonally dominant (pivot ≥ row scale),
        // so the threshold is unreachable for any well-posed system.
        const PIVOT_RTOL: f64 = 1e-12;
        // Factorize once: forward elimination multipliers.
        let mut factor_main = main.clone();
        let mut factor_lower = vec![0.0; n.saturating_sub(1)];
        for i in 1..n {
            let pivot = factor_main[i - 1];
            if pivot.abs() < 1e-300 {
                return Err(ElectrochemError::SingularSystem);
            }
            let m = lower[i - 1] / pivot;
            let correction = m * upper[i - 1];
            let next = main[i] - correction;
            if !next.is_finite() || next.abs() < PIVOT_RTOL * main[i].abs().max(correction.abs()) {
                return Err(ElectrochemError::SingularSystem);
            }
            factor_lower[i - 1] = m;
            factor_main[i] = next;
        }
        if factor_main[n - 1].abs() < 1e-300 {
            return Err(ElectrochemError::SingularSystem);
        }
        Ok(Self {
            lower,
            main,
            upper,
            factor_main,
            factor_lower,
        })
    }

    /// Dimension of the system.
    pub fn len(&self) -> usize {
        self.main.len()
    }

    /// Whether the system is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.main.is_empty()
    }

    /// Solves `A·x = d` using the precomputed factorization.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] if `d` has the wrong
    /// length.
    pub fn solve(&self, d: &[f64]) -> Result<Vec<f64>, ElectrochemError> {
        let n = self.len();
        if d.len() != n {
            return Err(ElectrochemError::invalid(
                "d",
                format!("right-hand side must have length {n} (got {})", d.len()),
            ));
        }
        let mut x = d.to_vec();
        self.solve_in_place(&mut x);
        Ok(x)
    }

    /// Solves in place, reusing the caller's buffer (hot path of the
    /// diffusion stepper).
    ///
    /// # Panics
    ///
    /// Panics if `d` has the wrong length.
    pub fn solve_in_place(&self, d: &mut [f64]) {
        let n = self.len();
        assert_eq!(d.len(), n, "right-hand side length mismatch");
        // Forward elimination with the precomputed multipliers. The running
        // `prev` value and lockstep iterators let the optimizer elide every
        // per-element bounds check on this hot path; the arithmetic (and
        // therefore the result, bit for bit) is unchanged.
        let mut prev = d[0];
        for (di, m) in d[1..].iter_mut().zip(&self.factor_lower) {
            *di -= m * prev;
            prev = *di;
        }
        // Back substitution, same treatment.
        let (head, last) = d.split_at_mut(n - 1);
        last[0] /= self.factor_main[n - 1];
        let mut next = last[0];
        for ((di, u), fm) in head
            .iter_mut()
            .rev()
            .zip(self.upper.iter().rev())
            .zip(self.factor_main[..n - 1].iter().rev())
        {
            *di = (*di - u * next) / fm;
            next = *di;
        }
    }

    /// Solves `A·X = D` for `batch` right-hand sides with one sweep.
    ///
    /// `d` is a node-major `[node × lane]` plane: `d[i * batch + b]` holds
    /// lane `b`'s value at node `i`, so all lanes of a node are contiguous
    /// and the inner lane loops are straight-line, unit-stride, and
    /// autovectorizable. Per lane the arithmetic is exactly the operation
    /// sequence of [`Self::solve_in_place`] (same multiplies, subtracts, and
    /// divides, in the same order), so lane `b` of the batched result is
    /// bit-identical to a scalar solve of lane `b` alone — batching shares
    /// the factorization sweep across lanes without reassociating anything.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `d.len() != self.len() * batch`.
    pub fn solve_batch_in_place(&self, d: &mut [f64], batch: usize) {
        assert!(batch > 0, "batch must be nonzero");
        let n = self.len();
        assert_eq!(d.len(), n * batch, "right-hand side plane size mismatch");
        if batch == 1 {
            return self.solve_in_place(d);
        }
        // Forward elimination: row i -= m[i-1] · row (i-1), lane-wise.
        for i in 1..n {
            let m = self.factor_lower[i - 1];
            let (head, tail) = d.split_at_mut(i * batch);
            let prev = &head[(i - 1) * batch..];
            let cur = &mut tail[..batch];
            for (x, p) in cur.iter_mut().zip(prev) {
                *x -= m * p;
            }
        }
        // Back substitution. Division (not multiplication by a reciprocal)
        // keeps every lane bit-identical to the scalar path.
        let fm_last = self.factor_main[n - 1];
        for x in &mut d[(n - 1) * batch..] {
            *x /= fm_last;
        }
        for i in (0..n - 1).rev() {
            let u = self.upper[i];
            let fm = self.factor_main[i];
            let (head, tail) = d.split_at_mut((i + 1) * batch);
            let cur = &mut head[i * batch..];
            let next = &tail[..batch];
            for (x, nx) in cur.iter_mut().zip(next) {
                *x = (*x - u * nx) / fm;
            }
        }
    }

    /// Computes `A·x` (for residual checks and tests).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.len();
        assert_eq!(x.len(), n, "vector length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = self.main[i] * x[i];
            if i > 0 {
                v += self.lower[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                v += self.upper[i] * x[i + 1];
            }
            y[i] = v;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let sys = Tridiagonal::new(vec![0.0; 4], vec![1.0; 5], vec![0.0; 4]).expect("valid");
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = sys.solve(&d).expect("solve");
        assert_eq!(x, d.to_vec());
    }

    #[test]
    fn solves_known_system() {
        let sys =
            Tridiagonal::new(vec![1.0, 1.0], vec![2.0, 2.0, 2.0], vec![1.0, 1.0]).expect("valid");
        let x = sys.solve(&[3.0, 4.0, 3.0]).expect("solve");
        for v in &x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_then_solve_round_trips() {
        // Diagonally dominant random-ish system.
        let n = 64;
        let lower: Vec<f64> = (0..n - 1).map(|i| -0.3 - 0.001 * i as f64).collect();
        let upper: Vec<f64> = (0..n - 1).map(|i| -0.4 + 0.002 * i as f64).collect();
        let main: Vec<f64> = (0..n).map(|i| 2.0 + 0.01 * i as f64).collect();
        let sys = Tridiagonal::new(lower, main, upper).expect("valid");
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let d = sys.apply(&x_true);
        let x = sys.solve(&d).expect("solve");
        for (a, b) in x.iter().zip(x_true.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(Tridiagonal::new(vec![1.0], vec![1.0, 1.0, 1.0], vec![1.0, 1.0]).is_err());
        assert!(Tridiagonal::new(vec![], vec![], vec![]).is_err());
        let sys = Tridiagonal::new(vec![1.0], vec![2.0, 2.0], vec![1.0]).expect("valid");
        assert!(sys.solve(&[1.0]).is_err());
    }

    #[test]
    fn detects_singularity() {
        // First pivot zero.
        assert!(matches!(
            Tridiagonal::new(vec![1.0], vec![0.0, 1.0], vec![1.0]),
            Err(ElectrochemError::SingularSystem)
        ));
        // Elimination produces a zero pivot: [[1,1],[1,1]].
        assert!(matches!(
            Tridiagonal::new(vec![1.0], vec![1.0, 1.0], vec![1.0]),
            Err(ElectrochemError::SingularSystem)
        ));
    }

    #[test]
    fn detects_cancellation_singularity() {
        // [[1, 1], [1, 1 + 4ε]] is numerically singular: elimination leaves
        // factor_main[1] ≈ 4.4e-16, pure rounding residue. The old absolute
        // 1e-300 check accepted it and "solved" through the noise pivot,
        // returning values amplified by ~1e16.
        let eps = 4.0 * f64::EPSILON;
        assert!(matches!(
            Tridiagonal::new(vec![1.0], vec![1.0, 1.0 + eps], vec![1.0]),
            Err(ElectrochemError::SingularSystem)
        ));
        // Same shape at a different scale — the check is relative.
        assert!(matches!(
            Tridiagonal::new(vec![1e8], vec![1e8, 1e8 * (1.0 + eps)], vec![1e8]),
            Err(ElectrochemError::SingularSystem)
        ));
        // A well-separated pivot of the same magnitude is still accepted.
        assert!(Tridiagonal::new(vec![1.0], vec![1.0, 1.5], vec![1.0]).is_ok());
    }

    #[test]
    fn rejects_non_finite_entries() {
        assert!(Tridiagonal::new(vec![1.0], vec![f64::NAN, 2.0], vec![1.0]).is_err());
        assert!(Tridiagonal::new(vec![f64::INFINITY], vec![2.0, 2.0], vec![1.0]).is_err());
    }

    #[test]
    fn batch_solve_matches_scalar_bit_for_bit() {
        let n = 37;
        let lower: Vec<f64> = (0..n - 1).map(|i| -0.3 - 0.001 * i as f64).collect();
        let upper: Vec<f64> = (0..n - 1).map(|i| -0.4 + 0.002 * i as f64).collect();
        let main: Vec<f64> = (0..n).map(|i| 2.0 + 0.01 * i as f64).collect();
        let sys = Tridiagonal::new(lower, main, upper).expect("valid");
        let batch = 7;
        // Distinct right-hand side per lane.
        let mut plane = vec![0.0; n * batch];
        let mut lanes: Vec<Vec<f64>> = (0..batch)
            .map(|b| {
                (0..n)
                    .map(|i| ((i * batch + b) as f64 * 0.61).sin() + 0.1 * b as f64)
                    .collect()
            })
            .collect();
        for i in 0..n {
            for (b, lane) in lanes.iter().enumerate() {
                plane[i * batch + b] = lane[i];
            }
        }
        sys.solve_batch_in_place(&mut plane, batch);
        for lane in &mut lanes {
            sys.solve_in_place(lane);
        }
        for i in 0..n {
            for (b, lane) in lanes.iter().enumerate() {
                assert_eq!(
                    plane[i * batch + b].to_bits(),
                    lane[i].to_bits(),
                    "node {i} lane {b}"
                );
            }
        }
    }

    #[test]
    fn batch_of_one_matches_scalar() {
        let sys =
            Tridiagonal::new(vec![1.0, 1.0], vec![2.0, 2.0, 2.0], vec![1.0, 1.0]).expect("valid");
        let mut a = vec![3.0, 4.0, 3.0];
        let mut b = a.clone();
        sys.solve_in_place(&mut a);
        sys.solve_batch_in_place(&mut b, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn single_element_system() {
        let sys = Tridiagonal::new(vec![], vec![4.0], vec![]).expect("valid");
        let x = sys.solve(&[8.0]).expect("solve");
        assert_eq!(x, vec![2.0]);
        assert_eq!(sys.len(), 1);
        assert!(!sys.is_empty());
    }
}
