//! Surface-confined (adsorbed) redox couples.
//!
//! Cytochrome P450 biosensors immobilize the protein film *on* the
//! electrode, so its heme centre is a surface-confined couple: no diffusion
//! tail, symmetric peaks centred at `E⁰'`, peak current linear in scan rate
//! (not √v). The catalytic drug-sensing current of paper eq. 4 rides on top
//! of this wave (modelled in `bios-biochem`).

use crate::error::ElectrochemError;
use bios_units::{
    Amps, Kelvin, MolesPerCm2, SquareCentimeters, Volts, VoltsPerSecond, FARADAY, GAS_CONSTANT,
};

/// A redox couple immobilized on the electrode surface at a given coverage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SurfaceCouple {
    name: String,
    electrons: u32,
    formal_potential: Volts,
    coverage: MolesPerCm2,
}

impl SurfaceCouple {
    /// Creates a surface couple.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] for zero electrons or
    /// non-positive coverage.
    pub fn new(
        name: impl Into<String>,
        electrons: u32,
        formal_potential: Volts,
        coverage: MolesPerCm2,
    ) -> Result<Self, ElectrochemError> {
        if electrons == 0 {
            return Err(ElectrochemError::invalid("electrons", "must be at least 1"));
        }
        if coverage.value() <= 0.0 || !coverage.value().is_finite() {
            return Err(ElectrochemError::invalid(
                "coverage",
                "must be positive and finite",
            ));
        }
        if !formal_potential.is_finite() {
            return Err(ElectrochemError::invalid(
                "formal_potential",
                "must be finite",
            ));
        }
        Ok(Self {
            name: name.into(),
            electrons,
            formal_potential,
            coverage,
        })
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Electrons transferred.
    pub fn electrons(&self) -> u32 {
        self.electrons
    }

    /// Formal potential vs Ag/AgCl.
    pub fn formal_potential(&self) -> Volts {
        self.formal_potential
    }

    /// Surface coverage.
    pub fn coverage(&self) -> MolesPerCm2 {
        self.coverage
    }

    /// Faradaic current of the surface wave at potential `e` during a sweep.
    ///
    /// `i = ∓ (n²F²/RT)·A·Γ·v·e^ξ/(1+e^ξ)²` with `ξ = nF(E−E⁰')/RT`; the
    /// sign follows the sweep: cathodic (downward, `direction_up = false`)
    /// sweeps give negative (reduction) current.
    pub fn wave_current(
        &self,
        e: Volts,
        scan_rate: VoltsPerSecond,
        direction_up: bool,
        area: SquareCentimeters,
        temperature: Kelvin,
    ) -> Amps {
        let n = self.electrons as f64;
        let rt = GAS_CONSTANT * temperature.value();
        let xi =
            (n * FARADAY * (e.value() - self.formal_potential.value()) / rt).clamp(-200.0, 200.0);
        let shape = xi.exp() / (1.0 + xi.exp()).powi(2);
        let magnitude = n * n * FARADAY * FARADAY / rt
            * area.value()
            * self.coverage.value()
            * scan_rate.value()
            * shape;
        Amps::new(if direction_up { magnitude } else { -magnitude })
    }

    /// Peak current magnitude `n²F²AΓv/(4RT)` — linear in scan rate, the
    /// diagnostic that distinguishes adsorbed from diffusing species.
    pub fn peak_current(
        &self,
        scan_rate: VoltsPerSecond,
        area: SquareCentimeters,
        temperature: Kelvin,
    ) -> Amps {
        let n = self.electrons as f64;
        let rt = GAS_CONSTANT * temperature.value();
        Amps::new(
            n * n * FARADAY * FARADAY * area.value() * self.coverage.value() * scan_rate.value()
                / (4.0 * rt),
        )
    }

    /// Full width at half maximum of the ideal surface wave,
    /// `3.53·RT/(nF)` (≈ 90.6/n mV at 25 °C).
    pub fn fwhm(&self, temperature: Kelvin) -> Volts {
        let n = self.electrons as f64;
        Volts::new(3.53 * GAS_CONSTANT * temperature.value() / (n * FARADAY))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::T_ROOM;

    fn cyp_like() -> SurfaceCouple {
        SurfaceCouple::new(
            "CYP-heme",
            1,
            Volts::from_millivolts(-400.0),
            MolesPerCm2::from_picomoles_per_cm2(20.0),
        )
        .expect("valid")
    }

    #[test]
    fn peak_sits_at_formal_potential() {
        let c = cyp_like();
        let v = VoltsPerSecond::from_millivolts_per_second(20.0);
        let a = SquareCentimeters::new(0.0023);
        let at_e0 = c
            .wave_current(c.formal_potential(), v, false, a, T_ROOM)
            .abs();
        let off = c
            .wave_current(
                c.formal_potential() + Volts::from_millivolts(30.0),
                v,
                false,
                a,
                T_ROOM,
            )
            .abs();
        assert!(at_e0.value() > off.value());
        // Value at the peak equals the closed-form peak current.
        let ip = c.peak_current(v, a, T_ROOM);
        assert!((at_e0.value() - ip.value()).abs() / ip.value() < 1e-9);
    }

    #[test]
    fn cathodic_sweep_is_negative() {
        let c = cyp_like();
        let v = VoltsPerSecond::from_millivolts_per_second(20.0);
        let a = SquareCentimeters::new(0.0023);
        assert!(
            c.wave_current(c.formal_potential(), v, false, a, T_ROOM)
                .value()
                < 0.0
        );
        assert!(
            c.wave_current(c.formal_potential(), v, true, a, T_ROOM)
                .value()
                > 0.0
        );
    }

    #[test]
    fn peak_linear_in_scan_rate() {
        let c = cyp_like();
        let a = SquareCentimeters::new(0.0023);
        let i1 = c.peak_current(VoltsPerSecond::new(0.02), a, T_ROOM);
        let i2 = c.peak_current(VoltsPerSecond::new(0.04), a, T_ROOM);
        assert!((i2.value() / i1.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fwhm_matches_textbook() {
        let c = cyp_like();
        assert!((c.fwhm(T_ROOM).as_millivolts() - 90.7).abs() < 0.5);
        // Verify numerically: find potentials at half of peak.
        let v = VoltsPerSecond::new(0.02);
        let a = SquareCentimeters::new(0.0023);
        let half = c.peak_current(v, a, T_ROOM).value() / 2.0;
        let mut width = 0.0;
        let mut prev_above = false;
        for k in 0..4000 {
            let e = Volts::new(-0.6 + k as f64 * 1e-4);
            let above = c.wave_current(e, v, true, a, T_ROOM).value() > half;
            if above && !prev_above {
                width = e.value();
            }
            if !above && prev_above {
                width = e.value() - width;
                break;
            }
            prev_above = above;
        }
        assert!(
            (width - c.fwhm(T_ROOM).value()).abs() < 1e-3,
            "width {width}"
        );
    }

    #[test]
    fn realistic_cyp_peak_magnitude() {
        // 20 pmol/cm² on 0.23 mm² at 20 mV/s:
        // n²F²AΓv/4RT ≈ (96485²·0.0023·2e-11·0.02)/(4·8.314·298) ≈ 0.86 nA.
        let c = cyp_like();
        let ip = c.peak_current(
            VoltsPerSecond::from_millivolts_per_second(20.0),
            SquareCentimeters::new(0.0023),
            T_ROOM,
        );
        assert!(
            (ip.as_nanoamps() - 0.86).abs() < 0.05,
            "ip = {}",
            ip.as_nanoamps()
        );
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(SurfaceCouple::new("x", 0, Volts::ZERO, MolesPerCm2::new(1e-12)).is_err());
        assert!(SurfaceCouple::new("x", 1, Volts::ZERO, MolesPerCm2::ZERO).is_err());
        assert!(SurfaceCouple::new("x", 1, Volts::new(f64::NAN), MolesPerCm2::new(1e-12)).is_err());
    }
}
