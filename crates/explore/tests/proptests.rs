//! Property-based tests pinning the class-factored pipeline to per-point
//! ground truth: exact-frontier-vs-brute-force on random subsampled spaces,
//! pass-order independence, exec-policy independence, and the bit-coupling
//! of the surrogate to the core analytic model.

use bios_biochem::Analyte;
use bios_electrochem::Nanostructure;
use bios_explore::{
    brute_force_band, explore, explore_with_manager, surrogate_lod, ExplorePoint, ExploreSpace,
    ExploreSpec, PassId, PassManager,
};
use bios_platform::{
    predict_lod, DesignPoint, ExecPolicy, PanelSpec, ProbePreference, ReadoutSharing, TargetSpec,
};
use bios_units::Seconds;
use proptest::prelude::*;

const SENSABLE: [Analyte; 8] = [
    Analyte::Glucose,
    Analyte::Lactate,
    Analyte::Glutamate,
    Analyte::Cholesterol,
    Analyte::Benzphetamine,
    Analyte::Aminopyrine,
    Analyte::Clozapine,
    Analyte::Lidocaine,
];

fn arbitrary_panel() -> impl Strategy<Value = PanelSpec> {
    prop::collection::vec(0usize..SENSABLE.len(), 1..5).prop_map(move |idxs| {
        idxs.into_iter()
            .map(|i| TargetSpec::typical(SENSABLE[i]))
            .collect()
    })
}

/// A random subsampled space of at most ~2 000 points (well under the
/// brute-force oracle's 65 536-point cap, sized for O(n²) in CI).
fn arbitrary_space() -> impl Strategy<Value = ExploreSpace> {
    let nano = prop::collection::vec(0usize..4, 1..3);
    let sharing = 0usize..3; // 0 = shared, 1 = dedicated, 2 = both
    let chopcds = 0usize..4; // two bools: singleton or both, per axis
    let bits = prop::collection::vec(6u8..17, 1..3);
    let prefs = 0usize..3;
    let ovs = prop::collection::vec(0usize..10, 1..3);
    let area = prop::collection::vec(1u32..17, 1..3);
    ((nano, sharing, chopcds), (bits, prefs), (ovs, area)).prop_map(
        |((nano, sharing, chopcds), (mut bits, prefs), (ovs, mut area))| {
            let all_nano = [
                Nanostructure::None,
                Nanostructure::GoldNanoparticles,
                Nanostructure::CobaltOxide,
                Nanostructure::CarbonNanotubes,
            ];
            let all_ovs = [1u16, 2, 4, 8, 16, 32, 64, 128, 256, 512];
            let mut nanos: Vec<Nanostructure> = nano.into_iter().map(|i| all_nano[i]).collect();
            nanos.sort();
            nanos.dedup();
            bits.sort_unstable();
            bits.dedup();
            let mut ovs: Vec<u16> = ovs.into_iter().map(|i| all_ovs[i]).collect();
            ovs.sort_unstable();
            ovs.dedup();
            area.sort_unstable();
            area.dedup();
            ExploreSpace {
                nanostructures: nanos,
                sharing: match sharing {
                    0 => vec![ReadoutSharing::Shared],
                    1 => vec![ReadoutSharing::Dedicated],
                    _ => vec![ReadoutSharing::Shared, ReadoutSharing::Dedicated],
                },
                chopper: if chopcds & 1 == 0 {
                    vec![false, true]
                } else {
                    vec![true]
                },
                cds: if chopcds & 2 == 0 {
                    vec![false, true]
                } else {
                    vec![false]
                },
                adc_bits: bits,
                preferences: match prefs {
                    0 => vec![ProbePreference::MinimizeElectrodes],
                    1 => vec![ProbePreference::PreferOxidase, ProbePreference::PreferCytochrome],
                    _ => vec![
                        ProbePreference::MinimizeElectrodes,
                        ProbePreference::PreferOxidase,
                        ProbePreference::PreferCytochrome,
                    ],
                },
                oversampling: ovs,
                area_pct: area.into_iter().map(|k| k * 25).collect(),
            }
        },
    )
}

fn arbitrary_spec() -> impl Strategy<Value = ExploreSpec> {
    (arbitrary_panel(), arbitrary_space(), 0usize..3).prop_map(|(panel, space, b)| ExploreSpec {
        panel,
        space,
        session_budget: Seconds::new([300.0, 1800.0, 7200.0][b]),
    })
}

/// The `k`-th permutation of the four passes (factorial number system).
fn permutation(k: usize) -> [PassId; 4] {
    let mut pool = PassId::STANDARD.to_vec();
    let mut out = [PassId::Dominance; 4];
    let mut k = k % 24;
    let mut radix = 6; // 3!
    for (slot, item) in out.iter_mut().enumerate() {
        let idx = k / radix;
        *item = pool.remove(idx);
        k %= radix;
        if slot < 2 {
            radix /= 3 - slot;
        } else {
            radix = 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The class-factored pipeline reproduces the per-point brute-force
    /// frontier exactly: same ranks, same cost bits, same margin bits.
    #[test]
    fn pipeline_band_equals_brute_force(spec in arbitrary_spec()) {
        if spec.space.len() > 4096 {
            return Ok(());
        }
        let outcome = match explore(&spec, ExecPolicy::Sequential) {
            Ok(o) => o,
            Err(e) => {
                // A panel the platform builder rejects must be rejected
                // identically by the oracle (both fail in context build).
                prop_assert!(brute_force_band(&spec).is_err(), "pipeline err {e} but oracle ok");
                return Ok(());
            }
        };
        let oracle = brute_force_band(&spec).expect("oracle");
        prop_assert_eq!(outcome.band.len(), oracle.len());
        for (d, &(rank, cost, margin)) in outcome.band.iter().zip(oracle.iter()) {
            prop_assert_eq!(d.rank, rank);
            prop_assert_eq!(d.surrogate_cost.to_bits(), cost.to_bits());
            prop_assert_eq!(d.surrogate_margin.to_bits(), margin.to_bits());
        }
        prop_assert_eq!(
            outcome.statically_rejected + outcome.band.len() as u64,
            outcome.total_points
        );
    }

    /// Any permutation of the pruning passes yields the same surviving set
    /// and the same frontier digest.
    #[test]
    fn pass_order_is_irrelevant(spec in arbitrary_spec(), k in 0usize..24) {
        if spec.space.len() > 4096 {
            return Ok(());
        }
        let standard = match explore(&spec, ExecPolicy::Sequential) {
            Ok(o) => o,
            Err(_) => return Ok(()),
        };
        let permuted = explore_with_manager(
            &spec,
            &PassManager::with_order(&permutation(k)).expect("order"),
            ExecPolicy::Sequential,
        )
        .expect("permuted run");
        prop_assert_eq!(standard.frontier_digest, permuted.frontier_digest);
        prop_assert_eq!(&standard.band, &permuted.band);
        prop_assert_eq!(standard.statically_rejected, permuted.statically_rejected);
    }

    /// Exec policy never changes the answer: the shard merge is
    /// bit-identical for any thread count.
    #[test]
    fn exec_policy_is_irrelevant(spec in arbitrary_spec()) {
        if spec.space.len() > 4096 {
            return Ok(());
        }
        let seq = match explore(&spec, ExecPolicy::Sequential) {
            Ok(o) => o,
            Err(_) => return Ok(()),
        };
        let par = explore(&spec, ExecPolicy::Threads(2)).expect("threads run");
        prop_assert_eq!(seq.frontier_digest, par.frontier_digest);
        prop_assert_eq!(&seq.band, &par.band);
    }

    /// At the reference coordinates (oversampling 1, area 100%) the
    /// surrogate is the core analytic model, bit for bit.
    #[test]
    fn surrogate_is_bit_coupled_to_predict_lod(
        t in 0usize..SENSABLE.len(),
        n in 0usize..4,
        sharing in 0usize..2,
        chopper in 0usize..2,
        cds in 0usize..2,
        bits in 6u8..17,
        pf in 0usize..3,
    ) {
        let base = DesignPoint {
            nanostructure: [
                Nanostructure::None,
                Nanostructure::GoldNanoparticles,
                Nanostructure::CobaltOxide,
                Nanostructure::CarbonNanotubes,
            ][n],
            sharing: if sharing == 0 {
                ReadoutSharing::Shared
            } else {
                ReadoutSharing::Dedicated
            },
            chopper: chopper == 1,
            cds: cds == 1,
            adc_bits: bits,
            preference: [
                ProbePreference::MinimizeElectrodes,
                ProbePreference::PreferOxidase,
                ProbePreference::PreferCytochrome,
            ][pf],
        };
        let point = ExplorePoint { base, oversampling: 1, area_pct: 100 };
        match predict_lod(SENSABLE[t], &base) {
            Ok(core) => {
                let here = surrogate_lod(SENSABLE[t], &point).expect("surrogate");
                prop_assert_eq!(core.value().to_bits(), here.to_bits());
            }
            Err(_) => {
                // No probe can sense this analyte under this preference:
                // the surrogate must refuse the same coordinates.
                prop_assert!(surrogate_lod(SENSABLE[t], &point).is_err());
            }
        }
    }
}
