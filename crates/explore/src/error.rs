//! Error type for the exploration layer.

use bios_platform::PlatformError;

/// Errors produced while validating or exploring a design space.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExploreError {
    /// A space axis or query parameter was out of its valid domain.
    InvalidSpace {
        /// Which axis or parameter was rejected.
        what: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A pass manager order was malformed (duplicate pass, empty order).
    InvalidOrder {
        /// Why the order was rejected.
        reason: String,
    },
    /// A closed-form model produced a non-finite value; the surrogate
    /// cannot certify anything about this panel, so the run aborts rather
    /// than silently mis-pruning.
    NonFinite {
        /// Which quantity went non-finite.
        what: &'static str,
    },
    /// An internal invariant broke (class table mismatch, cursor overrun).
    /// Always a bug in this crate, never a user input problem.
    Internal {
        /// Which invariant broke.
        what: &'static str,
    },
    /// The underlying platform layer failed.
    Platform(PlatformError),
}

impl ExploreError {
    pub(crate) fn invalid(what: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidSpace {
            what,
            reason: reason.into(),
        }
    }
}

impl From<PlatformError> for ExploreError {
    fn from(e: PlatformError) -> Self {
        Self::Platform(e)
    }
}

impl core::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidSpace { what, reason } => {
                write!(f, "invalid design space: {what}: {reason}")
            }
            Self::InvalidOrder { reason } => write!(f, "invalid pass order: {reason}"),
            Self::NonFinite { what } => write!(f, "non-finite surrogate value: {what}"),
            Self::Internal { what } => write!(f, "internal exploration invariant broke: {what}"),
            Self::Platform(e) => write!(f, "platform layer: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}
