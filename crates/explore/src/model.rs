//! Closed-form surrogate models — the facts the passes prove things with.
//!
//! Every function here is a *pure* function of calibration-table rows
//! ([`bios_biochem`]), the core noise decomposition
//! ([`bios_platform::noise_breakdown`]) and a [`Skeleton`]. Purity is the
//! whole game: a pass may evaluate a class once and extend the verdict over
//! every point in the class's fiber, which is only sound if nothing here
//! reads ambient state.
//!
//! # Bit-exactness contract
//!
//! At the reference coordinates (`oversampling = 1`, `area_pct = 100`)
//! [`surrogate_lod`] is **bit-identical** to
//! [`bios_platform::predict_lod`]: the scale factors degenerate to
//! `x / 1.0` and `√1.0`, which are exact in IEEE 754, and the remaining
//! expression is the same noise quadrature evaluated in the same order.
//! A proptest pins this so the surrogate can never drift from the
//! simulator's analytic model.
//!
//! # Surrogate axes
//!
//! * **Oversampling `M`** — averaging `M` repeats attenuates stochastic
//!   and quantization noise by `√M`; drift and amplifier flicker are
//!   correlated across repeats and do not average down. Session time
//!   multiplies by `M`.
//! * **Area scale `a`** — blank noise is a current *density*, so a larger
//!   electrode averages it spatially (`1/√a` on the electrochemical
//!   terms); the ADC step is an absolute current referred back to density
//!   (`1/a`), and quantization also averages down with `M`. `a = 1`
//!   (`area_pct = 100`) is the paper's reference working-electrode area,
//!   [`bios_platform::PAPER_WE_AREA_CM2`].

use bios_biochem::tables::performance_of;
use bios_biochem::Analyte;
use bios_platform::{
    effective_sensitivity, electronics_budget, noise_breakdown, required_lod, NoiseBreakdown,
    PanelSpec, PlatformCost,
};
use bios_units::{Seconds, SquareCentimeters};

use crate::context::Skeleton;
use crate::error::ExploreError;
use crate::space::ExplorePoint;

/// Bump when any closed form changes meaning: the shard cache keys on it,
/// so stale entries can never be replayed across a model revision.
pub const MODEL_VERSION: u32 = 1;

/// The builder's realizability floor: derived resolution is clamped so the
/// dynamic range never exceeds 15 bits (`derive_oxidase_range` in
/// `bios-platform`).
const DERIVED_DR_CAP: f64 = 32768.0;

/// Predicted LOD (mol/L) for one target at an exploration point.
///
/// Composes the core [`noise_breakdown`] with the oversampling and
/// area-scale attenuations documented on the module. Bit-identical to
/// [`bios_platform::predict_lod`] at `M = 1`, `a = 1`.
// advdiag::hot — per-class surrogate; runs ~10⁵ times per pass sweep
pub fn surrogate_lod(target: Analyte, point: &ExplorePoint) -> Result<f64, ExploreError> {
    let nb: NoiseBreakdown = noise_breakdown(target, &point.base)?;
    let s_eff = effective_sensitivity(target, point.base.nanostructure)?;
    let a = point.area_scale();
    let sqrt_a = a.sqrt();
    let sqrt_m = f64::from(point.oversampling).sqrt();
    let drift = nb.drift / sqrt_a;
    let stochastic = nb.stochastic / (sqrt_a * sqrt_m);
    let amp_flicker = nb.amp_flicker;
    let quantization = nb.quantization / (a * sqrt_m);
    let total = (drift.powi(2) + stochastic.powi(2) + amp_flicker.powi(2) + quantization.powi(2))
        .sqrt();
    Ok(3.0 * total / s_eff)
}

/// Worst-case LOD margin over the panel: `min(required / predicted)`.
/// `≥ 1` means every target's requirement is met.
// advdiag::hot — per-class surrogate; runs ~10⁴–10⁵ times per pass sweep
pub fn worst_margin(panel: &PanelSpec, point: &ExplorePoint) -> Result<f64, ExploreError> {
    let mut worst = f64::INFINITY;
    for spec in panel.targets() {
        let lod = surrogate_lod(spec.analyte, point)?;
        let required = required_lod(spec)?.value();
        worst = worst.min(required / lod);
    }
    if worst.is_nan() {
        return Err(ExploreError::NonFinite {
            what: "worst LOD margin",
        });
    }
    Ok(worst)
}

/// The dynamic range the builder-derived current range demands of a
/// target's readout chain: full scale covers `1.2 × Vmax` current,
/// resolution resolves a third of the blank noise, clamped at the
/// builder's own 15-bit realizability floor. Electrode area cancels;
/// only the roughness gain moves it.
pub fn derived_dynamic_range(
    target: Analyte,
    nanostructure: bios_electrochem::Nanostructure,
) -> Result<f64, ExploreError> {
    let row = performance_of(target).ok_or(ExploreError::Internal {
        what: "panel target missing from the calibration registry",
    })?;
    let s_eff = effective_sensitivity(target, nanostructure)?;
    let full_scale = 1.2 * s_eff * row.km_apparent().value();
    let resolution = row.blank_sd().value() / 3.0;
    if !(full_scale.is_finite() && resolution.is_finite()) || resolution <= 0.0 {
        return Err(ExploreError::NonFinite {
            what: "derived dynamic range",
        });
    }
    Ok((full_scale / resolution).min(DERIVED_DR_CAP))
}

/// The first panel target (in panel order) whose derived dynamic range the
/// point's ADC cannot span, if any — the "AFE range/noise incompatibility"
/// refutation: the chain cannot simultaneously pass the Vmax current and
/// resolve the calibration blank noise with that many bits.
pub fn afe_incompatibility(
    panel: &PanelSpec,
    nanostructure: bios_electrochem::Nanostructure,
    adc_bits: u8,
) -> Result<Option<Analyte>, ExploreError> {
    let codes = (1u64 << u32::from(adc_bits.min(63))) as f64;
    for spec in panel.targets() {
        if codes < derived_dynamic_range(spec.analyte, nanostructure)? {
            return Ok(Some(spec.analyte));
        }
    }
    Ok(None)
}

/// One full session's duration in seconds: the skeleton's base schedule
/// repeated `oversampling` times.
pub fn session_time_s(skeleton: &Skeleton, oversampling: u16) -> f64 {
    skeleton.schedule_s * f64::from(oversampling)
}

/// The scalar cost of a point, from its skeleton and surrogate axes: the
/// core electronics bill at the point's ADC/chopper/CDS settings plus
/// the area-scaled electrode estate and the oversampled session time,
/// collapsed through [`PlatformCost::scalar`].
pub fn cost_scalar(skeleton: &Skeleton, point: &ExplorePoint) -> f64 {
    let budget = electronics_budget(
        skeleton.n_we,
        point.base.sharing,
        point.base.adc_bits,
        point.base.chopper,
        point.base.cds,
    );
    let cost = PlatformCost::assemble(
        &budget,
        SquareCentimeters::new(skeleton.we_area_cm2 * point.area_scale()),
        skeleton.total_electrodes,
        skeleton.chambers,
        Seconds::new(session_time_s(skeleton, point.oversampling)),
    );
    cost.scalar()
}

/// Why a point is statically excluded from simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum RejectReason {
    /// Some target's surrogate LOD misses its panel requirement
    /// (worst margin < 1).
    LodAboveRequirement {
        /// The first target (panel order) whose requirement is missed.
        analyte: Analyte,
    },
    /// The derived current range and blank noise demand more dynamic
    /// range than the point's ADC provides.
    AfeRangeNoiseIncompatible {
        /// The first target (panel order) whose range is unrealizable.
        analyte: Analyte,
    },
    /// A shared (muxed) readout serializes the schedule past the session
    /// budget at this oversampling factor.
    SharingConflict,
    /// Even a dedicated-readout schedule exceeds the session budget.
    SessionOverBudget,
    /// Another feasible point is at least as good on every surrogate axis
    /// and strictly better on one.
    Dominated,
}

/// Per-point static verdict — the reference semantics the class-factored
/// passes must reproduce exactly. Used by the brute-force oracle and the
/// proptests; the pipeline never calls this per point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticEval {
    /// The first refutation in canonical order (LOD, AFE, schedule), if any.
    pub reject: Option<RejectReason>,
    /// Scalar cost (lower is better).
    pub cost: f64,
    /// Worst LOD margin (higher is better).
    pub margin: f64,
    /// Session duration, seconds.
    pub session_s: f64,
}

/// Evaluates every static closed form at one point.
pub fn evaluate_static(
    panel: &PanelSpec,
    skeleton: &Skeleton,
    session_budget_s: f64,
    point: &ExplorePoint,
) -> Result<StaticEval, ExploreError> {
    let margin = worst_margin(panel, point)?;
    let cost = cost_scalar(skeleton, point);
    let session_s = session_time_s(skeleton, point.oversampling);
    if !cost.is_finite() || !session_s.is_finite() {
        return Err(ExploreError::NonFinite {
            what: "surrogate cost or session time",
        });
    }

    let mut reject = None;
    if margin < 1.0 {
        let mut culprit = None;
        for spec in panel.targets() {
            let lod = surrogate_lod(spec.analyte, point)?;
            if required_lod(spec)?.value() / lod < 1.0 {
                culprit = Some(spec.analyte);
                break;
            }
        }
        reject = culprit.map(|analyte| RejectReason::LodAboveRequirement { analyte });
    }
    if reject.is_none() {
        reject = afe_incompatibility(panel, point.base.nanostructure, point.base.adc_bits)?
            .map(|analyte| RejectReason::AfeRangeNoiseIncompatible { analyte });
    }
    if reject.is_none() && session_s > session_budget_s {
        reject = Some(match point.base.sharing {
            bios_platform::ReadoutSharing::Shared => RejectReason::SharingConflict,
            bios_platform::ReadoutSharing::Dedicated => RejectReason::SessionOverBudget,
        });
    }
    Ok(StaticEval {
        reject,
        cost,
        margin,
        session_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PanelContext;
    use crate::space::ExploreSpec;
    use bios_platform::{predict_lod, ProbePreference, ReadoutSharing};

    fn reference_point() -> ExplorePoint {
        ExplorePoint {
            base: bios_platform::DesignPoint {
                nanostructure: bios_electrochem::Nanostructure::CarbonNanotubes,
                sharing: ReadoutSharing::Shared,
                chopper: true,
                cds: true,
                adc_bits: 16,
                preference: ProbePreference::MinimizeElectrodes,
            },
            oversampling: 1,
            area_pct: 100,
        }
    }

    #[test]
    fn surrogate_matches_core_bit_for_bit_at_reference_coords() {
        let p = reference_point();
        for spec in PanelSpec::paper_fig4().targets() {
            let core = predict_lod(spec.analyte, &p.base).expect("core lod").value();
            let here = surrogate_lod(spec.analyte, &p).expect("surrogate lod");
            assert_eq!(core.to_bits(), here.to_bits(), "{:?}", spec.analyte);
        }
    }

    #[test]
    fn oversampling_and_area_strictly_help_lod() {
        let p = reference_point();
        let base = surrogate_lod(Analyte::Glucose, &p).expect("lod");
        let more_avg = surrogate_lod(
            Analyte::Glucose,
            &ExplorePoint {
                oversampling: 64,
                ..p
            },
        )
        .expect("lod");
        let more_area = surrogate_lod(Analyte::Glucose, &ExplorePoint { area_pct: 400, ..p })
            .expect("lod");
        assert!(more_avg < base && more_area < base);
    }

    #[test]
    fn afe_rule_relaxes_with_lower_roughness_and_more_bits() {
        use bios_electrochem::Nanostructure;
        let panel = PanelSpec::paper_fig4();
        let dr_cnt = derived_dynamic_range(Analyte::Glucose, Nanostructure::CarbonNanotubes)
            .expect("dr");
        let dr_bare =
            derived_dynamic_range(Analyte::Glucose, Nanostructure::None).expect("dr");
        assert!(dr_bare < dr_cnt);
        assert!(dr_cnt <= DERIVED_DR_CAP);
        // 16 bits always clears the 15-bit realizability cap.
        assert_eq!(
            afe_incompatibility(&panel, Nanostructure::CarbonNanotubes, 16).expect("afe"),
            None
        );
        // Few enough bits must eventually refute some target.
        assert!(
            afe_incompatibility(&panel, Nanostructure::CarbonNanotubes, 6)
                .expect("afe")
                .is_some()
        );
    }

    #[test]
    fn cost_grows_with_area_oversampling_and_bits() {
        let spec = ExploreSpec::standard(PanelSpec::paper_fig4());
        let cx = PanelContext::for_spec(&spec).expect("context");
        let p = reference_point();
        let sk = cx
            .skeleton(p.base.preference, p.base.sharing, p.base.cds)
            .expect("skeleton");
        let base = cost_scalar(&sk, &p);
        assert!(cost_scalar(&sk, &ExplorePoint { area_pct: 400, ..p }) > base);
        assert!(
            cost_scalar(
                &sk,
                &ExplorePoint {
                    oversampling: 8,
                    ..p
                }
            ) > base
        );
    }
}
