//! The extended, lazily-enumerated design space.
//!
//! [`bios_platform::DesignSpace`] enumerates the paper's six architectural
//! axes (~10² points). The real methodology question — §I of the paper —
//! is what happens when the space is *large*: this module adds two readout
//! axes (oversampling factor and working-electrode area scale) and swaps
//! eager materialization for **mixed-radix rank decoding**, so a ≥10⁶-point
//! space is a handful of `Vec`s of axis values plus arithmetic. Passes walk
//! ranks; nothing allocates per point.
//!
//! Rank layout is row-major with the axis order
//! `nanostructure → sharing → chopper → cds → adc_bits → preference →
//! oversampling → area_pct` (outermost first), matching the core
//! `DesignSpace::points_iter` convention on the shared prefix.

use bios_electrochem::Nanostructure;
use bios_platform::{DesignPoint, PanelSpec, ProbePreference, ReadoutSharing};
use bios_units::Seconds;

use crate::error::ExploreError;

/// One candidate design: the core architectural point plus the two
/// readout-tuning axes the closed-form surrogate understands.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExplorePoint {
    /// The architectural coordinates shared with [`bios_platform::evaluate`].
    pub base: DesignPoint,
    /// Per-target acquisition repeats averaged together (`M ≥ 1`). Buys
    /// `√M` on stochastic and quantization noise, costs `M×` session time.
    pub oversampling: u16,
    /// Working-electrode geometric area as a percentage of the paper's
    /// 0.23 mm² reference (100 = paper geometry). Integer so points hash
    /// and compare exactly.
    pub area_pct: u32,
}

impl ExplorePoint {
    /// Area scale factor `a` relative to the paper's WE geometry.
    pub fn area_scale(&self) -> f64 {
        f64::from(self.area_pct) / 100.0
    }
}

/// Axis cardinalities and row-major strides, precomputed once per run so
/// rank encoding/decoding in the hot sweeps is pure integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AxisSizes {
    pub n: usize,
    pub s: usize,
    pub ch: usize,
    pub cd: usize,
    pub ab: usize,
    pub pf: usize,
    pub os: usize,
    pub ar: usize,
}

impl AxisSizes {
    pub(crate) fn total(&self) -> u64 {
        self.n as u64
            * self.s as u64
            * self.ch as u64
            * self.cd as u64
            * self.ab as u64
            * self.pf as u64
            * self.os as u64
            * self.ar as u64
    }

    /// Row-major rank from per-axis indices (test oracle for the decoder;
    /// production sweeps keep a running rank instead).
    #[cfg(test)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rank(
        &self,
        n: usize,
        s: usize,
        ch: usize,
        cd: usize,
        ab: usize,
        pf: usize,
        os: usize,
        ar: usize,
    ) -> u64 {
        let mut r = n as u64;
        r = r * self.s as u64 + s as u64;
        r = r * self.ch as u64 + ch as u64;
        r = r * self.cd as u64 + cd as u64;
        r = r * self.ab as u64 + ab as u64;
        r = r * self.pf as u64 + pf as u64;
        r = r * self.os as u64 + os as u64;
        r * self.ar as u64 + ar as u64
    }

    /// Margin-class index over the axes the LOD surrogate reads:
    /// `(n, ch, cd, ab, os, ar)` — sharing and preference are fibered out.
    pub(crate) fn margin_class(
        &self,
        n: usize,
        ch: usize,
        cd: usize,
        ab: usize,
        os: usize,
        ar: usize,
    ) -> usize {
        ((((n * self.ch + ch) * self.cd + cd) * self.ab + ab) * self.os + os) * self.ar + ar
    }

    pub(crate) fn margin_classes(&self) -> usize {
        self.n * self.ch * self.cd * self.ab * self.os * self.ar
    }

    /// Cost-class index over the axes the cost surrogate reads:
    /// `(s, ch, cd, ab, pf, os, ar)` — nanostructure is fibered out.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn cost_class(
        &self,
        s: usize,
        ch: usize,
        cd: usize,
        ab: usize,
        pf: usize,
        os: usize,
        ar: usize,
    ) -> usize {
        (((((s * self.ch + ch) * self.cd + cd) * self.ab + ab) * self.pf + pf) * self.os + os)
            * self.ar
            + ar
    }

    pub(crate) fn cost_classes(&self) -> usize {
        self.s * self.ch * self.cd * self.ab * self.pf * self.os * self.ar
    }

    /// Session-time-class index over `(s, cd, pf, os)`.
    pub(crate) fn time_class(&self, s: usize, cd: usize, pf: usize, os: usize) -> usize {
        ((s * self.cd + cd) * self.pf + pf) * self.os + os
    }

    pub(crate) fn time_classes(&self) -> usize {
        self.s * self.cd * self.pf * self.os
    }

    /// AFE range/noise compatibility class index over `(n, ab)`: the
    /// derived dynamic range scales with roughness gain but the electrode
    /// area cancels (full scale and resolution both grow linearly with it).
    pub(crate) fn afe_class(&self, n: usize, ab: usize) -> usize {
        n * self.ab + ab
    }

    pub(crate) fn afe_classes(&self) -> usize {
        self.n * self.ab
    }
}

/// The cartesian-product design space, held as axis value lists and never
/// materialized. Duplicate axis values are rejected by [`validate`]
/// (`ExploreSpace::validate`) so ranks and points stay in bijection.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExploreSpace {
    /// Working-electrode nanostructuring options.
    pub nanostructures: Vec<Nanostructure>,
    /// Readout sharing options.
    pub sharing: Vec<ReadoutSharing>,
    /// Chopper stabilization options.
    pub chopper: Vec<bool>,
    /// Correlated-double-sampling options.
    pub cds: Vec<bool>,
    /// ADC resolution options.
    pub adc_bits: Vec<u8>,
    /// Probe-preference options.
    pub preferences: Vec<ProbePreference>,
    /// Oversampling factors (`M ≥ 1`).
    pub oversampling: Vec<u16>,
    /// WE area scales, percent of the paper geometry (`≥ 1`).
    pub area_pct: Vec<u32>,
}

impl ExploreSpace {
    /// The standard large box: every architectural option crossed with ten
    /// oversampling factors and sixteen electrode-area scales — 168 960
    /// points per panel, ≥10⁶ across a panel sweep.
    pub fn standard_box() -> Self {
        Self {
            nanostructures: vec![
                Nanostructure::None,
                Nanostructure::GoldNanoparticles,
                Nanostructure::CobaltOxide,
                Nanostructure::CarbonNanotubes,
            ],
            sharing: vec![ReadoutSharing::Shared, ReadoutSharing::Dedicated],
            chopper: vec![false, true],
            cds: vec![false, true],
            adc_bits: (6..=16).collect(),
            preferences: vec![
                ProbePreference::MinimizeElectrodes,
                ProbePreference::PreferOxidase,
                ProbePreference::PreferCytochrome,
            ],
            oversampling: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
            area_pct: (1..=16).map(|k| k * 25).collect(),
        }
    }

    /// Checks every axis is non-empty, duplicate-free and in-domain.
    pub fn validate(&self) -> Result<(), ExploreError> {
        fn unique<T: PartialEq>(axis: &[T]) -> bool {
            axis.iter()
                .enumerate()
                .all(|(i, v)| !axis[..i].contains(v))
        }
        if self.nanostructures.is_empty()
            || self.sharing.is_empty()
            || self.chopper.is_empty()
            || self.cds.is_empty()
            || self.adc_bits.is_empty()
            || self.preferences.is_empty()
            || self.oversampling.is_empty()
            || self.area_pct.is_empty()
        {
            return Err(ExploreError::invalid("axis", "every axis needs ≥1 value"));
        }
        if !(unique(&self.nanostructures)
            && unique(&self.sharing)
            && unique(&self.chopper)
            && unique(&self.cds)
            && unique(&self.adc_bits)
            && unique(&self.preferences)
            && unique(&self.oversampling)
            && unique(&self.area_pct))
        {
            return Err(ExploreError::invalid(
                "axis",
                "duplicate axis values break the rank↔point bijection",
            ));
        }
        if self.adc_bits.iter().any(|&b| b == 0 || b > 32) {
            return Err(ExploreError::invalid("adc_bits", "must be in 1..=32"));
        }
        if self.oversampling.iter().any(|&m| m == 0) {
            return Err(ExploreError::invalid("oversampling", "must be ≥ 1"));
        }
        if self.area_pct.iter().any(|&a| a == 0) {
            return Err(ExploreError::invalid("area_pct", "must be ≥ 1"));
        }
        Ok(())
    }

    pub(crate) fn sizes(&self) -> AxisSizes {
        AxisSizes {
            n: self.nanostructures.len(),
            s: self.sharing.len(),
            ch: self.chopper.len(),
            cd: self.cds.len(),
            ab: self.adc_bits.len(),
            pf: self.preferences.len(),
            os: self.oversampling.len(),
            ar: self.area_pct.len(),
        }
    }

    /// Number of points in the space.
    pub fn len(&self) -> u64 {
        self.sizes().total()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a row-major rank into its point; `None` past the end.
    pub fn point_at(&self, rank: u64) -> Option<ExplorePoint> {
        let sz = self.sizes();
        if rank >= sz.total() {
            return None;
        }
        let mut r = rank;
        let ar = (r % sz.ar as u64) as usize;
        r /= sz.ar as u64;
        let os = (r % sz.os as u64) as usize;
        r /= sz.os as u64;
        let pf = (r % sz.pf as u64) as usize;
        r /= sz.pf as u64;
        let ab = (r % sz.ab as u64) as usize;
        r /= sz.ab as u64;
        let cd = (r % sz.cd as u64) as usize;
        r /= sz.cd as u64;
        let ch = (r % sz.ch as u64) as usize;
        r /= sz.ch as u64;
        let s = (r % sz.s as u64) as usize;
        r /= sz.s as u64;
        let n = r as usize;
        Some(ExplorePoint {
            base: DesignPoint {
                nanostructure: self.nanostructures[n],
                sharing: self.sharing[s],
                chopper: self.chopper[ch],
                cds: self.cds[cd],
                adc_bits: self.adc_bits[ab],
                preference: self.preferences[pf],
            },
            oversampling: self.oversampling[os],
            area_pct: self.area_pct[ar],
        })
    }

    /// Lazily iterates all points in rank order. O(1) memory.
    pub fn iter(&self) -> impl Iterator<Item = ExplorePoint> + '_ {
        (0..self.len()).filter_map(move |r| self.point_at(r))
    }
}

/// One exploration query: a panel, the space to sweep, and the wall-clock
/// budget a full measurement session may take (the sharing-conflict bound).
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSpec {
    /// What to sense.
    pub panel: PanelSpec,
    /// The candidate box.
    pub space: ExploreSpace,
    /// Maximum acceptable single-session duration.
    pub session_budget: Seconds,
}

impl ExploreSpec {
    /// A query over [`ExploreSpace::standard_box`] with a 30-minute
    /// point-of-care session budget.
    pub fn standard(panel: PanelSpec) -> Self {
        Self {
            panel,
            space: ExploreSpace::standard_box(),
            session_budget: Seconds::new(1800.0),
        }
    }

    /// Validates panel, space and budget together.
    pub fn validate(&self) -> Result<(), ExploreError> {
        self.panel.validate()?;
        self.space.validate()?;
        let b = self.session_budget.value();
        if !(b.is_finite() && b > 0.0) {
            return Err(ExploreError::invalid(
                "session_budget",
                "must be finite and positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_box_is_large_and_valid() {
        let space = ExploreSpace::standard_box();
        space.validate().expect("valid");
        assert_eq!(space.len(), 4 * 2 * 2 * 2 * 11 * 3 * 10 * 16);
        assert!(space.len() >= 100_000);
    }

    #[test]
    fn rank_roundtrip_is_bijective_on_a_small_box() {
        let mut space = ExploreSpace::standard_box();
        space.adc_bits = vec![8, 12];
        space.oversampling = vec![1, 4];
        space.area_pct = vec![50, 100, 200];
        let sz = space.sizes();
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..space.len() {
            let p = space.point_at(r).expect("in range");
            // Re-encode via axis positions and check we land on the same rank.
            let n = space
                .nanostructures
                .iter()
                .position(|&v| v == p.base.nanostructure)
                .expect("axis");
            let s = space
                .sharing
                .iter()
                .position(|&v| v == p.base.sharing)
                .expect("axis");
            let ch = space
                .chopper
                .iter()
                .position(|&v| v == p.base.chopper)
                .expect("axis");
            let cd = space.cds.iter().position(|&v| v == p.base.cds).expect("axis");
            let ab = space
                .adc_bits
                .iter()
                .position(|&v| v == p.base.adc_bits)
                .expect("axis");
            let pf = space
                .preferences
                .iter()
                .position(|&v| v == p.base.preference)
                .expect("axis");
            let os = space
                .oversampling
                .iter()
                .position(|&v| v == p.oversampling)
                .expect("axis");
            let ar = space
                .area_pct
                .iter()
                .position(|&v| v == p.area_pct)
                .expect("axis");
            assert_eq!(sz.rank(n, s, ch, cd, ab, pf, os, ar), r);
            seen.insert((
                p.base, p.oversampling, p.area_pct,
            ));
        }
        assert_eq!(seen.len() as u64, space.len());
        assert!(space.point_at(space.len()).is_none());
    }

    #[test]
    fn duplicate_axis_values_are_rejected() {
        let mut space = ExploreSpace::standard_box();
        space.oversampling = vec![1, 2, 2];
        assert!(space.validate().is_err());
    }

    #[test]
    fn area_scale_is_percent() {
        let p = ExplorePoint {
            base: ExploreSpace::standard_box().point_at(0).expect("point").base,
            oversampling: 1,
            area_pct: 250,
        };
        assert!((p.area_scale() - 2.5).abs() < 1e-12);
    }
}
