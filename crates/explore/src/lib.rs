//! `bios-explore` — compiler-style design-space exploration.
//!
//! The paper's platform methodology (§I) restricts an enormous biosensor
//! design space to parameterized components precisely so the space can be
//! *reasoned about* instead of enumerated. This crate executes that idea
//! as a static-analysis pipeline over a ≥10⁶-point space:
//!
//! * [`ExploreSpace`] — a lazily-enumerated cartesian product: eight axis
//!   value lists plus mixed-radix rank decoding, never materialized;
//! * [`PassManager`] — typed pruning passes ([`PassId`]) that **prove**
//!   point classes infeasible ([`RejectReason`]) or dominated from
//!   closed-form calibration models, order-independently;
//! * [`explore`] — prune → partition → score: the surviving exact Pareto
//!   band is sharded for [`bios_platform::try_par_map`], scored by the
//!   surrogate and fully simulated via [`bios_platform::evaluate`], with
//!   per-shard content-hash memoization ([`explore_cache_stats`]) so
//!   re-exploration after a space edit replays untouched shards;
//! * [`brute_force_band`] — the O(n²) per-point oracle the proptests pin
//!   the class-factored pipeline against, bit for bit.
//!
//! # Example
//!
//! ```
//! use bios_explore::{explore, ExploreSpec};
//! use bios_platform::{ExecPolicy, PanelSpec};
//!
//! # fn main() -> Result<(), bios_explore::ExploreError> {
//! let mut spec = ExploreSpec::standard(PanelSpec::paper_fig4());
//! // Keep the doctest quick: one readout-tuning slice of the box.
//! spec.space.oversampling = vec![1, 8];
//! spec.space.area_pct = vec![100, 200];
//! let outcome = explore(&spec, ExecPolicy::Sequential)?;
//! assert!(outcome.rejection_ratio > 0.9);
//! assert!(!outcome.band.is_empty());
//! for report in &outcome.reports {
//!     println!(
//!         "{}: {} -> {} points",
//!         report.pass, report.points_in, report.points_out
//!     );
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod error;
mod frontier;
mod hash;
mod model;
mod passes;
mod shard;
mod space;

pub use context::{PanelContext, Skeleton};
pub use error::ExploreError;
pub use frontier::{
    band_digest, brute_force_band, explore, explore_with_manager, ExploreOutcome, BRUTE_FORCE_CAP,
};
pub use model::{
    afe_incompatibility, cost_scalar, derived_dynamic_range, evaluate_static, session_time_s,
    surrogate_lod, worst_margin, RejectReason, StaticEval, MODEL_VERSION,
};
pub use passes::{PassId, PassManager, PassReport, RejectBucket};
pub use shard::{clear_explore_cache, explore_cache_stats, ScoredDesign, Shard};
pub use space::{ExplorePoint, ExploreSpace, ExploreSpec};
