//! Per-panel platform skeletons.
//!
//! Cost and session time depend on the *assembled* platform (electrode
//! count, chamber decision, schedule) but only through three of the eight
//! axes: probe preference, readout sharing and CDS. This module builds one
//! [`PlatformBuilder`] skeleton per distinct `(preference, sharing, cds)`
//! triple in the space — at most 12 builds per panel — and the passes read
//! every cost/time closed form from those skeletons. That is the
//! class-factoring that lets a pass certify 10⁵ points from 12 platform
//! assemblies.

use bios_platform::{PlatformBuilder, ProbePreference, ReadoutSharing};
use std::collections::BTreeMap;

use crate::error::ExploreError;
use crate::space::ExploreSpec;

/// The static facts one assembled platform contributes to the closed forms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Skeleton {
    /// Working-electrode count (readout chains when dedicated).
    pub n_we: usize,
    /// Total electrodes including counter/reference/blank.
    pub total_electrodes: usize,
    /// Fluidic chambers after the cross-talk decision.
    pub chambers: usize,
    /// One base (oversampling = 1) session's schedule duration, seconds.
    pub schedule_s: f64,
    /// Working-electrode geometric area at the paper's reference scale, cm².
    pub we_area_cm2: f64,
}

pub(crate) fn pref_ordinal(p: ProbePreference) -> u8 {
    match p {
        ProbePreference::MinimizeElectrodes => 0,
        ProbePreference::PreferOxidase => 1,
        ProbePreference::PreferCytochrome => 2,
    }
}

pub(crate) fn sharing_ordinal(s: ReadoutSharing) -> u8 {
    match s {
        ReadoutSharing::Shared => 0,
        ReadoutSharing::Dedicated => 1,
    }
}

/// Skeletons for every `(preference, sharing, cds)` triple a space can hit.
#[derive(Debug, Clone)]
pub struct PanelContext {
    skeletons: BTreeMap<(u8, u8, bool), Skeleton>,
}

impl PanelContext {
    /// Assembles the skeleton set for `spec`'s panel over exactly the
    /// triples its space enumerates. Fails if any required skeleton cannot
    /// be built — a panel the builder rejects cannot be explored.
    pub fn for_spec(spec: &ExploreSpec) -> Result<Self, ExploreError> {
        let mut skeletons = BTreeMap::new();
        for &pf in &spec.space.preferences {
            for &sh in &spec.space.sharing {
                for &cds in &spec.space.cds {
                    let key = (pref_ordinal(pf), sharing_ordinal(sh), cds);
                    if skeletons.contains_key(&key) {
                        continue;
                    }
                    let platform = PlatformBuilder::new(spec.panel.clone())
                        .with_preference(pf)
                        .with_sharing(sh)
                        .with_cds(cds)
                        .build()?;
                    let we_area_cm2 = platform
                        .assignments()
                        .first()
                        .map(|a| a.electrode().geometric_area().value())
                        .ok_or(ExploreError::Internal {
                            what: "platform built with zero working electrodes",
                        })?;
                    skeletons.insert(
                        key,
                        Skeleton {
                            n_we: platform.assignments().len(),
                            total_electrodes: platform.structure().total_electrodes(),
                            chambers: platform.structure().chambers(),
                            schedule_s: platform.schedule().total_duration().value(),
                            we_area_cm2,
                        },
                    );
                }
            }
        }
        Ok(Self { skeletons })
    }

    /// The skeleton for a `(preference, sharing, cds)` triple.
    pub fn skeleton(
        &self,
        preference: ProbePreference,
        sharing: ReadoutSharing,
        cds: bool,
    ) -> Result<Skeleton, ExploreError> {
        self.skeletons
            .get(&(pref_ordinal(preference), sharing_ordinal(sharing), cds))
            .copied()
            .ok_or(ExploreError::Internal {
                what: "skeleton missing for a space triple",
            })
    }

    /// How many distinct skeletons were assembled.
    pub fn skeleton_count(&self) -> usize {
        self.skeletons.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_platform::PanelSpec;

    #[test]
    fn fig4_context_builds_all_triples() {
        let spec = ExploreSpec::standard(PanelSpec::paper_fig4());
        let cx = PanelContext::for_spec(&spec).expect("context");
        assert_eq!(cx.skeleton_count(), 12);
        let sk = cx
            .skeleton(
                ProbePreference::MinimizeElectrodes,
                ReadoutSharing::Shared,
                false,
            )
            .expect("skeleton");
        assert!(sk.n_we >= 1 && sk.total_electrodes > sk.n_we);
        assert!(sk.schedule_s > 0.0 && sk.we_area_cm2 > 0.0);
    }

    #[test]
    fn shared_schedule_is_longer_than_dedicated() {
        let spec = ExploreSpec::standard(PanelSpec::paper_fig4());
        let cx = PanelContext::for_spec(&spec).expect("context");
        let pref = ProbePreference::MinimizeElectrodes;
        let shared = cx
            .skeleton(pref, ReadoutSharing::Shared, false)
            .expect("skeleton");
        let dedicated = cx
            .skeleton(pref, ReadoutSharing::Dedicated, false)
            .expect("skeleton");
        assert!(shared.schedule_s > dedicated.schedule_s);
    }
}
