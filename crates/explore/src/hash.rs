//! FNV-1a 64-bit folding — the crate's content-hash primitive.
//!
//! Shard cache keys and frontier digests must be stable across runs,
//! processes and axis re-orderings, so everything is hashed by *value*
//! (bit patterns of floats, ordinals of enums) through this one
//! deterministic accumulator. No `std::hash::Hasher`: its output is not
//! specified to be stable across releases.

/// Incremental FNV-1a over 64 bits.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv {
    pub(crate) fn new() -> Self {
        Self(FNV_OFFSET)
    }

    pub(crate) fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    pub(crate) fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.write_u8(b);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_and_order_sensitivity() {
        // FNV-1a("a") — the published test vector.
        let mut h = Fnv::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);

        let mut ab = Fnv::new();
        ab.write_u8(1);
        ab.write_u8(2);
        let mut ba = Fnv::new();
        ba.write_u8(2);
        ba.write_u8(1);
        assert_ne!(ab.finish(), ba.finish());
    }
}
