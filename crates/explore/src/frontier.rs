//! Pipeline driver, frontier digest and the brute-force oracle.

use bios_platform::ExecPolicy;

use crate::context::PanelContext;
use crate::error::ExploreError;
use crate::hash::Fnv;
use crate::model::evaluate_static;
use crate::passes::{BitSet, PassManager, PassReport, RunCtx, SpaceState};
use crate::shard::{partition, score_band, ScoredDesign};
use crate::space::ExploreSpec;

/// Everything one exploration run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOutcome {
    /// Points in the full space.
    pub total_points: u64,
    /// One report per pass, in run order, plus the scoring summary the
    /// caller derives from the fields below.
    pub reports: Vec<PassReport>,
    /// Points statically rejected before any simulation.
    pub statically_rejected: u64,
    /// `statically_rejected / total_points`.
    pub rejection_ratio: f64,
    /// Shards the surviving band partitioned into.
    pub shard_count: u64,
    /// Shards replayed from the content-hash cache during this run.
    pub replayed_shards: u64,
    /// FNV-1a digest of the scored band — two runs that agree here agree
    /// on every rank, coordinate and metric bit.
    pub frontier_digest: u64,
    /// The surviving exact Pareto band, scored and fully simulated,
    /// rank-ascending.
    pub band: Vec<ScoredDesign>,
}

/// Digest of a scored band: every rank, coordinate and metric bit.
pub fn band_digest(band: &[ScoredDesign]) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(band.len() as u64);
    for d in band {
        h.write_u64(d.rank);
        h.write_f64(d.point.base.nanostructure.roughness_factor());
        h.write_u8(crate::context::sharing_ordinal(d.point.base.sharing));
        h.write_bool(d.point.base.chopper);
        h.write_bool(d.point.base.cds);
        h.write_u8(d.point.base.adc_bits);
        h.write_u8(crate::context::pref_ordinal(d.point.base.preference));
        h.write_u64(u64::from(d.point.oversampling));
        h.write_u64(u64::from(d.point.area_pct));
        h.write_f64(d.surrogate_cost);
        h.write_f64(d.surrogate_margin);
        h.write_f64(d.session_s);
        h.write_bool(d.simulated.feasible);
        h.write_f64(d.simulated.worst_lod_margin);
        h.write_f64(d.simulated.cost.scalar());
    }
    h.finish()
}

/// Runs `manager`'s pipeline over `spec`: prune, partition, score.
pub fn explore_with_manager(
    spec: &ExploreSpec,
    manager: &PassManager,
    policy: ExecPolicy,
) -> Result<ExploreOutcome, ExploreError> {
    spec.validate()?;
    let cx = PanelContext::for_spec(spec)?;
    let sizes = spec.space.sizes();
    let total_points = sizes.total();
    let rcx = RunCtx {
        spec,
        cx: &cx,
        sizes,
    };
    let mut state = SpaceState {
        alive: BitSet::all_set(total_points),
    };
    let mut reports = Vec::new();
    for &pass in manager.order() {
        reports.push(rcx.run_pass(pass, &mut state)?);
    }
    let surviving = state.alive.count();
    let shards = partition(spec, &state.alive)?;
    let (band, replayed_shards) = score_band(spec, &cx, &shards, policy)?;
    let statically_rejected = total_points - surviving;
    Ok(ExploreOutcome {
        total_points,
        reports,
        statically_rejected,
        rejection_ratio: if total_points == 0 {
            0.0
        } else {
            statically_rejected as f64 / total_points as f64
        },
        shard_count: shards.len() as u64,
        replayed_shards,
        frontier_digest: band_digest(&band),
        band,
    })
}

/// The standard pipeline at the standard order.
pub fn explore(spec: &ExploreSpec, policy: ExecPolicy) -> Result<ExploreOutcome, ExploreError> {
    explore_with_manager(spec, &PassManager::standard(), policy)
}

/// Largest space the brute-force oracle accepts (it is O(n²)).
pub const BRUTE_FORCE_CAP: u64 = 65_536;

/// The reference semantics, computed the slow way: evaluate the full
/// static predicate at *every* point, then O(n²) Pareto filtering with
/// the same tie rules as [`bios_platform::pareto_front`]. Returns
/// `(rank, cost, margin)` of every survivor, rank-ascending. Exists so
/// proptests can pin the pipeline's class-factored answer to a
/// per-point ground truth; refuses spaces above [`BRUTE_FORCE_CAP`].
pub fn brute_force_band(spec: &ExploreSpec) -> Result<Vec<(u64, f64, f64)>, ExploreError> {
    spec.validate()?;
    if spec.space.len() > BRUTE_FORCE_CAP {
        return Err(ExploreError::invalid(
            "space",
            format!("brute-force oracle is capped at {BRUTE_FORCE_CAP} points"),
        ));
    }
    let cx = PanelContext::for_spec(spec)?;
    let budget_s = spec.session_budget.value();
    let mut feasible = Vec::new();
    for (rank, point) in spec.space.iter().enumerate() {
        let sk = cx.skeleton(point.base.preference, point.base.sharing, point.base.cds)?;
        let eval = evaluate_static(&spec.panel, &sk, budget_s, &point)?;
        if eval.reject.is_none() {
            feasible.push((rank as u64, eval.cost, eval.margin));
        }
    }
    let mut band = Vec::new();
    for (k, &(rank, cost, margin)) in feasible.iter().enumerate() {
        let dominated = feasible.iter().enumerate().any(|(j, &(_, c, m))| {
            j != k && c <= cost && m >= margin && (c < cost || m > margin)
        });
        if !dominated {
            band.push((rank, cost, margin));
        }
    }
    Ok(band)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ExploreSpace;
    use bios_platform::PanelSpec;

    fn small_spec() -> ExploreSpec {
        let mut spec = ExploreSpec::standard(PanelSpec::paper_fig4());
        spec.space = ExploreSpace {
            nanostructures: vec![
                bios_electrochem::Nanostructure::CarbonNanotubes,
                bios_electrochem::Nanostructure::None,
            ],
            adc_bits: vec![10, 14, 16],
            oversampling: vec![1, 16],
            area_pct: vec![100, 400],
            ..ExploreSpace::standard_box()
        };
        spec
    }

    #[test]
    fn pipeline_matches_brute_force_on_a_small_space() {
        let spec = small_spec();
        crate::shard::clear_explore_cache();
        let outcome = explore(&spec, ExecPolicy::Sequential).expect("pipeline");
        let oracle = brute_force_band(&spec).expect("oracle");
        let got: Vec<(u64, u64, u64)> = outcome
            .band
            .iter()
            .map(|d| {
                (
                    d.rank,
                    d.surrogate_cost.to_bits(),
                    d.surrogate_margin.to_bits(),
                )
            })
            .collect();
        let want: Vec<(u64, u64, u64)> = oracle
            .iter()
            .map(|&(r, c, m)| (r, c.to_bits(), m.to_bits()))
            .collect();
        assert_eq!(got, want);
        assert_eq!(
            outcome.statically_rejected,
            outcome.total_points - outcome.band.len() as u64
        );
    }

    #[test]
    fn rerun_is_bit_identical_and_replays_shards() {
        let spec = small_spec();
        crate::shard::clear_explore_cache();
        let cold = explore(&spec, ExecPolicy::Sequential).expect("cold");
        let warm = explore(&spec, ExecPolicy::Sequential).expect("warm");
        assert_eq!(cold.frontier_digest, warm.frontier_digest);
        assert_eq!(cold.band, warm.band);
        assert_eq!(warm.replayed_shards, warm.shard_count);
        assert_eq!(cold.replayed_shards, 0);
    }

    #[test]
    fn pass_order_does_not_change_the_band() {
        use crate::passes::PassId;
        let spec = small_spec();
        let standard = explore(&spec, ExecPolicy::Sequential).expect("standard");
        let reversed = explore_with_manager(
            &spec,
            &PassManager::with_order(&[
                PassId::Dominance,
                PassId::SessionSchedule,
                PassId::AfeRange,
                PassId::LodFeasibility,
            ])
            .expect("order"),
            ExecPolicy::Sequential,
        )
        .expect("reversed");
        assert_eq!(standard.frontier_digest, reversed.frontier_digest);
        assert_eq!(standard.band, reversed.band);
    }
}
