//! The pruning pass pipeline.
//!
//! Structured like a compiler: a [`PassManager`] runs typed passes over the
//! rank space, each pass proving points *out* instead of evaluating points
//! in. Three design rules make the pipeline auditable and order-independent:
//!
//! 1. **Passes are pure space-level predicates.** A pass computes its
//!    verdicts from the [`ExploreSpec`] and the closed-form models only —
//!    never from which points earlier passes already killed. Marking a
//!    dead point dead again is a no-op, so the surviving set is the
//!    intersection of per-pass survivor sets and is invariant under any
//!    permutation of the pass order (a proptest pins this).
//! 2. **Verdicts are per class, not per point.** Each pass projects the
//!    space onto the axes its model actually reads, evaluates one
//!    representative per projected class, and extends the verdict over the
//!    class's whole fiber. That is why a ≥10⁶-point space needs ~10⁴–10⁵
//!    closed-form evaluations, not 10⁶ simulations.
//! 3. **Every refutation carries a [`RejectReason`].** Reports bucket
//!    rejections by reason with class and point counts, so a run reads
//!    like a lint report: what was proven, about how much, from how few
//!    premises.

use std::collections::BTreeMap;

use bios_biochem::Analyte;
use bios_platform::required_lod;

use crate::context::PanelContext;
use crate::error::ExploreError;
use crate::model::{
    afe_incompatibility, cost_scalar, session_time_s, surrogate_lod, worst_margin, RejectReason,
};
use crate::space::{AxisSizes, ExplorePoint, ExploreSpec};

/// A fixed-size bitmap over ranks; bit set = point still alive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    len: u64,
}

impl BitSet {
    pub(crate) fn all_set(len: u64) -> Self {
        let nwords = len.div_ceil(64) as usize;
        let mut words = vec![u64::MAX; nwords];
        if let Some(last) = words.last_mut() {
            let tail = (len % 64) as u32;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Self { words, len }
    }

    #[inline]
    pub(crate) fn clear(&mut self, i: u64) {
        self.words[(i >> 6) as usize] &= !(1u64 << (i & 63));
    }

    #[inline]
    pub(crate) fn get(&self, i: u64) -> bool {
        (self.words[(i >> 6) as usize] >> (i & 63)) & 1 == 1
    }

    pub(crate) fn count(&self) -> u64 {
        let mut total = 0u64;
        for w in &self.words {
            total += u64::from(w.count_ones());
        }
        total
    }

    pub(crate) fn iter_set(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

/// The alive set threaded through the pipeline.
#[derive(Debug, Clone)]
pub(crate) struct SpaceState {
    pub(crate) alive: BitSet,
}

/// Which pass to run; the order is a caller choice and, by construction,
/// does not change the surviving set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PassId {
    /// Closed-form LOD feasibility per `(nanostructure, chopper, cds,
    /// adc_bits, oversampling, area)` class.
    LodFeasibility,
    /// Derived-range realizability per `(nanostructure, adc_bits)` class.
    AfeRange,
    /// Session-duration budget per `(sharing, cds, preference,
    /// oversampling)` class.
    SessionSchedule,
    /// Exact Pareto dominance on `(cost, margin)` over the feasible set.
    Dominance,
}

impl PassId {
    /// The canonical order (cheapest proofs first).
    pub const STANDARD: [PassId; 4] = [
        PassId::LodFeasibility,
        PassId::AfeRange,
        PassId::SessionSchedule,
        PassId::Dominance,
    ];

    /// Stable name used in reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            PassId::LodFeasibility => "lod-feasibility",
            PassId::AfeRange => "afe-range",
            PassId::SessionSchedule => "session-schedule",
            PassId::Dominance => "dominance",
        }
    }
}

/// One reason-bucket in a pass report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RejectBucket {
    /// The machine-readable refutation.
    pub reason: RejectReason,
    /// Distinct projected classes this reason refuted.
    pub classes: u64,
    /// Points covered by those classes' fibers.
    pub points: u64,
}

/// What one pass did — points in/out and the proof categories.
///
/// `points_in`/`points_out` describe the alive set around *this run order*;
/// the reason buckets are order-independent because every pass judges the
/// full space (a point refutable by two passes appears in both passes'
/// buckets).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PassReport {
    /// Pass name (see [`PassId::name`]).
    pub pass: String,
    /// Alive points before the pass, in this run order.
    pub points_in: u64,
    /// Alive points after the pass, in this run order.
    pub points_out: u64,
    /// Closed-form class evaluations the pass actually performed.
    pub classes_evaluated: u64,
    /// Refutations, bucketed by reason.
    pub rejects: Vec<RejectBucket>,
}

/// Everything a pass needs, borrowed once per run.
pub(crate) struct RunCtx<'a> {
    pub(crate) spec: &'a ExploreSpec,
    pub(crate) cx: &'a PanelContext,
    pub(crate) sizes: AxisSizes,
}

impl<'a> RunCtx<'a> {
    /// A representative point for a margin class: sharing and preference
    /// are fibered out (the LOD surrogate never reads them), so the first
    /// axis value stands in for all.
    fn margin_rep(
        &self,
        n: usize,
        ch: usize,
        cd: usize,
        ab: usize,
        os: usize,
        ar: usize,
    ) -> ExplorePoint {
        let space = &self.spec.space;
        ExplorePoint {
            base: bios_platform::DesignPoint {
                nanostructure: space.nanostructures[n],
                sharing: space.sharing[0],
                chopper: space.chopper[ch],
                cds: space.cds[cd],
                adc_bits: space.adc_bits[ab],
                preference: space.preferences[0],
            },
            oversampling: space.oversampling[os],
            area_pct: space.area_pct[ar],
        }
    }

    /// Fills the margin table and per-class first-failing analyte.
    pub(crate) fn fill_margin_classes(
        &self,
        margins: &mut [f64],
        culprits: &mut [Option<Analyte>],
    ) -> Result<(), ExploreError> {
        let sz = self.sizes;
        let panel = &self.spec.panel;
        for n in 0..sz.n {
            for ch in 0..sz.ch {
                for cd in 0..sz.cd {
                    for ab in 0..sz.ab {
                        for os in 0..sz.os {
                            for ar in 0..sz.ar {
                                let mc = sz.margin_class(n, ch, cd, ab, os, ar);
                                let p = self.margin_rep(n, ch, cd, ab, os, ar);
                                let margin = worst_margin(panel, &p)?;
                                margins[mc] = margin;
                                if margin < 1.0 {
                                    // Panel-order first failure, matching
                                    // `evaluate_static`'s attribution.
                                    for spec in panel.targets() {
                                        let lod = surrogate_lod(spec.analyte, &p)?;
                                        if required_lod(spec)?.value() / lod < 1.0 {
                                            culprits[mc] = Some(spec.analyte);
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Fills the AFE-compatibility table: first unrealizable target per
    /// `(nanostructure, adc_bits)` class.
    pub(crate) fn fill_afe_classes(
        &self,
        culprits: &mut [Option<Analyte>],
    ) -> Result<(), ExploreError> {
        let sz = self.sizes;
        let space = &self.spec.space;
        for n in 0..sz.n {
            for ab in 0..sz.ab {
                culprits[sz.afe_class(n, ab)] = afe_incompatibility(
                    &self.spec.panel,
                    space.nanostructures[n],
                    space.adc_bits[ab],
                )?;
            }
        }
        Ok(())
    }

    /// Fills the session-time table per `(sharing, cds, preference,
    /// oversampling)` class.
    pub(crate) fn fill_time_classes(&self, times: &mut [f64]) -> Result<(), ExploreError> {
        let sz = self.sizes;
        let space = &self.spec.space;
        for s in 0..sz.s {
            for cd in 0..sz.cd {
                for pf in 0..sz.pf {
                    let sk = self.cx.skeleton(
                        space.preferences[pf],
                        space.sharing[s],
                        space.cds[cd],
                    )?;
                    for os in 0..sz.os {
                        times[sz.time_class(s, cd, pf, os)] =
                            session_time_s(&sk, space.oversampling[os]);
                    }
                }
            }
        }
        Ok(())
    }

    /// Fills the cost table per `(sharing, chopper, cds, adc_bits,
    /// preference, oversampling, area)` class. Nanostructure is the only
    /// fibered axis: the cost model never reads it.
    pub(crate) fn fill_cost_classes(&self, costs: &mut [f64]) -> Result<(), ExploreError> {
        let sz = self.sizes;
        let space = &self.spec.space;
        for s in 0..sz.s {
            for ch in 0..sz.ch {
                for cd in 0..sz.cd {
                    for ab in 0..sz.ab {
                        for pf in 0..sz.pf {
                            let sk = self.cx.skeleton(
                                space.preferences[pf],
                                space.sharing[s],
                                space.cds[cd],
                            )?;
                            for os in 0..sz.os {
                                for ar in 0..sz.ar {
                                    let p = ExplorePoint {
                                        base: bios_platform::DesignPoint {
                                            nanostructure: space.nanostructures[0],
                                            sharing: space.sharing[s],
                                            chopper: space.chopper[ch],
                                            cds: space.cds[cd],
                                            adc_bits: space.adc_bits[ab],
                                            preference: space.preferences[pf],
                                        },
                                        oversampling: space.oversampling[os],
                                        area_pct: space.area_pct[ar],
                                    };
                                    let cost = cost_scalar(&sk, &p);
                                    if !cost.is_finite() {
                                        return Err(ExploreError::NonFinite {
                                            what: "surrogate cost",
                                        });
                                    }
                                    costs[sz.cost_class(s, ch, cd, ab, pf, os, ar)] = cost;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Sweeps the full rank space once and clears every point some supplied
/// class table refutes. Shared by the three feasibility passes; each pass
/// supplies only its own table so its verdicts stay independent.
// advdiag::hot — full-space rank sweep: one visit per point, ≥10⁶ iterations
fn sweep_and_mark(
    sz: &AxisSizes,
    margins: Option<&[f64]>,
    afe: Option<&[Option<Analyte>]>,
    times: Option<&[f64]>,
    budget_s: f64,
    alive: &mut BitSet,
) {
    let mut rank: u64 = 0;
    for n in 0..sz.n {
        for s in 0..sz.s {
            for ch in 0..sz.ch {
                for cd in 0..sz.cd {
                    for ab in 0..sz.ab {
                        for pf in 0..sz.pf {
                            for os in 0..sz.os {
                                for ar in 0..sz.ar {
                                    let mut dead = false;
                                    if let Some(m) = margins {
                                        dead |= m[sz.margin_class(n, ch, cd, ab, os, ar)] < 1.0;
                                    }
                                    if let Some(a) = afe {
                                        dead |= a[sz.afe_class(n, ab)].is_some();
                                    }
                                    if let Some(t) = times {
                                        dead |= t[sz.time_class(s, cd, pf, os)] > budget_s;
                                    }
                                    if dead {
                                        alive.clear(rank);
                                    }
                                    rank += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Counts points the full static predicate keeps (feasible on every
/// criterion) — the exact-size allocation for the dominance table.
// advdiag::hot — full-space rank sweep: one visit per point, ≥10⁶ iterations
fn count_feasible(
    sz: &AxisSizes,
    margins: &[f64],
    afe: &[Option<Analyte>],
    times: &[f64],
    budget_s: f64,
) -> usize {
    let mut count = 0usize;
    for n in 0..sz.n {
        for s in 0..sz.s {
            for ch in 0..sz.ch {
                for cd in 0..sz.cd {
                    for ab in 0..sz.ab {
                        for pf in 0..sz.pf {
                            for os in 0..sz.os {
                                for ar in 0..sz.ar {
                                    let ok = margins[sz.margin_class(n, ch, cd, ab, os, ar)]
                                        >= 1.0
                                        && afe[sz.afe_class(n, ab)].is_none()
                                        && times[sz.time_class(s, cd, pf, os)] <= budget_s;
                                    if ok {
                                        count += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    count
}

/// Fills `(cost, margin, rank)` rows for every feasible point, in rank
/// order, into a preallocated table. Returns the cursor, which must equal
/// the table length.
// advdiag::hot — full-space rank sweep: one visit per point, ≥10⁶ iterations
fn fill_feasible(
    sz: &AxisSizes,
    margins: &[f64],
    afe: &[Option<Analyte>],
    times: &[f64],
    costs: &[f64],
    budget_s: f64,
    out: &mut [(f64, f64, u64)],
) -> usize {
    let mut rank: u64 = 0;
    let mut cursor = 0usize;
    for n in 0..sz.n {
        for s in 0..sz.s {
            for ch in 0..sz.ch {
                for cd in 0..sz.cd {
                    for ab in 0..sz.ab {
                        for pf in 0..sz.pf {
                            for os in 0..sz.os {
                                for ar in 0..sz.ar {
                                    let ok = margins[sz.margin_class(n, ch, cd, ab, os, ar)]
                                        >= 1.0
                                        && afe[sz.afe_class(n, ab)].is_none()
                                        && times[sz.time_class(s, cd, pf, os)] <= budget_s;
                                    if ok && cursor < out.len() {
                                        out[cursor] = (
                                            costs[sz.cost_class(s, ch, cd, ab, pf, os, ar)],
                                            margins[sz.margin_class(n, ch, cd, ab, os, ar)],
                                            rank,
                                        );
                                        cursor += 1;
                                    }
                                    rank += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    cursor
}

/// Marks dominated rows in the sorted feasible table.
///
/// Input rows are sorted by `(cost asc, margin desc, rank asc)`. A row is
/// dominated iff a strictly cheaper row has margin ≥ its margin, or an
/// equal-cost row has strictly greater margin. Exact `(cost, margin)` ties
/// all survive — the same tie semantics as [`bios_platform::pareto_front`].
// advdiag::hot — single scan over the sorted feasible table
fn mark_dominated(rows: &[(f64, f64, u64)], dominated: &mut [bool]) {
    let mut best_prev = f64::NEG_INFINITY; // best margin among strictly cheaper rows
    let mut g = 0usize; // group start
    while g < rows.len() {
        let cost_bits = rows[g].0.to_bits();
        let mut end = g;
        while end < rows.len() && rows[end].0.to_bits() == cost_bits {
            end += 1;
        }
        // Sorted margin-desc within the group, so the group max is first.
        let group_max = rows[g].1;
        let mut k = g;
        while k < end {
            let margin = rows[k].1;
            dominated[k] = best_prev >= margin || margin < group_max;
            k += 1;
        }
        if group_max > best_prev {
            best_prev = group_max;
        }
        g = end;
    }
}

fn bucketize(map: BTreeMap<RejectReason, (u64, u64)>) -> Vec<RejectBucket> {
    map.into_iter()
        .map(|(reason, (classes, points))| RejectBucket {
            reason,
            classes,
            points,
        })
        .collect()
}

impl<'a> RunCtx<'a> {
    pub(crate) fn run_pass(
        &self,
        pass: PassId,
        state: &mut SpaceState,
    ) -> Result<PassReport, ExploreError> {
        let points_in = state.alive.count();
        let sz = self.sizes;
        let budget_s = self.spec.session_budget.value();
        let (classes_evaluated, rejects) = match pass {
            PassId::LodFeasibility => {
                let mut margins = vec![0.0f64; sz.margin_classes()];
                let mut culprits = vec![None; sz.margin_classes()];
                self.fill_margin_classes(&mut margins, &mut culprits)?;
                sweep_and_mark(&sz, Some(&margins), None, None, budget_s, &mut state.alive);
                let fiber = (sz.s * sz.pf) as u64;
                let mut buckets = BTreeMap::new();
                for (mc, m) in margins.iter().enumerate() {
                    if *m < 1.0 {
                        let analyte = culprits[mc].ok_or(ExploreError::Internal {
                            what: "infeasible margin class with no culprit",
                        })?;
                        let e = buckets
                            .entry(RejectReason::LodAboveRequirement { analyte })
                            .or_insert((0, 0));
                        e.0 += 1;
                        e.1 += fiber;
                    }
                }
                (sz.margin_classes() as u64, bucketize(buckets))
            }
            PassId::AfeRange => {
                let mut culprits = vec![None; sz.afe_classes()];
                self.fill_afe_classes(&mut culprits)?;
                sweep_and_mark(&sz, None, Some(&culprits), None, budget_s, &mut state.alive);
                let fiber = (sz.s * sz.ch * sz.cd * sz.pf * sz.os * sz.ar) as u64;
                let mut buckets = BTreeMap::new();
                for c in culprits.iter().flatten() {
                    let e = buckets
                        .entry(RejectReason::AfeRangeNoiseIncompatible { analyte: *c })
                        .or_insert((0, 0));
                    e.0 += 1;
                    e.1 += fiber;
                }
                (sz.afe_classes() as u64, bucketize(buckets))
            }
            PassId::SessionSchedule => {
                let mut times = vec![0.0f64; sz.time_classes()];
                self.fill_time_classes(&mut times)?;
                sweep_and_mark(&sz, None, None, Some(&times), budget_s, &mut state.alive);
                let fiber = (sz.n * sz.ch * sz.ab * sz.ar) as u64;
                let mut buckets = BTreeMap::new();
                for s in 0..sz.s {
                    for cd in 0..sz.cd {
                        for pf in 0..sz.pf {
                            for os in 0..sz.os {
                                if times[sz.time_class(s, cd, pf, os)] > budget_s {
                                    let reason = match self.spec.space.sharing[s] {
                                        bios_platform::ReadoutSharing::Shared => {
                                            RejectReason::SharingConflict
                                        }
                                        bios_platform::ReadoutSharing::Dedicated => {
                                            RejectReason::SessionOverBudget
                                        }
                                    };
                                    let e = buckets.entry(reason).or_insert((0, 0));
                                    e.0 += 1;
                                    e.1 += fiber;
                                }
                            }
                        }
                    }
                }
                (sz.time_classes() as u64, bucketize(buckets))
            }
            PassId::Dominance => {
                // Dominance re-derives feasibility from its own tables so
                // its verdicts never depend on which passes ran before it.
                let mut margins = vec![0.0f64; sz.margin_classes()];
                let mut culprits = vec![None; sz.margin_classes()];
                self.fill_margin_classes(&mut margins, &mut culprits)?;
                let mut afe = vec![None; sz.afe_classes()];
                self.fill_afe_classes(&mut afe)?;
                let mut times = vec![0.0f64; sz.time_classes()];
                self.fill_time_classes(&mut times)?;
                let mut costs = vec![0.0f64; sz.cost_classes()];
                self.fill_cost_classes(&mut costs)?;

                let feasible = count_feasible(&sz, &margins, &afe, &times, budget_s);
                let mut rows = vec![(0.0f64, 0.0f64, 0u64); feasible];
                let cursor =
                    fill_feasible(&sz, &margins, &afe, &times, &costs, budget_s, &mut rows);
                if cursor != rows.len() {
                    return Err(ExploreError::Internal {
                        what: "feasible count and fill cursor disagree",
                    });
                }
                rows.sort_unstable_by(|a, b| {
                    a.0.total_cmp(&b.0)
                        .then(b.1.total_cmp(&a.1))
                        .then(a.2.cmp(&b.2))
                });
                let mut dominated = vec![false; rows.len()];
                mark_dominated(&rows, &mut dominated);

                let mut points = 0u64;
                let mut classes = 0u64;
                let mut prev_pair = None;
                for (row, dom) in rows.iter().zip(dominated.iter()) {
                    if *dom {
                        state.alive.clear(row.2);
                        points += 1;
                        let pair = (row.0.to_bits(), row.1.to_bits());
                        if prev_pair != Some(pair) {
                            classes += 1;
                            prev_pair = Some(pair);
                        }
                    }
                }
                let evaluated = (sz.margin_classes()
                    + sz.afe_classes()
                    + sz.time_classes()
                    + sz.cost_classes()) as u64;
                let rejects = if points > 0 {
                    vec![RejectBucket {
                        reason: RejectReason::Dominated,
                        classes,
                        points,
                    }]
                } else {
                    Vec::new()
                };
                (evaluated, rejects)
            }
        };
        Ok(PassReport {
            pass: pass.name().to_string(),
            points_in,
            points_out: state.alive.count(),
            classes_evaluated,
            rejects,
        })
    }
}

/// The pipeline driver: holds a pass order and runs it over a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct PassManager {
    order: Vec<PassId>,
}

impl PassManager {
    /// The canonical pipeline: cheapest proofs first, dominance last.
    pub fn standard() -> Self {
        Self {
            order: PassId::STANDARD.to_vec(),
        }
    }

    /// A custom order. Duplicates are rejected; any subset and any
    /// permutation is allowed (permutations provably converge to the same
    /// surviving set).
    pub fn with_order(order: &[PassId]) -> Result<Self, ExploreError> {
        if order.is_empty() {
            return Err(ExploreError::InvalidOrder {
                reason: "at least one pass is required".to_string(),
            });
        }
        for (i, p) in order.iter().enumerate() {
            if order[..i].contains(p) {
                return Err(ExploreError::InvalidOrder {
                    reason: format!("duplicate pass {}", p.name()),
                });
            }
        }
        Ok(Self {
            order: order.to_vec(),
        })
    }

    /// The configured order.
    pub fn order(&self) -> &[PassId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_tail_and_clear() {
        let mut b = BitSet::all_set(70);
        assert_eq!(b.count(), 70);
        b.clear(0);
        b.clear(69);
        b.clear(69);
        assert_eq!(b.count(), 68);
        assert!(!b.get(0) && !b.get(69) && b.get(1));
        assert_eq!(b.iter_set().count(), 68);
    }

    #[test]
    fn mark_dominated_keeps_exact_ties_and_kills_strictly_worse() {
        // Sorted by (cost asc, margin desc): rows 0,1 tie exactly; row 2 is
        // equal-cost but lower margin; row 3 is costlier with lower margin;
        // row 4 is costlier but higher margin (survives).
        let rows: [(f64, f64, u64); 5] = [
            (1.0, 5.0, 0),
            (1.0, 5.0, 1),
            (1.0, 4.0, 2),
            (2.0, 4.5, 3),
            (2.0, 6.0, 4),
        ];
        // Re-sort per contract (margin desc within cost).
        let mut rows = rows;
        rows.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut dom = [false; 5];
        mark_dominated(&rows, &mut dom);
        let surviving: Vec<u64> = rows
            .iter()
            .zip(dom.iter())
            .filter(|(_, d)| !**d)
            .map(|(r, _)| r.2)
            .collect();
        assert_eq!(surviving, vec![0, 1, 4]);
    }

    #[test]
    fn with_order_rejects_duplicates_and_empty() {
        assert!(PassManager::with_order(&[]).is_err());
        assert!(
            PassManager::with_order(&[PassId::Dominance, PassId::Dominance]).is_err()
        );
        let m = PassManager::with_order(&[PassId::Dominance, PassId::LodFeasibility])
            .expect("order");
        assert_eq!(m.order().len(), 2);
    }
}
