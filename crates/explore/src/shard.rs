//! Partitioning and shard-memoized scoring of the surviving band.
//!
//! After the pruning passes, the alive set — the exact Pareto band — is
//! grouped into shards keyed by `(nanostructure, chopper, cds, adc_bits)`.
//! Shards go through [`bios_platform::try_par_map`] (the bit-identical
//! merge contract from the exec layer), and each shard's scored result is
//! memoized under an FNV-1a **content hash** of everything the result
//! depends on: model version, panel requirements, the shard's exact point
//! list. Incremental re-exploration after a space edit therefore replays
//! untouched shards from cache and recomputes only invalidated ones —
//! the same contract as the core calibration/LOD memo layer.
//!
//! Ranks are *not* part of the hash or the cached value: they describe a
//! point's position in one particular space, not its identity, so a cached
//! shard stays valid when an unrelated axis edit renumbers the space.
//! Ranks are re-attached on retrieval.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use bios_electrochem::Nanostructure;
use bios_platform::{evaluate, required_lod, try_par_map, EvaluatedDesign, ExecPolicy, PanelSpec};

use crate::context::{pref_ordinal, sharing_ordinal, PanelContext};
use crate::error::ExploreError;
use crate::hash::Fnv;
use crate::model::{cost_scalar, session_time_s, worst_margin, MODEL_VERSION};
use crate::passes::BitSet;
use crate::space::{ExplorePoint, ExploreSpec};

/// Entries before a wholesale clear; a band rarely exceeds a few dozen
/// shards, so the cap only guards pathological churn.
const EXPLORE_CACHE_CAP: usize = 1024;

/// One scored member of the surviving band.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScoredDesign {
    /// Row-major rank in the space this outcome was computed over.
    pub rank: u64,
    /// The design coordinates.
    pub point: ExplorePoint,
    /// Closed-form scalar cost (the dominance axis).
    pub surrogate_cost: f64,
    /// Closed-form worst LOD margin (the dominance axis).
    pub surrogate_margin: f64,
    /// Closed-form session duration, seconds.
    pub session_s: f64,
    /// The full core evaluation of the architectural point — platform
    /// assembly plus analytic LOD prediction, reserved for the band.
    pub simulated: EvaluatedDesign,
}

/// A contiguous unit of band scoring work.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Shard key: working-electrode nanostructuring.
    pub nanostructure: Nanostructure,
    /// Shard key: chopper stabilization.
    pub chopper: bool,
    /// Shard key: correlated double sampling.
    pub cds: bool,
    /// Shard key: ADC resolution.
    pub adc_bits: u8,
    /// Band members in this shard, rank-ascending.
    pub points: Vec<(u64, ExplorePoint)>,
}

/// Groups the alive set into shards, keyed and ordered deterministically.
pub(crate) fn partition(spec: &ExploreSpec, alive: &BitSet) -> Result<Vec<Shard>, ExploreError> {
    let mut groups: BTreeMap<(Nanostructure, bool, bool, u8), Vec<(u64, ExplorePoint)>> =
        BTreeMap::new();
    for rank in alive.iter_set() {
        let p = spec.space.point_at(rank).ok_or(ExploreError::Internal {
            what: "alive rank outside the space",
        })?;
        groups
            .entry((
                p.base.nanostructure,
                p.base.chopper,
                p.base.cds,
                p.base.adc_bits,
            ))
            .or_default()
            .push((rank, p));
    }
    Ok(groups
        .into_iter()
        .map(|((nanostructure, chopper, cds, adc_bits), points)| Shard {
            nanostructure,
            chopper,
            cds,
            adc_bits,
            points,
        })
        .collect())
}

fn encode_point(h: &mut Fnv, p: &ExplorePoint) {
    h.write_f64(p.base.nanostructure.roughness_factor());
    h.write_u8(sharing_ordinal(p.base.sharing));
    h.write_bool(p.base.chopper);
    h.write_bool(p.base.cds);
    h.write_u8(p.base.adc_bits);
    h.write_u8(pref_ordinal(p.base.preference));
    h.write_u64(u64::from(p.oversampling));
    h.write_u64(u64::from(p.area_pct));
}

fn panel_fingerprint(panel: &PanelSpec) -> Result<u64, ExploreError> {
    let mut h = Fnv::new();
    h.write_u64(panel.targets().len() as u64);
    for spec in panel.targets() {
        h.write_bytes(format!("{:?}", spec.analyte).as_bytes());
        h.write_f64(required_lod(spec)?.value());
    }
    Ok(h.finish())
}

/// The shard's content hash: model version, panel requirements and the
/// exact point list (values, not ranks).
pub(crate) fn shard_fingerprint(spec: &ExploreSpec, shard: &Shard) -> Result<u64, ExploreError> {
    let mut h = Fnv::new();
    h.write_u64(u64::from(MODEL_VERSION));
    h.write_u64(panel_fingerprint(&spec.panel)?);
    h.write_u64(shard.points.len() as u64);
    for (_, p) in &shard.points {
        encode_point(&mut h, p);
    }
    Ok(h.finish())
}

fn shard_cache() -> &'static Mutex<BTreeMap<u64, Vec<ScoredDesign>>> {
    static CACHE: OnceLock<Mutex<BTreeMap<u64, Vec<ScoredDesign>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the shard score cache since process start.
pub fn explore_cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Empties the shard score cache (for honest cold-run benchmarks).
pub fn clear_explore_cache() {
    if let Ok(mut cache) = shard_cache().lock() {
        cache.clear();
    }
}

/// Surrogate worst-margin per shard point — the scoring loop's hot kernel.
// advdiag::hot — shard scoring loop over the surviving Pareto band
fn score_shard_margins(
    panel: &PanelSpec,
    points: &[(u64, ExplorePoint)],
    margins: &mut [f64],
) -> Result<(), ExploreError> {
    let mut i = 0usize;
    while i < points.len() && i < margins.len() {
        margins[i] = worst_margin(panel, &points[i].1)?;
        i += 1;
    }
    Ok(())
}

/// Scores one shard, through the content-hash cache. Returns the scored
/// points (ranks re-attached) and whether the shard was replayed.
// advdiag::cold(per-shard cache admin plus full platform simulation; runs once
// per surviving band shard, never per space point)
fn score_shard_cached(
    spec: &ExploreSpec,
    cx: &PanelContext,
    shard: &Shard,
) -> Result<(Vec<ScoredDesign>, bool), ExploreError> {
    let key = shard_fingerprint(spec, shard)?;
    if let Ok(cache) = shard_cache().lock() {
        if let Some(hit) = cache.get(&key) {
            if hit.len() == shard.points.len() {
                HITS.fetch_add(1, Ordering::Relaxed);
                let mut out = hit.clone();
                for (d, (rank, _)) in out.iter_mut().zip(shard.points.iter()) {
                    d.rank = *rank;
                }
                return Ok((out, true));
            }
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);

    let mut margins = vec![0.0f64; shard.points.len()];
    score_shard_margins(&spec.panel, &shard.points, &mut margins)?;
    let mut out = Vec::with_capacity(shard.points.len());
    for ((rank, point), margin) in shard.points.iter().zip(margins.iter()) {
        let sk = cx.skeleton(point.base.preference, point.base.sharing, point.base.cds)?;
        let simulated = evaluate(&spec.panel, &point.base)?;
        out.push(ScoredDesign {
            rank: *rank,
            point: *point,
            surrogate_cost: cost_scalar(&sk, point),
            surrogate_margin: *margin,
            session_s: session_time_s(&sk, point.oversampling),
            simulated,
        });
    }
    if let Ok(mut cache) = shard_cache().lock() {
        if cache.len() >= EXPLORE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, out.clone());
    }
    Ok((out, false))
}

/// Scores every shard (parallel, bit-identical merge) and returns the band
/// rank-ascending plus the number of shards replayed from cache.
pub(crate) fn score_band(
    spec: &ExploreSpec,
    cx: &PanelContext,
    shards: &[Shard],
    policy: ExecPolicy,
) -> Result<(Vec<ScoredDesign>, u64), ExploreError> {
    let scored = try_par_map(policy, shards, |_, shard| score_shard_cached(spec, cx, shard))?;
    let mut replayed = 0u64;
    let mut band = Vec::new();
    for (points, was_hit) in scored {
        if was_hit {
            replayed += 1;
        }
        band.extend(points);
    }
    band.sort_unstable_by_key(|d| d.rank);
    Ok((band, replayed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ExploreSpace;

    fn tiny_spec() -> ExploreSpec {
        let mut spec = ExploreSpec::standard(PanelSpec::paper_fig4());
        spec.space = ExploreSpace {
            adc_bits: vec![15, 16],
            oversampling: vec![1, 4],
            area_pct: vec![100, 200],
            ..ExploreSpace::standard_box()
        };
        spec
    }

    #[test]
    fn fingerprint_ignores_ranks_but_not_values() {
        let spec = tiny_spec();
        let p0 = spec.space.point_at(0).expect("point");
        let p1 = spec.space.point_at(1).expect("point");
        let base = Shard {
            nanostructure: p0.base.nanostructure,
            chopper: p0.base.chopper,
            cds: p0.base.cds,
            adc_bits: p0.base.adc_bits,
            points: vec![(0, p0)],
        };
        let renumbered = Shard {
            points: vec![(17, p0)],
            ..base.clone()
        };
        let different = Shard {
            points: vec![(0, p1)],
            ..base.clone()
        };
        let f = |s: &Shard| shard_fingerprint(&spec, s).expect("fingerprint");
        assert_eq!(f(&base), f(&renumbered));
        assert_ne!(f(&base), f(&different));
    }

    #[test]
    fn replay_is_bit_identical_and_reattaches_ranks() {
        let spec = tiny_spec();
        let cx = PanelContext::for_spec(&spec).expect("context");
        let p = spec.space.point_at(3).expect("point");
        let shard = Shard {
            nanostructure: p.base.nanostructure,
            chopper: p.base.chopper,
            cds: p.base.cds,
            adc_bits: p.base.adc_bits,
            points: vec![(3, p)],
        };
        clear_explore_cache();
        let (cold, hit_cold) = score_shard_cached(&spec, &cx, &shard).expect("cold");
        assert!(!hit_cold);
        let renumbered = Shard {
            points: vec![(99, p)],
            ..shard.clone()
        };
        let (warm, hit_warm) = score_shard_cached(&spec, &cx, &renumbered).expect("warm");
        assert!(hit_warm);
        assert_eq!(warm[0].rank, 99);
        assert_eq!(
            warm[0].surrogate_cost.to_bits(),
            cold[0].surrogate_cost.to_bits()
        );
        assert_eq!(
            warm[0].surrogate_margin.to_bits(),
            cold[0].surrogate_margin.to_bits()
        );
        assert_eq!(warm[0].simulated, cold[0].simulated);
    }
}
