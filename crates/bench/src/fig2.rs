//! Fig. 2 reproduction: the complete biosensing acquisition chain
//! (voltage generator → potentiostat → cell → readout → ADC), exercised
//! end to end for signal integrity and noise budget, including the §II-C
//! conditioning options (chopper, CDS).

use bios_afe::{
    ChainConfig, CorrelatedDoubleSampler, CurrentRange, MatchingQuality, NoiseConfig, ReadoutChain,
};
use bios_electrochem::PotentialProgram;
use bios_units::{Amps, Seconds, Volts};

/// One chain configuration's signal-integrity result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainResult {
    /// Configuration label.
    pub label: String,
    /// Mean recovered current for a 500 nA DC input.
    pub recovered: Amps,
    /// Sample-to-sample noise SD.
    pub noise_sd: Amps,
}

/// Flicker-dominated noise used for the ablation (scaled above the ADC LSB
/// so the effects survive quantization).
fn test_noise() -> NoiseConfig {
    // Balanced so both low-frequency mechanisms matter over a 2-minute
    // record: the drift walk accumulates to ≈11 nA, the flicker floor is
    // of the same order — chopper attacks the flicker, CDS the drift.
    NoiseConfig {
        white_density: 2e-10,
        flicker_density_1hz: 8e-9,
        drift_per_sqrt_s: 1e-9,
    }
}

/// Runs the chain in one configuration and measures recovery + noise.
pub fn measure_chain(label: &str, config: ChainConfig, seed: u64) -> ChainResult {
    let chain = ReadoutChain::new(config);
    let truth = Amps::from_nanoamps(500.0);
    let program = PotentialProgram::Hold {
        potential: Volts::from_millivolts(650.0),
        duration: Seconds::new(120.0),
    };
    let samples = chain
        .acquire(
            &program,
            Seconds::from_millis(250.0),
            seed,
            move |_, _| truth,
            |_, _| Amps::ZERO,
        )
        .expect("valid program");
    let vals: Vec<f64> = samples.iter().skip(4).map(|s| s.current.value()).collect();
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let sd = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
    ChainResult {
        label: label.to_string(),
        recovered: Amps::new(mean),
        noise_sd: Amps::new(sd),
    }
}

/// Runs the four-way conditioning ablation, averaged over `runs` seeds.
pub fn run(runs: u64) -> Vec<ChainResult> {
    let base = ChainConfig::for_range(CurrentRange::oxidase())
        .expect("paper range")
        .with_noise(test_noise());
    let configs: Vec<(&str, ChainConfig)> = vec![
        ("plain", base),
        ("chopper", base.with_chopper()),
        (
            "cds",
            base.with_cds(CorrelatedDoubleSampler::new(MatchingQuality::Monolithic)),
        ),
        (
            "chopper+cds",
            base.with_chopper()
                .with_cds(CorrelatedDoubleSampler::new(MatchingQuality::Monolithic)),
        ),
    ];
    configs
        .iter()
        .map(|(label, cfg)| {
            let mut acc_mean = 0.0;
            let mut acc_sd = 0.0;
            for r in 0..runs {
                let res = measure_chain(label, *cfg, 500 + r * 37);
                acc_mean += res.recovered.value();
                acc_sd += res.noise_sd.value();
            }
            ChainResult {
                label: label.to_string(),
                recovered: Amps::new(acc_mean / runs as f64),
                noise_sd: Amps::new(acc_sd / runs as f64),
            }
        })
        .collect()
}

/// Renders the Fig. 2 experiment report.
pub fn render(results: &[ChainResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>14} {:>14} {:>10}\n",
        "conditioning", "recovered", "noise SD", "vs plain"
    ));
    let plain_sd = results
        .first()
        .map(|r| r.noise_sd.value())
        .unwrap_or(f64::NAN);
    for r in results {
        out.push_str(&format!(
            "{:<14} {:>14} {:>14} {:>9.2}x\n",
            r.label,
            r.recovered.to_string(),
            r.noise_sd.to_string(),
            r.noise_sd.value() / plain_sd
        ));
    }
    out.push_str("(500 nA DC truth through vgen → potentiostat → TIA → ADC)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_recover_the_signal() {
        for r in run(4) {
            assert!(
                (r.recovered.as_nanoamps() - 500.0).abs() < 25.0,
                "{}: recovered {}",
                r.label,
                r.recovered
            );
        }
    }

    #[test]
    fn conditioning_reduces_noise() {
        let results = run(8);
        let sd_of = |label: &str| {
            results
                .iter()
                .find(|r| r.label == label)
                .expect("configuration present")
                .noise_sd
                .value()
        };
        // Chopper kills the flicker component; CDS kills the drift; each
        // alone leaves the other mechanism, together they beat everything.
        assert!(sd_of("chopper") < sd_of("plain"), "chopper must help");
        assert!(
            sd_of("cds") < sd_of("plain") * 1.2,
            "cds must not hurt much"
        );
        assert!(
            sd_of("chopper+cds") < sd_of("plain") * 0.5,
            "combined conditioning must clearly win: {} vs {}",
            sd_of("chopper+cds"),
            sd_of("plain")
        );
    }
}
