//! Table I reproduction: the chronoamperometric working potentials of the
//! four oxidase biosensors.
//!
//! Experiment: for each oxidase's electrode environment, sweep the applied
//! potential, simulate the H₂O₂ oxidation current at t = 30 s with the full
//! Butler–Volmer/diffusion engine, and report the lowest potential reaching
//! 95% of the mass-transport plateau — the operating point a practitioner
//! would pick, and what Table I tabulates.
//!
//! Calibration: each oxidase's effective H₂O₂ rate constant is derived
//! *from* its Table I potential through the 95%-of-plateau criterion (the
//! table values are empirical electrode properties), and the simulation
//! then re-derives the potential from raw currents — validating the whole
//! kinetics + transport + plateau-detection chain.

use bios_biochem::Oxidase;
use bios_electrochem::{
    simulate_chrono_with, Cell, Electrode, PotentialProgram, RedoxCouple, SimOptions,
};
use bios_units::{Molar, Seconds, Volts, FARADAY, GAS_CONSTANT, T_ROOM};

/// One reproduced row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The oxidase.
    pub oxidase: Oxidase,
    /// The paper's applied potential (mV vs Ag/AgCl).
    pub paper_mv: f64,
    /// The potential recovered from simulated currents (mV).
    pub measured_mv: f64,
}

/// Plateau criterion constant: the effective `k_b/(D/δ)` ratio at which the
/// simulated 30 s current reaches 95% of its plateau. The quasi-steady
/// mixed-control estimate gives 19; the transient simulation's effective
/// diffusion layer differs, and the sweep's plateau is itself still mildly
/// kinetic, so the constant is calibrated once against the simulator (the
/// `recovered_potentials...` test pins it to the 10 mV sweep grid).
const PLATEAU_KB_FACTOR: f64 = 6.0;

/// Mass-transport velocity `D/δ` at the 30 s sampling instant.
fn transport_velocity() -> f64 {
    let d = RedoxCouple::hydrogen_peroxide().diffusion_ox().value();
    let delta = (core::f64::consts::PI * d * 30.0).sqrt();
    d / delta
}

/// The H₂O₂ couple with the per-oxidase rate constant that places the 95%
/// plateau point at the Table I potential.
pub fn h2o2_couple_for(oxidase: Oxidase) -> RedoxCouple {
    let base = RedoxCouple::hydrogen_peroxide();
    let e_table = oxidase.applied_potential().value();
    let f = FARADAY / (GAS_CONSTANT * T_ROOM.value());
    let alpha = base.transfer_coefficient();
    let n = base.electrons() as f64;
    // 95% of plateau ⇔ kb(E) = PLATEAU_KB_FACTOR·(D/δ).
    let kb_needed = PLATEAU_KB_FACTOR * transport_velocity();
    let k0 =
        kb_needed / ((1.0 - alpha) * n * f * (e_table - base.formal_potential().value())).exp();
    RedoxCouple::builder("H2O2")
        .electrons(base.electrons())
        .formal_potential(base.formal_potential())
        .diffusion(base.diffusion_ox().value())
        .rate_constant(k0)
        .transfer_coefficient(alpha)
        .build()
        .expect("derived constants are valid")
}

/// Simulated H₂O₂ oxidation current at `e` after 30 s (A, anodic positive).
pub fn current_at_potential(couple: &RedoxCouple, e: Volts) -> f64 {
    let cell = Cell::builder(Electrode::paper_gold_we())
        .build()
        .expect("cell constants are valid");
    let program = PotentialProgram::Hold {
        potential: e,
        duration: Seconds::new(30.0),
    };
    let options = SimOptions {
        dt: Some(Seconds::new(0.15)),
        include_charging: false,
        grid_gamma: None,
    };
    let tr = simulate_chrono_with(
        &cell,
        couple,
        Molar::ZERO,
        Molar::from_millimolar(1.0), // H2O2 as the reduced (oxidizable) form
        &program,
        options,
    )
    .expect("simulation parameters are valid");
    tr.last().expect("nonempty").1.value()
}

/// Finds the lowest potential reaching 95% of the plateau current by
/// sweeping 300–900 mV in 10 mV steps.
pub fn measure_working_potential(couple: &RedoxCouple) -> Volts {
    let potentials: Vec<Volts> = (30..=90)
        .map(|k| Volts::from_millivolts(k as f64 * 10.0))
        .collect();
    let currents: Vec<f64> = potentials
        .iter()
        .map(|e| current_at_potential(couple, *e))
        .collect();
    let plateau = currents.iter().cloned().fold(0.0f64, f64::max);
    for (e, i) in potentials.iter().zip(currents.iter()) {
        if *i >= 0.95 * plateau {
            return *e;
        }
    }
    *potentials.last().expect("nonempty")
}

/// Runs the full Table I reproduction.
pub fn run() -> Vec<Table1Row> {
    Oxidase::ALL
        .iter()
        .map(|ox| {
            let couple = h2o2_couple_for(*ox);
            let measured = measure_working_potential(&couple);
            Table1Row {
                oxidase: *ox,
                paper_mv: ox.applied_potential().as_millivolts(),
                measured_mv: measured.as_millivolts(),
            }
        })
        .collect()
}

/// Renders the rows in the paper's format.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<12} {:>10} {:>12} {:>7}\n",
        "Oxidase species", "Target", "paper(mV)", "measured(mV)", "Δ(mV)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:<12} {:>10.0} {:>12.0} {:>7.0}\n",
            r.oxidase.to_string().to_uppercase(),
            r.oxidase.target().to_string(),
            r.paper_mv,
            r.measured_mv,
            r.measured_mv - r.paper_mv
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovered_potentials_match_table_i_within_sweep_resolution() {
        for row in run() {
            assert!(
                (row.measured_mv - row.paper_mv).abs() <= 20.0,
                "{}: measured {} vs paper {}",
                row.oxidase,
                row.measured_mv,
                row.paper_mv
            );
        }
    }

    #[test]
    fn current_rises_sigmoidally_to_plateau() {
        let couple = h2o2_couple_for(Oxidase::Lactate);
        let low = current_at_potential(&couple, Volts::from_millivolts(350.0));
        let mid = current_at_potential(&couple, Volts::from_millivolts(650.0));
        let high = current_at_potential(&couple, Volts::from_millivolts(850.0));
        assert!(low < 0.5 * mid, "foot of the wave");
        assert!((high - mid) / high < 0.1, "plateau");
    }

    #[test]
    fn ordering_follows_the_paper() {
        // Glucose has the lowest working potential, cholesterol the highest.
        let rows = run();
        let of = |o: Oxidase| {
            rows.iter()
                .find(|r| r.oxidase == o)
                .expect("all oxidases present")
                .measured_mv
        };
        assert!(of(Oxidase::Glucose) < of(Oxidase::Glutamate));
        assert!(of(Oxidase::Glutamate) <= of(Oxidase::Lactate));
        assert!(of(Oxidase::Lactate) < of(Oxidase::Cholesterol));
    }
}
