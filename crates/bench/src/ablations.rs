//! Ablation experiments A1–A5 (see DESIGN.md §3): the paper's prose claims
//! turned into measured sweeps.

use bios_biochem::{Analyte, CypIsoform, CypSensor, Oxidase, OxidaseSensor};
use bios_electrochem::{
    microdisk_settling_time, sweep_charging_current, Cell, Electrode, ElectrodeMaterial,
    Nanostructure, RedoxCouple,
};
use bios_platform::{
    explore_with, predict_lod, DesignPoint, DesignSpace, EvaluatedDesign, ExecPolicy, PanelSpec,
    ProbePreference, ReadoutSharing,
};
use bios_units::{Centimeters, SquareCentimeters, VoltsPerSecond, T_ROOM};

// --- A1: scan-rate accuracy (the 20 mV/s guidance, §II-C) ---

/// Peak drift of the CYP2B4/benzphetamine wave vs scan rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanRateRow {
    /// Scan rate, mV/s.
    pub rate_mv_s: f64,
    /// Apex position, mV.
    pub peak_mv: f64,
    /// Drift from the Table II value, mV.
    pub drift_mv: f64,
    /// Whether the signature matcher (±30 mV window) would still identify
    /// the drug.
    pub still_identified: bool,
}

/// Runs the scan-rate sweep.
pub fn scan_rate_sweep() -> Vec<ScanRateRow> {
    let sensor = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry isoform");
    [5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0]
        .iter()
        .map(|&rate_mv_s| {
            let rate = VoltsPerSecond::from_millivolts_per_second(rate_mv_s);
            let peak = sensor
                .peak_potential(Analyte::Benzphetamine, rate, T_ROOM)
                .expect("registered substrate");
            let drift = peak.as_millivolts() + 250.0;
            ScanRateRow {
                rate_mv_s,
                peak_mv: peak.as_millivolts(),
                drift_mv: drift,
                still_identified: drift.abs() <= 30.0,
            }
        })
        .collect()
}

// --- A2: microelectrode advantages (§III) ---

/// Electrode scaling row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroelectrodeRow {
    /// Electrode area, mm².
    pub area_mm2: f64,
    /// Background charging current at 20 mV/s.
    pub background_na: f64,
    /// Diffusional settling time of an equivalent disk.
    pub settling_s: f64,
}

/// Runs the electrode-area sweep.
pub fn microelectrode_sweep() -> Vec<MicroelectrodeRow> {
    let couple = RedoxCouple::ferrocyanide();
    [23.0, 2.3, 0.23, 0.023, 0.0023]
        .iter()
        .map(|&area_mm2| {
            let electrode = Electrode::new(
                ElectrodeMaterial::Gold,
                SquareCentimeters::from_square_millimeters(area_mm2),
            )
            .expect("area is positive");
            let cell = Cell::builder(electrode).build().expect("cell builds");
            let bg = sweep_charging_current(
                &cell,
                VoltsPerSecond::from_millivolts_per_second(20.0),
                true,
            );
            // Disk of equal area: r = √(A/π).
            let r_cm = (area_mm2 * 1e-2 / core::f64::consts::PI).sqrt();
            let settle = microdisk_settling_time(&couple, Centimeters::new(r_cm));
            MicroelectrodeRow {
                area_mm2,
                background_na: bg.as_nanoamps(),
                settling_s: settle.value(),
            }
        })
        .collect()
}

// --- A3: nanostructuring (§III) ---

/// Nanostructure sensitivity row.
#[derive(Debug, Clone, PartialEq)]
pub struct NanostructureRow {
    /// The coating.
    pub nanostructure: Nanostructure,
    /// Glucose sensitivity, µA/(mM·cm²).
    pub sensitivity: f64,
    /// Gain over the bare electrode.
    pub gain: f64,
}

/// Runs the nanostructure ablation (registry sensitivity is the CNT
/// reference; others scale by roughness ratio).
pub fn nanostructure_sweep() -> Vec<NanostructureRow> {
    let reference = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry oxidase");
    let ref_s = reference.sensitivity_si() * 1e3;
    let cnt = Nanostructure::CarbonNanotubes.roughness_factor();
    [
        Nanostructure::None,
        Nanostructure::GoldNanoparticles,
        Nanostructure::CobaltOxide,
        Nanostructure::CarbonNanotubes,
    ]
    .iter()
    .map(|&ns| {
        let s = ref_s * ns.roughness_factor() / cnt;
        NanostructureRow {
            nanostructure: ns,
            sensitivity: s,
            gain: ns.roughness_factor(),
        }
    })
    .collect()
}

// --- A4: noise conditioning vs LOD (§II-C) ---

/// Conditioning-vs-LOD row.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseAblationRow {
    /// Configuration label.
    pub label: String,
    /// Predicted glucose LOD, µM.
    pub lod_um: f64,
}

/// Runs the conditioning ablation with the analytic LOD model.
pub fn noise_ablation() -> Vec<NoiseAblationRow> {
    let base = DesignPoint {
        nanostructure: Nanostructure::CarbonNanotubes,
        sharing: ReadoutSharing::Shared,
        chopper: false,
        cds: false,
        adc_bits: 12,
        preference: ProbePreference::MinimizeElectrodes,
    };
    [
        ("plain", false, false),
        ("chopper", true, false),
        ("cds", false, true),
        ("chopper+cds", true, true),
    ]
    .iter()
    .map(|(label, chopper, cds)| {
        let point = DesignPoint {
            chopper: *chopper,
            cds: *cds,
            ..base
        };
        NoiseAblationRow {
            label: (*label).to_string(),
            lod_um: predict_lod(Analyte::Glucose, &point)
                .expect("glucose is registered")
                .as_micromolar(),
        }
    })
    .collect()
}

// --- A6: square-wave voltammetry extension ---

/// SWV-vs-CV signal-to-background row at one concentration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwvRow {
    /// Analyte concentration, µM.
    pub conc_um: f64,
    /// CV faradaic peak over the Cdl·v charging background.
    pub cv_signal_to_background: f64,
    /// SWV differential peak over the residual (cancelled) background.
    pub swv_signal_to_background: f64,
}

/// Compares CV and SWV detectability of a fast couple at falling
/// concentrations: CV pays the `C_dl·v` charging background on every scan,
/// SWV's differential sampling cancels it — the textbook reason SWV
/// extends the platform's reach to lower concentrations.
pub fn swv_advantage() -> Vec<SwvRow> {
    use bios_electrochem::{
        simulate_cv_with, simulate_swv, sweep_charging_current, PotentialProgram, SimOptions,
        SwvParams,
    };
    use bios_units::{Molar, Volts};

    let electrode = Electrode::paper_gold_we();
    let cell = bios_electrochem::Cell::builder(electrode)
        .build()
        .expect("cell builds");
    let couple = RedoxCouple::ferrocyanide();
    let e0 = couple.formal_potential();
    let params = SwvParams::typical(Volts::new(e0.value() + 0.3), Volts::new(e0.value() - 0.3));
    let rate = params.effective_rate();
    let cv_background = sweep_charging_current(&cell, rate, false).abs();
    // SWV residual background: the difference of two consecutive charging
    // samples — modeled as 2% of the CV background (finite settling).
    let swv_background = cv_background * 0.02;

    [1000.0, 300.0, 100.0, 30.0, 10.0]
        .iter()
        .map(|&conc_um| {
            let bulk = Molar::from_micromolar(conc_um);
            let program = PotentialProgram::cyclic_single(
                Volts::new(e0.value() + 0.3),
                Volts::new(e0.value() - 0.3),
                rate,
            );
            let cv = simulate_cv_with(
                &cell,
                &couple,
                bulk,
                Molar::ZERO,
                &program,
                SimOptions {
                    dt: None,
                    include_charging: false,
                    grid_gamma: None,
                },
            )
            .expect("simulation");
            let cv_peak = cv.min_current().expect("nonempty").1.abs();
            let swv = simulate_swv(&cell, &couple, bulk, Molar::ZERO, &params).expect("simulation");
            let swv_peak = swv.min_current().expect("nonempty").1.abs();
            SwvRow {
                conc_um,
                cv_signal_to_background: cv_peak.value() / cv_background.value(),
                swv_signal_to_background: swv_peak.value() / swv_background.value(),
            }
        })
        .collect()
}

// --- A7: solver grid choice (DESIGN.md §4) ---

/// One grid-comparison row: accuracy of the Cottrell transient vs node
/// count, uniform against expanding grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridRow {
    /// Grid label index (coarse→fine).
    pub level: usize,
    /// Uniform grid: node count.
    pub uniform_nodes: usize,
    /// Uniform grid: worst relative Cottrell error (t > 0.1 s).
    pub uniform_error: f64,
    /// Expanding grid: node count.
    pub expanding_nodes: usize,
    /// Expanding grid: worst relative Cottrell error.
    pub expanding_error: f64,
}

fn cottrell_error(grid: bios_electrochem::Grid, dt: f64, t_total: f64) -> f64 {
    use bios_electrochem::DiffusionSim;
    use bios_units::{DiffusionCoefficient, MolesPerCm3, Seconds};
    let d = 1e-5;
    let bulk = 1e-6;
    let mut sim = DiffusionSim::new(
        grid,
        DiffusionCoefficient::new(d),
        DiffusionCoefficient::new(d),
        MolesPerCm3::new(bulk),
        MolesPerCm3::ZERO,
        Seconds::new(dt),
    )
    .expect("sim");
    let steps = (t_total / dt) as usize;
    let mut worst: f64 = 0.0;
    for k in 1..=steps {
        let flux = sim.step_with_rate_constants(1e6, 0.0);
        let t = k as f64 * dt;
        if t > 0.1 {
            let analytic = bulk * (d / (core::f64::consts::PI * t)).sqrt();
            worst = worst.max(((flux - analytic) / analytic).abs());
        }
    }
    worst
}

/// Compares uniform and expanding grids on the Cottrell benchmark — the
/// design-choice ablation DESIGN.md §4 calls out. The expanding grid
/// reaches a given accuracy with far fewer nodes because it concentrates
/// resolution where the gradient lives.
pub fn grid_ablation() -> Vec<GridRow> {
    use bios_electrochem::Grid;
    let dt = 0.005;
    let t_total = 2.0;
    let d = 1e-5f64;
    let length = 6.0 * (d * t_total).sqrt();
    let first_dx = 0.5 * (d * dt).sqrt();
    // Refinement must shrink *both* knobs: the first spacing controls the
    // early-time error, the growth factor γ controls the late-time error
    // once the depletion layer reaches the coarse far-field.
    [(4.0, 1.10), (2.0, 1.05), (1.0, 1.025)]
        .iter()
        .enumerate()
        .map(|(level, &(coarse, gamma))| {
            let expanding = Grid::expanding(
                Centimeters::new(first_dx * coarse),
                gamma,
                Centimeters::new(length),
            )
            .expect("grid");
            let expanding_nodes = expanding.len();
            // A uniform grid with the same node count.
            let uniform = Grid::uniform(Centimeters::new(length), expanding_nodes).expect("grid");
            GridRow {
                level,
                uniform_nodes: uniform.len(),
                uniform_error: cottrell_error(uniform, dt, t_total),
                expanding_nodes,
                expanding_error: cottrell_error(expanding, dt, t_total),
            }
        })
        .collect()
}

// --- A5: design-space exploration (§I) ---

/// Runs the full design-space exploration on the paper panel.
pub fn design_space() -> Vec<EvaluatedDesign> {
    explore_with(
        &PanelSpec::paper_fig4(),
        &DesignSpace::paper_default(),
        ExecPolicy::Auto,
    )
    .expect("the paper panel explores")
}

/// Renders all ablations.
pub fn render_all() -> String {
    let mut out = String::new();

    out.push_str("A1 — scan rate vs peak position (CYP2B4/benzphetamine, Table II: -250 mV)\n");
    out.push_str(&format!(
        "{:>10} {:>10} {:>9} {:>12}\n",
        "v (mV/s)", "peak (mV)", "drift", "identified?"
    ));
    for r in scan_rate_sweep() {
        out.push_str(&format!(
            "{:>10.0} {:>10.0} {:>9.0} {:>12}\n",
            r.rate_mv_s,
            r.peak_mv,
            r.drift_mv,
            if r.still_identified { "yes" } else { "NO" }
        ));
    }

    out.push_str("\nA2 — electrode scaling (background & response time)\n");
    out.push_str(&format!(
        "{:>11} {:>16} {:>13}\n",
        "area (mm²)", "background (nA)", "settling (s)"
    ));
    for r in microelectrode_sweep() {
        out.push_str(&format!(
            "{:>11.4} {:>16.3} {:>13.3}\n",
            r.area_mm2, r.background_na, r.settling_s
        ));
    }

    out.push_str("\nA3 — nanostructuring vs glucose sensitivity\n");
    out.push_str(&format!(
        "{:>6} {:>18} {:>6}\n",
        "stack", "S (µA/(mM·cm²))", "gain"
    ));
    for r in nanostructure_sweep() {
        out.push_str(&format!(
            "{:>6} {:>18.2} {:>6.1}\n",
            r.nanostructure.to_string(),
            r.sensitivity,
            r.gain
        ));
    }

    out.push_str("\nA4 — conditioning vs predicted glucose LOD (paper: 575 µM)\n");
    for r in noise_ablation() {
        out.push_str(&format!("{:<14} {:>8.0} µM\n", r.label, r.lod_um));
    }

    out.push_str("\nA7 — uniform vs expanding grid (Cottrell benchmark)\n");
    out.push_str(&format!(
        "{:>6} {:>7} {:>14} {:>16}\n",
        "level", "nodes", "uniform err", "expanding err"
    ));
    for r in grid_ablation() {
        out.push_str(&format!(
            "{:>6} {:>7} {:>13.2}% {:>15.2}%\n",
            r.level,
            r.uniform_nodes,
            r.uniform_error * 100.0,
            r.expanding_error * 100.0
        ));
    }

    out.push_str("\nA6 — SWV vs CV signal-to-charging-background (extension)\n");
    out.push_str(&format!(
        "{:>10} {:>10} {:>10}\n",
        "conc (µM)", "CV S/B", "SWV S/B"
    ));
    for r in swv_advantage() {
        out.push_str(&format!(
            "{:>10.0} {:>10.1} {:>10.1}\n",
            r.conc_um, r.cv_signal_to_background, r.swv_signal_to_background
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_20mvs_is_the_last_safe_rate() {
        let rows = scan_rate_sweep();
        let at = |v: f64| {
            rows.iter()
                .find(|r| r.rate_mv_s == v)
                .expect("rate in sweep")
        };
        assert!(at(20.0).still_identified);
        assert_eq!(at(20.0).drift_mv, 0.0);
        assert!(
            !at(200.0).still_identified,
            "fast scans must break identification"
        );
        // Drift is monotone in rate.
        for pair in rows.windows(2) {
            assert!(pair[1].drift_mv <= pair[0].drift_mv);
        }
    }

    #[test]
    fn a2_smaller_is_quieter_and_faster() {
        let rows = microelectrode_sweep();
        for pair in rows.windows(2) {
            assert!(pair[1].background_na < pair[0].background_na);
            assert!(pair[1].settling_s < pair[0].settling_s);
        }
        // The paper's 0.23 mm² electrode: sub-nA background at 20 mV/s.
        let paper = rows.iter().find(|r| r.area_mm2 == 0.23).expect("in sweep");
        assert!(paper.background_na < 1.0);
    }

    #[test]
    fn a3_cnt_gives_order_of_magnitude_gain() {
        let rows = nanostructure_sweep();
        let bare = rows.first().expect("nonempty");
        let cnt = rows.last().expect("nonempty");
        assert_eq!(bare.nanostructure, Nanostructure::None);
        assert_eq!(cnt.nanostructure, Nanostructure::CarbonNanotubes);
        assert!(cnt.sensitivity / bare.sensitivity > 10.0);
        // CNT row reproduces the registry's 27.7.
        assert!((cnt.sensitivity - 27.7).abs() < 0.1);
    }

    #[test]
    fn a4_conditioning_improves_lod_monotonically() {
        let rows = noise_ablation();
        let lod = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .expect("configuration present")
                .lod_um
        };
        assert!(lod("chopper") < lod("plain"));
        assert!(lod("cds") < lod("plain"));
        assert!(lod("chopper+cds") < lod("cds"));
        assert!(lod("chopper+cds") < lod("chopper"));
    }

    #[test]
    fn a7_expanding_grid_wins_at_coarse_node_budgets() {
        let rows = grid_ablation();
        for r in &rows {
            assert_eq!(r.uniform_nodes, r.expanding_nodes, "matched node counts");
        }
        // The honest findings: (1) at a coarse node budget the expanding
        // grid is ~16× more accurate than uniform — it spends its few
        // nodes where the gradient lives; (2) once grids are adequate the
        // backward-Euler *time* discretization (O(dt) at 5 ms) floors every
        // spatial scheme at the ~1–2% level, so spatial refinement stops
        // paying — the reason the CV driver takes one step per millivolt
        // rather than over-refining the grid.
        let coarse = rows.first().expect("nonempty");
        assert!(
            coarse.expanding_error < 0.3 * coarse.uniform_error,
            "coarse: expanding {} vs uniform {}",
            coarse.expanding_error,
            coarse.uniform_error
        );
        for r in &rows {
            assert!(
                r.expanding_error < 0.025,
                "level {}: {}",
                r.level,
                r.expanding_error
            );
        }
    }

    #[test]
    fn a6_swv_beats_cv_at_every_concentration() {
        let rows = swv_advantage();
        for r in &rows {
            assert!(
                r.swv_signal_to_background > 5.0 * r.cv_signal_to_background,
                "at {} µM: SWV {} vs CV {}",
                r.conc_um,
                r.swv_signal_to_background,
                r.cv_signal_to_background
            );
        }
        // Both S/B scale with concentration.
        for pair in rows.windows(2) {
            assert!(pair[1].cv_signal_to_background < pair[0].cv_signal_to_background);
            assert!(pair[1].swv_signal_to_background < pair[0].swv_signal_to_background);
        }
    }

    #[test]
    fn a5_front_contains_a_shared_cnt_design() {
        let designs = design_space();
        let front: Vec<_> = designs.iter().filter(|d| d.pareto).collect();
        assert!(!front.is_empty());
        // The paper's own choice — shared readout on CNT electrodes — is
        // Pareto-efficient (the cheapest feasible family).
        assert!(
            front
                .iter()
                .any(|d| d.point.sharing == ReadoutSharing::Shared
                    && d.point.nanostructure == Nanostructure::CarbonNanotubes),
            "the paper's design should be on the front"
        );
    }
}
