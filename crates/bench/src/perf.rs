//! Execution-engine perf harness: times representative platform workloads
//! sequentially and in parallel, checks the outputs are byte-identical
//! (the engine's contract), and summarizes solver/memo cache behavior.
//!
//! The `repro_throughput` binary drives this module and writes the result
//! as `BENCH_2.json`; CI's perf-smoke job gates on `digests_match` and a
//! minimum speedup. Digests are FNV-1a over the `Debug` rendering of each
//! workload's full result — `f64`'s `Debug` is shortest-roundtrip, so two
//! digests agree iff every float in both results is bit-identical.

use bios_electrochem::{clear_solver_cache, solver_cache_stats};
use bios_platform::{
    clear_memo_caches, explore_with, memo_stats, par_map, DesignSpace, ExecPolicy, PanelSpec,
    SessionOptions,
};
use criterion::measure;

/// Seeds for the session-batch workload: one full Fig. 4 session each.
const SESSION_SEEDS: u64 = 12;

/// Seeds for the fault-matrix workload (each seed ⇒ 46 sessions).
const MATRIX_SEEDS: [u64; 2] = [2011, 7];

/// Timed samples per workload variant (min is reported).
const SAMPLES: usize = 3;

/// FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content digest of any `Debug`-rendering value (see module docs for why
/// this is exact for floats).
pub fn digest_debug<T: std::fmt::Debug>(value: &T) -> u64 {
    fnv1a(format!("{value:?}").into_bytes())
}

/// One workload timed under both policies.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: &'static str,
    /// Independent work units fanned out.
    pub units: usize,
    /// Best sequential wall time, seconds.
    pub sequential_s: f64,
    /// Best parallel wall time, seconds.
    pub parallel_s: f64,
    /// Result digest under the sequential policy.
    pub digest_sequential: u64,
    /// Result digest under the parallel policy.
    pub digest_parallel: u64,
}

impl WorkloadResult {
    /// Sequential time over parallel time.
    pub fn speedup(&self) -> f64 {
        self.sequential_s / self.parallel_s
    }

    /// Whether parallel output was byte-identical to sequential.
    pub fn digests_match(&self) -> bool {
        self.digest_sequential == self.digest_parallel
    }

    /// Work units per second under the parallel policy.
    pub fn units_per_s(&self) -> f64 {
        self.units as f64 / self.parallel_s
    }
}

/// Solver-kernel throughput: backward-Euler steps per second, cold
/// (factorizing per construction) vs warm (shared prefactorization).
#[derive(Debug, Clone, Copy)]
pub struct KernelResult {
    /// Implicit solver steps per timed run.
    pub steps: usize,
    /// Steps/s with the solver cache cleared before every run.
    pub cold_steps_per_s: f64,
    /// Steps/s with the prefactorization cache warm.
    pub warm_steps_per_s: f64,
    /// Solver cache `(hits, misses)` after the warm runs.
    pub cache_hits: u64,
    /// See `cache_hits`.
    pub cache_misses: u64,
}

/// The full harness output.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `std::thread::available_parallelism` on the measuring host.
    pub host_threads: usize,
    /// Worker count the parallel policy resolved to.
    pub parallel_threads: usize,
    /// The [`ExecPolicy`] the parallel variant ran under, rendered —
    /// without it a committed report can't be compared across hosts.
    pub exec_policy: String,
    /// Per-workload timings and digests.
    pub workloads: Vec<WorkloadResult>,
    /// Solver-kernel numbers.
    pub kernel: KernelResult,
    /// Memo cache `(hits, misses)` accumulated over the harness.
    pub memo_hits: u64,
    /// See `memo_hits`.
    pub memo_misses: u64,
}

impl PerfReport {
    /// True iff every workload's parallel output matched sequential.
    pub fn all_digests_match(&self) -> bool {
        self.workloads.iter().all(WorkloadResult::digests_match)
    }

    /// The smallest speedup across workloads.
    pub fn min_speedup(&self) -> f64 {
        self.workloads
            .iter()
            .map(WorkloadResult::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Gate disposition for this host: on a single-core host no speedup
    /// is expressible, so the gate is *skipped* — and the committed
    /// report says so, instead of recording `host_cores: 1` silently
    /// next to a ~1.0 "speedup" that never gated anything.
    pub fn speedup_gate(&self) -> &'static str {
        if self.host_threads < 2 {
            crate::batch::GATE_SKIPPED_SINGLE_CORE
        } else {
            crate::batch::GATE_ENFORCED
        }
    }
}

/// Times one workload under the sequential policy and under `policy`,
/// clearing every cache before each timed sample so both variants run the
/// same cold path, and digesting one representative run of each.
fn time_workload<T: std::fmt::Debug>(
    name: &'static str,
    units: usize,
    policy: ExecPolicy,
    run: impl Fn(ExecPolicy) -> T,
) -> WorkloadResult {
    let cold = |p: ExecPolicy| {
        clear_solver_cache();
        clear_memo_caches();
        run(p)
    };
    let digest_sequential = digest_debug(&cold(ExecPolicy::Sequential));
    let digest_parallel = digest_debug(&cold(policy));
    let seq = measure(SAMPLES, || cold(ExecPolicy::Sequential));
    let par = measure(SAMPLES, || cold(policy));
    WorkloadResult {
        name,
        units,
        sequential_s: seq.min_s(),
        parallel_s: par.min_s(),
        digest_sequential,
        digest_parallel,
    }
}

/// Runs the full harness under `policy` (the parallel variant; sequential
/// is always the reference).
pub fn run(policy: ExecPolicy) -> PerfReport {
    let platform = crate::fig4::build_platform();
    let sample = crate::fig4::reference_sample();
    let panel = PanelSpec::paper_fig4();
    let space = DesignSpace::paper_default();

    // Workload 1: a batch of independent full sessions (seeds fan out;
    // electrodes inside each session stay sequential — batch-level
    // parallelism scales further than the 5-electrode session fan-out).
    let seeds: Vec<u64> = (0..SESSION_SEEDS).map(|k| 2011 + 31 * k).collect();
    let session_opts = SessionOptions::default().with_exec(ExecPolicy::Sequential);
    let sessions = time_workload("session_batch", seeds.len(), policy, |p| {
        par_map(p, &seeds, |_, &s| {
            platform
                .run_session_with(&sample, s, &session_opts)
                .expect("session")
        })
    });

    // Workload 2: design-space exploration (96 analytic evaluations).
    let explore = time_workload("explore", space.len(), policy, |p| {
        explore_with(&panel, &space, p).expect("explore")
    });

    // Workload 3: the fault matrix (45 cells × seeds, plus baselines).
    let matrix_units = bios_afe::FaultKind::ALL.len() * crate::fault_matrix::SEVERITIES.len();
    let matrix = time_workload("fault_matrix", matrix_units, policy, |p| {
        let report = crate::fault_matrix::run_with(&MATRIX_SEEDS, p);
        // Digest the rendered matrix plus counters: MatrixReport's Debug
        // covers every outcome, retry and quarantine count.
        format!("{report:?}")
    });

    // Solver kernel: a chronoamperometric transient, cold vs warm cache.
    let kernel = kernel_throughput();

    // Memo behavior over a realistic repeat: two identical sessions, the
    // second hitting the trace caches.
    clear_memo_caches();
    let memo_probe = SessionOptions::default()
        .with_fault_plan(bios_afe::FaultPlan::randomized(901, 5))
        .with_qc(bios_instrument::QcGate::default())
        .with_exec(ExecPolicy::Sequential);
    for _ in 0..2 {
        platform
            .run_session_with(&sample, 42, &memo_probe)
            .expect("memo probe session");
    }
    let (memo_hits, memo_misses) = memo_stats();

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    PerfReport {
        host_threads,
        parallel_threads: policy.threads_for(usize::MAX),
        exec_policy: format!("{policy:?}"),
        workloads: vec![sessions, explore, matrix],
        kernel,
        memo_hits,
        memo_misses,
    }
}

/// Steps/s of the backward-Euler diffusion kernel with and without a warm
/// prefactorization cache. Many *short* transients, the way protocol
/// drivers use the solver (one fresh `DiffusionSim` per measurement): the
/// cache's win is skipping re-assembly, re-factorization and the unit-flux
/// solve on every construction, so construction cost must not be
/// amortized away by one long hold.
fn kernel_throughput() -> KernelResult {
    use bios_electrochem::{simulate_chrono, Cell, Electrode, PotentialProgram, RedoxCouple};
    use bios_units::{Molar, Seconds, Volts};

    const REPS: usize = 60;
    let cell = Cell::builder(Electrode::paper_gold_we())
        .build()
        .expect("cell");
    let couple = RedoxCouple::ferrocyanide();
    let program = PotentialProgram::Hold {
        potential: Volts::new(0.65),
        duration: Seconds::new(0.5),
    };
    let run_single = || {
        simulate_chrono(
            &cell,
            &couple,
            Molar::from_millimolar(1.0),
            Molar::ZERO,
            &program,
        )
        .expect("transient")
    };
    let steps = run_single().len() * REPS;

    let cold = measure(SAMPLES, || {
        for _ in 0..REPS {
            clear_solver_cache();
            criterion::black_box(run_single());
        }
    });
    clear_solver_cache();
    let warm = measure(SAMPLES, || {
        for _ in 0..REPS {
            criterion::black_box(run_single());
        }
    });
    let (cache_hits, cache_misses) = solver_cache_stats();
    KernelResult {
        steps,
        cold_steps_per_s: steps as f64 / cold.min_s(),
        warm_steps_per_s: steps as f64 / warm.min_s(),
        cache_hits,
        cache_misses,
    }
}

/// Renders the report as pretty-printed JSON (hand-rolled: the vendored
/// `serde_json` shim has no pretty printer, and the file is committed, so
/// stable readable formatting matters more than a serializer).
pub fn to_json(report: &PerfReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"host_cores\": {},\n  \"threads\": {},\n  \"exec_policy\": \"{}\",\n",
        report.host_threads, report.parallel_threads, report.exec_policy
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, w) in report.workloads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"units\": {}, \"sequential_s\": {:.4}, \"parallel_s\": {:.4}, \"speedup\": {:.2}, \"units_per_s\": {:.2}, \"digest_sequential\": \"{:016x}\", \"digest_parallel\": \"{:016x}\", \"digests_match\": {}}}{}\n",
            w.name,
            w.units,
            w.sequential_s,
            w.parallel_s,
            w.speedup(),
            w.units_per_s(),
            w.digest_sequential,
            w.digest_parallel,
            w.digests_match(),
            if i + 1 < report.workloads.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"kernel\": {{\"steps\": {}, \"cold_steps_per_s\": {:.0}, \"warm_steps_per_s\": {:.0}, \"cache_hits\": {}, \"cache_misses\": {}}},\n",
        report.kernel.steps,
        report.kernel.cold_steps_per_s,
        report.kernel.warm_steps_per_s,
        report.kernel.cache_hits,
        report.kernel.cache_misses,
    ));
    out.push_str(&format!(
        "  \"memo\": {{\"hits\": {}, \"misses\": {}}},\n",
        report.memo_hits, report.memo_misses
    ));
    out.push_str(&format!(
        "  \"all_digests_match\": {},\n  \"min_speedup\": {:.2},\n  \"speedup_gate\": \"{}\"\n}}\n",
        report.all_digests_match(),
        report.min_speedup(),
        report.speedup_gate()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_sensitive_and_stable() {
        let a = digest_debug(&vec![1.0f64, 2.0, 3.0]);
        let b = digest_debug(&vec![1.0f64, 2.0, 3.0]);
        let c = digest_debug(&vec![1.0f64, 2.0, f64::from_bits(3.0f64.to_bits() + 1)]);
        assert_eq!(a, b);
        assert_ne!(a, c, "a 1-ULP difference must change the digest");
    }

    #[test]
    fn json_rendering_is_valid_shape() {
        let report = PerfReport {
            host_threads: 4,
            parallel_threads: 4,
            exec_policy: String::from("Auto"),
            workloads: vec![WorkloadResult {
                name: "probe",
                units: 10,
                sequential_s: 1.0,
                parallel_s: 0.25,
                digest_sequential: 7,
                digest_parallel: 7,
            }],
            kernel: KernelResult {
                steps: 100,
                cold_steps_per_s: 1000.0,
                warm_steps_per_s: 2000.0,
                cache_hits: 5,
                cache_misses: 1,
            },
            memo_hits: 3,
            memo_misses: 2,
        };
        let json = to_json(&report);
        assert!(json.contains("\"host_cores\": 4"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"exec_policy\": \"Auto\""));
        assert!(json.contains("\"speedup\": 4.00"));
        assert!(json.contains("\"digests_match\": true"));
        assert!(json.contains("\"min_speedup\": 4.00"));
        assert!(json.contains("\"speedup_gate\": \"enforced\""));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced objects"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
